//! Property-based oracle tests for the bounded model finder: on randomly
//! generated small sentences, the solver's answer must agree with a
//! brute-force enumeration of all databases over a fixed tiny domain.

use birds_datalog::{CmpOp, PredRef, Term};
use birds_fol::Formula;
use birds_solver::{BoundedSolver, SatOutcome};
use proptest::prelude::*;

/// Vocabulary: two unary predicates p, q and one binary r over the fixed
/// domain {0, 1}. Small enough that 2^(2+2+4) = 256 databases enumerate
/// instantly, rich enough to exercise quantifiers, negation and equality.
const DOM: [i64; 2] = [0, 1];

#[derive(Debug, Clone)]
enum TinyFormula {
    P(usize),         // p(x_i)
    Q(usize),         // q(x_i)
    R(usize, usize),  // r(x_i, x_j)
    Eq(usize, usize), // x_i = x_j
    Lt(usize),        // x_i < 1
    Not(Box<TinyFormula>),
    And(Box<TinyFormula>, Box<TinyFormula>),
    Or(Box<TinyFormula>, Box<TinyFormula>),
    Exists(usize, Box<TinyFormula>),
    Forall(usize, Box<TinyFormula>),
}

/// Three variable slots x0, x1, x2.
const NVARS: usize = 3;

fn arb_tiny(depth: u32) -> impl Strategy<Value = TinyFormula> {
    let leaf = prop_oneof![
        (0..NVARS).prop_map(TinyFormula::P),
        (0..NVARS).prop_map(TinyFormula::Q),
        (0..NVARS, 0..NVARS).prop_map(|(a, b)| TinyFormula::R(a, b)),
        (0..NVARS, 0..NVARS).prop_map(|(a, b)| TinyFormula::Eq(a, b)),
        (0..NVARS).prop_map(TinyFormula::Lt),
    ];
    leaf.prop_recursive(depth, 24, 2, |inner| {
        prop_oneof![
            inner.clone().prop_map(|f| TinyFormula::Not(Box::new(f))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| TinyFormula::And(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| TinyFormula::Or(Box::new(a), Box::new(b))),
            (0..NVARS, inner.clone()).prop_map(|(v, f)| TinyFormula::Exists(v, Box::new(f))),
            (0..NVARS, inner).prop_map(|(v, f)| TinyFormula::Forall(v, Box::new(f))),
        ]
    })
}

fn var_name(i: usize) -> String {
    format!("X{i}")
}

fn to_formula(f: &TinyFormula) -> Formula {
    match f {
        TinyFormula::P(i) => Formula::Rel(PredRef::plain("p"), vec![Term::var(var_name(*i))]),
        TinyFormula::Q(i) => Formula::Rel(PredRef::plain("q"), vec![Term::var(var_name(*i))]),
        TinyFormula::R(i, j) => Formula::Rel(
            PredRef::plain("r"),
            vec![Term::var(var_name(*i)), Term::var(var_name(*j))],
        ),
        TinyFormula::Eq(i, j) => Formula::eq(Term::var(var_name(*i)), Term::var(var_name(*j))),
        TinyFormula::Lt(i) => Formula::Cmp(CmpOp::Lt, Term::var(var_name(*i)), Term::constant(1)),
        TinyFormula::Not(g) => Formula::not(to_formula(g)),
        TinyFormula::And(a, b) => Formula::and(vec![to_formula(a), to_formula(b)]),
        TinyFormula::Or(a, b) => Formula::or(vec![to_formula(a), to_formula(b)]),
        TinyFormula::Exists(v, g) => Formula::exists(vec![var_name(*v)], to_formula(g)),
        TinyFormula::Forall(v, g) => Formula::Forall(vec![var_name(*v)], Box::new(to_formula(g))),
    }
}

/// A database over DOM: bitmask membership for p, q (2 bits each) and r
/// (4 bits).
#[derive(Clone, Copy)]
struct TinyDb {
    p: u8,
    q: u8,
    r: u8,
}

impl TinyDb {
    fn eval(&self, f: &TinyFormula, env: &mut [i64; NVARS]) -> bool {
        match f {
            TinyFormula::P(i) => self.p & (1 << env[*i]) != 0,
            TinyFormula::Q(i) => self.q & (1 << env[*i]) != 0,
            TinyFormula::R(i, j) => self.r & (1 << (2 * env[*i] + env[*j])) != 0,
            TinyFormula::Eq(i, j) => env[*i] == env[*j],
            TinyFormula::Lt(i) => env[*i] < 1,
            TinyFormula::Not(g) => !self.eval(g, env),
            TinyFormula::And(a, b) => self.eval(a, env) && self.eval(b, env),
            TinyFormula::Or(a, b) => self.eval(a, env) || self.eval(b, env),
            TinyFormula::Exists(v, g) => DOM.iter().any(|&d| {
                let saved = env[*v];
                env[*v] = d;
                let out = self.eval(g, env);
                env[*v] = saved;
                out
            }),
            TinyFormula::Forall(v, g) => DOM.iter().all(|&d| {
                let saved = env[*v];
                env[*v] = d;
                let out = self.eval(g, env);
                env[*v] = saved;
                out
            }),
        }
    }
}

/// Brute force: does any database over DOM satisfy ∃(free vars) f?
fn brute_force_sat(f: &TinyFormula) -> bool {
    for p in 0..4u8 {
        for q in 0..4u8 {
            for r in 0..16u8 {
                let db = TinyDb { p, q, r };
                // Close free variables existentially over DOM.
                let mut found = false;
                'outer: for x0 in DOM {
                    for x1 in DOM {
                        for x2 in DOM {
                            let mut env = [x0, x1, x2];
                            if db.eval(f, &mut env) {
                                found = true;
                                break 'outer;
                            }
                        }
                    }
                }
                if found {
                    return true;
                }
            }
        }
    }
    false
}

// Comparison semantics: the solver searches over *its own* domains
// (constants + witnesses + fresh elements), which may be richer than DOM,
// so solver-SAT with brute-UNSAT is legitimate. The sharp direction is
// the other one: solver-UNSAT with max_fresh ≥ 2 covers every database
// over a 2-element domain, so brute force must agree.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn solver_agrees_with_brute_force(tiny in arb_tiny(3)) {
        // Anchor the comparison-against-constant so '1' is in every
        // domain the solver builds, matching DOM's shape.
        let f = to_formula(&tiny);
        let brute = brute_force_sat(&tiny);
        let solver = BoundedSolver::with_max_fresh(3);
        let out = solver.check(&f).expect("solver runs");
        match out {
            SatOutcome::Sat(ref model) => {
                // Solver SAT must be a genuine model: verify the witness
                // by replaying the formula over the model's relations.
                // (Indirect check: brute force over DOM agrees whenever
                // the solver's domain is no richer than DOM; since the
                // solver can use bigger domains, SAT here only requires
                // that *some* database satisfies the sentence — which
                // brute force over DOM may miss. So we assert the weaker
                // direction plus model well-formedness.)
                for (pred, tuples) in &model.relations {
                    let arity = match pred.name.as_str() {
                        "p" | "q" => 1,
                        "r" => 2,
                        other => panic!("unexpected predicate {other}"),
                    };
                    for t in tuples {
                        prop_assert_eq!(t.arity(), arity);
                        for v in t.iter() {
                            prop_assert!(model.domain.contains(v));
                        }
                    }
                }
                // If brute force found it too, consistent; if not, the
                // solver used a richer domain — acceptable (not a bug).
            }
            SatOutcome::Unsat { .. } => {
                // Bounded-UNSAT with max_fresh=3 covers every database
                // over a 2-element domain: brute force must agree.
                prop_assert!(!brute,
                    "solver said UNSAT but a DOM-database satisfies: {f}");
            }
        }
    }

    /// The solver is deterministic: same sentence, same outcome.
    #[test]
    fn solver_is_deterministic(tiny in arb_tiny(3)) {
        let f = to_formula(&tiny);
        let solver = BoundedSolver::with_max_fresh(2);
        let a = solver.check(&f).unwrap().is_sat();
        let b = solver.check(&f).unwrap().is_sat();
        prop_assert_eq!(a, b);
    }

    /// Negation flips SAT for *closed* sentences only when the sentence
    /// is valid/unsat — at minimum, f ∧ ¬f is always UNSAT.
    #[test]
    fn conjunction_with_negation_unsat(tiny in arb_tiny(2)) {
        let f = to_formula(&tiny);
        // Close free variables universally on one side, existentially on
        // the other, so f ∧ ¬f is genuinely contradictory only when
        // closed consistently: use the solver's own existential closure
        // by conjoining before closing.
        let free: Vec<String> = f.free_vars().into_iter().collect();
        let closed = if free.is_empty() {
            f.clone()
        } else {
            Formula::exists(free, f.clone())
        };
        let contradiction = Formula::and(vec![closed.clone(), Formula::not(closed)]);
        let solver = BoundedSolver::with_max_fresh(2);
        prop_assert!(!solver.check(&contradiction).unwrap().is_sat());
    }
}
