//! Top-level bounded solver: domain iteration, grounding, SAT.

use crate::cnf::PNode;
use crate::domain::{build_domain, DomainConfig};
use crate::ground::{ground, GroundError};
use crate::sat::solve;
use birds_datalog::PredRef;
use birds_fol::{miniscope, Formula};
use birds_store::{Tuple, Value};
use std::collections::BTreeMap;
use std::fmt;

/// A finite model: the domain used and the extension of every relation
/// mentioned by the sentence (absent tuples are false).
#[derive(Debug, Clone, Default)]
pub struct Model {
    /// The domain elements.
    pub domain: Vec<Value>,
    /// True ground atoms per predicate.
    pub relations: BTreeMap<PredRef, Vec<Tuple>>,
}

impl fmt::Display for Model {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "domain: {:?}",
            self.domain
                .iter()
                .map(|v| v.to_string())
                .collect::<Vec<_>>()
        )?;
        for (p, tuples) in &self.relations {
            write!(f, "  {p} = {{")?;
            for (i, t) in tuples.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{t}")?;
            }
            writeln!(f, "}}")?;
        }
        Ok(())
    }
}

/// Outcome of a bounded satisfiability check.
#[derive(Debug, Clone)]
pub enum SatOutcome {
    /// A finite model was found: the sentence is satisfiable.
    Sat(Model),
    /// No model exists with up to `max_fresh` fresh domain elements.
    /// (Complete up to the bound; see the crate docs.)
    Unsat {
        /// The largest fresh-element count tried.
        max_fresh: usize,
    },
}

impl SatOutcome {
    /// `true` for the `Sat` variant.
    pub fn is_sat(&self) -> bool {
        matches!(self, SatOutcome::Sat(_))
    }
}

/// Solver failure (resource limits).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SolverError {
    /// Grounding exceeded the node budget.
    BudgetExceeded,
    /// The constructed domain exceeded `max_total`.
    DomainTooLarge { size: usize, max: usize },
}

impl fmt::Display for SolverError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolverError::BudgetExceeded => write!(f, "solver grounding budget exceeded"),
            SolverError::DomainTooLarge { size, max } => {
                write!(
                    f,
                    "domain of size {size} exceeds the configured maximum {max}"
                )
            }
        }
    }
}

impl std::error::Error for SolverError {}

/// The bounded model finder. See the crate docs for the method.
#[derive(Debug, Clone)]
pub struct BoundedSolver {
    /// Domain construction parameters.
    pub config: DomainConfig,
    /// Grounding node budget per (sentence, domain) attempt.
    pub budget: usize,
}

impl Default for BoundedSolver {
    fn default() -> Self {
        BoundedSolver {
            config: DomainConfig::default(),
            budget: 4_000_000,
        }
    }
}

impl BoundedSolver {
    /// Solver with a specific fresh-element bound.
    pub fn with_max_fresh(max_fresh: usize) -> Self {
        BoundedSolver {
            config: DomainConfig {
                max_fresh,
                ..DomainConfig::default()
            },
            ..BoundedSolver::default()
        }
    }

    /// Check satisfiability of `sentence`. Free variables are closed
    /// existentially. Iterates fresh-element counts `0..=max_fresh`
    /// (satisfiability over finite domains is not monotone in the domain
    /// size, so every size is tried).
    pub fn check(&self, sentence: &Formula) -> Result<SatOutcome, SolverError> {
        let free: Vec<String> = sentence.free_vars().into_iter().collect();
        let closed = if free.is_empty() {
            sentence.clone()
        } else {
            Formula::exists(free, sentence.clone())
        };
        // Miniscoping keeps the grounder's quantifier expansion to the
        // product of small variable-connected components.
        let closed = miniscope(&closed);

        // Set BIRDS_SOLVER_DEBUG=1 to trace per-domain grounding/SAT cost.
        let debug = std::env::var_os("BIRDS_SOLVER_DEBUG").is_some();
        for n_fresh in 0..=self.config.max_fresh {
            let domain = build_domain(&closed, n_fresh);
            if domain.is_empty() {
                continue;
            }
            if domain.len() > self.config.max_total {
                return Err(SolverError::DomainTooLarge {
                    size: domain.len(),
                    max: self.config.max_total,
                });
            }
            let t_ground = std::time::Instant::now();
            let grounded = ground(&closed, &domain, self.budget).map_err(|e| match e {
                GroundError::BudgetExceeded => SolverError::BudgetExceeded,
                GroundError::UnboundVariable(v) => {
                    unreachable!("sentence was closed but {v} is unbound")
                }
            })?;
            if debug {
                eprintln!(
                    "[solver] fresh={n_fresh} |D|={} size={} arena={} atoms={} ground={:?}",
                    domain.len(),
                    closed.size(),
                    grounded.arena.len(),
                    grounded.atoms.len(),
                    t_ground.elapsed()
                );
            }
            // Fast paths on constant roots.
            match grounded.arena.node(grounded.root) {
                PNode::True => {
                    return Ok(SatOutcome::Sat(Model {
                        domain,
                        relations: BTreeMap::new(),
                    }))
                }
                PNode::False => continue,
                _ => {}
            }
            let t_sat = std::time::Instant::now();
            let (cnf, atom_vars) = grounded
                .arena
                .tseitin(grounded.root, grounded.atoms.len() as u32);
            let solved = solve(&cnf);
            if debug {
                eprintln!(
                    "[solver]   vars={} clauses={} sat={} in {:?}",
                    cnf.num_vars,
                    cnf.clauses.len(),
                    solved.is_some(),
                    t_sat.elapsed()
                );
            }
            if let Some(assignment) = solved {
                let mut relations: BTreeMap<PredRef, Vec<Tuple>> = BTreeMap::new();
                for (i, (pred, vals)) in grounded.atoms.iter().enumerate() {
                    if assignment[atom_vars[i]] {
                        relations
                            .entry(pred.clone())
                            .or_default()
                            .push(Tuple::new(vals.clone()));
                    }
                }
                return Ok(SatOutcome::Sat(Model { domain, relations }));
            }
        }
        Ok(SatOutcome::Unsat {
            max_fresh: self.config.max_fresh,
        })
    }

    /// Check satisfiability of `sentence ∧ ⋀ᵢ ¬assumptionᵢ` — i.e. of the
    /// sentence *under* a set of constraints, each given as the (closed)
    /// violation sentence of a constraint rule. This is the "satisfiable
    /// under Σ" of paper Theorem 3.2.
    pub fn check_under(
        &self,
        sentence: &Formula,
        constraint_violations: &[Formula],
    ) -> Result<SatOutcome, SolverError> {
        // ∃-close the query *first*, then conjoin the negated constraint
        // sentences (which are closed).
        let free: Vec<String> = sentence.free_vars().into_iter().collect();
        let closed_query = if free.is_empty() {
            sentence.clone()
        } else {
            Formula::exists(free, sentence.clone())
        };
        let mut parts = vec![closed_query];
        for c in constraint_violations {
            parts.push(Formula::not(c.clone()));
        }
        self.check(&Formula::and(parts))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use birds_datalog::{CmpOp, Term};

    fn rel(name: &str, vars: &[&str]) -> Formula {
        Formula::Rel(
            PredRef::plain(name),
            vars.iter().map(|v| Term::var(*v)).collect(),
        )
    }

    fn solver() -> BoundedSolver {
        BoundedSolver::default()
    }

    #[test]
    fn simple_sat_with_model() {
        let f = Formula::exists(vec!["X".into()], rel("r", &["X"]));
        match solver().check(&f).unwrap() {
            SatOutcome::Sat(m) => {
                let tuples = &m.relations[&PredRef::plain("r")];
                assert_eq!(tuples.len(), 1);
            }
            SatOutcome::Unsat { .. } => panic!("expected SAT"),
        }
    }

    #[test]
    fn contradiction_is_unsat() {
        let f = Formula::exists(
            vec!["X".into()],
            Formula::and(vec![rel("r", &["X"]), Formula::not(rel("r", &["X"]))]),
        );
        assert!(!solver().check(&f).unwrap().is_sat());
    }

    #[test]
    fn integer_discreteness_unsat() {
        // ∃X r(X) ∧ X > 2 ∧ X < 3 over integers: UNSAT
        let f = Formula::exists(
            vec!["X".into()],
            Formula::and(vec![
                rel("r", &["X"]),
                Formula::Cmp(CmpOp::Gt, Term::var("X"), Term::constant(2)),
                Formula::Cmp(CmpOp::Lt, Term::var("X"), Term::constant(3)),
            ]),
        );
        assert!(!solver().check(&f).unwrap().is_sat());
    }

    #[test]
    fn string_density_sat() {
        // ∃X r(X) ∧ X > 'a' ∧ X < 'b' over strings: SAT (dense)
        let f = Formula::exists(
            vec!["X".into()],
            Formula::and(vec![
                rel("r", &["X"]),
                Formula::Cmp(CmpOp::Gt, Term::var("X"), Term::Const("a".into())),
                Formula::Cmp(CmpOp::Lt, Term::var("X"), Term::Const("b".into())),
            ]),
        );
        assert!(solver().check(&f).unwrap().is_sat());
    }

    #[test]
    fn date_range_constraint_sat() {
        // The residents1962 constraint pattern: a birth date within 1962.
        let f = Formula::exists(
            vec!["B".into()],
            Formula::and(vec![
                rel("r", &["B"]),
                Formula::not(Formula::Cmp(
                    CmpOp::Lt,
                    Term::var("B"),
                    Term::Const("1962-01-01".into()),
                )),
                Formula::not(Formula::Cmp(
                    CmpOp::Gt,
                    Term::var("B"),
                    Term::Const("1962-12-31".into()),
                )),
            ]),
        );
        assert!(solver().check(&f).unwrap().is_sat());
    }

    #[test]
    fn union_steady_state_check_unsat() {
        // Example 4.1 core check: ∃Y (r1(Y) ∨ r2(Y)) ∧ ¬r1(Y) ∧ ¬r2(Y)
        let f = Formula::exists(
            vec!["Y".into()],
            Formula::and(vec![
                Formula::or(vec![rel("r1", &["Y"]), rel("r2", &["Y"])]),
                Formula::not(rel("r1", &["Y"])),
                Formula::not(rel("r2", &["Y"])),
            ]),
        );
        assert!(!solver().check(&f).unwrap().is_sat());
    }

    #[test]
    fn universally_quantified_implication() {
        // (∀X r(X)→s(X)) ∧ ∃X (r(X) ∧ ¬s(X)) is UNSAT.
        let f = Formula::and(vec![
            Formula::Forall(
                vec!["X".into()],
                Box::new(Formula::or(vec![
                    Formula::not(rel("r", &["X"])),
                    rel("s", &["X"]),
                ])),
            ),
            Formula::exists(
                vec!["X".into()],
                Formula::and(vec![rel("r", &["X"]), Formula::not(rel("s", &["X"]))]),
            ),
        ]);
        assert!(!solver().check(&f).unwrap().is_sat());
    }

    #[test]
    fn check_under_constraints() {
        // query: ∃X v(X) ∧ X > 2 ; constraint: ⊥ :- v(X), X > 2
        // (violation sentence ∃X v(X) ∧ X > 2). Under Σ the query is UNSAT.
        let q = Formula::exists(
            vec!["X".into()],
            Formula::and(vec![
                rel("v", &["X"]),
                Formula::Cmp(CmpOp::Gt, Term::var("X"), Term::constant(2)),
            ]),
        );
        let sigma = vec![q.clone()];
        assert!(solver().check(&q).unwrap().is_sat());
        assert!(!solver().check_under(&q, &sigma).unwrap().is_sat());
    }

    #[test]
    fn free_variables_are_closed_existentially() {
        let f = rel("r", &["X"]); // free X
        assert!(solver().check(&f).unwrap().is_sat());
    }

    #[test]
    fn equality_reasoning() {
        // ∃X,Y r(X) ∧ r(Y) ∧ ¬(X = Y) needs ≥ 2 domain elements: SAT with
        // fresh elements.
        let f = Formula::exists(
            vec!["X".into(), "Y".into()],
            Formula::and(vec![
                rel("r", &["X"]),
                rel("r", &["Y"]),
                Formula::not(Formula::eq(Term::var("X"), Term::var("Y"))),
            ]),
        );
        assert!(solver().check(&f).unwrap().is_sat());
    }

    #[test]
    fn three_distinct_elements_need_bound_three() {
        // pairwise-distinct triple: needs 3 fresh elements
        let distinct = |a: &str, b: &str| Formula::not(Formula::eq(Term::var(a), Term::var(b)));
        let f = Formula::exists(
            vec!["X".into(), "Y".into(), "Z".into()],
            Formula::and(vec![
                rel("r", &["X"]),
                rel("r", &["Y"]),
                rel("r", &["Z"]),
                distinct("X", "Y"),
                distinct("X", "Z"),
                distinct("Y", "Z"),
            ]),
        );
        assert!(!BoundedSolver::with_max_fresh(2).check(&f).unwrap().is_sat());
        assert!(BoundedSolver::with_max_fresh(3).check(&f).unwrap().is_sat());
    }
}
