//! Grounding: expand a first-order sentence over a finite domain into a
//! propositional DAG.
//!
//! Quantifiers expand to conjunctions/disjunctions over the domain;
//! comparisons and equalities between ground values evaluate concretely
//! (cross-sort comparisons are false, matching the typed-database
//! reading). The formula is first compiled into an *indexed* form —
//! variables become frame slots, domain values become `u8` indices, and
//! comparisons against the domain are precomputed — so the inner loop
//! never touches strings or heap values. Subformula results are memoized
//! on `(node, values of its free slots)`, so shared structure and
//! repeated quantifier bodies stay shared in the output DAG.

use crate::cnf::PropArena;
use birds_datalog::{CmpOp, PredRef, Term};
use birds_fol::Formula;
use birds_store::Value;
use std::collections::HashMap;
use std::fmt;

/// Grounding failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GroundError {
    /// The node budget was exhausted (formula × domain too large).
    BudgetExceeded,
    /// A free variable was not bound (callers must close sentences).
    UnboundVariable(String),
}

impl fmt::Display for GroundError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GroundError::BudgetExceeded => write!(f, "grounding budget exceeded"),
            GroundError::UnboundVariable(v) => write!(f, "unbound variable '{v}'"),
        }
    }
}

impl std::error::Error for GroundError {}

/// Result of grounding: the propositional arena, root node, and the ground
/// atom table.
pub struct Grounded {
    /// Hash-consed propositional DAG.
    pub arena: PropArena,
    /// Root node asserting the sentence.
    pub root: u32,
    /// Ground atoms in id order.
    pub atoms: Vec<(PredRef, Vec<Value>)>,
}

/// A term in the indexed formula: a variable slot or a domain index.
#[derive(Clone, Copy)]
enum ITerm {
    Slot(u16),
    Dom(u8),
}

/// Indexed formula node. Children index into `INode` arena.
enum INode {
    Rel(usize, Vec<ITerm>),
    /// Precomputed truth table over the domain for a 1-variable
    /// comparison, or constant result.
    CmpSlot {
        slot: u16,
        table: Vec<bool>,
    },
    /// slot-slot equality / comparison: precomputed d×d table.
    CmpSlots {
        a: u16,
        b: u16,
        table: Vec<bool>, // row-major d*d
    },
    Const(bool),
    Not(u32),
    And(Vec<u32>),
    Or(Vec<u32>),
    Exists(Vec<u16>, u32),
    Forall(Vec<u16>, u32),
}

struct Compiled {
    nodes: Vec<INode>,
    /// Free slots of each node, sorted.
    free: Vec<Vec<u16>>,
    preds: Vec<PredRef>,
    root: u32,
    num_slots: usize,
}

/// Compile a closed formula over a concrete domain into indexed form.
fn compile(sentence: &Formula, domain: &[Value]) -> Result<Compiled, GroundError> {
    struct Ctx<'a> {
        domain: &'a [Value],
        dom_index: HashMap<&'a Value, u8>,
        slots: HashMap<String, u16>,
        preds: Vec<PredRef>,
        pred_index: HashMap<PredRef, usize>,
        nodes: Vec<INode>,
        free: Vec<Vec<u16>>,
    }

    impl<'a> Ctx<'a> {
        fn slot(&mut self, v: &str) -> u16 {
            if let Some(&s) = self.slots.get(v) {
                return s;
            }
            let s = self.slots.len() as u16;
            self.slots.insert(v.to_owned(), s);
            s
        }

        fn pred(&mut self, p: &PredRef) -> usize {
            if let Some(&i) = self.pred_index.get(p) {
                return i;
            }
            let i = self.preds.len();
            self.preds.push(p.clone());
            self.pred_index.insert(p.clone(), i);
            i
        }

        fn push(&mut self, node: INode, free: Vec<u16>) -> u32 {
            self.nodes.push(node);
            self.free.push(free);
            (self.nodes.len() - 1) as u32
        }

        fn term(&mut self, t: &Term) -> Result<ITerm, GroundError> {
            match t {
                Term::Var(v) => Ok(ITerm::Slot(self.slot(v))),
                Term::Const(c) => match self.dom_index.get(c) {
                    Some(&d) => Ok(ITerm::Dom(d)),
                    // A constant outside the domain can never equal any
                    // domain element; represent with a sentinel the
                    // evaluator treats as unequal-to-everything.
                    None => Ok(ITerm::Dom(u8::MAX)),
                },
            }
        }

        fn cmp_value(&self, op: CmpOp, a: &Value, b: &Value) -> bool {
            op.eval(a, b).unwrap_or(false)
        }

        fn go(&mut self, f: &Formula) -> Result<u32, GroundError> {
            let d = self.domain.len();
            Ok(match f {
                Formula::Rel(p, terms) => {
                    let pid = self.pred(p);
                    let its: Result<Vec<ITerm>, _> = terms.iter().map(|t| self.term(t)).collect();
                    let its = its?;
                    let mut free: Vec<u16> = its
                        .iter()
                        .filter_map(|t| match t {
                            ITerm::Slot(s) => Some(*s),
                            _ => None,
                        })
                        .collect();
                    free.sort_unstable();
                    free.dedup();
                    self.push(INode::Rel(pid, its), free)
                }
                Formula::Cmp(op, a, b) => self.compile_cmp(*op, a, b)?,
                Formula::True => self.push(INode::Const(true), vec![]),
                Formula::False => self.push(INode::Const(false), vec![]),
                Formula::Not(inner) => {
                    let i = self.go(inner)?;
                    let free = self.free[i as usize].clone();
                    self.push(INode::Not(i), free)
                }
                Formula::And(fs) | Formula::Or(fs) => {
                    let ids: Result<Vec<u32>, _> = fs.iter().map(|g| self.go(g)).collect();
                    let ids = ids?;
                    let mut free: Vec<u16> = ids
                        .iter()
                        .flat_map(|&i| self.free[i as usize].iter().copied())
                        .collect();
                    free.sort_unstable();
                    free.dedup();
                    let node = if matches!(f, Formula::And(_)) {
                        INode::And(ids)
                    } else {
                        INode::Or(ids)
                    };
                    self.push(node, free)
                }
                Formula::Exists(vars, inner) | Formula::Forall(vars, inner) => {
                    let slots: Vec<u16> = vars.iter().map(|v| self.slot(v)).collect();
                    let i = self.go(inner)?;
                    let free: Vec<u16> = self.free[i as usize]
                        .iter()
                        .copied()
                        .filter(|s| !slots.contains(s))
                        .collect();
                    let node = if matches!(f, Formula::Exists(..)) {
                        INode::Exists(slots, i)
                    } else {
                        INode::Forall(slots, i)
                    };
                    self.push(node, free)
                }
            })
            .inspect(|_id| {
                let _ = d;
            })
        }

        fn compile_cmp(&mut self, op: CmpOp, a: &Term, b: &Term) -> Result<u32, GroundError> {
            let d = self.domain.len();
            match (a, b) {
                (Term::Const(ca), Term::Const(cb)) => {
                    let v = self.cmp_value(op, ca, cb);
                    Ok(self.push(INode::Const(v), vec![]))
                }
                (Term::Var(va), Term::Const(cb)) => {
                    let slot = self.slot(va);
                    let table: Vec<bool> = (0..d)
                        .map(|i| self.cmp_value(op, &self.domain[i], cb))
                        .collect();
                    Ok(self.push(INode::CmpSlot { slot, table }, vec![slot]))
                }
                (Term::Const(ca), Term::Var(vb)) => {
                    let slot = self.slot(vb);
                    let table: Vec<bool> = (0..d)
                        .map(|i| self.cmp_value(op, ca, &self.domain[i]))
                        .collect();
                    Ok(self.push(INode::CmpSlot { slot, table }, vec![slot]))
                }
                (Term::Var(va), Term::Var(vb)) => {
                    let sa = self.slot(va);
                    let sb = self.slot(vb);
                    let mut table = Vec::with_capacity(d * d);
                    for i in 0..d {
                        for j in 0..d {
                            table.push(self.cmp_value(op, &self.domain[i], &self.domain[j]));
                        }
                    }
                    let mut free = vec![sa, sb];
                    free.sort_unstable();
                    free.dedup();
                    Ok(self.push(
                        INode::CmpSlots {
                            a: sa,
                            b: sb,
                            table,
                        },
                        free,
                    ))
                }
            }
        }
    }

    let mut ctx = Ctx {
        domain,
        dom_index: domain
            .iter()
            .enumerate()
            .map(|(i, v)| (v, i as u8))
            .collect(),
        slots: HashMap::new(),
        preds: Vec::new(),
        pred_index: HashMap::new(),
        nodes: Vec::new(),
        free: Vec::new(),
    };
    let root = ctx.go(sentence)?;
    if let Some(s) = ctx.free[root as usize].first() {
        let name = ctx
            .slots
            .iter()
            .find(|(_, &v)| v == *s)
            .map(|(k, _)| k.clone())
            .unwrap_or_default();
        return Err(GroundError::UnboundVariable(name));
    }
    Ok(Compiled {
        num_slots: ctx.slots.len(),
        nodes: ctx.nodes,
        free: ctx.free,
        preds: ctx.preds,
        root,
    })
}

/// Ground `sentence` (closed formula) over `domain`.
pub fn ground(
    sentence: &Formula,
    domain: &[Value],
    budget: usize,
) -> Result<Grounded, GroundError> {
    debug_assert!(domain.len() < u8::MAX as usize, "domain fits u8 indices");
    let compiled = compile(sentence, domain)?;
    let mut g = Grounder {
        compiled: &compiled,
        domain,
        arena: PropArena::new(),
        atom_ids: HashMap::new(),
        atoms: Vec::new(),
        memo: HashMap::new(),
        env: vec![u8::MAX; compiled.num_slots.max(1)],
        budget,
    };
    let root = g.go(compiled.root)?;
    Ok(Grounded {
        arena: g.arena,
        root,
        atoms: g.atoms,
    })
}

struct Grounder<'a> {
    compiled: &'a Compiled,
    domain: &'a [Value],
    arena: PropArena,
    atom_ids: HashMap<(usize, Vec<u8>), u32>,
    atoms: Vec<(PredRef, Vec<Value>)>,
    /// Memo keyed by node id + values of its free slots.
    memo: HashMap<(u32, Vec<u8>), u32>,
    /// Current variable frame (domain indices; MAX = unbound).
    env: Vec<u8>,
    budget: usize,
}

impl Grounder<'_> {
    fn atom_var(&mut self, pred_id: usize, vals: Vec<u8>) -> u32 {
        if let Some(&id) = self.atom_ids.get(&(pred_id, vals.clone())) {
            return self.arena.mk_var(id);
        }
        let id = self.atoms.len() as u32;
        self.atoms.push((
            self.compiled.preds[pred_id].clone(),
            vals.iter().map(|&i| self.domain[i as usize]).collect(),
        ));
        self.atom_ids.insert((pred_id, vals), id);
        self.arena.mk_var(id)
    }

    fn go(&mut self, node: u32) -> Result<u32, GroundError> {
        if self.budget == 0 {
            return Err(GroundError::BudgetExceeded);
        }
        self.budget -= 1;

        let free = &self.compiled.free[node as usize];
        let env_key: Vec<u8> = free.iter().map(|&s| self.env[s as usize]).collect();
        if let Some(&id) = self.memo.get(&(node, env_key.clone())) {
            return Ok(id);
        }

        let result = match &self.compiled.nodes[node as usize] {
            INode::Rel(pid, terms) => {
                let mut vals = Vec::with_capacity(terms.len());
                let mut out_of_domain = false;
                for t in terms {
                    match t {
                        ITerm::Slot(s) => vals.push(self.env[*s as usize]),
                        ITerm::Dom(d) => {
                            if *d == u8::MAX {
                                out_of_domain = true;
                                break;
                            }
                            vals.push(*d);
                        }
                    }
                }
                if out_of_domain {
                    // An atom mentioning a constant outside the domain can
                    // never hold in a model over this domain.
                    self.arena.mk_false()
                } else {
                    self.atom_var(*pid, vals)
                }
            }
            INode::CmpSlot { slot, table } => {
                let v = self.env[*slot as usize] as usize;
                if v < table.len() && table[v] {
                    self.arena.mk_true()
                } else {
                    self.arena.mk_false()
                }
            }
            INode::CmpSlots { a, b, table } => {
                let d = self.domain.len();
                let i = self.env[*a as usize] as usize;
                let j = self.env[*b as usize] as usize;
                if i < d && j < d && table[i * d + j] {
                    self.arena.mk_true()
                } else {
                    self.arena.mk_false()
                }
            }
            INode::Const(true) => self.arena.mk_true(),
            INode::Const(false) => self.arena.mk_false(),
            INode::Not(inner) => {
                let i = self.go(*inner)?;
                self.arena.mk_not(i)
            }
            INode::And(children) => {
                let children = children.clone();
                let mut ids = Vec::with_capacity(children.len());
                for c in children {
                    let id = self.go(c)?;
                    // short-circuit on ⊥
                    if self.arena.node(id) == &crate::cnf::PNode::False {
                        ids.clear();
                        ids.push(id);
                        break;
                    }
                    ids.push(id);
                }
                self.arena.mk_and(ids)
            }
            INode::Or(children) => {
                let children = children.clone();
                let mut ids = Vec::with_capacity(children.len());
                for c in children {
                    let id = self.go(c)?;
                    if self.arena.node(id) == &crate::cnf::PNode::True {
                        ids.clear();
                        ids.push(id);
                        break;
                    }
                    ids.push(id);
                }
                self.arena.mk_or(ids)
            }
            INode::Exists(slots, inner) => {
                let ids = self.expand(slots.clone(), *inner, false)?;
                self.arena.mk_or(ids)
            }
            INode::Forall(slots, inner) => {
                let ids = self.expand(slots.clone(), *inner, true)?;
                self.arena.mk_and(ids)
            }
        };
        self.memo.insert((node, env_key), result);
        Ok(result)
    }

    /// All groundings of `inner` with `slots` ranging over the domain.
    /// Short-circuits: ∃ stops at the first ⊤ disjunct, ∀ at the first ⊥.
    fn expand(
        &mut self,
        slots: Vec<u16>,
        inner: u32,
        is_forall: bool,
    ) -> Result<Vec<u32>, GroundError> {
        let n = slots.len();
        let d = self.domain.len() as u8;
        if d == 0 {
            return Ok(vec![]);
        }
        let saved: Vec<u8> = slots.iter().map(|&s| self.env[s as usize]).collect();
        let mut ids = Vec::new();
        let mut idx = vec![0u8; n];
        'outer: loop {
            for (k, &s) in slots.iter().enumerate() {
                self.env[s as usize] = idx[k];
            }
            let id = self.go(inner)?;
            let node = self.arena.node(id);
            let stop = if is_forall {
                node == &crate::cnf::PNode::False
            } else {
                node == &crate::cnf::PNode::True
            };
            if stop {
                ids.clear();
                ids.push(id);
                break 'outer;
            }
            ids.push(id);
            // advance odometer
            let mut carry = true;
            for slot in idx.iter_mut() {
                *slot += 1;
                if *slot < d {
                    carry = false;
                    break;
                }
                *slot = 0;
            }
            if carry {
                break;
            }
        }
        for (k, &s) in slots.iter().enumerate() {
            self.env[s as usize] = saved[k];
        }
        Ok(ids)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cnf::PNode;
    use birds_datalog::CmpOp;

    fn rel(name: &str, vars: &[&str]) -> Formula {
        Formula::Rel(
            PredRef::plain(name),
            vars.iter().map(|v| Term::var(*v)).collect(),
        )
    }

    #[test]
    fn ground_exists_over_domain() {
        let f = Formula::exists(vec!["X".into()], rel("r", &["X"]));
        let domain = vec![Value::int(1), Value::int(2)];
        let g = ground(&f, &domain, 10_000).unwrap();
        // root = r(1) ∨ r(2): an Or of two atom vars
        match g.arena.node(g.root) {
            PNode::Or(ids) => assert_eq!(ids.len(), 2),
            other => panic!("expected Or, got {other:?}"),
        }
        assert_eq!(g.atoms.len(), 2);
    }

    #[test]
    fn comparisons_evaluate_concretely() {
        // ∃X (X > 2 ∧ X < 3) over ints {2,3}: no witness -> False
        let f = Formula::exists(
            vec!["X".into()],
            Formula::and(vec![
                Formula::Cmp(CmpOp::Gt, Term::var("X"), Term::constant(2)),
                Formula::Cmp(CmpOp::Lt, Term::var("X"), Term::constant(3)),
            ]),
        );
        let domain = vec![Value::int(1), Value::int(2), Value::int(3), Value::int(4)];
        let g = ground(&f, &domain, 10_000).unwrap();
        assert_eq!(g.arena.node(g.root), &PNode::False);
    }

    #[test]
    fn variable_variable_comparison_grounds() {
        // ∃X,Y r(X) ∧ r(Y) ∧ X < Y over {1,2}: satisfiable shape (an Or
        // with a surviving branch).
        let f = Formula::exists(
            vec!["X".into(), "Y".into()],
            Formula::and(vec![
                rel("r", &["X"]),
                rel("r", &["Y"]),
                Formula::Cmp(CmpOp::Lt, Term::var("X"), Term::var("Y")),
            ]),
        );
        let domain = vec![Value::int(1), Value::int(2)];
        let g = ground(&f, &domain, 10_000).unwrap();
        assert_ne!(g.arena.node(g.root), &PNode::False);
    }

    #[test]
    fn cross_sort_equality_is_false() {
        let f = Formula::eq(Term::constant(1), Term::constant("1"));
        let g = ground(&f, &[Value::int(1)], 100).unwrap();
        assert_eq!(g.arena.node(g.root), &PNode::False);
    }

    #[test]
    fn out_of_domain_constant_atom_is_false() {
        // r('zzz') where 'zzz' is not in the domain.
        let f = Formula::Rel(PredRef::plain("r"), vec![Term::Const("zzz".into())]);
        let g = ground(&f, &[Value::int(1)], 100).unwrap();
        assert_eq!(g.arena.node(g.root), &PNode::False);
    }

    #[test]
    fn empty_domain_quantifiers() {
        let ex = Formula::exists(vec!["X".into()], rel("r", &["X"]));
        let g = ground(&ex, &[], 100).unwrap();
        assert_eq!(g.arena.node(g.root), &PNode::False);
        let fa = Formula::Forall(vec!["X".into()], Box::new(rel("r", &["X"])));
        let g = ground(&fa, &[], 100).unwrap();
        assert_eq!(g.arena.node(g.root), &PNode::True);
    }

    #[test]
    fn memoization_shares_repeated_subformulas() {
        // ∃X (r(X) ∧ r(X)): both conjuncts are the same grounding
        let shared = rel("r", &["X"]);
        let f = Formula::Exists(
            vec!["X".into()],
            Box::new(Formula::And(vec![shared.clone(), shared])),
        );
        let domain = vec![Value::int(1)];
        let g = ground(&f, &domain, 100).unwrap();
        // And([a,a]) dedupes to a: root is the single atom var
        assert!(matches!(g.arena.node(g.root), PNode::Var(_)));
    }

    #[test]
    fn unbound_variable_detected() {
        let f = rel("r", &["X"]); // not closed
        assert!(matches!(
            ground(&f, &[Value::int(1)], 100),
            Err(GroundError::UnboundVariable(_))
        ));
    }

    #[test]
    fn budget_enforced() {
        let f = Formula::exists(
            vec!["X".into(), "Y".into(), "Z".into()],
            Formula::and(vec![rel("r", &["X", "Y"]), rel("r", &["Y", "Z"])]),
        );
        let domain: Vec<Value> = (0..10).map(Value::int).collect();
        assert!(matches!(
            ground(&f, &domain, 10),
            Err(GroundError::BudgetExceeded)
        ));
    }

    #[test]
    fn forall_short_circuits_on_false() {
        // ∀X ⊥-equivalent body: grounding must not expand the whole
        // domain product (budget would blow otherwise).
        let f = Formula::Forall(
            vec!["X".into(), "Y".into(), "Z".into(), "W".into()],
            Box::new(Formula::False),
        );
        let domain: Vec<Value> = (0..20).map(Value::int).collect();
        // 20^4 = 160k combos; budget 1000 suffices thanks to the
        // short-circuit.
        let g = ground(&f, &domain, 1000).unwrap();
        assert_eq!(g.arena.node(g.root), &PNode::False);
    }
}
