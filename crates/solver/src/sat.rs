//! A small CDCL SAT solver: two-watched-literal propagation, first-UIP
//! clause learning, VSIDS-style activity decisions, phase saving, and Luby
//! restarts.
//!
//! The grounder produces instances with many structurally irrelevant
//! variables (ground atoms that only occur in concretely-evaluated
//! subformulas). Chronological-backtracking DPLL is exponential in those,
//! so conflict-driven learning with non-chronological backjumping is not a
//! luxury here — it is what keeps validation inside the milliseconds the
//! paper reports for Z3.
//!
//! Clauses are vectors of non-zero integers (DIMACS convention: positive
//! literal `v+1`, negative `-(v+1)` for variable index `v`).

/// A CNF instance.
#[derive(Debug, Clone, Default)]
pub struct Cnf {
    /// Number of variables (indices `0..num_vars`).
    pub num_vars: usize,
    /// Clauses of DIMACS-style literals.
    pub clauses: Vec<Vec<i32>>,
}

impl Cnf {
    /// Add a clause; an empty clause makes the instance trivially UNSAT.
    pub fn add_clause(&mut self, lits: Vec<i32>) {
        debug_assert!(lits.iter().all(|&l| l != 0));
        self.clauses.push(lits);
    }

    /// Allocate a fresh variable, returning its index.
    pub fn fresh_var(&mut self) -> usize {
        let v = self.num_vars;
        self.num_vars += 1;
        v
    }
}

/// Internal literal encoding: `var << 1 | sign` (sign 1 = negated).
type Lit = u32;

#[inline]
fn lit_from_dimacs(l: i32) -> Lit {
    let v = (l.unsigned_abs() - 1) << 1;
    if l < 0 {
        v | 1
    } else {
        v
    }
}

#[inline]
fn lit_var(l: Lit) -> usize {
    (l >> 1) as usize
}

#[inline]
fn lit_neg(l: Lit) -> Lit {
    l ^ 1
}

#[derive(Clone, Copy, PartialEq)]
enum Val {
    Unset,
    True,
    False,
}

#[inline]
fn lit_value(assign: &[Val], l: Lit) -> Val {
    match (assign[lit_var(l)], l & 1) {
        (Val::Unset, _) => Val::Unset,
        (v, 0) => v,
        (Val::True, _) => Val::False,
        (Val::False, _) => Val::True,
    }
}

const NO_REASON: u32 = u32::MAX;

/// Max-heap entry for the VSIDS order: activity at push time + variable.
/// Stale entries (re-bumped or re-assigned variables) are skipped lazily
/// at pop time, MiniSat-style.
#[derive(PartialEq)]
struct OrderEntry(f64, usize);

impl Eq for OrderEntry {}

impl PartialOrd for OrderEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrderEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0
            .partial_cmp(&other.0)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(self.1.cmp(&other.1))
    }
}

struct Solver {
    clauses: Vec<Vec<Lit>>,
    /// For each literal, the clause indices watching it.
    watches: Vec<Vec<u32>>,
    assign: Vec<Val>,
    /// Decision level of each assigned variable.
    level: Vec<u32>,
    /// Clause index that implied each variable (NO_REASON for decisions).
    reason: Vec<u32>,
    trail: Vec<Lit>,
    /// Trail indices where each decision level starts.
    trail_lim: Vec<usize>,
    /// Propagation queue head into the trail.
    qhead: usize,
    /// VSIDS activity per variable.
    activity: Vec<f64>,
    var_inc: f64,
    /// Saved phases for decision polarity.
    phase: Vec<bool>,
    /// Seen marker reused by conflict analysis.
    seen: Vec<bool>,
    /// VSIDS decision order (lazy max-heap over activities).
    order: std::collections::BinaryHeap<OrderEntry>,
    conflicts: u64,
}

impl Solver {
    fn new(num_vars: usize) -> Self {
        Solver {
            clauses: Vec::new(),
            watches: vec![Vec::new(); num_vars * 2],
            assign: vec![Val::Unset; num_vars],
            level: vec![0; num_vars],
            reason: vec![NO_REASON; num_vars],
            trail: Vec::new(),
            trail_lim: Vec::new(),
            qhead: 0,
            activity: vec![0.0; num_vars],
            var_inc: 1.0,
            phase: vec![false; num_vars],
            seen: vec![false; num_vars],
            order: (0..num_vars).map(|v| OrderEntry(0.0, v)).collect(),
            conflicts: 0,
        }
    }

    fn decision_level(&self) -> u32 {
        self.trail_lim.len() as u32
    }

    /// Add a clause during setup. Returns `false` on immediate conflict.
    fn add_clause(&mut self, mut lits: Vec<Lit>) -> bool {
        lits.sort_unstable();
        lits.dedup();
        // Tautology (l and ¬l both present)?
        if lits
            .windows(2)
            .any(|w| w[0] == lit_neg(w[1]) || w[1] == lit_neg(w[0]))
        {
            return true;
        }
        match lits.len() {
            0 => false,
            1 => match lit_value(&self.assign, lits[0]) {
                Val::False => false,
                Val::True => true,
                Val::Unset => self.enqueue(lits[0], NO_REASON),
            },
            _ => {
                let ci = self.clauses.len() as u32;
                self.watches[lits[0] as usize].push(ci);
                self.watches[lits[1] as usize].push(ci);
                self.clauses.push(lits);
                true
            }
        }
    }

    /// Assign literal true. Returns false if it contradicts the current
    /// assignment.
    fn enqueue(&mut self, l: Lit, reason: u32) -> bool {
        match lit_value(&self.assign, l) {
            Val::True => true,
            Val::False => false,
            Val::Unset => {
                let v = lit_var(l);
                self.assign[v] = if l & 1 == 0 { Val::True } else { Val::False };
                self.level[v] = self.decision_level();
                self.reason[v] = reason;
                self.trail.push(l);
                true
            }
        }
    }

    /// Two-watched-literal unit propagation. Returns a conflicting clause
    /// index, or `None`.
    fn propagate(&mut self) -> Option<u32> {
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            let false_lit = lit_neg(p);
            let mut ws = std::mem::take(&mut self.watches[false_lit as usize]);
            let mut i = 0;
            while i < ws.len() {
                let ci = ws[i];
                let clause = &mut self.clauses[ci as usize];
                // Normalize: watched literals are clause[0], clause[1].
                if clause[0] == false_lit {
                    clause.swap(0, 1);
                }
                debug_assert_eq!(clause[1], false_lit);
                let first = clause[0];
                if lit_value(&self.assign, first) == Val::True {
                    i += 1;
                    continue;
                }
                // Find a new literal to watch.
                let mut moved = false;
                for k in 2..clause.len() {
                    if lit_value(&self.assign, clause[k]) != Val::False {
                        clause.swap(1, k);
                        let new_watch = clause[1];
                        self.watches[new_watch as usize].push(ci);
                        ws.swap_remove(i);
                        moved = true;
                        break;
                    }
                }
                if moved {
                    continue;
                }
                // Unit or conflict.
                if !self.enqueue(first, ci) {
                    // `ws` still holds every clause not re-watched
                    // elsewhere (including `ci`): restore and bail.
                    self.watches[false_lit as usize] = ws;
                    return Some(ci);
                }
                i += 1;
            }
            self.watches[false_lit as usize] = ws;
        }
        None
    }

    fn bump(&mut self, v: usize) {
        self.activity[v] += self.var_inc;
        if self.activity[v] > 1e100 {
            for a in &mut self.activity {
                *a *= 1e-100;
            }
            self.var_inc *= 1e-100;
            // Heap keys went stale wholesale; rebuild.
            self.order = self
                .activity
                .iter()
                .enumerate()
                .map(|(v, &a)| OrderEntry(a, v))
                .collect();
            return;
        }
        self.order.push(OrderEntry(self.activity[v], v));
    }

    /// First-UIP conflict analysis. Returns the learned clause (asserting
    /// literal first) and the backjump level.
    fn analyze(&mut self, mut confl: u32) -> (Vec<Lit>, u32) {
        let mut learned: Vec<Lit> = vec![0]; // slot 0 for the asserting literal
        let mut counter = 0usize;
        let mut p: Option<Lit> = None;
        let mut index = self.trail.len();
        let current = self.decision_level();

        loop {
            let clause = std::mem::take(&mut self.clauses[confl as usize]);
            let start = if p.is_none() { 0 } else { 1 };
            for &q in &clause[start..] {
                let v = lit_var(q);
                if !self.seen[v] && self.level[v] > 0 {
                    self.seen[v] = true;
                    self.bump(v);
                    if self.level[v] >= current {
                        counter += 1;
                    } else {
                        learned.push(q);
                    }
                }
            }
            self.clauses[confl as usize] = clause;
            // Walk the trail backwards to the next marked literal.
            loop {
                index -= 1;
                let l = self.trail[index];
                if self.seen[lit_var(l)] {
                    p = Some(l);
                    break;
                }
            }
            let pv = lit_var(p.unwrap());
            self.seen[pv] = false;
            counter -= 1;
            if counter == 0 {
                learned[0] = lit_neg(p.unwrap());
                break;
            }
            confl = self.reason[pv];
            debug_assert_ne!(confl, NO_REASON);
        }
        // Basic clause minimization: drop a literal whose reason's
        // antecedents are all already in the clause (or level-0 facts).
        let original: Vec<Lit> = learned[1..].to_vec();
        let minimized: Vec<Lit> = original
            .iter()
            .copied()
            .filter(|&l| {
                let v = lit_var(l);
                let r = self.reason[v];
                if r == NO_REASON {
                    return true; // decision: keep
                }
                let redundant = self.clauses[r as usize].iter().skip(1).all(|&q| {
                    let qv = lit_var(q);
                    self.seen[qv] || self.level[qv] == 0
                });
                !redundant
            })
            .collect();
        learned.truncate(1);
        learned.extend(minimized);
        for &l in &original {
            self.seen[lit_var(l)] = false;
        }
        // Backjump level: highest level among learned[1..].
        let bj = learned[1..]
            .iter()
            .map(|&l| self.level[lit_var(l)])
            .max()
            .unwrap_or(0);
        // Put a literal of the backjump level into watch position 1.
        if learned.len() > 1 {
            let pos = learned[1..]
                .iter()
                .position(|&l| self.level[lit_var(l)] == bj)
                .unwrap()
                + 1;
            learned.swap(1, pos);
        }
        (learned, bj)
    }

    fn cancel_until(&mut self, level: u32) {
        while self.decision_level() > level {
            let lim = self.trail_lim.pop().unwrap();
            while self.trail.len() > lim {
                let l = self.trail.pop().unwrap();
                let v = lit_var(l);
                self.phase[v] = self.assign[v] == Val::True;
                self.assign[v] = Val::Unset;
                self.reason[v] = NO_REASON;
                self.order.push(OrderEntry(self.activity[v], v));
            }
        }
        self.qhead = self.trail.len();
    }

    fn pick_branch(&mut self) -> Option<Lit> {
        // Highest-activity unset variable from the lazy heap; stale
        // entries (assigned, or superseded by a later bump) are skipped.
        while let Some(OrderEntry(a, v)) = self.order.pop() {
            if self.assign[v] != Val::Unset || a < self.activity[v] {
                continue;
            }
            let lit = (v as u32) << 1;
            return Some(if self.phase[v] { lit } else { lit | 1 });
        }
        // Heap exhausted: any remaining unset variable (never bumped and
        // popped earlier while assigned).
        (0..self.assign.len())
            .find(|&v| self.assign[v] == Val::Unset)
            .map(|v| {
                let lit = (v as u32) << 1;
                if self.phase[v] {
                    lit
                } else {
                    lit | 1
                }
            })
    }

    /// Luby restart sequence 1 1 2 1 1 2 4 … (0-indexed; the classic
    /// MiniSat formulation).
    fn luby(mut x: u64) -> u64 {
        let (mut size, mut seq) = (1u64, 0u32);
        while size < x + 1 {
            seq += 1;
            size = 2 * size + 1;
        }
        while size - 1 != x {
            size = (size - 1) >> 1;
            seq -= 1;
            x %= size;
        }
        1u64 << seq
    }

    fn solve(&mut self) -> Option<Vec<bool>> {
        if self.propagate().is_some() {
            return None;
        }
        let mut restart_count = 0u64;
        let mut conflict_budget = 100 * Self::luby(restart_count);

        loop {
            if let Some(confl) = self.propagate() {
                self.conflicts += 1;
                if self.decision_level() == 0 {
                    return None;
                }
                let (learned, bj) = self.analyze(confl);
                self.cancel_until(bj);
                self.var_inc *= 1.0 / 0.95;
                if learned.len() == 1 {
                    let ok = self.enqueue(learned[0], NO_REASON);
                    debug_assert!(ok);
                } else {
                    let ci = self.clauses.len() as u32;
                    self.watches[learned[0] as usize].push(ci);
                    self.watches[learned[1] as usize].push(ci);
                    let assert_lit = learned[0];
                    self.clauses.push(learned);
                    let ok = self.enqueue(assert_lit, ci);
                    debug_assert!(ok);
                }
                if self.conflicts >= conflict_budget {
                    // Restart.
                    restart_count += 1;
                    conflict_budget = self.conflicts + 100 * Self::luby(restart_count);
                    self.cancel_until(0);
                }
            } else {
                match self.pick_branch() {
                    None => {
                        return Some(self.assign.iter().map(|&a| a == Val::True).collect());
                    }
                    Some(lit) => {
                        self.trail_lim.push(self.trail.len());
                        let ok = self.enqueue(lit, NO_REASON);
                        debug_assert!(ok);
                    }
                }
            }
        }
    }
}

/// Solve; `Some(model)` with one bool per variable, or `None` if UNSAT.
pub fn solve(cnf: &Cnf) -> Option<Vec<bool>> {
    if cnf.clauses.iter().any(|c| c.is_empty()) {
        return None;
    }
    let mut s = Solver::new(cnf.num_vars);
    for clause in &cnf.clauses {
        let lits: Vec<Lit> = clause.iter().map(|&l| lit_from_dimacs(l)).collect();
        if !s.add_clause(lits) {
            return None;
        }
    }
    s.solve()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_model(cnf: &Cnf, model: &[bool]) {
        for clause in &cnf.clauses {
            assert!(
                clause.iter().any(|&l| {
                    let v = (l.unsigned_abs() as usize) - 1;
                    (l > 0) == model[v]
                }),
                "clause {clause:?} unsatisfied by {model:?}"
            );
        }
    }

    #[test]
    fn trivial_sat() {
        let mut cnf = Cnf::default();
        let _a = cnf.fresh_var();
        cnf.add_clause(vec![1]);
        let m = solve(&cnf).unwrap();
        assert!(m[0]);
    }

    #[test]
    fn trivial_unsat() {
        let mut cnf = Cnf::default();
        let _a = cnf.fresh_var();
        cnf.add_clause(vec![1]);
        cnf.add_clause(vec![-1]);
        assert!(solve(&cnf).is_none());
    }

    #[test]
    fn empty_clause_is_unsat() {
        let mut cnf = Cnf::default();
        cnf.add_clause(vec![]);
        assert!(solve(&cnf).is_none());
    }

    #[test]
    fn no_clauses_is_sat() {
        let cnf = Cnf {
            num_vars: 3,
            ..Default::default()
        };
        assert!(solve(&cnf).is_some());
    }

    #[test]
    fn tautological_clause_ignored() {
        let mut cnf = Cnf {
            num_vars: 2,
            ..Default::default()
        };
        cnf.add_clause(vec![1, -1]);
        cnf.add_clause(vec![2]);
        let m = solve(&cnf).unwrap();
        assert!(m[1]);
    }

    #[test]
    fn chain_implication_propagates() {
        // a, a->b, b->c, c->d : all true
        let mut cnf = Cnf::default();
        for _ in 0..4 {
            cnf.fresh_var();
        }
        cnf.add_clause(vec![1]);
        cnf.add_clause(vec![-1, 2]);
        cnf.add_clause(vec![-2, 3]);
        cnf.add_clause(vec![-3, 4]);
        let m = solve(&cnf).unwrap();
        assert_eq!(m, vec![true; 4]);
        check_model(&cnf, &m);
    }

    #[test]
    fn requires_backtracking() {
        // ¬a∨c and ¬a∨¬c force ¬a; then a∨b and a∨¬b are contradictory.
        let mut cnf = Cnf::default();
        for _ in 0..3 {
            cnf.fresh_var();
        }
        cnf.add_clause(vec![1, 2]);
        cnf.add_clause(vec![1, -2]);
        cnf.add_clause(vec![-1, 3]);
        cnf.add_clause(vec![-1, -3]);
        assert!(solve(&cnf).is_none());
    }

    #[test]
    fn pigeonhole_3_into_2_unsat() {
        // pigeons p in {1,2,3}, holes h in {1,2}; var v(p,h) = 2*(p-1)+h
        let mut cnf = Cnf::default();
        for _ in 0..6 {
            cnf.fresh_var();
        }
        let v = |p: i32, h: i32| 2 * (p - 1) + h;
        for p in 1..=3 {
            cnf.add_clause(vec![v(p, 1), v(p, 2)]);
        }
        for h in 1..=2 {
            for p1 in 1..=3 {
                for p2 in (p1 + 1)..=3 {
                    cnf.add_clause(vec![-v(p1, h), -v(p2, h)]);
                }
            }
        }
        assert!(solve(&cnf).is_none());
    }

    #[test]
    fn pigeonhole_5_into_4_unsat() {
        // Larger UNSAT refutation: exercises clause learning + restarts.
        let np = 5i32;
        let nh = 4i32;
        let mut cnf = Cnf::default();
        for _ in 0..(np * nh) {
            cnf.fresh_var();
        }
        let v = |p: i32, h: i32| nh * (p - 1) + h;
        for p in 1..=np {
            cnf.add_clause((1..=nh).map(|h| v(p, h)).collect());
        }
        for h in 1..=nh {
            for p1 in 1..=np {
                for p2 in (p1 + 1)..=np {
                    cnf.add_clause(vec![-v(p1, h), -v(p2, h)]);
                }
            }
        }
        assert!(solve(&cnf).is_none());
    }

    #[test]
    fn irrelevant_variables_do_not_blow_up() {
        // A small UNSAT core buried under many unconstrained variables:
        // this is the grounder's instance shape. Must finish instantly.
        let mut cnf = Cnf::default();
        for _ in 0..200 {
            cnf.fresh_var();
        }
        // UNSAT core on vars 199, 200 (DIMACS 199/200 = indices 198/199).
        cnf.add_clause(vec![199, 200]);
        cnf.add_clause(vec![199, -200]);
        cnf.add_clause(vec![-199, 200]);
        cnf.add_clause(vec![-199, -200]);
        assert!(solve(&cnf).is_none());
    }

    #[test]
    fn satisfiable_3sat_instance() {
        let mut cnf = Cnf::default();
        for _ in 0..5 {
            cnf.fresh_var();
        }
        let clauses: Vec<Vec<i32>> = vec![
            vec![1, -2, 3],
            vec![-1, 2, 4],
            vec![-3, -4, 5],
            vec![2, -5, -1],
            vec![-2, 3, -5],
        ];
        for c in clauses {
            cnf.add_clause(c);
        }
        let m = solve(&cnf).unwrap();
        check_model(&cnf, &m);
    }

    #[test]
    fn duplicate_literals_in_clause() {
        let mut cnf = Cnf {
            num_vars: 2,
            ..Default::default()
        };
        cnf.add_clause(vec![1, 1, 2]);
        cnf.add_clause(vec![-1, -1]);
        let m = solve(&cnf).unwrap();
        assert!(!m[0]);
        check_model(&cnf, &m);
    }

    #[test]
    fn randomized_instances_agree_with_brute_force() {
        // deterministic pseudo-random generator (LCG) — keeps the test
        // reproducible without external dependencies
        let mut seed = 0x12345678u64;
        let mut next = move || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (seed >> 33) as u32
        };
        for _case in 0..500 {
            let nvars = 1 + (next() % 8) as usize;
            let nclauses = 1 + (next() % 16) as usize;
            let mut cnf = Cnf {
                num_vars: nvars,
                ..Default::default()
            };
            for _ in 0..nclauses {
                let len = 1 + (next() % 3) as usize;
                let mut clause = Vec::new();
                for _ in 0..len {
                    let v = (next() % nvars as u32) as i32 + 1;
                    let sign = if next() % 2 == 0 { 1 } else { -1 };
                    clause.push(sign * v);
                }
                cnf.add_clause(clause);
            }
            let mut brute_sat = false;
            for bits in 0..(1u32 << nvars) {
                let model: Vec<bool> = (0..nvars).map(|i| bits & (1 << i) != 0).collect();
                if cnf.clauses.iter().all(|c| {
                    c.iter().any(|&l| {
                        let v = (l.unsigned_abs() as usize) - 1;
                        (l > 0) == model[v]
                    })
                }) {
                    brute_sat = true;
                    break;
                }
            }
            let got = solve(&cnf);
            assert_eq!(got.is_some(), brute_sat, "mismatch on {:?}", cnf.clauses);
            if let Some(m) = got {
                check_model(&cnf, &m);
            }
        }
    }
}
