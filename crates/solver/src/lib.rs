//! # birds-solver
//!
//! Bounded first-order model finder — the reproduction's substitute for the
//! Z3 automated theorem prover used by the paper's implementation (§6.1).
//!
//! The validation algorithm (§4) reduces every check to the
//! (un)satisfiability of a first-order sentence over the database schema.
//! For LVGN-Datalog these sentences are guarded-negation FO, which has the
//! finite-model property, and the paper's own Appendix A.2 axiomatization
//! reduces order comparisons to finitely many constant-delimited regions.
//! We exploit exactly that structure:
//!
//! 1. build a finite **domain**: the sentence's constants plus *gap
//!    witnesses* around and between them (respecting the discreteness of
//!    integers — there is no witness between `2` and `3`) plus a few fresh
//!    uninterpreted elements;
//! 2. **ground** the sentence over the domain (quantifiers expand to
//!    conjunctions/disjunctions; comparisons evaluate concretely), with
//!    hash-consing and memoization to keep the propositional structure
//!    shared;
//! 3. convert to CNF (**Tseitin**) and decide with a built-in **DPLL** SAT
//!    solver, iterating the number of fresh elements up to a bound.
//!
//! `Sat` answers come with an explicit finite **model** (a counterexample
//! database, invaluable in validation error messages). `Unsat` answers are
//! complete *up to the domain bound* — the same practical caveat the paper
//! accepts by shipping checks to Z3 with a timeout.

pub mod cnf;
pub mod domain;
pub mod ground;
pub mod sat;
pub mod solver;

pub use domain::DomainConfig;
pub use solver::{BoundedSolver, Model, SatOutcome, SolverError};
