//! Finite domain construction for bounded model finding.
//!
//! Mirrors the paper's Appendix A.2 axiomatization of comparison builtins:
//! a totally ordered domain with constants `c1 < … < cn` splits into the
//! regions `< c1`, `= c1`, `(c1, c2)`, …, `> cn`; a region only needs a
//! witness if the underlying domain actually has a value there. Integers
//! are discrete (no witness strictly between `2` and `3`); strings and
//! floats are treated as dense and unbounded above (strings have a least
//! element `""` and nothing below it).

use birds_fol::Formula;
use birds_store::Value;
use std::collections::BTreeSet;

/// Configuration of domain construction.
#[derive(Debug, Clone)]
pub struct DomainConfig {
    /// Maximum number of fresh uninterpreted elements to try (the solver
    /// iterates `1..=max_fresh`).
    pub max_fresh: usize,
    /// Hard cap on total domain size (defensive).
    pub max_total: usize,
}

impl Default for DomainConfig {
    fn default() -> Self {
        DomainConfig {
            max_fresh: 3,
            max_total: 24,
        }
    }
}

/// Build the domain for a sentence with `n_fresh` fresh elements:
/// constants ∪ gap witnesses ∪ fresh elements.
pub fn build_domain(sentence: &Formula, n_fresh: usize) -> Vec<Value> {
    let consts = sentence.constants();
    let mut domain: BTreeSet<Value> = consts.clone();

    // Integer witnesses: below min, above max, in gaps of width ≥ 2.
    let ints: Vec<i64> = consts
        .iter()
        .filter_map(|v| match v {
            Value::Int(i) => Some(*i),
            _ => None,
        })
        .collect();
    if !ints.is_empty() {
        let lo = *ints.first().unwrap();
        let hi = *ints.last().unwrap();
        domain.insert(Value::Int(lo.saturating_sub(1)));
        domain.insert(Value::Int(hi.saturating_add(1)));
        for w in ints.windows(2) {
            if w[1] - w[0] >= 2 {
                domain.insert(Value::Int(w[0] + 1));
            }
        }
    }

    // String witnesses: between adjacent constants and above the max.
    // (Strings have a least element "", so no below-min witness exists
    // unless "" itself is below the minimum constant.)
    let strs: Vec<&str> = consts.iter().filter_map(Value::as_str).collect();
    if !strs.is_empty() {
        let lo = *strs.first().unwrap();
        if !lo.is_empty() {
            domain.insert(Value::str(""));
        }
        let hi = *strs.last().unwrap();
        domain.insert(Value::str(format!("{hi}~")));
        for w in strs.windows(2) {
            // `s + "\u{1}"` sits strictly between s and t for almost all
            // lexicographic neighbours (see DESIGN.md); it is a witness
            // heuristic, checked below before insertion.
            let candidate = format!("{}\u{1}", w[0]);
            if candidate.as_str() > w[0] && candidate.as_str() < w[1] {
                domain.insert(Value::str(candidate));
            }
        }
    }

    // Float witnesses: midpoints and outer values.
    let floats: Vec<f64> = consts
        .iter()
        .filter_map(|v| match v {
            Value::Float(x) => Some(x.get()),
            _ => None,
        })
        .collect();
    if !floats.is_empty() {
        let lo = floats.first().unwrap();
        let hi = floats.last().unwrap();
        domain.insert(Value::float(lo - 1.0));
        domain.insert(Value::float(hi + 1.0));
        for w in floats.windows(2) {
            let mid = (w[0] + w[1]) / 2.0;
            if mid > w[0] && mid < w[1] {
                domain.insert(Value::float(mid));
            }
        }
    }

    // Bool witnesses: complete the domain if any bool appears.
    if consts.iter().any(|v| matches!(v, Value::Bool(_))) {
        domain.insert(Value::Bool(true));
        domain.insert(Value::Bool(false));
    }

    // Fresh uninterpreted elements: strings above every string constant
    // and incomparable to nothing (all values are totally ordered, but
    // these sit in the top region, which always has room).
    for i in 0..n_fresh {
        domain.insert(Value::str(format!("\u{2021}fresh{i}")));
    }

    domain.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use birds_datalog::{CmpOp, PredRef, Term};

    fn cmp(op: CmpOp, var: &str, c: Value) -> Formula {
        Formula::Cmp(op, Term::var(var), Term::Const(c))
    }

    #[test]
    fn integer_gaps_respect_discreteness() {
        // constants 2 and 3: no witness strictly between them
        let f = Formula::and(vec![
            cmp(CmpOp::Gt, "X", Value::Int(2)),
            cmp(CmpOp::Lt, "X", Value::Int(3)),
        ]);
        let d = build_domain(&f, 0);
        let ints: Vec<i64> = d
            .iter()
            .filter_map(|v| match v {
                Value::Int(i) => Some(*i),
                _ => None,
            })
            .collect();
        assert!(ints.contains(&1) && ints.contains(&4));
        assert!(!ints.iter().any(|&i| i > 2 && i < 3));
    }

    #[test]
    fn integer_wide_gap_has_witness() {
        let f = Formula::and(vec![
            cmp(CmpOp::Gt, "X", Value::Int(10)),
            cmp(CmpOp::Lt, "X", Value::Int(20)),
        ]);
        let d = build_domain(&f, 0);
        assert!(d
            .iter()
            .any(|v| matches!(v, Value::Int(i) if *i > 10 && *i < 20)));
    }

    #[test]
    fn string_witnesses_bracket_constants() {
        let f = Formula::and(vec![
            cmp(CmpOp::Gt, "X", Value::str("1962-01-01")),
            cmp(CmpOp::Lt, "X", Value::str("1962-12-31")),
        ]);
        let d = build_domain(&f, 0);
        let strs: Vec<&str> = d
            .iter()
            .filter_map(|v| match v {
                Value::Str(s) => Some(s.as_str()),
                _ => None,
            })
            .collect();
        assert!(strs.iter().any(|s| *s > "1962-01-01" && *s < "1962-12-31"));
        assert!(strs.iter().any(|s| *s > "1962-12-31"));
        assert!(strs.iter().any(|s| *s < "1962-01-01"));
    }

    #[test]
    fn fresh_elements_are_distinct_from_constants() {
        let f = Formula::Rel(PredRef::plain("r"), vec![Term::Const(Value::str("a"))]);
        let d2 = build_domain(&f, 2);
        let d3 = build_domain(&f, 3);
        assert_eq!(d3.len(), d2.len() + 1);
    }

    #[test]
    fn pure_relational_formula_gets_fresh_only_domain() {
        let f = Formula::Rel(PredRef::plain("r"), vec![Term::var("X")]);
        let d = build_domain(&f, 2);
        assert_eq!(d.len(), 2);
    }
}
