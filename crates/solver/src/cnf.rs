//! Hash-consed propositional formulas and Tseitin CNF conversion.

use crate::sat::Cnf;
use std::collections::HashMap;

/// Node of a hash-consed propositional formula DAG.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum PNode {
    /// Ground atom (index into the grounder's atom table).
    Var(u32),
    /// Constant true.
    True,
    /// Constant false.
    False,
    /// Negation of a node.
    Not(u32),
    /// Conjunction of nodes.
    And(Vec<u32>),
    /// Disjunction of nodes.
    Or(Vec<u32>),
}

/// Arena of hash-consed propositional nodes.
#[derive(Debug, Default)]
pub struct PropArena {
    nodes: Vec<PNode>,
    intern: HashMap<PNode, u32>,
}

impl PropArena {
    /// Empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of distinct nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` when no nodes have been interned.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Intern a node, reusing an existing id when identical.
    pub fn intern(&mut self, node: PNode) -> u32 {
        if let Some(&id) = self.intern.get(&node) {
            return id;
        }
        let id = self.nodes.len() as u32;
        self.nodes.push(node.clone());
        self.intern.insert(node, id);
        id
    }

    /// Node lookup.
    pub fn node(&self, id: u32) -> &PNode {
        &self.nodes[id as usize]
    }

    /// Constant true.
    pub fn mk_true(&mut self) -> u32 {
        self.intern(PNode::True)
    }

    /// Constant false.
    pub fn mk_false(&mut self) -> u32 {
        self.intern(PNode::False)
    }

    /// Ground atom variable.
    pub fn mk_var(&mut self, atom: u32) -> u32 {
        self.intern(PNode::Var(atom))
    }

    /// Simplifying negation.
    pub fn mk_not(&mut self, id: u32) -> u32 {
        match self.node(id) {
            PNode::True => self.mk_false(),
            PNode::False => self.mk_true(),
            PNode::Not(inner) => *inner,
            _ => self.intern(PNode::Not(id)),
        }
    }

    /// Simplifying conjunction (flattens, drops ⊤, collapses ⊥, dedupes).
    pub fn mk_and(&mut self, ids: Vec<u32>) -> u32 {
        let mut flat = Vec::new();
        for id in ids {
            match self.node(id) {
                PNode::True => {}
                PNode::False => return self.mk_false(),
                PNode::And(inner) => flat.extend(inner.iter().copied()),
                _ => flat.push(id),
            }
        }
        flat.sort_unstable();
        flat.dedup();
        match flat.len() {
            0 => self.mk_true(),
            1 => flat[0],
            _ => self.intern(PNode::And(flat)),
        }
    }

    /// Simplifying disjunction.
    pub fn mk_or(&mut self, ids: Vec<u32>) -> u32 {
        let mut flat = Vec::new();
        for id in ids {
            match self.node(id) {
                PNode::False => {}
                PNode::True => return self.mk_true(),
                PNode::Or(inner) => flat.extend(inner.iter().copied()),
                _ => flat.push(id),
            }
        }
        flat.sort_unstable();
        flat.dedup();
        match flat.len() {
            0 => self.mk_false(),
            1 => flat[0],
            _ => self.intern(PNode::Or(flat)),
        }
    }

    /// Tseitin-encode the DAG rooted at `root` into a [`Cnf`], asserting
    /// the root. Returns the CNF and the mapping from ground-atom index to
    /// SAT variable index.
    pub fn tseitin(&self, root: u32, num_atoms: u32) -> (Cnf, Vec<usize>) {
        let mut cnf = Cnf::default();
        // one SAT variable per ground atom (even unused, for simplicity)
        let atom_vars: Vec<usize> = (0..num_atoms).map(|_| cnf.fresh_var()).collect();
        let mut node_lit: HashMap<u32, i32> = HashMap::new();

        // Iterative post-order over the DAG.
        let mut stack = vec![(root, false)];
        while let Some((id, processed)) = stack.pop() {
            if node_lit.contains_key(&id) {
                continue;
            }
            if !processed {
                stack.push((id, true));
                match self.node(id) {
                    PNode::Not(inner) => stack.push((*inner, false)),
                    PNode::And(ids) | PNode::Or(ids) => {
                        for &i in ids {
                            stack.push((i, false));
                        }
                    }
                    _ => {}
                }
                continue;
            }
            let lit: i32 = match self.node(id) {
                PNode::Var(a) => (atom_vars[*a as usize] as i32) + 1,
                PNode::True => {
                    let v = cnf.fresh_var() as i32 + 1;
                    cnf.add_clause(vec![v]);
                    v
                }
                PNode::False => {
                    let v = cnf.fresh_var() as i32 + 1;
                    cnf.add_clause(vec![-v]);
                    v
                }
                PNode::Not(inner) => -node_lit[inner],
                PNode::And(ids) => {
                    let v = cnf.fresh_var() as i32 + 1;
                    let lits: Vec<i32> = ids.iter().map(|i| node_lit[i]).collect();
                    // v -> each lit ; (all lits) -> v
                    for &l in &lits {
                        cnf.add_clause(vec![-v, l]);
                    }
                    let mut back: Vec<i32> = lits.iter().map(|&l| -l).collect();
                    back.push(v);
                    cnf.add_clause(back);
                    v
                }
                PNode::Or(ids) => {
                    let v = cnf.fresh_var() as i32 + 1;
                    let lits: Vec<i32> = ids.iter().map(|i| node_lit[i]).collect();
                    // v -> (some lit) ; each lit -> v
                    let mut fwd = vec![-v];
                    fwd.extend(&lits);
                    cnf.add_clause(fwd);
                    for &l in &lits {
                        cnf.add_clause(vec![-l, v]);
                    }
                    v
                }
            };
            node_lit.insert(id, lit);
        }
        cnf.add_clause(vec![node_lit[&root]]);
        (cnf, atom_vars)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sat::solve;

    #[test]
    fn hash_consing_dedupes() {
        let mut arena = PropArena::new();
        let a = arena.mk_var(0);
        let b = arena.mk_var(0);
        assert_eq!(a, b);
        let n1 = arena.mk_not(a);
        let n2 = arena.mk_not(b);
        assert_eq!(n1, n2);
    }

    #[test]
    fn double_negation_collapses() {
        let mut arena = PropArena::new();
        let a = arena.mk_var(0);
        let na = arena.mk_not(a);
        assert_eq!(arena.mk_not(na), a);
    }

    #[test]
    fn and_simplification() {
        let mut arena = PropArena::new();
        let a = arena.mk_var(0);
        let t = arena.mk_true();
        let f = arena.mk_false();
        assert_eq!(arena.mk_and(vec![a, t]), a);
        let af = arena.mk_and(vec![a, f]);
        assert_eq!(arena.node(af), &PNode::False);
        assert_eq!(arena.mk_and(vec![]), arena.mk_true());
    }

    #[test]
    fn tseitin_sat_simple() {
        // (a ∨ b) ∧ ¬a : model must have b
        let mut arena = PropArena::new();
        let a = arena.mk_var(0);
        let b = arena.mk_var(1);
        let or = arena.mk_or(vec![a, b]);
        let na = arena.mk_not(a);
        let root = arena.mk_and(vec![or, na]);
        let (cnf, atom_vars) = arena.tseitin(root, 2);
        let model = solve(&cnf).unwrap();
        assert!(!model[atom_vars[0]]);
        assert!(model[atom_vars[1]]);
    }

    #[test]
    fn tseitin_unsat() {
        // a ∧ ¬a
        let mut arena = PropArena::new();
        let a = arena.mk_var(0);
        let na = arena.mk_not(a);
        let root = arena.mk_and(vec![a, na]);
        let (cnf, _) = arena.tseitin(root, 1);
        assert!(solve(&cnf).is_none());
    }

    #[test]
    fn tseitin_nested_structure() {
        // ¬(a ∧ b) ∧ a  ⇒  ¬b
        let mut arena = PropArena::new();
        let a = arena.mk_var(0);
        let b = arena.mk_var(1);
        let ab = arena.mk_and(vec![a, b]);
        let nab = arena.mk_not(ab);
        let root = arena.mk_and(vec![nab, a]);
        let (cnf, atom_vars) = arena.tseitin(root, 2);
        let model = solve(&cnf).unwrap();
        assert!(model[atom_vars[0]] && !model[atom_vars[1]]);
    }
}
