//! Evaluation errors.

use std::fmt;

/// Result alias for evaluation.
pub type EvalResult<T> = Result<T, EvalError>;

/// Errors raised during Datalog evaluation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EvalError {
    /// An EDB predicate has no backing relation in the context.
    UnknownRelation(String),
    /// A predicate is used with an arity different from its relation.
    ArityMismatch {
        relation: String,
        expected: usize,
        found: usize,
    },
    /// A comparison between values of different sorts.
    SortMismatch { rule: String, detail: String },
    /// The program is recursive or otherwise not evaluable.
    BadProgram(String),
    /// A rule is unsafe: evaluation reached a literal whose variables were
    /// not bound (the static safety check would have caught this).
    UnsafeRule { rule: String, variable: String },
    /// Storage-level failure (bubbled up).
    Store(String),
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::UnknownRelation(r) => {
                write!(f, "no relation backs EDB predicate '{r}'")
            }
            EvalError::ArityMismatch {
                relation,
                expected,
                found,
            } => write!(
                f,
                "predicate '{relation}' used with arity {found} but relation has arity {expected}"
            ),
            EvalError::SortMismatch { rule, detail } => {
                write!(f, "sort mismatch in rule '{rule}': {detail}")
            }
            EvalError::BadProgram(m) => write!(f, "program not evaluable: {m}"),
            EvalError::UnsafeRule { rule, variable } => {
                write!(
                    f,
                    "unsafe variable '{variable}' reached at runtime in rule: {rule}"
                )
            }
            EvalError::Store(m) => write!(f, "store error: {m}"),
        }
    }
}

impl std::error::Error for EvalError {}

impl From<birds_store::StoreError> for EvalError {
    fn from(e: birds_store::StoreError) -> Self {
        EvalError::Store(e.to_string())
    }
}
