//! Evaluation context: a base database plus an overlay of temporary
//! relations, plus a plan cache.
//!
//! The putback transformation evaluates over the *pair* `(S, V)` of source
//! database and (updated) view (paper §3.1); the engine additionally feeds
//! view deltas `+v` / `-v` to incremental programs. Rather than copying
//! multi-million-tuple base relations into a scratch database for every
//! view update, the context overlays small temporary relations (updated
//! view, view deltas, intermediate IDB results) on top of a borrowed base
//! database. Lookups hit the overlay first; the base is only mutated to
//! build indexes.
//!
//! Rule plans are served through the context as well ([`EvalContext::plan_for`]).
//! A context created with [`EvalContext::new`] owns a private [`PlanCache`]
//! (plans are reused within that context's lifetime); the engine instead
//! lends its session-wide cache via [`EvalContext::with_plan_cache`], so
//! repeated updates never replan a rule.

use crate::error::EvalResult;
use crate::plan::{plan_rule, PlanCache, RulePlan};
use birds_datalog::Rule;
use birds_store::{Database, Relation, StoreResult};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::{Arc, Mutex};

/// Owned-or-borrowed plan cache backing a context.
enum Plans<'a> {
    Owned(PlanCache),
    Shared(&'a mut PlanCache),
}

/// A base database with temporary overlay relations and a plan cache.
pub struct EvalContext<'a> {
    base: &'a mut Database,
    overlay: BTreeMap<String, Relation>,
    plans: Plans<'a>,
    /// When set, every relation name resolved through this context is
    /// recorded into the sink — the ground truth that the engine's
    /// *declared* dependency footprints are tested against.
    read_trace: Option<&'a Mutex<BTreeSet<String>>>,
}

impl<'a> EvalContext<'a> {
    /// Wrap a base database with an empty overlay and a fresh private
    /// plan cache.
    pub fn new(base: &'a mut Database) -> Self {
        EvalContext {
            base,
            overlay: BTreeMap::new(),
            plans: Plans::Owned(PlanCache::new()),
            read_trace: None,
        }
    }

    /// Wrap a base database, sharing a caller-owned plan cache. Plans
    /// compiled through this context persist in `cache` after the context
    /// is dropped — this is how the engine amortizes planning across view
    /// updates.
    pub fn with_plan_cache(base: &'a mut Database, cache: &'a mut PlanCache) -> Self {
        EvalContext {
            base,
            overlay: BTreeMap::new(),
            plans: Plans::Shared(cache),
            read_trace: None,
        }
    }

    /// Record every relation name this context resolves into `sink`.
    /// Diagnostic-only (used by the footprint conformance tests); the
    /// `None` fast path costs one branch per lookup.
    pub fn trace_reads_into(&mut self, sink: &'a Mutex<BTreeSet<String>>) {
        self.read_trace = Some(sink);
    }

    /// The compiled plan for `rule`: cached if available, planned (and
    /// cached) otherwise.
    pub fn plan_for(&mut self, rule: &Rule) -> EvalResult<Arc<RulePlan>> {
        if let Some(plan) = self.plans_mut().get(rule) {
            return Ok(plan);
        }
        let plan = Arc::new(plan_rule(rule, self)?);
        self.plans_mut().insert(rule, plan.clone());
        Ok(plan)
    }

    fn plans_mut(&mut self) -> &mut PlanCache {
        match &mut self.plans {
            Plans::Owned(c) => c,
            Plans::Shared(c) => c,
        }
    }

    /// Insert (or replace) an overlay relation under its own name.
    /// Overlay relations shadow base relations of the same name.
    pub fn insert_overlay(&mut self, rel: Relation) {
        self.overlay.insert(rel.name().to_owned(), rel);
    }

    /// Look up a relation: overlay first, then base.
    pub fn relation(&self, name: &str) -> Option<&Relation> {
        if let Some(sink) = self.read_trace {
            if let Ok(mut reads) = sink.lock() {
                reads.insert(name.to_owned());
            }
        }
        self.overlay.get(name).or_else(|| self.base.relation(name))
    }

    /// `true` if the name resolves to an overlay or base relation.
    pub fn contains(&self, name: &str) -> bool {
        self.overlay.contains_key(name) || self.base.contains_relation(name)
    }

    /// Ensure a hash index over `cols` exists on the named relation
    /// (wherever it lives).
    pub fn ensure_index(&mut self, name: &str, cols: &[usize]) -> StoreResult<()> {
        if let Some(rel) = self.overlay.get_mut(name) {
            return rel.ensure_index(cols);
        }
        if let Some(rel) = self.base.relation_mut(name) {
            return rel.ensure_index(cols);
        }
        Ok(()) // unknown relations are reported later by the evaluator
    }

    /// Ensure an ordered index over `col` exists on the named relation —
    /// the range-scan analogue of [`EvalContext::ensure_index`], with one
    /// difference: overlay relations (view deltas, updated views, IDB
    /// strata) are per-evaluation temporaries, so building a tree over
    /// one would cost more than the single scan it replaces. Range
    /// probes against an overlay find no ordered index and take the
    /// evaluator's residual-filter fallback instead — same results,
    /// no per-update O(n log n) index build.
    pub fn ensure_ordered_index(&mut self, name: &str, col: usize) -> StoreResult<()> {
        if self.overlay.contains_key(name) {
            return Ok(());
        }
        if let Some(rel) = self.base.relation_mut(name) {
            return rel.ensure_ordered_index(col);
        }
        Ok(()) // unknown relations are reported later by the evaluator
    }

    /// Is range pushdown enabled for plans compiled through this
    /// context's cache?
    pub fn range_pushdown(&self) -> bool {
        match &self.plans {
            Plans::Owned(c) => c.range_pushdown(),
            Plans::Shared(c) => c.range_pushdown(),
        }
    }

    /// Distinct-key count of an existing index over `col` on the named
    /// relation (the planner's selectivity input); `None` when the
    /// relation is unknown or the column has no index yet.
    pub fn relation_ndv(&self, name: &str, col: usize) -> Option<usize> {
        self.overlay
            .get(name)
            .or_else(|| self.base.relation(name))
            .and_then(|rel| rel.distinct_keys(&[col]))
    }

    /// Remove and return an overlay relation.
    pub fn take_overlay(&mut self, name: &str) -> Option<Relation> {
        self.overlay.remove(name)
    }

    /// Names of all overlay relations.
    pub fn overlay_names(&self) -> impl Iterator<Item = &str> {
        self.overlay.keys().map(String::as_str)
    }

    /// Size of the named relation, if it exists (used by the join
    /// planner's greedy ordering).
    pub fn relation_len(&self, name: &str) -> Option<usize> {
        self.relation(name).map(Relation::len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use birds_store::tuple;

    #[test]
    fn overlay_shadows_base() {
        let mut db = Database::new();
        db.add_relation(Relation::with_tuples("v", 1, vec![tuple![1]]).unwrap())
            .unwrap();
        let mut ctx = EvalContext::new(&mut db);
        assert_eq!(ctx.relation("v").unwrap().len(), 1);
        ctx.insert_overlay(Relation::with_tuples("v", 1, vec![tuple![2], tuple![3]]).unwrap());
        assert_eq!(ctx.relation("v").unwrap().len(), 2);
        let taken = ctx.take_overlay("v").unwrap();
        assert_eq!(taken.len(), 2);
        assert_eq!(ctx.relation("v").unwrap().len(), 1, "base visible again");
    }

    #[test]
    fn ensure_index_reaches_base_and_overlay() {
        let mut db = Database::new();
        db.add_relation(Relation::with_tuples("r", 2, vec![tuple![1, 2]]).unwrap())
            .unwrap();
        let mut ctx = EvalContext::new(&mut db);
        ctx.insert_overlay(Relation::with_tuples("t", 2, vec![tuple![3, 4]]).unwrap());
        ctx.ensure_index("r", &[0]).unwrap();
        ctx.ensure_index("t", &[1]).unwrap();
        assert!(ctx.relation("r").unwrap().has_index(&[0]));
        assert!(ctx.relation("t").unwrap().has_index(&[1]));
    }

    #[test]
    fn owned_cache_reuses_plans_within_context() {
        let mut db = Database::new();
        db.add_relation(Relation::with_tuples("r", 1, vec![tuple![1]]).unwrap())
            .unwrap();
        let mut ctx = EvalContext::new(&mut db);
        let rule = birds_datalog::parse_rule("h(X) :- r(X).").unwrap();
        let p1 = ctx.plan_for(&rule).unwrap();
        let p2 = ctx.plan_for(&rule).unwrap();
        assert!(Arc::ptr_eq(&p1, &p2));
    }
}
