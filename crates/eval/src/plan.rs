//! Greedy join planning for a single rule, compiled down to register slots.
//!
//! The planner orders body literals so that:
//!
//! 1. cheap *filters* (negated atoms, comparisons, fully-bound positive
//!    atoms) run as early as their variables are bound;
//! 2. grounding equalities (`X = c`, `X = Y` with one side bound) bind
//!    immediately;
//! 3. remaining positive atoms are chosen greedily by (most bound argument
//!    positions, smallest relation) — so a rule whose body contains a tiny
//!    delta relation starts its join there, giving the `O(|Δ|)` behaviour
//!    the incrementalized strategies rely on (paper §5 / Figure 6).
//!
//! Beyond ordering, planning **resolves every variable to a numeric
//! register slot**. Because steps execute in plan order, whether a
//! variable is bound at a given step is decided entirely at plan time, so
//! the compiled [`Step`]s carry slot numbers instead of variable names:
//! the evaluator runs over a flat `Vec<Option<Value>>` frame with no
//! string hashing and no per-binding map operations. Plans are immutable
//! and cacheable (see [`PlanCache`]) — a rule is planned once per engine
//! session and re-executed from its compiled form on every subsequent
//! update.
//!
//! ## Range pushdown
//!
//! A full-relation `Scan` followed by a comparison filter over one of
//! the scan's freshly-bound variables (`big(I, P), P > 1000`) is the
//! classic selection cliff: `O(|big|)` per activation no matter how
//! selective the guard is. When the scanned relation can carry an
//! ordered index, the planner absorbs such guards *into* the scan and
//! compiles a [`StepOp::RangeScan`] instead: the evaluator range-probes
//! an ordered index and touches only the matching tuples, falling back
//! to scan-and-filter when the column turns out to be mixed-type at run
//! time (preserving cross-sort comparison errors exactly). Absorption
//! takes the maximal *prefix* of the ready-to-place literals that are
//! eligible guards on one column — stopping at the first placeable
//! non-guard literal — so the per-tuple evaluation order (and therefore
//! error behaviour) is identical to the un-pushed plan.
//!
//! Planning also records which `(relation, columns)` hash indexes and
//! `(relation, column)` ordered indexes the execution will probe so the
//! evaluator can build them up front.

use crate::context::EvalContext;
use crate::error::{EvalError, EvalResult};
use birds_datalog::{Atom, CmpOp, Head, Literal, Rule, Term};
use std::collections::HashMap;
use std::sync::Arc;

/// How a planned literal will be executed (derived from [`StepOp`] — see
/// [`Step::kind`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepKind {
    /// Positive atom that binds at least one new variable: iterate probe
    /// results.
    Join,
    /// Positive atom driven by an ordered-index range probe, with one or
    /// more comparison guards folded into the scan.
    RangeJoin,
    /// Positive atom whose non-anonymous variables are all bound:
    /// existence check.
    ExistsCheck,
    /// Negated atom: non-existence check.
    NegCheck,
    /// Builtin filter (comparison, or equality with both sides bound).
    Filter,
    /// Positive equality that assigns a value to an unbound register slot.
    Bind,
}

/// A compile-time-resolved operand: a constant, or a register slot that is
/// guaranteed (by plan construction) to be bound when the operand is read.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SlotTerm {
    /// A literal constant.
    Const(birds_store::Value),
    /// A register slot, bound by an earlier step.
    Slot(usize),
}

/// One term position of a compiled head atom.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HeadTerm {
    /// A literal constant.
    Const(birds_store::Value),
    /// A register slot bound by the body.
    Slot(usize),
    /// A head variable the body never binds. Kept (rather than rejected at
    /// plan time) so emission reports the same `UnsafeRule` error the
    /// string-keyed evaluator produced — and only when a derivation
    /// actually reaches the head.
    Unbound(String),
}

/// Compiled form of an atom literal (`Join`, `ExistsCheck`, `NegCheck`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AtomStep {
    /// Flat name of the relation to read.
    pub rel: String,
    /// Argument positions that are bound (constant or bound slot) at this
    /// point — the index probe columns.
    pub probe_cols: Vec<usize>,
    /// Probe key sources, parallel to `probe_cols`.
    pub probe_key: Vec<SlotTerm>,
    /// `(column, slot)` pairs for fresh variable bindings (`Join` only):
    /// the column's value is written into the slot for each candidate
    /// tuple.
    pub bind: Vec<(usize, usize)>,
    /// `(column, slot)` equality checks for variables repeated *within*
    /// this atom (the slot is freshly bound by an earlier entry of
    /// `bind`).
    pub check: Vec<(usize, usize)>,
    /// `true` when `probe_cols` covers every argument position, enabling
    /// the full-tuple `contains` fast path for existence checks.
    pub full_probe: bool,
    /// Arity of the atom (number of argument positions).
    pub arity: usize,
}

/// One comparison guard absorbed into a [`StepOp::RangeScan`]: the
/// scanned column must satisfy `column ⟨op⟩ bound`.
///
/// Guards are stored **normalized**: `op` is one of `Lt`/`Le`/`Gt`/`Ge`
/// with the scanned column always on the left and never negated (the
/// planner rewrites `not P < k` to `P >= k` and flips sides as needed),
/// so the evaluator folds them into a half-open interval without
/// re-deriving orientation. Guard order is the order the residual
/// `Compare` steps would have run in, which the filter fallback relies
/// on to reproduce cross-sort errors exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RangeGuard {
    /// Normalized comparison (`Lt`, `Le`, `Gt` or `Ge`).
    pub op: CmpOp,
    /// The bound: a constant or a slot bound before the scan.
    pub bound: SlotTerm,
    /// Index into `rule.body` of the comparison literal this guard
    /// covers (the literal gets no step of its own).
    pub literal: usize,
}

/// The operation a step performs, with all operands slot-resolved. The
/// execution mode is part of the variant, so a plan cannot pair an atom
/// payload with a builtin mode (or vice versa) — there is no defensive
/// mismatch arm in the evaluator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StepOp {
    /// Positive atom that binds at least one new variable: iterate probe
    /// results (`Join`).
    Scan(AtomStep),
    /// Full-relation scan with comparison guards pushed into it
    /// (`RangeJoin`): the evaluator range-probes an ordered index on
    /// `col` when the column is sort-homogeneous, and otherwise scans
    /// and applies the guards per tuple (after the atom's intra-atom
    /// checks, in guard order). The guards' body literals are covered by
    /// this step — they get no residual `Compare`.
    RangeScan {
        /// The compiled atom (always `probe_cols.is_empty()` — pushdown
        /// only replaces full scans).
        atom: AtomStep,
        /// The guarded column of the atom.
        col: usize,
        /// Absorbed guards, in residual-evaluation order.
        guards: Vec<RangeGuard>,
    },
    /// Atom with every named variable bound: (non-)existence probe
    /// (`ExistsCheck` / `NegCheck`).
    Check {
        /// The compiled atom.
        atom: AtomStep,
        /// `true` for `not p(~t)` — pass on *absence*.
        negated: bool,
    },
    /// Builtin comparison over two resolved operands (`Filter`).
    Compare {
        /// The comparison operator.
        op: CmpOp,
        /// Left operand.
        left: SlotTerm,
        /// Right operand.
        right: SlotTerm,
        /// `true` for the negated form.
        negated: bool,
    },
    /// Grounding equality: write `value` into `slot` (`Bind`).
    Assign {
        /// Destination register.
        slot: usize,
        /// Source operand (constant or earlier-bound slot).
        value: SlotTerm,
    },
}

/// One step of a rule plan: which body literal to run and how.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Step {
    /// Index into `rule.body`.
    pub literal: usize,
    /// The compiled operation.
    pub op: StepOp,
}

impl Step {
    /// The execution mode of this step (derived from the operation).
    pub fn kind(&self) -> StepKind {
        match &self.op {
            StepOp::Scan(_) => StepKind::Join,
            StepOp::RangeScan { .. } => StepKind::RangeJoin,
            StepOp::Check { negated: false, .. } => StepKind::ExistsCheck,
            StepOp::Check { negated: true, .. } => StepKind::NegCheck,
            StepOp::Compare { .. } => StepKind::Filter,
            StepOp::Assign { .. } => StepKind::Bind,
        }
    }

    /// For atom steps: the bound argument positions used as probe
    /// columns. Empty for builtin steps.
    pub fn probe_cols(&self) -> &[usize] {
        match &self.op {
            StepOp::Scan(a) | StepOp::Check { atom: a, .. } => &a.probe_cols,
            _ => &[],
        }
    }
}

/// A complete compiled plan for one rule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RulePlan {
    /// Ordered steps covering every body literal exactly once — a
    /// [`StepOp::RangeScan`] covers its atom literal *and* each absorbed
    /// comparison literal.
    pub steps: Vec<Step>,
    /// Compiled head template; `None` for `⊥` heads (constraints emit a
    /// nullary witness).
    pub head: Option<Vec<HeadTerm>>,
    /// Number of register slots the frame needs.
    pub nslots: usize,
    /// `(relation flat name, columns)` hash indexes the plan will probe.
    pub index_requests: Vec<(String, Vec<usize>)>,
    /// `(relation flat name, column)` ordered indexes the plan's range
    /// scans will probe.
    pub ordered_requests: Vec<(String, usize)>,
}

/// A cache of compiled [`RulePlan`]s keyed by rule identity (structural
/// equality of the [`Rule`] AST).
///
/// The engine owns one cache per session and threads it through every
/// [`EvalContext`] it creates, so `put` over repeated deltas — the Figure 6
/// loop — plans each rule exactly once: the registration-time warm-up pays
/// the planning cost, and every subsequent update replays compiled plans.
/// Hit/miss counters are exposed for tests and diagnostics.
///
/// The cache is `Clone` (plans are `Arc`-shared, so cloning is shallow):
/// when an engine is split into footprint shards, each shard starts from
/// a clone of the session cache and keeps every warm-up plan.
#[derive(Debug, Clone)]
pub struct PlanCache {
    plans: HashMap<Rule, Arc<RulePlan>>,
    hits: u64,
    misses: u64,
    /// Whether newly compiled plans may push comparison guards into
    /// range scans (on by default; benchmarks flip it off to measure
    /// the hash-only baseline).
    range_pushdown: bool,
}

impl Default for PlanCache {
    fn default() -> Self {
        PlanCache {
            plans: HashMap::new(),
            hits: 0,
            misses: 0,
            range_pushdown: true,
        }
    }
}

impl PlanCache {
    /// Empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Is range pushdown enabled for plans compiled through this cache?
    pub fn range_pushdown(&self) -> bool {
        self.range_pushdown
    }

    /// Enable or disable range pushdown. Changing the setting drops every
    /// compiled plan — cached plans embed the decision, so a stale plan
    /// would silently keep the old behaviour.
    pub fn set_range_pushdown(&mut self, on: bool) {
        if self.range_pushdown != on {
            self.plans.clear();
        }
        self.range_pushdown = on;
    }

    /// Number of distinct rules with a compiled plan.
    pub fn len(&self) -> usize {
        self.plans.len()
    }

    /// `true` when no plan has been compiled yet.
    pub fn is_empty(&self) -> bool {
        self.plans.is_empty()
    }

    /// Number of lookups answered from the cache.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Number of lookups that had to plan.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Drop every compiled plan (counters are kept). Join orders are
    /// pinned against the relation sizes seen at planning time; after a
    /// bulk load that changes base-table sizes by orders of magnitude,
    /// clearing the cache lets the greedy planner re-derive orders on the
    /// next evaluation.
    pub fn clear(&mut self) {
        self.plans.clear();
    }

    /// Merge another cache into this one (plans from `other` win on a key
    /// collision — both sides compiled the same rule, the plans are
    /// equivalent) and fold its counters in. Used when footprint-sharded
    /// engines are merged back into one.
    pub fn absorb(&mut self, other: PlanCache) {
        self.plans.extend(other.plans);
        self.hits += other.hits;
        self.misses += other.misses;
    }

    pub(crate) fn get(&mut self, rule: &Rule) -> Option<Arc<RulePlan>> {
        match self.plans.get(rule) {
            Some(p) => {
                self.hits += 1;
                Some(p.clone())
            }
            None => None,
        }
    }

    pub(crate) fn insert(&mut self, rule: &Rule, plan: Arc<RulePlan>) {
        self.misses += 1;
        self.plans.insert(rule.clone(), plan);
    }
}

/// Variable-to-slot assignment built up during planning. Slots are handed
/// out in binding order; anonymous variables can receive slots (a
/// grounding equality may bind one) but never count as probe columns,
/// matching the string-keyed evaluator's semantics.
#[derive(Default)]
struct SlotMap {
    slots: HashMap<String, usize>,
}

impl SlotMap {
    fn get(&self, var: &str) -> Option<usize> {
        self.slots.get(var).copied()
    }

    fn bind(&mut self, var: &str) -> usize {
        let next = self.slots.len();
        *self.slots.entry(var.to_owned()).or_insert(next)
    }

    fn len(&self) -> usize {
        self.slots.len()
    }
}

/// Positions of an atom's terms that are bound (constant or bound
/// variable) given the current slot assignment. Anonymous variables are
/// never bound.
fn bound_positions(terms: &[Term], slots: &SlotMap) -> Vec<usize> {
    terms
        .iter()
        .enumerate()
        .filter(|(_, t)| match t {
            Term::Const(_) => true,
            Term::Var(v) => !t.is_anonymous() && slots.get(v).is_some(),
        })
        .map(|(i, _)| i)
        .collect()
}

/// Resolve a term to a compiled operand, if possible.
fn slot_term(t: &Term, slots: &SlotMap) -> Option<SlotTerm> {
    match t {
        Term::Const(v) => Some(SlotTerm::Const(*v)),
        Term::Var(v) => slots.get(v).map(SlotTerm::Slot),
    }
}

/// Compile an atom into an [`AtomStep`]. `probe_cols` are the bound
/// positions; for `Join` steps the remaining named positions become fresh
/// binds (first occurrence) or intra-atom equality checks (repeats).
fn compile_atom(atom: &Atom, probe_cols: Vec<usize>, slots: &mut SlotMap, join: bool) -> AtomStep {
    let probe_key: Vec<SlotTerm> = probe_cols
        .iter()
        .map(|&c| slot_term(&atom.terms[c], slots).expect("probe columns are bound"))
        .collect();
    let mut bind = Vec::new();
    let mut check = Vec::new();
    if join {
        let mut fresh: HashMap<&str, usize> = HashMap::new();
        for (i, term) in atom.terms.iter().enumerate() {
            if probe_cols.contains(&i) {
                continue;
            }
            match term {
                Term::Const(_) => unreachable!("constants are always probe columns"),
                Term::Var(v) => {
                    if term.is_anonymous() {
                        continue;
                    }
                    match fresh.get(v.as_str()) {
                        Some(&slot) => check.push((i, slot)),
                        None => {
                            let slot = slots.bind(v);
                            fresh.insert(v.as_str(), slot);
                            bind.push((i, slot));
                        }
                    }
                }
            }
        }
    }
    AtomStep {
        rel: atom.pred.flat_name(),
        full_probe: probe_cols.len() == atom.terms.len(),
        arity: atom.terms.len(),
        probe_cols,
        probe_key,
        bind,
        check,
    }
}

/// Swap the sides of a comparison (`a < b` ⇔ `b > a`).
fn swap_cmp(op: CmpOp) -> CmpOp {
    match op {
        CmpOp::Lt => CmpOp::Gt,
        CmpOp::Gt => CmpOp::Lt,
        CmpOp::Le => CmpOp::Ge,
        CmpOp::Ge => CmpOp::Le,
        CmpOp::Eq => CmpOp::Eq,
    }
}

/// The complement of a comparison (`not (a < b)` ⇔ `a >= b`). Only
/// defined for the four order operators.
fn negate_cmp(op: CmpOp) -> CmpOp {
    match op {
        CmpOp::Lt => CmpOp::Ge,
        CmpOp::Ge => CmpOp::Lt,
        CmpOp::Gt => CmpOp::Le,
        CmpOp::Le => CmpOp::Gt,
        CmpOp::Eq => unreachable!("equality guards are not range guards"),
    }
}

/// Would phase 1 place this literal right now (all operands bound)?
/// Mirrors the phase-1 readiness tests: atoms with every named variable
/// bound, builtins with both sides resolvable, and grounding equalities
/// (which bind a fresh slot, so absorption must stop at them).
fn placeable(lit: &Literal, slots: &SlotMap) -> bool {
    match lit {
        Literal::Atom { atom, .. } => atom.terms.iter().all(|t| match t {
            Term::Const(_) => true,
            Term::Var(v) => t.is_anonymous() || slots.get(v).is_some(),
        }),
        Literal::Builtin {
            op, left, right, ..
        } => {
            let l = slot_term(left, slots);
            let r = slot_term(right, slots);
            l.is_some() && r.is_some() || (*op == CmpOp::Eq && (l.is_some() || r.is_some()))
        }
    }
}

/// Try to absorb comparison guards into a freshly compiled full scan.
///
/// Walks `remaining` in order — the order phase 1 would place the now
/// ready literals in — and takes the maximal prefix of *placeable*
/// literals that are eligible guards on a single freshly-bound column:
/// a non-negated or negated order comparison with one side bound by this
/// scan and the other side a constant or earlier-bound slot. The walk
/// stops at the first placeable literal that is anything else, so the
/// residual per-tuple evaluation order is untouched. Absorbed literals
/// are removed from `remaining`. Returns `None` when no guard is
/// absorbable.
fn absorb_range_guards(
    rule: &Rule,
    compiled: &AtomStep,
    remaining: &mut Vec<usize>,
    slots: &SlotMap,
) -> Option<(usize, Vec<RangeGuard>)> {
    let fresh_col_of = |term: &SlotTerm| -> Option<usize> {
        let SlotTerm::Slot(s) = term else { return None };
        compiled
            .bind
            .iter()
            .find(|&&(_, slot)| slot == *s)
            .map(|&(col, _)| col)
    };
    let is_fresh = |term: &SlotTerm| fresh_col_of(term).is_some();
    let mut chosen: Option<usize> = None;
    let mut guards = Vec::new();
    let mut i = 0;
    while i < remaining.len() {
        let li = remaining[i];
        let lit = &rule.body[li];
        if !placeable(lit, slots) {
            i += 1;
            continue;
        }
        let Literal::Builtin {
            op,
            left,
            right,
            negated,
        } = lit
        else {
            break; // a ready check would run before later guards
        };
        let (Some(l), Some(r)) = (slot_term(left, slots), slot_term(right, slots)) else {
            break; // a grounding equality binds a slot: stop
        };
        if *op == CmpOp::Eq {
            break; // (in)equality filter, not a range guard
        }
        // Orient the guard as `column ⟨op⟩ bound`; exactly one side must
        // be bound by this scan.
        let (col, op, bound) = match (fresh_col_of(&l), is_fresh(&r)) {
            (Some(col), false) => (col, *op, r),
            (None, true) => match fresh_col_of(&r) {
                Some(col) => (col, swap_cmp(*op), l),
                None => break,
            },
            _ => break, // both fresh (X < Y) or neither: leave as Compare
        };
        if *chosen.get_or_insert(col) != col {
            break; // guards on a second column stay residual Compares
        }
        let op = if *negated { negate_cmp(op) } else { op };
        guards.push(RangeGuard {
            op,
            bound,
            literal: li,
        });
        remaining.remove(i);
    }
    chosen.map(|col| (col, guards))
}

/// Plan a rule against the current context (relation sizes drive the
/// greedy choice; all body relations must already exist).
pub fn plan_rule(rule: &Rule, ctx: &EvalContext) -> EvalResult<RulePlan> {
    let mut slots = SlotMap::default();
    let mut remaining: Vec<usize> = (0..rule.body.len()).collect();
    let mut steps: Vec<Step> = Vec::with_capacity(rule.body.len());
    let mut index_requests = Vec::new();
    let mut ordered_requests: Vec<(String, usize)> = Vec::new();

    let push_atom_step = |literal: usize,
                          op: StepOp,
                          steps: &mut Vec<Step>,
                          index_requests: &mut Vec<(String, Vec<usize>)>| {
        let (StepOp::Scan(a) | StepOp::Check { atom: a, .. }) = &op else {
            unreachable!("push_atom_step only takes atom operations");
        };
        if !a.probe_cols.is_empty() && a.probe_cols.len() < a.arity {
            index_requests.push((a.rel.clone(), a.probe_cols.clone()));
        }
        steps.push(Step { literal, op });
    };

    while !remaining.is_empty() {
        // Phase 1: place every literal currently usable as a filter/binder.
        let mut placed_any = true;
        while placed_any {
            placed_any = false;
            let mut i = 0;
            while i < remaining.len() {
                let li = remaining[i];
                match &rule.body[li] {
                    Literal::Atom { atom, negated } => {
                        let named_vars_bound = atom.terms.iter().all(|t| match t {
                            Term::Const(_) => true,
                            Term::Var(v) => t.is_anonymous() || slots.get(v).is_some(),
                        });
                        if named_vars_bound {
                            let cols = bound_positions(&atom.terms, &slots);
                            let compiled = compile_atom(atom, cols, &mut slots, false);
                            push_atom_step(
                                li,
                                StepOp::Check {
                                    atom: compiled,
                                    negated: *negated,
                                },
                                &mut steps,
                                &mut index_requests,
                            );
                            remaining.remove(i);
                            placed_any = true;
                            continue;
                        }
                        i += 1;
                    }
                    Literal::Builtin {
                        op,
                        left,
                        right,
                        negated,
                    } => {
                        let l = slot_term(left, &slots);
                        let r = slot_term(right, &slots);
                        if let (Some(l), Some(r)) = (l, r) {
                            steps.push(Step {
                                literal: li,
                                op: StepOp::Compare {
                                    op: *op,
                                    left: l,
                                    right: r,
                                    negated: *negated,
                                },
                            });
                            remaining.remove(i);
                            placed_any = true;
                            continue;
                        }
                        // Grounding equality: bind the unbound side.
                        if *op == CmpOp::Eq && !*negated && (l.is_some() || r.is_some()) {
                            let (value, newly) = if let Some(l) = l {
                                (l, right)
                            } else {
                                (r.expect("one side is resolvable"), left)
                            };
                            if let Term::Var(v) = newly {
                                let slot = slots.bind(v);
                                steps.push(Step {
                                    literal: li,
                                    op: StepOp::Assign { slot, value },
                                });
                                remaining.remove(i);
                                placed_any = true;
                                continue;
                            }
                        }
                        i += 1;
                    }
                }
            }
        }
        if remaining.is_empty() {
            break;
        }

        // Phase 2: choose the next positive atom to join. Candidates are
        // ranked by (indexable, estimated cardinality, bound positions,
        // raw size): a bound position means the scan becomes an index
        // probe, and the *estimated* cardinality refines raw relation
        // size by the selectivity of those probes — size divided by the
        // distinct-key count of each bound column's existing index
        // (columns without an index contribute no refinement, so before
        // any index exists the ranking degenerates to the old
        // size-driven order).
        let mut best: Option<(usize, usize, usize, usize, usize)> = None; // (pos, li, nbound, est, size)
        for (pos, &li) in remaining.iter().enumerate() {
            if let Literal::Atom {
                atom,
                negated: false,
            } = &rule.body[li]
            {
                let flat = atom.pred.flat_name();
                let size = ctx
                    .relation_len(&flat)
                    .ok_or_else(|| EvalError::UnknownRelation(flat.clone()))?;
                let bound = bound_positions(&atom.terms, &slots);
                let nbound = bound.len();
                let mut est = size;
                for &c in &bound {
                    if let Some(refined) = ctx
                        .relation_ndv(&flat, c)
                        .and_then(|ndv| est.checked_div(ndv))
                    {
                        est = refined.max(1);
                    }
                }
                let better = match best {
                    None => true,
                    Some((_, _, best_bound, best_est, best_size)) => {
                        let cand_indexed = nbound > 0;
                        let best_indexed = best_bound > 0;
                        (
                            cand_indexed,
                            std::cmp::Reverse(est),
                            nbound,
                            std::cmp::Reverse(size),
                        ) > (
                            best_indexed,
                            std::cmp::Reverse(best_est),
                            best_bound,
                            std::cmp::Reverse(best_size),
                        )
                    }
                };
                if better {
                    best = Some((pos, li, nbound, est, size));
                }
            }
        }
        let Some((pos, li, _, _, _)) = best else {
            // Only negated atoms / builtins with unbound variables remain.
            let lit = &rule.body[remaining[0]];
            let var = lit
                .variables()
                .into_iter()
                .find(|v| slots.get(v).is_none())
                .unwrap_or("?")
                .to_owned();
            return Err(EvalError::UnsafeRule {
                rule: rule.to_string(),
                variable: var,
            });
        };
        let Literal::Atom { atom, .. } = &rule.body[li] else {
            unreachable!()
        };
        let cols = bound_positions(&atom.terms, &slots);
        let compiled = compile_atom(atom, cols, &mut slots, true);
        remaining.remove(pos);
        // Range pushdown: a full scan whose fresh variables feed
        // now-ready comparison guards becomes a RangeScan (partial
        // probes are already O(bucket); only full scans have the
        // selection cliff worth absorbing).
        if ctx.range_pushdown() && compiled.probe_cols.is_empty() {
            if let Some((col, guards)) =
                absorb_range_guards(rule, &compiled, &mut remaining, &slots)
            {
                ordered_requests.push((compiled.rel.clone(), col));
                steps.push(Step {
                    literal: li,
                    op: StepOp::RangeScan {
                        atom: compiled,
                        col,
                        guards,
                    },
                });
                continue;
            }
        }
        push_atom_step(li, StepOp::Scan(compiled), &mut steps, &mut index_requests);
    }

    // Compile the head template against the final slot assignment.
    let head = match &rule.head {
        Head::Bottom => None,
        Head::Atom(a) => Some(
            a.terms
                .iter()
                .map(|t| match t {
                    Term::Const(v) => HeadTerm::Const(*v),
                    Term::Var(v) => match slots.get(v) {
                        Some(slot) => HeadTerm::Slot(slot),
                        None => HeadTerm::Unbound(t.to_string()),
                    },
                })
                .collect(),
        ),
    };

    Ok(RulePlan {
        steps,
        head,
        nslots: slots.len(),
        index_requests,
        ordered_requests,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use birds_datalog::parse_rule;
    use birds_store::{Database, Relation};

    fn ctx_with(db: &mut Database) -> EvalContext<'_> {
        EvalContext::new(db)
    }

    fn db_sizes(sizes: &[(&str, usize, usize)]) -> Database {
        // (name, arity, ntuples) with integer filler tuples
        let mut db = Database::new();
        for &(name, arity, n) in sizes {
            let tuples = (0..n as i64).map(|i| {
                birds_store::Tuple::new(
                    (0..arity)
                        .map(|c| birds_store::Value::Int(i + c as i64))
                        .collect(),
                )
            });
            db.add_relation(Relation::with_tuples(name, arity, tuples).unwrap())
                .unwrap();
        }
        db
    }

    #[test]
    fn small_relation_drives_the_join() {
        let mut db = db_sizes(&[("big", 2, 1000), ("+v", 2, 2)]);
        let ctx = ctx_with(&mut db);
        // +r(X,Y) :- +v(X,Y), big(X,Y) — plan must start at +v.
        let rule = parse_rule("+r(X, Y) :- big(X, Y), +v(X, Y).").unwrap();
        let plan = plan_rule(&rule, &ctx).unwrap();
        assert_eq!(plan.steps[0].literal, 1, "join starts at +v");
        // big(X,Y) then fully bound -> exists check, no partial index.
        assert_eq!(plan.steps[1].kind(), StepKind::ExistsCheck);
        let StepOp::Check { atom: a, .. } = &plan.steps[1].op else {
            panic!("check step expected");
        };
        assert!(a.full_probe, "all positions bound by the first join");
    }

    #[test]
    fn negated_atoms_run_once_bound() {
        let mut db = db_sizes(&[("r", 1, 10), ("s", 1, 10)]);
        let ctx = ctx_with(&mut db);
        let rule = parse_rule("h(X) :- r(X), not s(X).").unwrap();
        let plan = plan_rule(&rule, &ctx).unwrap();
        assert_eq!(
            plan.steps.iter().map(Step::kind).collect::<Vec<_>>(),
            vec![StepKind::Join, StepKind::NegCheck]
        );
    }

    #[test]
    fn grounding_equality_binds_before_probe() {
        let mut db = db_sizes(&[("r", 2, 100)]);
        let ctx = ctx_with(&mut db);
        let rule = parse_rule("h(X) :- r(X, Y), Y = 5.").unwrap();
        let plan = plan_rule(&rule, &ctx).unwrap();
        // Y = 5 binds first, then r(X,Y) probes with column 1 bound.
        assert_eq!(plan.steps[0].kind(), StepKind::Bind);
        assert_eq!(plan.steps[1].kind(), StepKind::Join);
        assert_eq!(plan.steps[1].probe_cols(), &[1]);
        assert_eq!(plan.index_requests, vec![("r".to_string(), vec![1])]);
    }

    #[test]
    fn slots_are_dense_and_head_compiles() {
        let mut db = db_sizes(&[("r", 3, 10)]);
        let ctx = ctx_with(&mut db);
        let rule = parse_rule("h(Z, X, 'tag') :- r(X, Y, Z).").unwrap();
        let plan = plan_rule(&rule, &ctx).unwrap();
        assert_eq!(plan.nslots, 3, "X, Y, Z each get one slot");
        let head = plan.head.as_ref().unwrap();
        assert_eq!(head.len(), 3);
        assert!(matches!(head[0], HeadTerm::Slot(_)));
        assert!(matches!(head[2], HeadTerm::Const(_)));
    }

    #[test]
    fn repeated_variable_within_atom_compiles_to_check() {
        let mut db = db_sizes(&[("e", 2, 10)]);
        let ctx = ctx_with(&mut db);
        let rule = parse_rule("diag(X) :- e(X, X).").unwrap();
        let plan = plan_rule(&rule, &ctx).unwrap();
        let StepOp::Scan(a) = &plan.steps[0].op else {
            panic!("scan step expected");
        };
        assert_eq!(a.bind.len(), 1, "first occurrence binds");
        assert_eq!(a.check.len(), 1, "second occurrence checks");
        assert_eq!(a.bind[0].1, a.check[0].1, "against the same slot");
    }

    #[test]
    fn unknown_relation_reported() {
        let mut db = db_sizes(&[]);
        let ctx = ctx_with(&mut db);
        let rule = parse_rule("h(X) :- ghost(X).").unwrap();
        assert!(matches!(
            plan_rule(&rule, &ctx),
            Err(EvalError::UnknownRelation(_))
        ));
    }

    #[test]
    fn unsafe_rule_detected_at_planning() {
        let rule = parse_rule("h(X) :- r(X), not s(X, Y).").unwrap();
        let mut db = db_sizes(&[("r", 1, 1), ("s", 2, 1)]);
        let ctx = ctx_with(&mut db);
        let err = plan_rule(&rule, &ctx).unwrap_err();
        assert!(matches!(err, EvalError::UnsafeRule { .. }));
    }

    #[test]
    fn constants_count_as_bound_positions() {
        let mut db = db_sizes(&[("r", 2, 50)]);
        let ctx = ctx_with(&mut db);
        let rule = parse_rule("h(X) :- r(X, 7).").unwrap();
        let plan = plan_rule(&rule, &ctx).unwrap();
        assert_eq!(plan.steps[0].probe_cols(), &[1]);
    }

    #[test]
    fn comparison_guard_compiles_to_range_scan() {
        let mut db = db_sizes(&[("items", 2, 100)]);
        let ctx = ctx_with(&mut db);
        let rule = parse_rule("h(I) :- items(I, P), P > 50.").unwrap();
        let plan = plan_rule(&rule, &ctx).unwrap();
        assert_eq!(plan.steps.len(), 1, "the Compare is elided");
        assert_eq!(plan.steps[0].kind(), StepKind::RangeJoin);
        let StepOp::RangeScan { col, guards, .. } = &plan.steps[0].op else {
            panic!("range scan expected");
        };
        assert_eq!(*col, 1);
        assert_eq!(guards.len(), 1);
        assert_eq!(guards[0].op, CmpOp::Gt);
        assert_eq!(guards[0].literal, 1);
        assert!(matches!(guards[0].bound, SlotTerm::Const(_)));
        assert_eq!(plan.ordered_requests, vec![("items".to_string(), 1)]);
        assert!(plan.index_requests.is_empty());
    }

    #[test]
    fn negated_and_swapped_guards_normalize() {
        let mut db = db_sizes(&[("items", 2, 100)]);
        let ctx = ctx_with(&mut db);
        // `not P > 50` is `P <= 50`; `10 < P` is `P > 10`.
        let rule = parse_rule("h(I) :- items(I, P), not P > 50, 10 < P.").unwrap();
        let plan = plan_rule(&rule, &ctx).unwrap();
        assert_eq!(plan.steps.len(), 1, "both guards absorbed");
        let StepOp::RangeScan { guards, .. } = &plan.steps[0].op else {
            panic!("range scan expected");
        };
        assert_eq!(
            guards.iter().map(|g| g.op).collect::<Vec<_>>(),
            vec![CmpOp::Le, CmpOp::Gt]
        );
    }

    #[test]
    fn absorption_stops_at_a_ready_check() {
        // `not s(X)` becomes placeable as soon as the scan binds X and
        // would run *before* the guard; absorbing the guard past it
        // would reorder per-tuple evaluation, so pushdown must not fire.
        let mut db = db_sizes(&[("r", 1, 10), ("s", 1, 10)]);
        let ctx = ctx_with(&mut db);
        let rule = parse_rule("h(X) :- r(X), not s(X), X > 5.").unwrap();
        let plan = plan_rule(&rule, &ctx).unwrap();
        assert_eq!(
            plan.steps.iter().map(Step::kind).collect::<Vec<_>>(),
            vec![StepKind::Join, StepKind::NegCheck, StepKind::Filter]
        );
        assert!(plan.ordered_requests.is_empty());
    }

    #[test]
    fn guard_against_earlier_bound_slot_is_absorbed() {
        let mut db = db_sizes(&[("r", 1, 2), ("s", 1, 100)]);
        let ctx = ctx_with(&mut db);
        let rule = parse_rule("h(X, Y) :- r(X), s(Y), Y > X.").unwrap();
        let plan = plan_rule(&rule, &ctx).unwrap();
        assert_eq!(plan.steps.len(), 2);
        let StepOp::RangeScan { guards, .. } = &plan.steps[1].op else {
            panic!("second scan absorbs the guard, got {:?}", plan.steps[1].op);
        };
        assert!(matches!(guards[0].bound, SlotTerm::Slot(_)));
    }

    #[test]
    fn guard_on_second_column_stays_residual() {
        let mut db = db_sizes(&[("r", 2, 100)]);
        let ctx = ctx_with(&mut db);
        let rule = parse_rule("h(A, B) :- r(A, B), A > 1, B > 2.").unwrap();
        let plan = plan_rule(&rule, &ctx).unwrap();
        let StepOp::RangeScan { col, guards, .. } = &plan.steps[0].op else {
            panic!("range scan expected");
        };
        assert_eq!((*col, guards.len()), (0, 1));
        assert_eq!(plan.steps[1].kind(), StepKind::Filter);
    }

    #[test]
    fn both_sides_fresh_is_not_a_guard() {
        let mut db = db_sizes(&[("r", 2, 100)]);
        let ctx = ctx_with(&mut db);
        let rule = parse_rule("h(A, B) :- r(A, B), A < B.").unwrap();
        let plan = plan_rule(&rule, &ctx).unwrap();
        assert_eq!(
            plan.steps.iter().map(Step::kind).collect::<Vec<_>>(),
            vec![StepKind::Join, StepKind::Filter]
        );
    }

    #[test]
    fn pushdown_can_be_disabled() {
        let mut db = db_sizes(&[("items", 2, 100)]);
        let mut cache = PlanCache::new();
        cache.set_range_pushdown(false);
        let mut ctx = EvalContext::with_plan_cache(&mut db, &mut cache);
        let rule = parse_rule("h(I) :- items(I, P), P > 50.").unwrap();
        let plan = ctx.plan_for(&rule).unwrap();
        assert_eq!(
            plan.steps.iter().map(Step::kind).collect::<Vec<_>>(),
            vec![StepKind::Join, StepKind::Filter],
            "hash-only baseline keeps the scan+filter shape"
        );
        assert!(plan.ordered_requests.is_empty());
    }

    #[test]
    fn toggling_pushdown_drops_compiled_plans() {
        let mut cache = PlanCache::new();
        let mut db = db_sizes(&[("r", 2, 50)]);
        let rule = parse_rule("h(X) :- r(X, 7).").unwrap();
        {
            let mut ctx = EvalContext::with_plan_cache(&mut db, &mut cache);
            ctx.plan_for(&rule).unwrap();
        }
        assert_eq!(cache.len(), 1);
        cache.set_range_pushdown(false);
        assert!(cache.is_empty(), "stale plans embed the old setting");
        cache.set_range_pushdown(false); // no-op: same setting
    }

    #[test]
    fn selectivity_estimate_prefers_the_more_selective_probe() {
        // Both `big` and `mid` are probed on a bound column. `big` has
        // 400 tuples but a unique-key index (est 1); `mid` has 100
        // tuples and no index (est 100). Raw size ordering would join
        // `mid` first; the ndv-refined estimate must pick `big`.
        let mut db = db_sizes(&[("k", 1, 2), ("big", 2, 400), ("mid", 2, 100)]);
        db.relation_mut("big").unwrap().ensure_index(&[0]).unwrap();
        let ctx = ctx_with(&mut db);
        let rule = parse_rule("h(X) :- k(X), big(X, A), mid(X, B).").unwrap();
        let plan = plan_rule(&rule, &ctx).unwrap();
        let order: Vec<usize> = plan.steps.iter().map(|s| s.literal).collect();
        assert_eq!(order, vec![0, 1, 2], "k, then big (est 1), then mid");
    }

    #[test]
    fn plan_cache_hits_after_first_lookup() {
        let mut db = db_sizes(&[("r", 2, 50)]);
        let mut cache = PlanCache::new();
        let rule = parse_rule("h(X) :- r(X, 7).").unwrap();
        {
            let mut ctx = EvalContext::with_plan_cache(&mut db, &mut cache);
            let p1 = ctx.plan_for(&rule).unwrap();
            let p2 = ctx.plan_for(&rule).unwrap();
            assert!(Arc::ptr_eq(&p1, &p2), "second lookup reuses the plan");
        }
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.hits(), 1);
        // A fresh context over the same cache still hits.
        {
            let mut ctx = EvalContext::with_plan_cache(&mut db, &mut cache);
            ctx.plan_for(&rule).unwrap();
        }
        assert_eq!(cache.misses(), 1, "no replanning across contexts");
        assert_eq!(cache.hits(), 2);
    }
}
