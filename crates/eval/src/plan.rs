//! Greedy join planning for a single rule.
//!
//! The planner orders body literals so that:
//!
//! 1. cheap *filters* (negated atoms, comparisons, fully-bound positive
//!    atoms) run as early as their variables are bound;
//! 2. grounding equalities (`X = c`, `X = Y` with one side bound) bind
//!    immediately;
//! 3. remaining positive atoms are chosen greedily by (most bound argument
//!    positions, smallest relation) — so a rule whose body contains a tiny
//!    delta relation starts its join there, giving the `O(|Δ|)` behaviour
//!    the incrementalized strategies rely on (paper §5 / Figure 6).
//!
//! Planning also records which `(relation, columns)` hash indexes the
//! execution will probe so the evaluator can build them up front.

use crate::context::EvalContext;
use crate::error::{EvalError, EvalResult};
use birds_datalog::{CmpOp, Literal, Rule, Term};
use std::collections::BTreeSet;

/// How a planned literal will be executed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StepKind {
    /// Positive atom that binds at least one new variable: iterate probe
    /// results.
    Join,
    /// Positive atom whose non-anonymous variables are all bound:
    /// existence check.
    ExistsCheck,
    /// Negated atom: non-existence check.
    NegCheck,
    /// Builtin filter (comparison, or equality with both sides bound).
    Filter,
    /// Positive equality that assigns a value to an unbound variable.
    Bind,
}

/// One step of a rule plan: which body literal to run and how.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Step {
    /// Index into `rule.body`.
    pub literal: usize,
    /// Execution mode.
    pub kind: StepKind,
    /// For atom steps: argument positions that are bound (constant or
    /// bound variable) at this point — the index probe columns.
    pub probe_cols: Vec<usize>,
}

/// A complete plan for one rule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RulePlan {
    /// Ordered steps covering every body literal exactly once.
    pub steps: Vec<Step>,
    /// `(relation flat name, columns)` indexes the plan will probe.
    pub index_requests: Vec<(String, Vec<usize>)>,
}

/// Positions of an atom's terms that are bound given `bound` variables.
/// Anonymous variables are never bound.
fn bound_positions(terms: &[Term], bound: &BTreeSet<String>) -> Vec<usize> {
    terms
        .iter()
        .enumerate()
        .filter(|(_, t)| match t {
            Term::Const(_) => true,
            Term::Var(v) => !t.is_anonymous() && bound.contains(v),
        })
        .map(|(i, _)| i)
        .collect()
}

/// Is `t` resolvable (a constant or a bound variable)?
fn resolvable(t: &Term, bound: &BTreeSet<String>) -> bool {
    match t {
        Term::Const(_) => true,
        Term::Var(v) => bound.contains(v),
    }
}

/// Plan a rule against the current context (relation sizes drive the
/// greedy choice; all body relations must already exist).
pub fn plan_rule(rule: &Rule, ctx: &EvalContext) -> EvalResult<RulePlan> {
    let mut bound: BTreeSet<String> = BTreeSet::new();
    let mut remaining: Vec<usize> = (0..rule.body.len()).collect();
    let mut steps = Vec::new();
    let mut index_requests = Vec::new();

    let push_atom_step = |literal: usize,
                          kind: StepKind,
                          flat: String,
                          arity: usize,
                          probe_cols: Vec<usize>,
                          steps: &mut Vec<Step>,
                          index_requests: &mut Vec<(String, Vec<usize>)>| {
        if !probe_cols.is_empty() && probe_cols.len() < arity {
            index_requests.push((flat, probe_cols.clone()));
        }
        steps.push(Step {
            literal,
            kind,
            probe_cols,
        });
    };

    while !remaining.is_empty() {
        // Phase 1: place every literal currently usable as a filter/binder.
        let mut placed_any = true;
        while placed_any {
            placed_any = false;
            let mut i = 0;
            while i < remaining.len() {
                let li = remaining[i];
                match &rule.body[li] {
                    Literal::Atom { atom, negated } => {
                        let named_vars_bound = atom.terms.iter().all(|t| match t {
                            Term::Const(_) => true,
                            Term::Var(v) => t.is_anonymous() || bound.contains(v),
                        });
                        if named_vars_bound {
                            let cols = bound_positions(&atom.terms, &bound);
                            let kind = if *negated {
                                StepKind::NegCheck
                            } else {
                                StepKind::ExistsCheck
                            };
                            push_atom_step(
                                li,
                                kind,
                                atom.pred.flat_name(),
                                atom.arity(),
                                cols,
                                &mut steps,
                                &mut index_requests,
                            );
                            remaining.remove(i);
                            placed_any = true;
                            continue;
                        }
                        i += 1;
                    }
                    Literal::Builtin {
                        op,
                        left,
                        right,
                        negated,
                    } => {
                        let l_ok = resolvable(left, &bound);
                        let r_ok = resolvable(right, &bound);
                        if l_ok && r_ok {
                            steps.push(Step {
                                literal: li,
                                kind: StepKind::Filter,
                                probe_cols: vec![],
                            });
                            remaining.remove(i);
                            placed_any = true;
                            continue;
                        }
                        // Grounding equality: bind the unbound side.
                        if *op == CmpOp::Eq && !*negated && (l_ok || r_ok) {
                            let newly = if l_ok { right } else { left };
                            if let Term::Var(v) = newly {
                                bound.insert(v.clone());
                                steps.push(Step {
                                    literal: li,
                                    kind: StepKind::Bind,
                                    probe_cols: vec![],
                                });
                                remaining.remove(i);
                                placed_any = true;
                                continue;
                            }
                        }
                        i += 1;
                    }
                }
            }
        }
        if remaining.is_empty() {
            break;
        }

        // Phase 2: choose the next positive atom to join.
        let mut best: Option<(usize, usize, usize, usize)> = None; // (pos in remaining, li, -bound count inverted, size)
        for (pos, &li) in remaining.iter().enumerate() {
            if let Literal::Atom {
                atom,
                negated: false,
            } = &rule.body[li]
            {
                let flat = atom.pred.flat_name();
                let size = ctx
                    .relation_len(&flat)
                    .ok_or_else(|| EvalError::UnknownRelation(flat.clone()))?;
                let nbound = bound_positions(&atom.terms, &bound).len();
                let better = match best {
                    None => true,
                    Some((_, _, best_bound, best_size)) => {
                        // Prefer: at least one bound position (indexable),
                        // then smaller relation, then more bound positions.
                        let cand_indexed = nbound > 0;
                        let best_indexed = best_bound > 0;
                        (cand_indexed, std::cmp::Reverse(size), nbound)
                            > (best_indexed, std::cmp::Reverse(best_size), best_bound)
                    }
                };
                if better {
                    best = Some((pos, li, nbound, size));
                }
            }
        }
        let Some((pos, li, _, _)) = best else {
            // Only negated atoms / builtins with unbound variables remain.
            let lit = &rule.body[remaining[0]];
            let var = lit
                .variables()
                .into_iter()
                .find(|v| !bound.contains(*v))
                .unwrap_or("?")
                .to_owned();
            return Err(EvalError::UnsafeRule {
                rule: rule.to_string(),
                variable: var,
            });
        };
        let Literal::Atom { atom, .. } = &rule.body[li] else {
            unreachable!()
        };
        let cols = bound_positions(&atom.terms, &bound);
        for t in &atom.terms {
            if let Term::Var(v) = t {
                if !t.is_anonymous() {
                    bound.insert(v.clone());
                }
            }
        }
        push_atom_step(
            li,
            StepKind::Join,
            atom.pred.flat_name(),
            atom.arity(),
            cols,
            &mut steps,
            &mut index_requests,
        );
        remaining.remove(pos);
    }

    Ok(RulePlan {
        steps,
        index_requests,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use birds_datalog::parse_rule;
    use birds_store::{Database, Relation};

    fn ctx_with(db: &mut Database) -> EvalContext<'_> {
        EvalContext::new(db)
    }

    fn db_sizes(sizes: &[(&str, usize, usize)]) -> Database {
        // (name, arity, ntuples) with integer filler tuples
        let mut db = Database::new();
        for &(name, arity, n) in sizes {
            let tuples = (0..n as i64).map(|i| {
                birds_store::Tuple::new(
                    (0..arity)
                        .map(|c| birds_store::Value::Int(i + c as i64))
                        .collect(),
                )
            });
            db.add_relation(Relation::with_tuples(name, arity, tuples).unwrap())
                .unwrap();
        }
        db
    }

    #[test]
    fn small_relation_drives_the_join() {
        let mut db = db_sizes(&[("big", 2, 1000), ("+v", 2, 2)]);
        let ctx = ctx_with(&mut db);
        // +r(X,Y) :- +v(X,Y), big(X,Y) — plan must start at +v.
        let rule = parse_rule("+r(X, Y) :- big(X, Y), +v(X, Y).").unwrap();
        let plan = plan_rule(&rule, &ctx).unwrap();
        assert_eq!(plan.steps[0].literal, 1, "join starts at +v");
        // big(X,Y) then fully bound -> exists check, no partial index.
        assert_eq!(plan.steps[1].kind, StepKind::ExistsCheck);
    }

    #[test]
    fn negated_atoms_run_once_bound() {
        let mut db = db_sizes(&[("r", 1, 10), ("s", 1, 10)]);
        let ctx = ctx_with(&mut db);
        let rule = parse_rule("h(X) :- r(X), not s(X).").unwrap();
        let plan = plan_rule(&rule, &ctx).unwrap();
        assert_eq!(
            plan.steps
                .iter()
                .map(|s| s.kind.clone())
                .collect::<Vec<_>>(),
            vec![StepKind::Join, StepKind::NegCheck]
        );
    }

    #[test]
    fn grounding_equality_binds_before_probe() {
        let mut db = db_sizes(&[("r", 2, 100)]);
        let ctx = ctx_with(&mut db);
        let rule = parse_rule("h(X) :- r(X, Y), Y = 5.").unwrap();
        let plan = plan_rule(&rule, &ctx).unwrap();
        // Y = 5 binds first, then r(X,Y) probes with column 1 bound.
        assert_eq!(plan.steps[0].kind, StepKind::Bind);
        assert_eq!(plan.steps[1].kind, StepKind::Join);
        assert_eq!(plan.steps[1].probe_cols, vec![1]);
        assert_eq!(plan.index_requests, vec![("r".to_string(), vec![1])]);
    }

    #[test]
    fn unknown_relation_reported() {
        let mut db = db_sizes(&[]);
        let ctx = ctx_with(&mut db);
        let rule = parse_rule("h(X) :- ghost(X).").unwrap();
        assert!(matches!(
            plan_rule(&rule, &ctx),
            Err(EvalError::UnknownRelation(_))
        ));
    }

    #[test]
    fn unsafe_rule_detected_at_planning() {
        let mut db = db_sizes(&[("r", 1, 1)]);
        let ctx = ctx_with(&mut db);
        let rule = parse_rule("h(X) :- r(X), not s(X, Y).").unwrap();
        // s is unknown AND Y unbound; make s known to isolate unsafety.
        db_sizes(&[]);
        let mut db2 = db_sizes(&[("r", 1, 1), ("s", 2, 1)]);
        let ctx2 = ctx_with(&mut db2);
        let err = plan_rule(&rule, &ctx2).unwrap_err();
        assert!(matches!(err, EvalError::UnsafeRule { .. }));
        let _ = ctx; // silence unused in the first setup
    }

    #[test]
    fn constants_count_as_bound_positions() {
        let mut db = db_sizes(&[("r", 2, 50)]);
        let ctx = ctx_with(&mut db);
        let rule = parse_rule("h(X) :- r(X, 7).").unwrap();
        let plan = plan_rule(&rule, &ctx).unwrap();
        assert_eq!(plan.steps[0].probe_cols, vec![1]);
    }
}
