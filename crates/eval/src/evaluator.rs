//! Stratified bottom-up execution of planned rules.

use crate::context::EvalContext;
use crate::error::{EvalError, EvalResult};
use crate::plan::{plan_rule, RulePlan, StepKind};
use birds_datalog::{check_nonrecursive, stratify, Head, Literal, PredRef, Program, Rule, Term};
use birds_store::{Relation, Tuple, Value};
use std::collections::{BTreeMap, HashMap, HashSet};

/// The IDB relations produced by a program run.
#[derive(Debug, Default)]
pub struct EvalOutput {
    /// One relation per IDB predicate, keyed by predicate reference.
    pub relations: BTreeMap<PredRef, Relation>,
}

impl EvalOutput {
    /// The relation of predicate `p`, if the program defined it.
    pub fn relation(&self, p: &PredRef) -> Option<&Relation> {
        self.relations.get(p)
    }
}

/// Evaluate a non-recursive program: compute every IDB relation bottom-up
/// in stratification order. Constraint (`⊥`) rules are ignored here — use
/// [`violated_constraints`].
pub fn evaluate_program(program: &Program, ctx: &mut EvalContext) -> EvalResult<EvalOutput> {
    check_nonrecursive(program).map_err(|e| EvalError::BadProgram(e.to_string()))?;
    let order = stratify(program).map_err(|e| EvalError::BadProgram(e.to_string()))?;

    for pred in &order {
        let arity = program
            .arity_of(pred)
            .ok_or_else(|| EvalError::BadProgram(format!("no arity for {pred}")))?;
        let mut result: HashSet<Tuple> = HashSet::new();
        for rule in program.rules_for(pred) {
            eval_rule_into(rule, ctx, &mut result, false)?;
        }
        let rel = Relation::with_tuples(pred.flat_name(), arity, result)?;
        ctx.insert_overlay(rel);
    }

    // Move results out of the overlay.
    let mut out = EvalOutput::default();
    for pred in &order {
        if let Some(rel) = ctx.take_overlay(&pred.flat_name()) {
            out.relations.insert(pred.clone(), rel);
        }
    }
    Ok(out)
}

/// Evaluate a program and return only the relation of `pred`.
pub fn evaluate_query(
    program: &Program,
    pred: &PredRef,
    ctx: &mut EvalContext,
) -> EvalResult<Relation> {
    let mut out = evaluate_program(program, ctx)?;
    out.relations
        .remove(pred)
        .ok_or_else(|| EvalError::BadProgram(format!("program does not define {pred}")))
}

/// Evaluate the program's integrity constraints: returns every `⊥` rule
/// whose body is satisfiable in the current context. IDB relations the
/// constraints depend on are computed first (and left in the overlay).
pub fn violated_constraints(program: &Program, ctx: &mut EvalContext) -> EvalResult<Vec<Rule>> {
    // Materialize IDB support (e.g. a constraint over an intermediate
    // predicate).
    let out = evaluate_program(program, ctx)?;
    for (_, rel) in out.relations {
        ctx.insert_overlay(rel);
    }
    let mut violated = Vec::new();
    for rule in program.constraints() {
        let mut found: HashSet<Tuple> = HashSet::new();
        eval_rule_into(rule, ctx, &mut found, true)?;
        if !found.is_empty() {
            violated.push(rule.clone());
        }
    }
    Ok(violated)
}

/// Evaluate one rule, inserting derived head tuples into `out`.
/// With `stop_at_first`, stops after one derivation (constraint checking).
pub fn eval_rule_into(
    rule: &Rule,
    ctx: &mut EvalContext,
    out: &mut HashSet<Tuple>,
    stop_at_first: bool,
) -> EvalResult<()> {
    // Facts: ground head, empty body.
    if rule.body.is_empty() {
        match &rule.head {
            Head::Atom(a) => {
                let t: Option<Vec<Value>> = a.terms.iter().map(|t| t.as_const().cloned()).collect();
                let t = t.ok_or_else(|| EvalError::UnsafeRule {
                    rule: rule.to_string(),
                    variable: "head of fact".into(),
                })?;
                out.insert(Tuple::new(t));
            }
            Head::Bottom => {
                // `⊥.` — an always-violated constraint; represent by a
                // nullary witness.
                out.insert(Tuple::new(vec![]));
            }
        }
        return Ok(());
    }

    // Validate arities of all body atoms up front.
    for lit in &rule.body {
        if let Some(a) = lit.atom() {
            let flat = a.pred.flat_name();
            let rel = ctx
                .relation(&flat)
                .ok_or_else(|| EvalError::UnknownRelation(flat.clone()))?;
            if rel.arity() != a.arity() {
                return Err(EvalError::ArityMismatch {
                    relation: flat,
                    expected: rel.arity(),
                    found: a.arity(),
                });
            }
        }
    }

    let plan = plan_rule(rule, ctx)?;
    for (name, cols) in &plan.index_requests {
        ctx.ensure_index(name, cols)?;
    }
    let mut bindings: HashMap<&str, Value> = HashMap::new();
    step(rule, &plan, 0, ctx, &mut bindings, out, stop_at_first)
}

/// Resolve a term under the current bindings.
fn resolve<'a>(t: &'a Term, bindings: &'a HashMap<&str, Value>) -> Option<&'a Value> {
    match t {
        Term::Const(v) => Some(v),
        Term::Var(name) => bindings.get(name.as_str()),
    }
}

/// Instantiate the head atom once all its variables are bound.
fn emit(rule: &Rule, bindings: &HashMap<&str, Value>, out: &mut HashSet<Tuple>) -> EvalResult<()> {
    match &rule.head {
        Head::Atom(a) => {
            let mut vals = Vec::with_capacity(a.terms.len());
            for t in &a.terms {
                let v = resolve(t, bindings).ok_or_else(|| EvalError::UnsafeRule {
                    rule: rule.to_string(),
                    variable: t.to_string(),
                })?;
                vals.push(v.clone());
            }
            out.insert(Tuple::new(vals));
        }
        Head::Bottom => {
            out.insert(Tuple::new(vec![]));
        }
    }
    Ok(())
}

/// Recursive execution of plan steps. Returns `Ok(())`; `out` accumulates
/// results. With `stop_at_first`, unwinds as soon as `out` is nonempty.
#[allow(clippy::too_many_arguments)]
fn step<'r>(
    rule: &'r Rule,
    plan: &RulePlan,
    idx: usize,
    ctx: &EvalContext,
    bindings: &mut HashMap<&'r str, Value>,
    out: &mut HashSet<Tuple>,
    stop_at_first: bool,
) -> EvalResult<()> {
    if stop_at_first && !out.is_empty() {
        return Ok(());
    }
    let Some(s) = plan.steps.get(idx) else {
        return emit(rule, bindings, out);
    };
    let lit = &rule.body[s.literal];
    match (&s.kind, lit) {
        (StepKind::Join, Literal::Atom { atom, .. }) => {
            let flat = atom.pred.flat_name();
            let rel = ctx
                .relation(&flat)
                .ok_or_else(|| EvalError::UnknownRelation(flat.clone()))?;
            let matches = probe_atom(rel, &atom.terms, &s.probe_cols, bindings);
            // Collect matches to avoid holding a borrow of ctx across the
            // recursive call (bindings mutation is local anyway).
            let matches: Vec<Tuple> = matches.cloned().collect();
            'tuples: for tuple in matches {
                let mut newly_bound: Vec<&'r str> = Vec::new();
                for (i, term) in atom.terms.iter().enumerate() {
                    match term {
                        Term::Const(c) => {
                            if &tuple[i] != c {
                                unbind(bindings, &newly_bound);
                                continue 'tuples;
                            }
                        }
                        Term::Var(v) => {
                            if term.is_anonymous() {
                                continue;
                            }
                            match bindings.get(v.as_str()) {
                                Some(bv) => {
                                    if bv != &tuple[i] {
                                        unbind(bindings, &newly_bound);
                                        continue 'tuples;
                                    }
                                }
                                None => {
                                    bindings.insert(v.as_str(), tuple[i].clone());
                                    newly_bound.push(v.as_str());
                                }
                            }
                        }
                    }
                }
                step(rule, plan, idx + 1, ctx, bindings, out, stop_at_first)?;
                unbind(bindings, &newly_bound);
                if stop_at_first && !out.is_empty() {
                    return Ok(());
                }
            }
            Ok(())
        }
        (StepKind::ExistsCheck | StepKind::NegCheck, Literal::Atom { atom, .. }) => {
            let flat = atom.pred.flat_name();
            let rel = ctx
                .relation(&flat)
                .ok_or_else(|| EvalError::UnknownRelation(flat.clone()))?;
            let exists = atom_exists(rel, &atom.terms, &s.probe_cols, bindings)?;
            let pass = if s.kind == StepKind::NegCheck {
                !exists
            } else {
                exists
            };
            if pass {
                step(rule, plan, idx + 1, ctx, bindings, out, stop_at_first)?;
            }
            Ok(())
        }
        (
            StepKind::Filter,
            Literal::Builtin {
                op,
                left,
                right,
                negated,
            },
        ) => {
            let lv = resolve(left, bindings).ok_or_else(|| EvalError::UnsafeRule {
                rule: rule.to_string(),
                variable: left.to_string(),
            })?;
            let rv = resolve(right, bindings).ok_or_else(|| EvalError::UnsafeRule {
                rule: rule.to_string(),
                variable: right.to_string(),
            })?;
            let res = op.eval(lv, rv).ok_or_else(|| EvalError::SortMismatch {
                rule: rule.to_string(),
                detail: format!("{lv} {} {rv}", op.symbol()),
            })?;
            if res != *negated {
                step(rule, plan, idx + 1, ctx, bindings, out, stop_at_first)?;
            }
            Ok(())
        }
        (StepKind::Bind, Literal::Builtin { left, right, .. }) => {
            let (var, value) = match (resolve(left, bindings), resolve(right, bindings)) {
                (Some(v), None) => match right {
                    Term::Var(name) => (name.as_str(), v.clone()),
                    _ => unreachable!("planner guarantees unbound side is a variable"),
                },
                (None, Some(v)) => match left {
                    Term::Var(name) => (name.as_str(), v.clone()),
                    _ => unreachable!("planner guarantees unbound side is a variable"),
                },
                (Some(lv), Some(rv)) => {
                    // Both became bound by the time we run: act as filter.
                    if lv == rv {
                        return step(rule, plan, idx + 1, ctx, bindings, out, stop_at_first);
                    }
                    return Ok(());
                }
                (None, None) => {
                    return Err(EvalError::UnsafeRule {
                        rule: rule.to_string(),
                        variable: left.to_string(),
                    })
                }
            };
            bindings.insert(var, value);
            step(rule, plan, idx + 1, ctx, bindings, out, stop_at_first)?;
            bindings.remove(var);
            Ok(())
        }
        (kind, lit) => Err(EvalError::BadProgram(format!(
            "plan step {kind:?} does not match literal {lit}"
        ))),
    }
}

fn unbind<'r>(bindings: &mut HashMap<&'r str, Value>, names: &[&'r str]) {
    for n in names {
        bindings.remove(n);
    }
}

/// Probe the relation for tuples matching the atom's bound positions.
fn probe_atom<'a>(
    rel: &'a Relation,
    terms: &[Term],
    probe_cols: &[usize],
    bindings: &HashMap<&str, Value>,
) -> Box<dyn Iterator<Item = &'a Tuple> + 'a> {
    if probe_cols.is_empty() {
        return Box::new(rel.iter());
    }
    let key: Vec<&Value> = probe_cols
        .iter()
        .map(|&c| resolve(&terms[c], bindings).expect("probe columns are bound"))
        .collect();
    rel.probe(probe_cols, &key)
}

/// Existence test for a (possibly partially anonymous) atom with all named
/// variables bound.
fn atom_exists(
    rel: &Relation,
    terms: &[Term],
    probe_cols: &[usize],
    bindings: &HashMap<&str, Value>,
) -> EvalResult<bool> {
    // Fast path: every position bound -> plain set membership.
    if probe_cols.len() == terms.len() {
        let vals: Vec<Value> = terms
            .iter()
            .map(|t| resolve(t, bindings).expect("all positions bound").clone())
            .collect();
        return Ok(rel.contains(&Tuple::new(vals)));
    }
    Ok(probe_atom(rel, terms, probe_cols, bindings)
        .next()
        .is_some())
}

#[cfg(test)]
mod tests {
    use super::*;
    use birds_datalog::parse_program;
    use birds_store::{tuple, Database};

    fn setup() -> Database {
        let mut db = Database::new();
        db.add_relation(Relation::with_tuples("r1", 1, vec![tuple![1]]).unwrap())
            .unwrap();
        db.add_relation(Relation::with_tuples("r2", 1, vec![tuple![2], tuple![4]]).unwrap())
            .unwrap();
        db.add_relation(
            Relation::with_tuples("v", 1, vec![tuple![1], tuple![3], tuple![4]]).unwrap(),
        )
        .unwrap();
        db
    }

    #[test]
    fn example_3_1_delta_computation() {
        // The paper's running example: S = {r1(1), r2(2), r2(4)},
        // V' = {1,3,4} must yield ΔR1 = {+r1(3)}, ΔR2 = {-r2(2)}.
        let program = parse_program(
            "
            -r1(X) :- r1(X), not v(X).
            -r2(X) :- r2(X), not v(X).
            +r1(X) :- v(X), not r1(X), not r2(X).
            ",
        )
        .unwrap();
        let mut db = setup();
        let mut ctx = EvalContext::new(&mut db);
        let out = evaluate_program(&program, &mut ctx).unwrap();
        let plus_r1 = out.relation(&PredRef::ins("r1")).unwrap();
        assert_eq!(plus_r1.len(), 1);
        assert!(plus_r1.contains(&tuple![3]));
        let minus_r2 = out.relation(&PredRef::del("r2")).unwrap();
        assert_eq!(minus_r2.len(), 1);
        assert!(minus_r2.contains(&tuple![2]));
        let minus_r1 = out.relation(&PredRef::del("r1")).unwrap();
        assert!(minus_r1.is_empty());
    }

    #[test]
    fn multi_stratum_evaluation() {
        let program = parse_program(
            "
            m(X) :- r2(X), X > 2.
            h(X) :- m(X), v(X).
            ",
        )
        .unwrap();
        let mut db = setup();
        let mut ctx = EvalContext::new(&mut db);
        let out = evaluate_program(&program, &mut ctx).unwrap();
        let h = out.relation(&PredRef::plain("h")).unwrap();
        assert_eq!(h.len(), 1);
        assert!(h.contains(&tuple![4]));
    }

    #[test]
    fn selection_with_string_comparison() {
        let mut db = Database::new();
        db.add_relation(
            Relation::with_tuples(
                "p",
                2,
                vec![
                    tuple!["ann", "1961-05-05"],
                    tuple!["bob", "1962-06-07"],
                    tuple!["joe", "1963-01-01"],
                ],
            )
            .unwrap(),
        )
        .unwrap();
        let program =
            parse_program("b62(E, B) :- p(E, B), not B < '1962-01-01', not B > '1962-12-31'.")
                .unwrap();
        let mut ctx = EvalContext::new(&mut db);
        let out = evaluate_program(&program, &mut ctx).unwrap();
        let r = out.relation(&PredRef::plain("b62")).unwrap();
        assert_eq!(r.len(), 1);
        assert!(r.contains(&tuple!["bob", "1962-06-07"]));
    }

    #[test]
    fn anonymous_variable_semantics() {
        // retired(E) :- p(E,_), not q(E,_) — anonymous positions are
        // inner existentials on both polarities.
        let mut db = Database::new();
        db.add_relation(Relation::with_tuples("p", 2, vec![tuple![1, 10], tuple![2, 20]]).unwrap())
            .unwrap();
        db.add_relation(Relation::with_tuples("q", 2, vec![tuple![1, 99]]).unwrap())
            .unwrap();
        let program = parse_program("retired(E) :- p(E, _), not q(E, _).").unwrap();
        let mut ctx = EvalContext::new(&mut db);
        let out = evaluate_program(&program, &mut ctx).unwrap();
        let r = out.relation(&PredRef::plain("retired")).unwrap();
        assert_eq!(r.len(), 1);
        assert!(r.contains(&tuple![2]));
    }

    #[test]
    fn repeated_variables_in_atoms() {
        let mut db = Database::new();
        db.add_relation(Relation::with_tuples("e", 2, vec![tuple![1, 1], tuple![1, 2]]).unwrap())
            .unwrap();
        let program = parse_program("diag(X) :- e(X, X).").unwrap();
        let mut ctx = EvalContext::new(&mut db);
        let out = evaluate_program(&program, &mut ctx).unwrap();
        let r = out.relation(&PredRef::plain("diag")).unwrap();
        assert_eq!(r.len(), 1);
        assert!(r.contains(&tuple![1]));
    }

    #[test]
    fn head_constants_are_emitted() {
        let mut db = Database::new();
        db.add_relation(Relation::with_tuples("f", 2, vec![tuple!["ann", 1960]]).unwrap())
            .unwrap();
        let program = parse_program("res(E, B, 'F') :- f(E, B).").unwrap();
        let mut ctx = EvalContext::new(&mut db);
        let out = evaluate_program(&program, &mut ctx).unwrap();
        let r = out.relation(&PredRef::plain("res")).unwrap();
        assert!(r.contains(&tuple!["ann", 1960, "F"]));
    }

    #[test]
    fn facts_and_union() {
        let mut db = Database::new();
        db.add_relation(Relation::with_tuples("r", 1, vec![tuple![5]]).unwrap())
            .unwrap();
        let program = parse_program("u(1). u(X) :- r(X).").unwrap();
        let mut ctx = EvalContext::new(&mut db);
        let out = evaluate_program(&program, &mut ctx).unwrap();
        let u = out.relation(&PredRef::plain("u")).unwrap();
        assert_eq!(u.len(), 2);
        assert!(u.contains(&tuple![1]) && u.contains(&tuple![5]));
    }

    #[test]
    fn constraint_violation_detection() {
        let mut db = Database::new();
        db.add_relation(
            Relation::with_tuples("v", 3, vec![tuple![1, 1, 1], tuple![1, 1, 5]]).unwrap(),
        )
        .unwrap();
        let program = parse_program("false :- v(X, Y, Z), Z > 2.").unwrap();
        let mut ctx = EvalContext::new(&mut db);
        let violated = violated_constraints(&program, &mut ctx).unwrap();
        assert_eq!(violated.len(), 1);
    }

    #[test]
    fn constraint_satisfied() {
        let mut db = Database::new();
        db.add_relation(Relation::with_tuples("v", 3, vec![tuple![1, 1, 1]]).unwrap())
            .unwrap();
        let program = parse_program("false :- v(X, Y, Z), Z > 2.").unwrap();
        let mut ctx = EvalContext::new(&mut db);
        assert!(violated_constraints(&program, &mut ctx).unwrap().is_empty());
    }

    #[test]
    fn constraint_over_idb_predicate() {
        let mut db = Database::new();
        db.add_relation(Relation::with_tuples("r", 1, vec![tuple![10]]).unwrap())
            .unwrap();
        let program = parse_program(
            "
            big(X) :- r(X), X > 5.
            false :- big(X).
            ",
        )
        .unwrap();
        let mut ctx = EvalContext::new(&mut db);
        assert_eq!(violated_constraints(&program, &mut ctx).unwrap().len(), 1);
    }

    #[test]
    fn cross_sort_comparison_is_an_error() {
        let mut db = Database::new();
        db.add_relation(Relation::with_tuples("r", 1, vec![tuple!["abc"]]).unwrap())
            .unwrap();
        let program = parse_program("h(X) :- r(X), X > 5.").unwrap();
        let mut ctx = EvalContext::new(&mut db);
        assert!(matches!(
            evaluate_program(&program, &mut ctx),
            Err(EvalError::SortMismatch { .. })
        ));
    }

    #[test]
    fn arity_mismatch_detected() {
        let mut db = Database::new();
        db.add_relation(Relation::with_tuples("r", 2, vec![tuple![1, 2]]).unwrap())
            .unwrap();
        let program = parse_program("h(X) :- r(X).").unwrap();
        let mut ctx = EvalContext::new(&mut db);
        assert!(matches!(
            evaluate_program(&program, &mut ctx),
            Err(EvalError::ArityMismatch { .. })
        ));
    }

    #[test]
    fn evaluate_query_selects_one_relation() {
        let mut db = setup();
        let program = parse_program("h(X) :- r2(X). g(X) :- r1(X).").unwrap();
        let mut ctx = EvalContext::new(&mut db);
        let h = evaluate_query(&program, &PredRef::plain("h"), &mut ctx).unwrap();
        assert_eq!(h.len(), 2);
    }

    #[test]
    fn overlay_view_shadows_base_in_program() {
        // Evaluating putdelta against an *updated* view supplied as overlay.
        let mut db = setup(); // base v = {1,3,4}
        let program = parse_program("-r2(X) :- r2(X), not v(X).").unwrap();
        let mut ctx = EvalContext::new(&mut db);
        ctx.insert_overlay(Relation::with_tuples("v", 1, vec![tuple![2]]).unwrap());
        let out = evaluate_program(&program, &mut ctx).unwrap();
        let del = out.relation(&PredRef::del("r2")).unwrap();
        // with overlay v = {2}: r2 = {2,4} minus v -> delete 4 only
        assert_eq!(del.len(), 1);
        assert!(del.contains(&tuple![4]));
    }

    #[test]
    fn negated_equality_filter() {
        let mut db = Database::new();
        db.add_relation(
            Relation::with_tuples("g", 1, vec![tuple!["M"], tuple!["F"], tuple!["X"]]).unwrap(),
        )
        .unwrap();
        let program = parse_program("o(G) :- g(G), not G = 'M', not G = 'F'.").unwrap();
        let mut ctx = EvalContext::new(&mut db);
        let out = evaluate_program(&program, &mut ctx).unwrap();
        let o = out.relation(&PredRef::plain("o")).unwrap();
        assert_eq!(o.len(), 1);
        assert!(o.contains(&tuple!["X"]));
    }
}
