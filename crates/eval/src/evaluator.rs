//! Stratified bottom-up execution of compiled (slot-based) rule plans.
//!
//! Rules are compiled by [`crate::plan`] into steps whose operands are
//! numeric register slots; execution runs over a flat `Vec<Option<Value>>`
//! frame. There is no string-keyed binding map, no per-candidate tuple
//! cloning (probe results are borrowed straight out of the store), and no
//! per-call replanning — plans come from the context's [`crate::PlanCache`].

use crate::context::EvalContext;
use crate::error::{EvalError, EvalResult};
use crate::plan::{AtomStep, HeadTerm, RangeGuard, RulePlan, SlotTerm, StepOp};
use birds_datalog::{check_nonrecursive, stratify, CmpOp, Head, PredRef, Program, Rule};
use birds_store::{FxHashSet, Relation, Tuple, Value};
use std::collections::{BTreeMap, HashSet};
use std::ops::Bound;

/// The IDB relations produced by a program run.
#[derive(Debug, Default)]
pub struct EvalOutput {
    /// One relation per IDB predicate, keyed by predicate reference.
    pub relations: BTreeMap<PredRef, Relation>,
}

impl EvalOutput {
    /// The relation of predicate `p`, if the program defined it.
    pub fn relation(&self, p: &PredRef) -> Option<&Relation> {
        self.relations.get(p)
    }
}

/// Evaluate a non-recursive program: compute every IDB relation bottom-up
/// in stratification order. Constraint (`⊥`) rules are ignored here — use
/// [`violated_constraints`].
pub fn evaluate_program(program: &Program, ctx: &mut EvalContext) -> EvalResult<EvalOutput> {
    check_nonrecursive(program).map_err(|e| EvalError::BadProgram(e.to_string()))?;
    let order = stratify(program).map_err(|e| EvalError::BadProgram(e.to_string()))?;

    for pred in &order {
        let arity = program
            .arity_of(pred)
            .ok_or_else(|| EvalError::BadProgram(format!("no arity for {pred}")))?;
        let mut result: FxHashSet<Tuple> = FxHashSet::default();
        for rule in program.rules_for(pred) {
            eval_rule_into(rule, ctx, &mut result)?;
        }
        let rel = Relation::from_set(pred.flat_name(), arity, result)?;
        ctx.insert_overlay(rel);
    }

    // Move results out of the overlay.
    let mut out = EvalOutput::default();
    for pred in &order {
        if let Some(rel) = ctx.take_overlay(&pred.flat_name()) {
            out.relations.insert(pred.clone(), rel);
        }
    }
    Ok(out)
}

/// Evaluate a program and return only the relation of `pred`.
pub fn evaluate_query(
    program: &Program,
    pred: &PredRef,
    ctx: &mut EvalContext,
) -> EvalResult<Relation> {
    let mut out = evaluate_program(program, ctx)?;
    out.relations
        .remove(pred)
        .ok_or_else(|| EvalError::BadProgram(format!("program does not define {pred}")))
}

/// Evaluate the program's integrity constraints: returns every `⊥` rule
/// whose body is satisfiable in the current context. IDB relations the
/// constraints depend on are computed first (and left in the overlay).
/// Each constraint check stops at its *first* witness — nothing is
/// materialized just to test non-emptiness.
pub fn violated_constraints(program: &Program, ctx: &mut EvalContext) -> EvalResult<Vec<Rule>> {
    // Materialize IDB support (e.g. a constraint over an intermediate
    // predicate).
    let out = evaluate_program(program, ctx)?;
    for (_, rel) in out.relations {
        ctx.insert_overlay(rel);
    }
    let mut violated = Vec::new();
    for rule in program.constraints() {
        if rule_has_witness(rule, ctx)? {
            violated.push(rule.clone());
        }
    }
    Ok(violated)
}

/// Does `rule`'s body have at least one satisfying assignment? Execution
/// unwinds at the first derivation; no result set is built. This is the
/// primitive behind constraint checking.
pub fn rule_has_witness(rule: &Rule, ctx: &mut EvalContext) -> EvalResult<bool> {
    let mut found = false;
    eval_rule(rule, ctx, &mut |_t| {
        found = true;
        false // stop
    })?;
    Ok(found)
}

/// Evaluate one rule, inserting derived head tuples into `out`. (To test
/// satisfiability without materializing results, use [`rule_has_witness`].)
pub fn eval_rule_into<S: std::hash::BuildHasher>(
    rule: &Rule,
    ctx: &mut EvalContext,
    out: &mut HashSet<Tuple, S>,
) -> EvalResult<()> {
    eval_rule(rule, ctx, &mut |t| {
        out.insert(t);
        true
    })
}

/// Core rule execution: feed every derived head tuple to `sink` until the
/// sink returns `false` (stop) or derivations are exhausted.
fn eval_rule(
    rule: &Rule,
    ctx: &mut EvalContext,
    sink: &mut dyn FnMut(Tuple) -> bool,
) -> EvalResult<()> {
    // Facts: ground head, empty body.
    if rule.body.is_empty() {
        match &rule.head {
            Head::Atom(a) => {
                let t: Option<Vec<Value>> = a.terms.iter().map(|t| t.as_const().copied()).collect();
                let t = t.ok_or_else(|| EvalError::UnsafeRule {
                    rule: rule.to_string(),
                    variable: "head of fact".into(),
                })?;
                sink(Tuple::new(t));
            }
            Head::Bottom => {
                // `⊥.` — an always-violated constraint; represent by a
                // nullary witness.
                sink(Tuple::new(vec![]));
            }
        }
        return Ok(());
    }

    // Validate arities of all body atoms up front.
    for lit in &rule.body {
        if let Some(a) = lit.atom() {
            let flat = a.pred.flat_name();
            let rel = ctx
                .relation(&flat)
                .ok_or_else(|| EvalError::UnknownRelation(flat.clone()))?;
            if rel.arity() != a.arity() {
                return Err(EvalError::ArityMismatch {
                    relation: flat,
                    expected: rel.arity(),
                    found: a.arity(),
                });
            }
        }
    }

    let plan = ctx.plan_for(rule)?;
    for (name, cols) in &plan.index_requests {
        ctx.ensure_index(name, cols)?;
    }
    for (name, col) in &plan.ordered_requests {
        ctx.ensure_ordered_index(name, *col)?;
    }
    let mut frame: Vec<Option<Value>> = vec![None; plan.nslots];
    // One probe-key scratch buffer for the whole rule execution: filled,
    // consumed by the store call, and cleared at every atom step instead
    // of allocating a key vector per candidate tuple.
    let mut scratch: Vec<Value> = Vec::new();
    step(rule, &plan, 0, ctx, &mut frame, &mut scratch, sink)?;
    Ok(())
}

/// Resolve a compiled operand against the frame. Slots referenced by a
/// plan are bound before they are read — the planner places every step
/// after the steps that bind its operands.
#[inline]
fn resolve(t: &SlotTerm, frame: &[Option<Value>]) -> Value {
    match t {
        SlotTerm::Const(v) => *v,
        SlotTerm::Slot(s) => frame[*s].expect("slot bound by an earlier step"),
    }
}

/// Instantiate the compiled head template from the frame.
fn emit(
    rule: &Rule,
    plan: &RulePlan,
    frame: &[Option<Value>],
    sink: &mut dyn FnMut(Tuple) -> bool,
) -> EvalResult<bool> {
    let tuple = match &plan.head {
        None => Tuple::new(vec![]),
        Some(terms) => {
            let mut vals = Vec::with_capacity(terms.len());
            for t in terms {
                match t {
                    HeadTerm::Const(v) => vals.push(*v),
                    HeadTerm::Slot(s) => {
                        vals.push(frame[*s].expect("head slots bound by the body"))
                    }
                    HeadTerm::Unbound(name) => {
                        return Err(EvalError::UnsafeRule {
                            rule: rule.to_string(),
                            variable: name.clone(),
                        })
                    }
                }
            }
            Tuple::new(vals)
        }
    };
    Ok(sink(tuple))
}

/// Fill `scratch` with the probe key for an atom step. Leaves it empty
/// when the step scans (no bound columns).
#[inline]
fn fill_probe_key(a: &AtomStep, frame: &[Option<Value>], scratch: &mut Vec<Value>) {
    scratch.clear();
    scratch.extend(a.probe_key.iter().map(|t| resolve(t, frame)));
}

/// Existence test for a (possibly partially anonymous) atom with all
/// named variables bound.
fn atom_exists(
    a: &AtomStep,
    rel: &Relation,
    frame: &[Option<Value>],
    scratch: &mut Vec<Value>,
) -> bool {
    if a.probe_cols.is_empty() {
        return !rel.is_empty();
    }
    fill_probe_key(a, frame, scratch);
    if a.full_probe {
        // Every position bound -> plain set membership, straight off the
        // scratch slice (no Tuple allocation).
        return rel.contains_row(scratch);
    }
    rel.probe(&a.probe_cols, scratch).next().is_some()
}

/// Fold resolved range guards into one interval over the guarded
/// column. Returns `None` when the bounds don't all share one sort —
/// the caller must fall back to per-tuple filtering so the cross-sort
/// comparison surfaces as the runtime error it is.
fn guard_interval(resolved: &[(CmpOp, Value)]) -> Option<(Bound<Value>, Bound<Value>)> {
    let mut lo: Bound<Value> = Bound::Unbounded;
    let mut hi: Bound<Value> = Bound::Unbounded;
    for &(op, v) in resolved {
        match op {
            CmpOp::Gt => tighten(&mut lo, Bound::Excluded(v), true)?,
            CmpOp::Ge => tighten(&mut lo, Bound::Included(v), true)?,
            CmpOp::Lt => tighten(&mut hi, Bound::Excluded(v), false)?,
            CmpOp::Le => tighten(&mut hi, Bound::Included(v), false)?,
            CmpOp::Eq => unreachable!("range guards are order comparisons"),
        }
    }
    Some((lo, hi))
}

/// Keep the stricter of `cur` and a finite `new` bound: the greater
/// lower bound / smaller upper bound, with exclusion winning value
/// ties. `None` on a cross-sort pair.
fn tighten(cur: &mut Bound<Value>, new: Bound<Value>, lower: bool) -> Option<()> {
    let (Bound::Included(n) | Bound::Excluded(n)) = new else {
        unreachable!("guards always carry a finite bound")
    };
    match &*cur {
        Bound::Unbounded => *cur = new,
        Bound::Included(c) | Bound::Excluded(c) => match c.same_sort_cmp(&n)? {
            std::cmp::Ordering::Less => {
                if lower {
                    *cur = new;
                }
            }
            std::cmp::Ordering::Greater => {
                if !lower {
                    *cur = new;
                }
            }
            std::cmp::Ordering::Equal => {
                if matches!(new, Bound::Excluded(_)) {
                    *cur = new;
                }
            }
        },
    }
    Some(())
}

/// Recursive execution of plan steps. Returns `Ok(true)` to continue
/// enumerating derivations, `Ok(false)` once the sink asks to stop.
#[allow(clippy::too_many_arguments)]
fn step(
    rule: &Rule,
    plan: &RulePlan,
    idx: usize,
    ctx: &EvalContext,
    frame: &mut Vec<Option<Value>>,
    scratch: &mut Vec<Value>,
    sink: &mut dyn FnMut(Tuple) -> bool,
) -> EvalResult<bool> {
    let Some(s) = plan.steps.get(idx) else {
        return emit(rule, plan, frame, sink);
    };
    match &s.op {
        StepOp::Scan(a) => {
            let rel = ctx
                .relation(&a.rel)
                .ok_or_else(|| EvalError::UnknownRelation(a.rel.clone()))?;
            let matches: Box<dyn Iterator<Item = &Tuple>> = if a.probe_cols.is_empty() {
                Box::new(rel.iter())
            } else {
                fill_probe_key(a, frame, scratch);
                rel.probe(&a.probe_cols, scratch)
            };
            // Fresh binds are overwritten on every candidate and only read
            // by deeper steps, so no unbinding happens on backtrack.
            'tuples: for tuple in matches {
                for &(col, slot) in &a.bind {
                    frame[slot] = Some(tuple[col]);
                }
                for &(col, slot) in &a.check {
                    if frame[slot] != Some(tuple[col]) {
                        continue 'tuples;
                    }
                }
                if !step(rule, plan, idx + 1, ctx, frame, scratch, sink)? {
                    return Ok(false);
                }
            }
            Ok(true)
        }
        StepOp::RangeScan {
            atom: a,
            col,
            guards,
        } => {
            let rel = ctx
                .relation(&a.rel)
                .ok_or_else(|| EvalError::UnknownRelation(a.rel.clone()))?;
            // Bounds resolve once per activation (they are constants or
            // slots bound before this scan).
            let resolved: Vec<(CmpOp, Value)> = guards
                .iter()
                .map(|g: &RangeGuard| (g.op, resolve(&g.bound, frame)))
                .collect();
            let range = guard_interval(&resolved).and_then(|(lo, hi)| {
                // `range_probe` answers only from a sort-homogeneous
                // ordered index matching the bounds' sort; anything else
                // is `None` and takes the filter fallback below.
                rel.range_probe(*col, lo, hi)
            });
            if let Some(matches) = range {
                // Index path: every yielded tuple satisfies all guards
                // by construction, and no comparison can sort-error
                // (column and bounds share one sort).
                'range: for tuple in matches {
                    for &(c, slot) in &a.bind {
                        frame[slot] = Some(tuple[c]);
                    }
                    for &(c, slot) in &a.check {
                        if frame[slot] != Some(tuple[c]) {
                            continue 'range;
                        }
                    }
                    if !step(rule, plan, idx + 1, ctx, frame, scratch, sink)? {
                        return Ok(false);
                    }
                }
            } else {
                // Filter fallback: scan, then apply the guards per tuple
                // after the intra-atom checks, in guard order — exactly
                // the residual Compare steps of the un-pushed plan,
                // including their cross-sort errors.
                'scan: for tuple in rel.iter() {
                    for &(c, slot) in &a.bind {
                        frame[slot] = Some(tuple[c]);
                    }
                    for &(c, slot) in &a.check {
                        if frame[slot] != Some(tuple[c]) {
                            continue 'scan;
                        }
                    }
                    for &(op, bound) in &resolved {
                        let cv = tuple[*col];
                        let res = op
                            .eval(&cv, &bound)
                            .ok_or_else(|| EvalError::SortMismatch {
                                rule: rule.to_string(),
                                detail: format!("{cv} {} {bound}", op.symbol()),
                            })?;
                        if !res {
                            continue 'scan;
                        }
                    }
                    if !step(rule, plan, idx + 1, ctx, frame, scratch, sink)? {
                        return Ok(false);
                    }
                }
            }
            Ok(true)
        }
        StepOp::Check { atom: a, negated } => {
            let rel = ctx
                .relation(&a.rel)
                .ok_or_else(|| EvalError::UnknownRelation(a.rel.clone()))?;
            if atom_exists(a, rel, frame, scratch) != *negated {
                return step(rule, plan, idx + 1, ctx, frame, scratch, sink);
            }
            Ok(true)
        }
        StepOp::Compare {
            op,
            left,
            right,
            negated,
        } => {
            let lv = resolve(left, frame);
            let rv = resolve(right, frame);
            let res = op.eval(&lv, &rv).ok_or_else(|| EvalError::SortMismatch {
                rule: rule.to_string(),
                detail: format!("{lv} {} {rv}", op.symbol()),
            })?;
            if res != *negated {
                return step(rule, plan, idx + 1, ctx, frame, scratch, sink);
            }
            Ok(true)
        }
        StepOp::Assign { slot, value } => {
            frame[*slot] = Some(resolve(value, frame));
            step(rule, plan, idx + 1, ctx, frame, scratch, sink)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use birds_datalog::parse_program;
    use birds_store::{tuple, Database};

    fn setup() -> Database {
        let mut db = Database::new();
        db.add_relation(Relation::with_tuples("r1", 1, vec![tuple![1]]).unwrap())
            .unwrap();
        db.add_relation(Relation::with_tuples("r2", 1, vec![tuple![2], tuple![4]]).unwrap())
            .unwrap();
        db.add_relation(
            Relation::with_tuples("v", 1, vec![tuple![1], tuple![3], tuple![4]]).unwrap(),
        )
        .unwrap();
        db
    }

    #[test]
    fn example_3_1_delta_computation() {
        // The paper's running example: S = {r1(1), r2(2), r2(4)},
        // V' = {1,3,4} must yield ΔR1 = {+r1(3)}, ΔR2 = {-r2(2)}.
        let program = parse_program(
            "
            -r1(X) :- r1(X), not v(X).
            -r2(X) :- r2(X), not v(X).
            +r1(X) :- v(X), not r1(X), not r2(X).
            ",
        )
        .unwrap();
        let mut db = setup();
        let mut ctx = EvalContext::new(&mut db);
        let out = evaluate_program(&program, &mut ctx).unwrap();
        let plus_r1 = out.relation(&PredRef::ins("r1")).unwrap();
        assert_eq!(plus_r1.len(), 1);
        assert!(plus_r1.contains(&tuple![3]));
        let minus_r2 = out.relation(&PredRef::del("r2")).unwrap();
        assert_eq!(minus_r2.len(), 1);
        assert!(minus_r2.contains(&tuple![2]));
        let minus_r1 = out.relation(&PredRef::del("r1")).unwrap();
        assert!(minus_r1.is_empty());
    }

    #[test]
    fn multi_stratum_evaluation() {
        let program = parse_program(
            "
            m(X) :- r2(X), X > 2.
            h(X) :- m(X), v(X).
            ",
        )
        .unwrap();
        let mut db = setup();
        let mut ctx = EvalContext::new(&mut db);
        let out = evaluate_program(&program, &mut ctx).unwrap();
        let h = out.relation(&PredRef::plain("h")).unwrap();
        assert_eq!(h.len(), 1);
        assert!(h.contains(&tuple![4]));
    }

    #[test]
    fn selection_with_string_comparison() {
        let mut db = Database::new();
        db.add_relation(
            Relation::with_tuples(
                "p",
                2,
                vec![
                    tuple!["ann", "1961-05-05"],
                    tuple!["bob", "1962-06-07"],
                    tuple!["joe", "1963-01-01"],
                ],
            )
            .unwrap(),
        )
        .unwrap();
        let program =
            parse_program("b62(E, B) :- p(E, B), not B < '1962-01-01', not B > '1962-12-31'.")
                .unwrap();
        let mut ctx = EvalContext::new(&mut db);
        let out = evaluate_program(&program, &mut ctx).unwrap();
        let r = out.relation(&PredRef::plain("b62")).unwrap();
        assert_eq!(r.len(), 1);
        assert!(r.contains(&tuple!["bob", "1962-06-07"]));
    }

    #[test]
    fn anonymous_variable_semantics() {
        // retired(E) :- p(E,_), not q(E,_) — anonymous positions are
        // inner existentials on both polarities.
        let mut db = Database::new();
        db.add_relation(Relation::with_tuples("p", 2, vec![tuple![1, 10], tuple![2, 20]]).unwrap())
            .unwrap();
        db.add_relation(Relation::with_tuples("q", 2, vec![tuple![1, 99]]).unwrap())
            .unwrap();
        let program = parse_program("retired(E) :- p(E, _), not q(E, _).").unwrap();
        let mut ctx = EvalContext::new(&mut db);
        let out = evaluate_program(&program, &mut ctx).unwrap();
        let r = out.relation(&PredRef::plain("retired")).unwrap();
        assert_eq!(r.len(), 1);
        assert!(r.contains(&tuple![2]));
    }

    #[test]
    fn repeated_variables_in_atoms() {
        let mut db = Database::new();
        db.add_relation(Relation::with_tuples("e", 2, vec![tuple![1, 1], tuple![1, 2]]).unwrap())
            .unwrap();
        let program = parse_program("diag(X) :- e(X, X).").unwrap();
        let mut ctx = EvalContext::new(&mut db);
        let out = evaluate_program(&program, &mut ctx).unwrap();
        let r = out.relation(&PredRef::plain("diag")).unwrap();
        assert_eq!(r.len(), 1);
        assert!(r.contains(&tuple![1]));
    }

    #[test]
    fn head_constants_are_emitted() {
        let mut db = Database::new();
        db.add_relation(Relation::with_tuples("f", 2, vec![tuple!["ann", 1960]]).unwrap())
            .unwrap();
        let program = parse_program("res(E, B, 'F') :- f(E, B).").unwrap();
        let mut ctx = EvalContext::new(&mut db);
        let out = evaluate_program(&program, &mut ctx).unwrap();
        let r = out.relation(&PredRef::plain("res")).unwrap();
        assert!(r.contains(&tuple!["ann", 1960, "F"]));
    }

    #[test]
    fn facts_and_union() {
        let mut db = Database::new();
        db.add_relation(Relation::with_tuples("r", 1, vec![tuple![5]]).unwrap())
            .unwrap();
        let program = parse_program("u(1). u(X) :- r(X).").unwrap();
        let mut ctx = EvalContext::new(&mut db);
        let out = evaluate_program(&program, &mut ctx).unwrap();
        let u = out.relation(&PredRef::plain("u")).unwrap();
        assert_eq!(u.len(), 2);
        assert!(u.contains(&tuple![1]) && u.contains(&tuple![5]));
    }

    #[test]
    fn constraint_violation_detection() {
        let mut db = Database::new();
        db.add_relation(
            Relation::with_tuples("v", 3, vec![tuple![1, 1, 1], tuple![1, 1, 5]]).unwrap(),
        )
        .unwrap();
        let program = parse_program("false :- v(X, Y, Z), Z > 2.").unwrap();
        let mut ctx = EvalContext::new(&mut db);
        let violated = violated_constraints(&program, &mut ctx).unwrap();
        assert_eq!(violated.len(), 1);
    }

    #[test]
    fn constraint_satisfied() {
        let mut db = Database::new();
        db.add_relation(Relation::with_tuples("v", 3, vec![tuple![1, 1, 1]]).unwrap())
            .unwrap();
        let program = parse_program("false :- v(X, Y, Z), Z > 2.").unwrap();
        let mut ctx = EvalContext::new(&mut db);
        assert!(violated_constraints(&program, &mut ctx).unwrap().is_empty());
    }

    #[test]
    fn constraint_over_idb_predicate() {
        let mut db = Database::new();
        db.add_relation(Relation::with_tuples("r", 1, vec![tuple![10]]).unwrap())
            .unwrap();
        let program = parse_program(
            "
            big(X) :- r(X), X > 5.
            false :- big(X).
            ",
        )
        .unwrap();
        let mut ctx = EvalContext::new(&mut db);
        assert_eq!(violated_constraints(&program, &mut ctx).unwrap().len(), 1);
    }

    #[test]
    fn rule_witness_early_exit() {
        let mut db = Database::new();
        db.add_relation(Relation::with_tuples("big", 1, (0..1000_i64).map(|i| tuple![i])).unwrap())
            .unwrap();
        let program = parse_program("false :- big(X).").unwrap();
        let mut ctx = EvalContext::new(&mut db);
        let rule = program.constraints().next().unwrap();
        assert!(rule_has_witness(rule, &mut ctx).unwrap());
        // A body that can never match reports no witness.
        let none = parse_program("false :- big(X), X > 100000.").unwrap();
        let rule = none.constraints().next().unwrap();
        assert!(!rule_has_witness(rule, &mut ctx).unwrap());
    }

    #[test]
    fn cross_sort_comparison_is_an_error() {
        let mut db = Database::new();
        db.add_relation(Relation::with_tuples("r", 1, vec![tuple!["abc"]]).unwrap())
            .unwrap();
        let program = parse_program("h(X) :- r(X), X > 5.").unwrap();
        let mut ctx = EvalContext::new(&mut db);
        assert!(matches!(
            evaluate_program(&program, &mut ctx),
            Err(EvalError::SortMismatch { .. })
        ));
    }

    #[test]
    fn arity_mismatch_detected() {
        let mut db = Database::new();
        db.add_relation(Relation::with_tuples("r", 2, vec![tuple![1, 2]]).unwrap())
            .unwrap();
        let program = parse_program("h(X) :- r(X).").unwrap();
        let mut ctx = EvalContext::new(&mut db);
        assert!(matches!(
            evaluate_program(&program, &mut ctx),
            Err(EvalError::ArityMismatch { .. })
        ));
    }

    #[test]
    fn evaluate_query_selects_one_relation() {
        let mut db = setup();
        let program = parse_program("h(X) :- r2(X). g(X) :- r1(X).").unwrap();
        let mut ctx = EvalContext::new(&mut db);
        let h = evaluate_query(&program, &PredRef::plain("h"), &mut ctx).unwrap();
        assert_eq!(h.len(), 2);
    }

    #[test]
    fn overlay_view_shadows_base_in_program() {
        // Evaluating putdelta against an *updated* view supplied as overlay.
        let mut db = setup(); // base v = {1,3,4}
        let program = parse_program("-r2(X) :- r2(X), not v(X).").unwrap();
        let mut ctx = EvalContext::new(&mut db);
        ctx.insert_overlay(Relation::with_tuples("v", 1, vec![tuple![2]]).unwrap());
        let out = evaluate_program(&program, &mut ctx).unwrap();
        let del = out.relation(&PredRef::del("r2")).unwrap();
        // with overlay v = {2}: r2 = {2,4} minus v -> delete 4 only
        assert_eq!(del.len(), 1);
        assert!(del.contains(&tuple![4]));
    }

    #[test]
    fn negated_equality_filter() {
        let mut db = Database::new();
        db.add_relation(
            Relation::with_tuples("g", 1, vec![tuple!["M"], tuple!["F"], tuple!["X"]]).unwrap(),
        )
        .unwrap();
        let program = parse_program("o(G) :- g(G), not G = 'M', not G = 'F'.").unwrap();
        let mut ctx = EvalContext::new(&mut db);
        let out = evaluate_program(&program, &mut ctx).unwrap();
        let o = out.relation(&PredRef::plain("o")).unwrap();
        assert_eq!(o.len(), 1);
        assert!(o.contains(&tuple!["X"]));
    }

    #[test]
    fn range_scan_honors_boundary_ties() {
        // >= and <= must include the bound value itself; > and < must not.
        let mut db = Database::new();
        db.add_relation(Relation::with_tuples("r", 1, (0..10_i64).map(|i| tuple![i])).unwrap())
            .unwrap();
        let program = parse_program(
            "
            ge(X) :- r(X), X >= 7.
            gt(X) :- r(X), X > 7.
            le(X) :- r(X), X <= 2.
            lt(X) :- r(X), X < 2.
            band(X) :- r(X), X >= 3, X <= 5.
            ",
        )
        .unwrap();
        let mut ctx = EvalContext::new(&mut db);
        let out = evaluate_program(&program, &mut ctx).unwrap();
        let lens: Vec<usize> = ["ge", "gt", "le", "lt", "band"]
            .iter()
            .map(|n| out.relation(&PredRef::plain(*n)).unwrap().len())
            .collect();
        assert_eq!(lens, vec![3, 2, 3, 2, 3]);
        assert!(out
            .relation(&PredRef::plain("ge"))
            .unwrap()
            .contains(&tuple![7]));
        assert!(!out
            .relation(&PredRef::plain("gt"))
            .unwrap()
            .contains(&tuple![7]));
        assert!(out
            .relation(&PredRef::plain("band"))
            .unwrap()
            .contains(&tuple![3]));
        assert!(out
            .relation(&PredRef::plain("band"))
            .unwrap()
            .contains(&tuple![5]));
    }

    #[test]
    fn range_scan_string_order_matches_filter() {
        // ISO dates are interned strings; the ordered index must agree
        // with lexicographic comparison, bounds included.
        let mut db = Database::new();
        db.add_relation(
            Relation::with_tuples(
                "p",
                1,
                vec![
                    tuple!["1961-12-31"],
                    tuple!["1962-01-01"],
                    tuple!["1962-07-15"],
                    tuple!["1962-12-31"],
                    tuple!["1963-01-01"],
                ],
            )
            .unwrap(),
        )
        .unwrap();
        let program =
            parse_program("y62(B) :- p(B), B >= '1962-01-01', not B > '1962-12-31'.").unwrap();
        let mut ctx = EvalContext::new(&mut db);
        let out = evaluate_program(&program, &mut ctx).unwrap();
        let r = out.relation(&PredRef::plain("y62")).unwrap();
        assert_eq!(r.len(), 3);
        assert!(r.contains(&tuple!["1962-01-01"]) && r.contains(&tuple!["1962-12-31"]));
    }

    #[test]
    fn range_scan_over_mixed_sort_column_still_errors() {
        // A column holding both ints and strings can't use the ordered
        // index; the fallback filter must reproduce the reference
        // cross-sort error instead of silently skipping tuples.
        let mut db = Database::new();
        db.add_relation(Relation::with_tuples("r", 1, vec![tuple![1], tuple!["abc"]]).unwrap())
            .unwrap();
        let program = parse_program("h(X) :- r(X), X > 5.").unwrap();
        let mut ctx = EvalContext::new(&mut db);
        assert!(matches!(
            evaluate_program(&program, &mut ctx),
            Err(EvalError::SortMismatch { .. })
        ));
    }

    #[test]
    fn range_scan_matches_filter_on_empty_interval() {
        // Contradictory guards compile to an empty interval, which must
        // not panic (BTreeMap::range rejects inverted ranges) and must
        // yield nothing, like the reference filter would.
        let mut db = Database::new();
        db.add_relation(Relation::with_tuples("r", 1, (0..10_i64).map(|i| tuple![i])).unwrap())
            .unwrap();
        let program = parse_program("h(X) :- r(X), X > 5, X < 3.").unwrap();
        let mut ctx = EvalContext::new(&mut db);
        let out = evaluate_program(&program, &mut ctx).unwrap();
        assert!(out.relation(&PredRef::plain("h")).unwrap().is_empty());
    }
}
