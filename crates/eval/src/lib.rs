//! # birds-eval
//!
//! Stratified bottom-up evaluation of non-recursive Datalog with negation
//! and builtins over the `birds-store` relational store.
//!
//! This is the runtime half of our PostgreSQL substitute: the paper
//! compiles putback programs to SQL and lets PostgreSQL's planner execute
//! them; we evaluate the same programs directly with a greedy join planner
//! that probes the store's incrementally-maintained hash indexes. Rules
//! whose bodies start from small delta relations therefore touch `O(|Δ|)`
//! tuples, which is exactly the property that makes the paper's
//! incrementalized strategies flat in Figure 6.

pub mod context;
pub mod error;
pub mod evaluator;
pub mod plan;

pub use context::EvalContext;
pub use error::{EvalError, EvalResult};
pub use evaluator::{
    eval_rule_into, evaluate_program, evaluate_query, rule_has_witness, violated_constraints,
    EvalOutput,
};
pub use plan::{plan_rule, PlanCache, RulePlan};
