//! The updatable-view engine.

use crate::algorithm2::derive_view_delta;
use crate::error::{EngineError, EngineResult};
use birds_core::{incrementalize, validate, UpdateStrategy};
use birds_datalog::{parse_program, DeltaKind, Literal, PredRef, Program, Rule};
use birds_eval::{evaluate_program, evaluate_query, rule_has_witness, EvalContext, PlanCache};
use birds_sql::{parse_script, DmlStatement};
use birds_store::{
    Database, DatabaseSchema, Delta, DeltaSet, Relation, RelationVersion, Schema, Tuple,
};
use std::collections::{BTreeMap, BTreeSet, HashSet};
use std::sync::{Arc, Mutex};

/// How a registered view's strategy is executed on each update.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StrategyMode {
    /// Evaluate the full putback program over `(S, V′)` on every update
    /// (the paper's non-incremental baseline, black curves in Figure 6).
    Original,
    /// Evaluate the incrementalized program `∂put` over `(S, +v, -v)`
    /// (§5; blue curves in Figure 6).
    Incremental,
}

/// Statistics from one executed view-update transaction.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ExecutionStats {
    /// Tuples in the derived view delta.
    pub view_delta_size: usize,
    /// Tuples in the applied source delta.
    pub source_delta_size: usize,
    /// Cascaded view updates triggered (views over views).
    pub cascades: usize,
}

/// The dependency footprint of a registered view: which stored relations
/// a commit on that view may touch. Computed once at registration from
/// the strategy, the derived get and the incrementalized program, then
/// closed over cascades (a delta target that is itself a view pulls in
/// that view's footprint). Footprints are what lets a concurrency layer
/// run commits on disjoint views in parallel: two commits conflict iff
/// their closures intersect.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ViewFootprint {
    /// Stored relations (base tables and sub-views) the view's programs
    /// read, including the view's own materialized relation.
    pub reads: BTreeSet<String>,
    /// Source relations the putback program writes (delta-rule targets).
    pub writes: BTreeSet<String>,
    /// Every relation a commit on this view may read or mutate: the
    /// view itself, `reads ∪ writes`, closed over cascades into
    /// sub-views. This is the commit's lock set.
    pub closure: BTreeSet<String>,
}

struct RegisteredView {
    strategy: UpdateStrategy,
    get: Program,
    incremental: Option<Program>,
    mode: StrategyMode,
    footprint: ViewFootprint,
}

/// A registered view reduced to its persistable essence: schemas plus
/// the program *texts* (Datalog `Display` round-trips through the
/// parser, so text is the canonical serialization). Everything a fresh
/// engine needs to re-register the view with
/// [`Engine::register_definition`] — the WAL logs these for runtime
/// registrations and checkpoints snapshot the live set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ViewDefinition {
    /// Schemas of the strategy's source relations, in declaration order.
    pub sources: Vec<Schema>,
    /// Schema of the view relation.
    pub view: Schema,
    /// Putback program source (delta rules, intermediates, constraints).
    pub putdelta: String,
    /// The expected get the strategy was registered with, if any.
    pub expected_get: Option<String>,
    /// The get program the view was actually materialized from (derived
    /// by validation, or the accepted expected get).
    pub get: String,
    /// Execution mode of the registered strategy.
    pub mode: StrategyMode,
}

/// In-process updatable-view database.
pub struct Engine {
    db: Database,
    views: BTreeMap<String, RegisteredView>,
    /// Session-wide compiled-plan cache: every evaluation the engine runs
    /// (materialization, warm-up, delta computation, constraint checks)
    /// shares it, so a rule is planned once per engine session and every
    /// subsequent `put` replays the compiled plan.
    plan_cache: PlanCache,
    /// When enabled, every relation name resolved during evaluation is
    /// recorded here — the observed read set the declared footprints are
    /// checked against (see the footprint conformance tests).
    read_trace: Option<Arc<Mutex<BTreeSet<String>>>>,
}

// The service layer (`birds-service`) shares one `Engine` across client
// threads behind an `RwLock`; every type the engine owns (interned values,
// `Arc<[Value]>` tuples, compiled plans) must stay thread-safe. Checked at
// compile time so a future `Rc`/`RefCell` in any layer fails here, not in
// a downstream crate.
const _: fn() = || {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Engine>();
};

impl Engine {
    /// Engine over an initial database of base tables.
    pub fn new(db: Database) -> Self {
        Engine {
            db,
            views: BTreeMap::new(),
            plan_cache: PlanCache::new(),
            read_trace: None,
        }
    }

    /// The session's compiled-plan cache (sizes and hit/miss counters —
    /// used by tests and diagnostics).
    pub fn plan_cache(&self) -> &PlanCache {
        &self.plan_cache
    }

    /// Drop all compiled plans. Plans embed greedy join orders chosen
    /// from the relation sizes seen when each rule was first planned;
    /// call this after mutating base tables wholesale (outside the view
    /// update path) so the next evaluation replans against current sizes.
    pub fn clear_plan_cache(&mut self) {
        self.plan_cache.clear();
    }

    /// Enable or disable range pushdown for plans compiled from now on
    /// (enabled by default). Toggling drops already-compiled plans —
    /// they embed the old setting. Used by benchmarks to measure the
    /// hash-only baseline.
    pub fn set_range_pushdown(&mut self, on: bool) {
        self.plan_cache.set_range_pushdown(on);
    }

    /// The dependency footprint of a registered view (see
    /// [`ViewFootprint`]); `None` for unknown names.
    pub fn view_footprint(&self, name: &str) -> Option<&ViewFootprint> {
        self.views.get(name).map(|rv| &rv.footprint)
    }

    /// Start (or reset) recording of every relation name resolved during
    /// evaluation. Diagnostic-only: one branch per lookup while enabled.
    pub fn set_read_trace(&mut self, enabled: bool) {
        self.read_trace = enabled.then(|| Arc::new(Mutex::new(BTreeSet::new())));
    }

    /// Drain the recorded read trace (empty when tracing is off).
    pub fn take_read_trace(&mut self) -> BTreeSet<String> {
        match &self.read_trace {
            Some(sink) => std::mem::take(&mut sink.lock().unwrap_or_else(|e| e.into_inner())),
            None => BTreeSet::new(),
        }
    }

    /// Split the engine into its footprint-connected components: views
    /// whose closures intersect land in the same component (with every
    /// relation either of them can touch); relations no view depends on
    /// become singleton components. Each component is a self-contained
    /// [`Engine`] — commits on views in different components touch
    /// disjoint data, so a service can run them under independent locks
    /// with full `&mut` access. Components are returned in deterministic
    /// order (sorted by their smallest relation name) and each starts
    /// from a clone of the session plan cache, keeping every warm-up
    /// plan. [`Engine::absorb`] reverses the split.
    pub fn split_components(mut self) -> Vec<Engine> {
        let mut groups: Vec<BTreeSet<String>> = Vec::new();
        for rv in self.views.values() {
            let mut set = rv.footprint.closure.clone();
            let mut i = 0;
            while i < groups.len() {
                if !groups[i].is_disjoint(&set) {
                    set.extend(groups.swap_remove(i));
                } else {
                    i += 1;
                }
            }
            groups.push(set);
        }
        for name in self.db.names() {
            if !groups.iter().any(|g| g.contains(name)) {
                groups.push(BTreeSet::from([name.to_owned()]));
            }
        }
        groups.sort_by(|a, b| a.first().cmp(&b.first()));
        groups
            .into_iter()
            .map(|group| {
                let mut db = Database::new();
                let mut views = BTreeMap::new();
                for name in &group {
                    if let Some(rel) = self.db.remove_relation(name) {
                        db.set_relation(rel);
                    }
                    if let Some(rv) = self.views.remove(name) {
                        views.insert(name.clone(), rv);
                    }
                }
                Engine {
                    db,
                    views,
                    plan_cache: self.plan_cache.clone(),
                    read_trace: self.read_trace.clone(),
                }
            })
            .collect()
    }

    /// Merge another engine (typically a footprint component produced by
    /// [`Engine::split_components`]) back into this one. Fails without
    /// modifying either side if any relation or view name collides.
    pub fn absorb(&mut self, other: Engine) -> EngineResult<()> {
        if let Some(name) = other.db.names().find(|n| self.db.contains_relation(n)) {
            return Err(EngineError::Registration(format!(
                "cannot absorb: relation '{name}' exists on both sides"
            )));
        }
        for rel in other.db.into_relations() {
            self.db.set_relation(rel);
        }
        self.views.extend(other.views);
        self.plan_cache.absorb(other.plan_cache);
        Ok(())
    }

    /// Read access to any relation (base table or materialized view).
    pub fn relation(&self, name: &str) -> Option<&Relation> {
        self.db.relation(name)
    }

    /// The underlying database (for inspection).
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// Crate-internal mutable database access (snapshot restore). Not
    /// public: arbitrary base-table mutation would silently invalidate
    /// materialized views; external callers go through the view-update
    /// path or [`Engine::restore`].
    pub(crate) fn database_mut(&mut self) -> &mut Database {
        &mut self.db
    }

    /// Publish immutable versions of every stored relation (base tables
    /// and materialized views), in name order.
    ///
    /// Later mutations through the view-update path never disturb a
    /// published version. This is the engine half of the service's MVCC
    /// snapshot publication: after applying an epoch's deltas (still
    /// under the shard's write lock), the service calls this and swaps
    /// the result into the shard's snapshot cell. Cost per relation is
    /// `O(delta since its previous publication)` — untouched relations
    /// re-share their previous version in `O(1)`, and touched ones
    /// replay only their effective mutations into an alternate shadow
    /// buffer (left-right publication, see `birds_store::relation`) —
    /// so the write path never pays a tuple-count-proportional clone
    /// just because snapshots are being published. Needs `&mut`: the
    /// per-relation publication state advances.
    pub fn relation_versions(&mut self) -> Vec<RelationVersion> {
        self.db.relations_mut().map(Relation::version).collect()
    }

    /// Is `name` a registered updatable view?
    pub fn is_view(&self, name: &str) -> bool {
        self.views.contains_key(name)
    }

    /// Names of all registered updatable views, in name order.
    pub fn view_names(&self) -> impl Iterator<Item = &str> {
        self.views.keys().map(String::as_str)
    }

    /// The schema of a registered view (the strategy's view relation).
    pub fn view_schema(&self, name: &str) -> Option<&Schema> {
        self.views.get(name).map(|rv| &rv.strategy.view)
    }

    /// The persistable [`ViewDefinition`] of a registered view.
    pub fn view_definition(&self, name: &str) -> Option<ViewDefinition> {
        self.views.get(name).map(|rv| ViewDefinition {
            sources: rv.strategy.source_schema.relations.clone(),
            view: rv.strategy.view.clone(),
            putdelta: rv.strategy.putdelta.to_string(),
            expected_get: rv.strategy.expected_get.as_ref().map(Program::to_string),
            get: rv.get.to_string(),
            mode: rv.mode,
        })
    }

    /// Persistable definitions of every registered view, in **dependency
    /// order**: a view whose footprint closure contains another view
    /// (i.e. whose commits can cascade into it) comes after that
    /// sub-view, so replaying the list through
    /// [`Engine::register_definition`] re-registers cascade targets
    /// before the views that depend on them. (Name order is *not*
    /// dependency order.)
    pub fn view_definitions(&self) -> Vec<ViewDefinition> {
        let mut ordered: Vec<&str> = Vec::new();
        let mut visiting: BTreeSet<&str> = BTreeSet::new();
        fn visit<'a>(
            name: &'a str,
            views: &'a BTreeMap<String, RegisteredView>,
            ordered: &mut Vec<&'a str>,
            visiting: &mut BTreeSet<&'a str>,
        ) {
            if ordered.contains(&name) || !visiting.insert(name) {
                return;
            }
            if let Some(rv) = views.get(name) {
                for dep in &rv.footprint.closure {
                    if dep != name && views.contains_key(dep) {
                        visit(dep, views, ordered, visiting);
                    }
                }
                ordered.push(name);
            }
            visiting.remove(name);
        }
        for name in self.views.keys() {
            visit(name, &self.views, &mut ordered, &mut visiting);
        }
        ordered
            .into_iter()
            .map(|n| self.view_definition(n).expect("ordered names are views"))
            .collect()
    }

    /// Re-register a view from its persisted [`ViewDefinition`] — the
    /// replay half of [`Engine::view_definitions`]. Shape checks re-run
    /// (the texts were produced by a strategy that passed them); the
    /// solver does not, making replay deterministic and cheap.
    pub fn register_definition(&mut self, def: &ViewDefinition) -> EngineResult<()> {
        let mut source_schema = DatabaseSchema::new();
        source_schema.relations = def.sources.clone();
        let strategy = UpdateStrategy::new(
            source_schema,
            def.view.clone(),
            parse_program(&def.putdelta).map_err(|e| EngineError::Registration(e.to_string()))?,
            def.expected_get
                .as_deref()
                .map(parse_program)
                .transpose()
                .map_err(|e| EngineError::Registration(e.to_string()))?,
        )
        .map_err(|e| EngineError::Registration(e.to_string()))?;
        let get = parse_program(&def.get).map_err(|e| EngineError::Registration(e.to_string()))?;
        self.register_view_unchecked(strategy, get, def.mode)
    }

    /// Merge footprint components back into one engine — the inverse of
    /// [`Engine::split_components`] for an arbitrary (non-empty) subset
    /// of components. This is what lets a live service re-shard a
    /// *subset* of its topology: take only the affected components,
    /// merge, mutate the view set, and re-split, while disjoint
    /// components stay untouched (and unlocked).
    pub fn merge(components: impl IntoIterator<Item = Engine>) -> EngineResult<Engine> {
        let mut iter = components.into_iter();
        let mut merged = iter
            .next()
            .ok_or_else(|| EngineError::Registration("cannot merge zero components".into()))?;
        for component in iter {
            merged.absorb(component)?;
        }
        Ok(merged)
    }

    /// Deregister a view: drop its strategy and its materialized
    /// relation. The view's source relations stay (they may hold data
    /// and other views may read them); on a re-split they become free
    /// relations. Fails without modifying anything when the view is a
    /// cascade target of another registered view — that view's delta
    /// rules write into this one, so removing it would break the
    /// dependent's update path.
    pub fn unregister_view(&mut self, name: &str) -> EngineResult<()> {
        if !self.views.contains_key(name) {
            return Err(EngineError::NotAView(name.to_owned()));
        }
        if let Some(dependent) = self.dependent_view(name) {
            return Err(EngineError::Registration(format!(
                "view '{name}' is in the footprint of view '{dependent}'"
            )));
        }
        self.views.remove(name);
        self.db.remove_relation(name);
        // Compiled plans may probe the removed relation by name.
        self.clear_plan_cache();
        Ok(())
    }

    /// The name of a registered view (other than `name` itself) whose
    /// footprint closure contains `name`, if any — i.e. a view whose
    /// commits may cascade into or read `name`.
    pub fn dependent_view(&self, name: &str) -> Option<&str> {
        self.views
            .iter()
            .find(|(other, rv)| other.as_str() != name && rv.footprint.closure.contains(name))
            .map(|(other, _)| other.as_str())
    }

    /// Register an updatable view after validating its strategy
    /// (Algorithm 1). The view is materialized from the derived (or
    /// accepted expected) get. Fails when validation rejects the strategy.
    pub fn register_view(
        &mut self,
        strategy: UpdateStrategy,
        mode: StrategyMode,
    ) -> EngineResult<()> {
        let report = validate(&strategy).map_err(|e| EngineError::Registration(e.to_string()))?;
        if !report.valid {
            return Err(EngineError::Registration(format!(
                "strategy for '{}' is invalid: {}",
                strategy.view.name,
                report.reason.unwrap_or_default()
            )));
        }
        let get = report
            .derived_get
            .expect("valid reports carry a view definition");
        self.register_view_unchecked(strategy, get, mode)
    }

    /// Register without running the validator — for callers that already
    /// validated (benchmarks; bulk registration).
    pub fn register_view_unchecked(
        &mut self,
        strategy: UpdateStrategy,
        get: Program,
        mode: StrategyMode,
    ) -> EngineResult<()> {
        let name = strategy.view.name.clone();
        if self.db.contains_relation(&name) {
            return Err(EngineError::Registration(format!(
                "relation '{name}' already exists"
            )));
        }
        for schema in &strategy.source_schema.relations {
            if !self.db.contains_relation(&schema.name) {
                return Err(EngineError::Registration(format!(
                    "source relation '{}' does not exist",
                    schema.name
                )));
            }
        }
        // Materialize the view.
        let mut rel = if get.is_empty() {
            Relation::new(name.clone(), strategy.view.arity())
        } else {
            let mut ctx = EvalContext::with_plan_cache(&mut self.db, &mut self.plan_cache);
            if let Some(sink) = self.read_trace.as_deref() {
                ctx.trace_reads_into(sink);
            }
            evaluate_query(&get, &PredRef::plain(&name), &mut ctx)?.renamed(name.clone())
        };
        // Per-column hash indexes so DML predicates (Algorithm 2) probe
        // instead of scanning — the analogue of the B-tree indexes the
        // paper's PostgreSQL setup relies on. Built once, maintained
        // incrementally under updates.
        for col in 0..rel.arity() {
            rel.ensure_index(&[col])
                .map_err(|e| EngineError::Store(e.to_string()))?;
        }
        self.db.set_relation(rel);
        // Failures past this point must not leak the half-registered
        // view relation into the database — a live service re-splits the
        // engine after a failed registration and a leaked relation would
        // silently become a free singleton shard.
        let incremental = match self.warm_up_registration(&name, &strategy, mode) {
            Ok(incremental) => incremental,
            Err(e) => {
                self.db.remove_relation(&name);
                return Err(e);
            }
        };
        let footprint = compute_footprint(&self.db, &self.views, &strategy, &get, &incremental);
        self.views.insert(
            name,
            RegisteredView {
                strategy,
                get,
                incremental,
                mode,
                footprint,
            },
        );
        Ok(())
    }

    /// Incrementalize (when asked) and run the warm-up evaluation for a
    /// view being registered. Factored out of
    /// [`Engine::register_view_unchecked`] so the caller can roll the
    /// materialized relation back if either step fails.
    fn warm_up_registration(
        &mut self,
        name: &str,
        strategy: &UpdateStrategy,
        mode: StrategyMode,
    ) -> EngineResult<Option<Program>> {
        let incremental = if mode == StrategyMode::Incremental {
            Some(incrementalize(strategy).map_err(|e| EngineError::Registration(e.to_string()))?)
        } else {
            None
        };
        // Warm-up evaluation with an empty view delta: forces the planner
        // to build every base-table index the strategy's plans probe, so
        // the first real update doesn't pay an O(|S|) index build (the
        // paper's PostgreSQL setup has its B-trees before measuring). The
        // warm-up also populates the session plan cache: the delta
        // relations are empty — the smallest they will ever be — so the
        // greedy planner pins exactly the delta-driven join orders that
        // subsequent updates want, and real updates replay compiled plans.
        let t = std::time::Instant::now();
        let program = incremental.as_ref().unwrap_or(&strategy.putdelta);
        let mut ctx = EvalContext::with_plan_cache(&mut self.db, &mut self.plan_cache);
        if let Some(sink) = self.read_trace.as_deref() {
            ctx.trace_reads_into(sink);
        }
        if mode == StrategyMode::Incremental {
            ctx.insert_overlay(Relation::new(
                PredRef::ins(name).flat_name(),
                strategy.view.arity(),
            ));
            ctx.insert_overlay(Relation::new(
                PredRef::del(name).flat_name(),
                strategy.view.arity(),
            ));
        }
        let _ = evaluate_program(program, &mut ctx)?;
        if std::env::var_os("BIRDS_ENGINE_DEBUG").is_some() {
            eprintln!("[engine] warm-up ({mode:?}): {:?}", t.elapsed());
        }
        Ok(incremental)
    }

    /// Re-materialize a registered view from its get definition (used
    /// after direct base-table mutation).
    pub fn refresh_view(&mut self, name: &str) -> EngineResult<()> {
        let rv = self
            .views
            .get(name)
            .ok_or_else(|| EngineError::NotAView(name.to_owned()))?;
        let tuples: Vec<Tuple> = if rv.get.is_empty() {
            vec![]
        } else {
            let mut ctx = EvalContext::with_plan_cache(&mut self.db, &mut self.plan_cache);
            if let Some(sink) = self.read_trace.as_deref() {
                ctx.trace_reads_into(sink);
            }
            let rel = evaluate_query(&rv.get, &PredRef::plain(name), &mut ctx)?;
            rel.tuples().iter().cloned().collect()
        };
        let target = self
            .db
            .relation_mut(name)
            .ok_or_else(|| EngineError::NotAView(name.to_owned()))?;
        target.replace_all(tuples)?;
        // Refreshes follow direct base-table mutation, which can change
        // relation sizes wholesale; cached join orders are stale.
        self.clear_plan_cache();
        Ok(())
    }

    /// Execute a view-update transaction: one or more DML statements (a
    /// `BEGIN … END` script) targeting a single registered view.
    pub fn execute(&mut self, sql: &str) -> EngineResult<ExecutionStats> {
        let statements = parse_script(sql)?;
        self.execute_statements(&statements)
    }

    /// Execute a view-update transaction from pre-parsed statements (the
    /// service layer parses once per request and batches statements, so it
    /// must not pay a re-serialize/re-parse round trip per transaction).
    pub fn execute_statements(
        &mut self,
        statements: &[DmlStatement],
    ) -> EngineResult<ExecutionStats> {
        if statements.is_empty() {
            return Ok(ExecutionStats::default());
        }
        let table = statements[0].table().to_owned();
        if statements.iter().any(|s| s.table() != table) {
            return Err(EngineError::BadStatement(
                "a transaction must target a single view".into(),
            ));
        }
        let rv = self
            .views
            .get(&table)
            .ok_or_else(|| EngineError::NotAView(table.clone()))?;
        let view_rel = self
            .db
            .relation(&table)
            .ok_or_else(|| EngineError::NotAView(table.clone()))?;
        let t0 = std::time::Instant::now();
        let delta = derive_view_delta(view_rel, &rv.strategy.view, statements)?;
        if std::env::var_os("BIRDS_ENGINE_DEBUG").is_some() {
            eprintln!("[engine] derive_view_delta: {:?}", t0.elapsed());
        }
        self.apply_view_delta(&table, delta, 0)
    }

    /// Derive the net (normalized, effective) view delta of a statement
    /// sequence against the *current* view state, without applying it.
    /// This is the coalescing half of batched execution: a service batch
    /// runs Algorithm 2 once over all buffered statements, then applies
    /// the net delta in one incremental pass via [`Engine::apply_delta`].
    pub fn derive_delta(
        &self,
        view_name: &str,
        statements: &[DmlStatement],
    ) -> EngineResult<Delta> {
        let rv = self
            .views
            .get(view_name)
            .ok_or_else(|| EngineError::NotAView(view_name.to_owned()))?;
        let view_rel = self
            .db
            .relation(view_name)
            .ok_or_else(|| EngineError::NotAView(view_name.to_owned()))?;
        derive_view_delta(view_rel, &rv.strategy.view, statements)
    }

    /// Apply a batched view delta in **one** strategy evaluation — the
    /// batched-update entry point. The delta is normalized against the
    /// current view state first (insertions already present and deletions
    /// already absent are dropped), so a delta derived earlier in a
    /// session stays safe to apply after unrelated updates. The
    /// transaction is atomic: constraint violations and contradictory
    /// source deltas roll the view back.
    pub fn apply_delta(
        &mut self,
        view_name: &str,
        mut delta: Delta,
    ) -> EngineResult<ExecutionStats> {
        let rv = self
            .views
            .get(view_name)
            .ok_or_else(|| EngineError::NotAView(view_name.to_owned()))?;
        let arity = rv.strategy.view.arity();
        if let Some(t) = delta
            .insertions
            .iter()
            .chain(delta.deletions.iter())
            .find(|t| t.arity() != arity)
        {
            return Err(EngineError::BadStatement(format!(
                "delta tuple {t} has arity {} but view '{view_name}' has arity {arity}",
                t.arity()
            )));
        }
        let view_rel = self
            .db
            .relation(view_name)
            .ok_or_else(|| EngineError::NotAView(view_name.to_owned()))?;
        delta.normalize_against(view_rel);
        self.apply_view_delta(view_name, delta, 0)
    }

    /// Apply one batched delta per view, each in a single strategy
    /// evaluation, in iteration order. Atomicity is **per view**: if the
    /// k-th delta is rejected (constraint violation, contradictory source
    /// delta), the first k−1 stay applied and the error is returned with
    /// the offending view's name — callers that need all-or-nothing
    /// semantics should batch per view. Stats are summed over all views.
    pub fn apply_deltas(
        &mut self,
        deltas: impl IntoIterator<Item = (String, Delta)>,
    ) -> EngineResult<ExecutionStats> {
        let mut total = ExecutionStats::default();
        for (view_name, delta) in deltas {
            let stats = self.apply_delta(&view_name, delta)?;
            total.view_delta_size += stats.view_delta_size;
            total.source_delta_size += stats.source_delta_size;
            total.cascades += stats.cascades;
        }
        Ok(total)
    }

    /// Apply an (effective, normalized) view delta to a registered view:
    /// the trigger pipeline of §6.1.
    fn apply_view_delta(
        &mut self,
        view_name: &str,
        delta: Delta,
        depth: usize,
    ) -> EngineResult<ExecutionStats> {
        if depth > 8 {
            return Err(EngineError::Eval(
                "view update cascade exceeded depth limit".into(),
            ));
        }
        let mut stats = ExecutionStats {
            view_delta_size: delta.len(),
            ..Default::default()
        };
        if delta.is_empty() {
            return Ok(stats);
        }
        // Borrow the registered strategy in place for the whole delta
        // computation + constraint check: no per-update clone of the
        // strategy or its incrementalized program.
        let rv = self
            .views
            .get(view_name)
            .ok_or_else(|| EngineError::NotAView(view_name.to_owned()))?;
        let mode = rv.mode;

        let debug = std::env::var_os("BIRDS_ENGINE_DEBUG").is_some();
        let t_eval = std::time::Instant::now();
        // Compute ΔS. In incremental mode the program reads the OLD view
        // plus the delta relations; in original mode it reads the updated
        // view V′, so we mutate the materialized view first.
        let delta_set: DeltaSet = match mode {
            StrategyMode::Incremental => {
                let program = rv.incremental.as_ref().expect("incremental mode has ∂put");
                let mut ctx = EvalContext::with_plan_cache(&mut self.db, &mut self.plan_cache);
                if let Some(sink) = self.read_trace.as_deref() {
                    ctx.trace_reads_into(sink);
                }
                ctx.insert_overlay(Relation::with_tuples(
                    PredRef::ins(view_name).flat_name(),
                    rv.strategy.view.arity(),
                    delta.insertions.iter().cloned(),
                )?);
                ctx.insert_overlay(Relation::with_tuples(
                    PredRef::del(view_name).flat_name(),
                    rv.strategy.view.arity(),
                    delta.deletions.iter().cloned(),
                )?);
                let out = evaluate_program(program, &mut ctx)?;
                collect_delta_set(&rv.strategy, out.relations)
            }
            StrategyMode::Original => {
                mutate_view_relation(&mut self.db, view_name, &delta, false)?;
                let mut ctx = EvalContext::with_plan_cache(&mut self.db, &mut self.plan_cache);
                if let Some(sink) = self.read_trace.as_deref() {
                    ctx.trace_reads_into(sink);
                }
                let out = evaluate_program(&rv.strategy.putdelta, &mut ctx)?;
                collect_delta_set(&rv.strategy, out.relations)
            }
        };

        if debug {
            eprintln!(
                "[engine] delta computation ({mode:?}): {:?}",
                t_eval.elapsed()
            );
        }

        // For the incremental path, the constraints are checked against
        // the updated view, so mutate now.
        let t_mut = std::time::Instant::now();
        if mode == StrategyMode::Incremental {
            mutate_view_relation(&mut self.db, view_name, &delta, false)?;
        }

        // Constraint check over (S, V′).
        let t_check = std::time::Instant::now();
        if let Err(e) = check_constraints(
            &mut self.db,
            &mut self.plan_cache,
            self.read_trace.as_deref(),
            &rv.strategy,
            &delta,
        ) {
            mutate_view_relation(&mut self.db, view_name, &delta, true)?; // rollback
            return Err(e);
        }
        if debug {
            eprintln!(
                "[engine] mutate: {:?}  constraints: {:?}",
                t_check.duration_since(t_mut),
                t_check.elapsed()
            );
        }

        if !delta_set.is_non_contradictory() {
            mutate_view_relation(&mut self.db, view_name, &delta, true)?;
            return Err(EngineError::ContradictoryDelta(format!(
                "view update on '{view_name}'"
            )));
        }
        stats.source_delta_size = delta_set.len();

        // Apply ΔS: base tables directly; registered views cascade.
        let mut cascades: Vec<(String, Delta)> = Vec::new();
        let mut base: DeltaSet = DeltaSet::new();
        for (rel_name, d) in delta_set.iter() {
            if d.is_empty() {
                continue;
            }
            if self.views.contains_key(rel_name) {
                // Normalize against the current (old) state of that view.
                let rel = self
                    .db
                    .relation(rel_name)
                    .ok_or_else(|| EngineError::NotAView(rel_name.to_owned()))?;
                let mut eff = d.clone();
                eff.insertions.retain(|t| !rel.contains(t));
                eff.deletions.retain(|t| rel.contains(t));
                cascades.push((rel_name.to_owned(), eff));
            } else {
                let entry = base.entry(rel_name);
                entry.insertions.extend(d.insertions.iter().cloned());
                entry.deletions.extend(d.deletions.iter().cloned());
            }
        }
        if let Err(e) = base.apply_to(&mut self.db) {
            mutate_view_relation(&mut self.db, view_name, &delta, true)?;
            return Err(EngineError::Store(e.to_string()));
        }
        for (sub_view, sub_delta) in cascades {
            stats.cascades += 1;
            let sub_stats = self.apply_view_delta(&sub_view, sub_delta, depth + 1)?;
            stats.cascades += sub_stats.cascades;
        }
        Ok(stats)
    }
}

/// Apply (or roll back) an effective view delta on the materialized
/// view relation.
fn mutate_view_relation(
    db: &mut Database,
    view_name: &str,
    delta: &Delta,
    rollback: bool,
) -> EngineResult<()> {
    let rel = db
        .relation_mut(view_name)
        .ok_or_else(|| EngineError::NotAView(view_name.to_owned()))?;
    let (ins, del) = if rollback {
        (&delta.deletions, &delta.insertions)
    } else {
        (&delta.insertions, &delta.deletions)
    };
    for t in del {
        rel.remove(t);
    }
    for t in ins {
        rel.insert(t.clone())?;
    }
    Ok(())
}

/// Check the strategy's constraints against the current `(S, V′)`.
///
/// Fast path: a constraint whose body has exactly one positive view
/// atom (and no other view occurrence) can only be newly violated by
/// an *inserted* view tuple — `S` is unchanged at check time and old
/// view tuples passed the same check earlier — so it is evaluated with
/// the view atom restricted to `Δ⁺V`. Other constraints are checked in
/// full. (A free function so the caller can keep its borrow of the
/// registered strategy while lending `db` and the plan cache.)
fn check_constraints(
    db: &mut Database,
    plans: &mut PlanCache,
    read_trace: Option<&Mutex<BTreeSet<String>>>,
    strategy: &UpdateStrategy,
    delta: &Delta,
) -> EngineResult<()> {
    let view = &strategy.view.name;
    for rule in strategy.constraints() {
        let view_lits: Vec<(&Literal, bool)> = rule
            .body
            .iter()
            .filter_map(|l| match l {
                Literal::Atom { atom, negated }
                    if atom.pred.kind == DeltaKind::None && atom.pred.name == *view =>
                {
                    Some((l, *negated))
                }
                _ => None,
            })
            .collect();
        let fast = view_lits.len() == 1 && !view_lits[0].1;
        let check_rule: Rule = if fast {
            let mut r = rule.clone();
            for lit in &mut r.body {
                if let Literal::Atom {
                    atom,
                    negated: false,
                } = lit
                {
                    if atom.pred.kind == DeltaKind::None && atom.pred.name == *view {
                        atom.pred = PredRef::ins(view);
                    }
                }
            }
            r
        } else {
            rule.clone()
        };
        // Evaluate the constraint body; any witness = violation.
        let mut ctx = EvalContext::with_plan_cache(db, plans);
        if let Some(sink) = read_trace {
            ctx.trace_reads_into(sink);
        }
        if fast {
            ctx.insert_overlay(Relation::with_tuples(
                PredRef::ins(view).flat_name(),
                strategy.view.arity(),
                delta.insertions.iter().cloned(),
            )?);
        }
        // Materialize only the intermediates the constraint
        // (transitively) references — computing unrelated
        // intermediates would reintroduce O(|S|) work on the
        // incremental path.
        let intermediates: Vec<&Rule> = strategy
            .putdelta
            .proper_rules()
            .filter(|r| {
                r.head
                    .atom()
                    .is_some_and(|a| a.pred.kind == DeltaKind::None)
            })
            .collect();
        // First, inline single-positive-literal intermediate
        // definitions directly into the check rule (`¬inassign(T)` ↝
        // `¬assignment(T, _)`): the planner can then probe instead of
        // materializing the whole intermediate per update.
        let check_rule = inline_simple_defs(&check_rule, &strategy.putdelta);
        let mut needed: HashSet<String> = HashSet::new();
        let mut frontier: Vec<String> = check_rule
            .body
            .iter()
            .filter_map(|l| l.atom())
            .map(|a| a.pred.name.clone())
            .collect();
        while let Some(name) = frontier.pop() {
            if !needed.insert(name.clone()) {
                continue;
            }
            for r in &intermediates {
                if r.head.atom().is_some_and(|a| a.pred.name == name) {
                    frontier.extend(
                        r.body
                            .iter()
                            .filter_map(|l| l.atom())
                            .map(|a| a.pred.name.clone()),
                    );
                }
            }
        }
        let support = Program::new(
            intermediates
                .iter()
                .filter(|r| r.head.atom().is_some_and(|a| needed.contains(&a.pred.name)))
                .map(|r| (*r).clone())
                .collect(),
        );
        if !support.is_empty() {
            let out = evaluate_program(&support, &mut ctx)?;
            for (_, rel) in out.relations {
                ctx.insert_overlay(rel);
            }
        }
        if rule_has_witness(&check_rule, &mut ctx)? {
            return Err(EngineError::ConstraintViolation {
                view: view.clone(),
                constraint: rule.to_string(),
            });
        }
    }
    Ok(())
}

/// Inline intermediate predicates defined by exactly one rule with a
/// single positive body atom into `rule` (both polarities). Definition
/// body variables that are existential become anonymous variables in the
/// inlined literal, preserving the `∃` reading. Non-simple definitions
/// are left for support materialization.
fn inline_simple_defs(rule: &Rule, program: &Program) -> Rule {
    use birds_datalog::{Atom, Term};
    let mut out = rule.clone();
    let mut anon = 0usize;
    for _ in 0..4 {
        let mut changed = false;
        for lit in &mut out.body {
            let Literal::Atom { atom, .. } = lit else {
                continue;
            };
            if atom.pred.kind != DeltaKind::None {
                continue;
            }
            let defs: Vec<&Rule> = program
                .proper_rules()
                .filter(|r| r.head.atom().is_some_and(|h| h.pred == atom.pred))
                .collect();
            let [def] = defs.as_slice() else { continue };
            let Some(dh) = def.head.atom() else { continue };
            let [Literal::Atom {
                atom: def_atom,
                negated: false,
            }] = def.body.as_slice()
            else {
                continue;
            };
            let head_vars: Vec<&str> = dh.terms.iter().filter_map(Term::as_var).collect();
            if head_vars.len() != dh.terms.len()
                || head_vars.iter().collect::<HashSet<_>>().len() != head_vars.len()
            {
                continue;
            }
            let map: std::collections::HashMap<&str, &Term> =
                head_vars.iter().copied().zip(atom.terms.iter()).collect();
            let new_terms: Vec<Term> = def_atom
                .terms
                .iter()
                .map(|t| match t {
                    Term::Var(v) => map.get(v.as_str()).map(|&x| x.clone()).unwrap_or_else(|| {
                        anon += 1;
                        Term::Var(format!("_#cc{anon}"))
                    }),
                    Term::Const(_) => t.clone(),
                })
                .collect();
            *atom = Atom::new(def_atom.pred.clone(), new_terms);
            changed = true;
        }
        if !changed {
            break;
        }
    }
    out
}

/// Compute a view's dependency footprint at registration time.
///
/// Reads: the strategy's declared source reads, plus every stored
/// relation (base table or already-registered view — the view's own
/// relation included) named in a body of the derived get or the
/// incrementalized program. Intermediate and delta predicates live in
/// evaluation overlays and carry no lock, so they are excluded. The
/// closure additionally folds in the complete closure of every sub-view
/// the strategy can cascade into; registration order guarantees those
/// are final (a view registered later can never become a cascade target
/// of an earlier one, because its name was free when the earlier
/// strategy was checked).
fn compute_footprint(
    db: &Database,
    views: &BTreeMap<String, RegisteredView>,
    strategy: &UpdateStrategy,
    get: &Program,
    incremental: &Option<Program>,
) -> ViewFootprint {
    let mut reads = strategy.read_relations();
    {
        let mut visit = |program: &Program| {
            for pred in program.all_body_predicates() {
                if db.contains_relation(&pred.name) || views.contains_key(&pred.name) {
                    reads.insert(pred.name.clone());
                }
            }
        };
        visit(get);
        if let Some(program) = incremental {
            visit(program);
        }
    }
    let writes = strategy.write_relations();
    let mut closure: BTreeSet<String> = reads.union(&writes).cloned().collect();
    closure.insert(strategy.view.name.clone());
    loop {
        let sub_closures: Vec<&BTreeSet<String>> = closure
            .iter()
            .filter_map(|name| views.get(name))
            .map(|rv| &rv.footprint.closure)
            .collect();
        let before = closure.len();
        for sub in sub_closures {
            closure.extend(sub.iter().cloned());
        }
        if closure.len() == before {
            break;
        }
    }
    ViewFootprint {
        reads,
        writes,
        closure,
    }
}

/// Every stored-relation name an *incoming* strategy could read or
/// write — the preview half of `compute_footprint`, computable
/// **before** the view exists anywhere. A live service intersects this
/// set with its relation→shard route to find the shards a registration
/// must quiesce; disjoint shards keep committing. Conservative: the set
/// may include intermediate-predicate names that are not stored
/// relations (the route intersection discards them), but it can never
/// miss a stored relation the registered view's footprint will contain,
/// because the footprint is computed from exactly these programs.
pub fn strategy_touches(strategy: &UpdateStrategy, get: &Program) -> BTreeSet<String> {
    let mut touched = strategy.read_relations();
    touched.extend(strategy.write_relations());
    touched.insert(strategy.view.name.clone());
    for schema in &strategy.source_schema.relations {
        touched.insert(schema.name.clone());
    }
    let mut visit = |program: &Program| {
        for pred in program.all_body_predicates() {
            touched.insert(pred.name.clone());
        }
    };
    visit(&strategy.putdelta);
    visit(get);
    if let Some(expected) = &strategy.expected_get {
        visit(expected);
    }
    touched
}

/// Collect the evaluator's delta-predicate outputs into a `DeltaSet`.
fn collect_delta_set(
    strategy: &UpdateStrategy,
    relations: BTreeMap<PredRef, Relation>,
) -> DeltaSet {
    let mut ds = DeltaSet::new();
    for schema in &strategy.source_schema.relations {
        ds.entry(&schema.name); // ensure an entry per source
    }
    for (pred, rel) in relations {
        match pred.kind {
            DeltaKind::Insert => {
                let entry = ds.entry(&pred.name);
                entry.insertions.extend(rel.tuples().iter().cloned());
            }
            DeltaKind::Delete => {
                let entry = ds.entry(&pred.name);
                entry.deletions.extend(rel.tuples().iter().cloned());
            }
            _ => {}
        }
    }
    ds
}

#[cfg(test)]
mod tests {
    use super::*;
    use birds_store::{tuple, DatabaseSchema, Schema, SortKind};

    fn union_engine(mode: StrategyMode) -> Engine {
        let mut db = Database::new();
        db.add_relation(Relation::with_tuples("r1", 1, vec![tuple![1]]).unwrap())
            .unwrap();
        db.add_relation(Relation::with_tuples("r2", 1, vec![tuple![2], tuple![4]]).unwrap())
            .unwrap();
        let strategy = UpdateStrategy::parse(
            DatabaseSchema::new()
                .with(Schema::new("r1", vec![("a", SortKind::Int)]))
                .with(Schema::new("r2", vec![("a", SortKind::Int)])),
            Schema::new("v", vec![("a", SortKind::Int)]),
            "
            -r1(X) :- r1(X), not v(X).
            -r2(X) :- r2(X), not v(X).
            +r1(X) :- v(X), not r1(X), not r2(X).
            ",
            None,
        )
        .unwrap();
        let mut engine = Engine::new(db);
        engine.register_view(strategy, mode).unwrap();
        engine
    }

    #[test]
    fn view_is_materialized_on_registration() {
        let engine = union_engine(StrategyMode::Original);
        let v = engine.relation("v").unwrap();
        assert_eq!(v.len(), 3);
        assert!(v.contains(&tuple![1]) && v.contains(&tuple![2]) && v.contains(&tuple![4]));
    }

    #[test]
    fn example_3_1_end_to_end_original() {
        // Insert 3 and delete 2: expect +r1(3), -r2(2) applied.
        let mut engine = union_engine(StrategyMode::Original);
        engine
            .execute("BEGIN; INSERT INTO v VALUES (3); DELETE FROM v WHERE a = 2; END;")
            .unwrap();
        let r1 = engine.relation("r1").unwrap();
        let r2 = engine.relation("r2").unwrap();
        assert!(r1.contains(&tuple![1]) && r1.contains(&tuple![3]));
        assert!(!r2.contains(&tuple![2]) && r2.contains(&tuple![4]));
        let v = engine.relation("v").unwrap();
        assert_eq!(v.len(), 3);
        assert!(v.contains(&tuple![3]));
    }

    #[test]
    fn example_3_1_end_to_end_incremental() {
        let mut engine = union_engine(StrategyMode::Incremental);
        engine
            .execute("BEGIN; INSERT INTO v VALUES (3); DELETE FROM v WHERE a = 2; END;")
            .unwrap();
        let r1 = engine.relation("r1").unwrap();
        let r2 = engine.relation("r2").unwrap();
        assert!(r1.contains(&tuple![3]));
        assert!(!r2.contains(&tuple![2]));
    }

    #[test]
    fn original_and_incremental_agree() {
        let scripts = [
            "INSERT INTO v VALUES (10);",
            "DELETE FROM v WHERE a = 1;",
            "BEGIN; INSERT INTO v VALUES (5); INSERT INTO v VALUES (6); DELETE FROM v WHERE a = 4; END;",
            "UPDATE v SET a = 99 WHERE a = 2;",
        ];
        for script in scripts {
            let mut orig = union_engine(StrategyMode::Original);
            let mut inc = union_engine(StrategyMode::Incremental);
            orig.execute(script).unwrap();
            inc.execute(script).unwrap();
            assert!(
                orig.database().same_contents(inc.database()),
                "divergence on {script}"
            );
        }
    }

    #[test]
    fn putget_holds_after_updates() {
        // After any update, re-running get over the new source must give
        // the updated view (PutGet, empirically).
        let mut engine = union_engine(StrategyMode::Original);
        engine.execute("INSERT INTO v VALUES (7);").unwrap();
        engine.execute("DELETE FROM v WHERE a = 1;").unwrap();
        let v_before: Vec<Tuple> = {
            let mut v: Vec<Tuple> = engine.relation("v").unwrap().iter().cloned().collect();
            v.sort();
            v
        };
        engine.refresh_view("v").unwrap();
        let mut v_after: Vec<Tuple> = engine.relation("v").unwrap().iter().cloned().collect();
        v_after.sort();
        assert_eq!(v_before, v_after);
    }

    #[test]
    fn non_view_target_rejected() {
        let mut engine = union_engine(StrategyMode::Original);
        assert!(matches!(
            engine.execute("INSERT INTO r1 VALUES (9);"),
            Err(EngineError::NotAView(_))
        ));
    }

    fn constrained_engine(mode: StrategyMode) -> Engine {
        let mut db = Database::new();
        db.add_relation(Relation::with_tuples("r", 2, vec![tuple![1, 5], tuple![2, 9]]).unwrap())
            .unwrap();
        let strategy = UpdateStrategy::parse(
            DatabaseSchema::new().with(Schema::new(
                "r",
                vec![("x", SortKind::Int), ("y", SortKind::Int)],
            )),
            Schema::new("v", vec![("x", SortKind::Int), ("y", SortKind::Int)]),
            "
            false :- v(X, Y), not Y > 2.
            +r(X, Y) :- v(X, Y), not r(X, Y).
            m(X, Y) :- r(X, Y), Y > 2.
            -r(X, Y) :- m(X, Y), not v(X, Y).
            ",
            None,
        )
        .unwrap();
        let mut engine = Engine::new(db);
        engine.register_view(strategy, mode).unwrap();
        engine
    }

    #[test]
    fn constraint_violation_rejects_and_rolls_back() {
        for mode in [StrategyMode::Original, StrategyMode::Incremental] {
            let mut engine = constrained_engine(mode);
            let err = engine.execute("INSERT INTO v VALUES (3, 1);").unwrap_err();
            assert!(matches!(err, EngineError::ConstraintViolation { .. }));
            // view unchanged
            let v = engine.relation("v").unwrap();
            assert_eq!(v.len(), 2);
            assert!(!v.contains(&tuple![3, 1]));
            // source unchanged
            assert_eq!(engine.relation("r").unwrap().len(), 2);
        }
    }

    #[test]
    fn selection_view_update_flows_to_source() {
        for mode in [StrategyMode::Original, StrategyMode::Incremental] {
            let mut engine = constrained_engine(mode);
            engine.execute("INSERT INTO v VALUES (3, 7);").unwrap();
            assert!(engine.relation("r").unwrap().contains(&tuple![3, 7]));
            engine.execute("DELETE FROM v WHERE x = 1;").unwrap();
            assert!(!engine.relation("r").unwrap().contains(&tuple![1, 5]));
        }
    }

    #[test]
    fn view_over_view_cascade() {
        // residents1962-style: a view whose "source" is another view.
        let mut db = Database::new();
        db.add_relation(Relation::with_tuples("r1", 1, vec![tuple![1], tuple![3]]).unwrap())
            .unwrap();
        db.add_relation(Relation::with_tuples("r2", 1, vec![tuple![8]]).unwrap())
            .unwrap();
        let mut engine = Engine::new(db);
        // v = r1 ∪ r2 (updatable)
        let v_strategy = UpdateStrategy::parse(
            DatabaseSchema::new()
                .with(Schema::new("r1", vec![("a", SortKind::Int)]))
                .with(Schema::new("r2", vec![("a", SortKind::Int)])),
            Schema::new("v", vec![("a", SortKind::Int)]),
            "
            -r1(X) :- r1(X), not v(X).
            -r2(X) :- r2(X), not v(X).
            +r1(X) :- v(X), not r1(X), not r2(X).
            ",
            None,
        )
        .unwrap();
        engine
            .register_view(v_strategy, StrategyMode::Original)
            .unwrap();
        // w = σ_{a>2}(v), updating v as its source
        let w_strategy = UpdateStrategy::parse(
            DatabaseSchema::new().with(Schema::new("v", vec![("a", SortKind::Int)])),
            Schema::new("w", vec![("a", SortKind::Int)]),
            "
            false :- w(X), not X > 2.
            +v(X) :- w(X), not v(X).
            mv(X) :- v(X), X > 2.
            -v(X) :- mv(X), not w(X).
            ",
            None,
        )
        .unwrap();
        engine
            .register_view(w_strategy, StrategyMode::Original)
            .unwrap();
        assert_eq!(engine.relation("w").unwrap().len(), 2); // {3, 8}

        // Insert into w: must cascade into v and then into r1.
        let stats = engine.execute("INSERT INTO w VALUES (9);").unwrap();
        assert!(stats.cascades >= 1);
        assert!(engine.relation("v").unwrap().contains(&tuple![9]));
        assert!(engine.relation("r1").unwrap().contains(&tuple![9]));
        // Delete from w: cascades a deletion.
        engine.execute("DELETE FROM w WHERE a = 8;").unwrap();
        assert!(!engine.relation("v").unwrap().contains(&tuple![8]));
        assert!(!engine.relation("r2").unwrap().contains(&tuple![8]));
        // w itself reflects both updates.
        let w = engine.relation("w").unwrap();
        assert!(w.contains(&tuple![9]) && !w.contains(&tuple![8]));
    }

    #[test]
    fn empty_transaction_is_noop() {
        let mut engine = union_engine(StrategyMode::Original);
        let stats = engine.execute("INSERT INTO v VALUES (1);").unwrap(); // already present
        assert_eq!(stats.view_delta_size, 0);
        assert_eq!(engine.relation("r1").unwrap().len(), 1);
    }

    #[test]
    fn plans_are_computed_at_most_once_per_rule_per_session() {
        for mode in [StrategyMode::Original, StrategyMode::Incremental] {
            let mut engine = union_engine(mode);
            // Registration (materialization + warm-up) populates the cache.
            let planned_at_registration = engine.plan_cache().misses();
            assert!(planned_at_registration > 0, "warm-up compiles plans");
            // A `misses == len` invariant means no rule was ever planned
            // twice: a replanned rule would bump `misses` without growing
            // the map.
            assert_eq!(
                engine.plan_cache().misses(),
                engine.plan_cache().len() as u64
            );

            engine.execute("INSERT INTO v VALUES (30);").unwrap();
            let after_first_update = engine.plan_cache().misses();
            engine.execute("INSERT INTO v VALUES (31);").unwrap();
            engine.execute("DELETE FROM v WHERE a = 30;").unwrap();
            engine
                .execute("BEGIN; INSERT INTO v VALUES (32); DELETE FROM v WHERE a = 31; END;")
                .unwrap();
            assert_eq!(
                engine.plan_cache().misses(),
                after_first_update,
                "{mode:?}: repeated updates replay cached plans, never replan"
            );
            assert_eq!(
                engine.plan_cache().misses(),
                engine.plan_cache().len() as u64,
                "{mode:?}: every rule planned at most once in the session"
            );
            assert!(
                engine.plan_cache().hits() > 0,
                "{mode:?}: updates actually hit the cache"
            );
        }
    }

    #[test]
    fn batched_delta_equals_per_statement_replay() {
        // Coalescing many statements into one net delta and applying it
        // in one pass must land on the same database as executing the
        // statements one at a time.
        let scripts = [
            "INSERT INTO v VALUES (10);",
            "INSERT INTO v VALUES (11);",
            "DELETE FROM v WHERE a = 10;",
            "INSERT INTO v VALUES (12);",
            "DELETE FROM v WHERE a = 1;",
        ];
        for mode in [StrategyMode::Original, StrategyMode::Incremental] {
            let mut serial = union_engine(mode);
            for s in scripts {
                serial.execute(s).unwrap();
            }
            let mut batched = union_engine(mode);
            let statements: Vec<_> = scripts
                .iter()
                .flat_map(|s| parse_script(s).unwrap())
                .collect();
            let delta = batched.derive_delta("v", &statements).unwrap();
            // Net effect: insert 11 and 12, delete 1; the 10-insert is
            // cancelled by its own deletion before ever being applied.
            assert_eq!(delta.insertions.len(), 2);
            assert_eq!(delta.deletions.len(), 1);
            let stats = batched.apply_delta("v", delta).unwrap();
            assert_eq!(stats.view_delta_size, 3);
            assert!(
                serial.database().same_contents(batched.database()),
                "{mode:?}: batched application diverges from serial replay"
            );
        }
    }

    #[test]
    fn apply_delta_normalizes_stale_deltas() {
        let mut engine = union_engine(StrategyMode::Incremental);
        let mut delta = Delta::new();
        delta.push_insert(tuple![1]); // already in the view
        delta.push_delete(tuple![99]); // not in the view
        delta.push_insert(tuple![50]); // genuinely new
        let stats = engine.apply_delta("v", delta).unwrap();
        assert_eq!(stats.view_delta_size, 1, "only the new tuple survives");
        assert!(engine.relation("v").unwrap().contains(&tuple![50]));
        assert!(engine.relation("r1").unwrap().contains(&tuple![50]));
    }

    #[test]
    fn apply_deltas_sums_stats_across_views() {
        let mut engine = union_engine(StrategyMode::Incremental);
        let mut d = Delta::new();
        d.push_insert(tuple![70]);
        d.push_insert(tuple![71]);
        let stats = engine.apply_deltas(vec![("v".to_owned(), d)]).unwrap();
        assert_eq!(stats.view_delta_size, 2);
        assert!(engine.relation("r1").unwrap().contains(&tuple![70]));
    }

    #[test]
    fn apply_delta_rejects_wrong_arity_and_unknown_view() {
        let mut engine = union_engine(StrategyMode::Original);
        let mut d = Delta::new();
        d.push_insert(tuple![1, 2]);
        assert!(matches!(
            engine.apply_delta("v", d),
            Err(EngineError::BadStatement(_))
        ));
        assert!(matches!(
            engine.apply_delta("nope", Delta::new()),
            Err(EngineError::NotAView(_))
        ));
    }

    fn union_strategy(view: &str, r1: &str, r2: &str) -> UpdateStrategy {
        UpdateStrategy::parse(
            DatabaseSchema::new()
                .with(Schema::new(r1, vec![("a", SortKind::Int)]))
                .with(Schema::new(r2, vec![("a", SortKind::Int)])),
            Schema::new(view, vec![("a", SortKind::Int)]),
            &format!(
                "
                -{r1}(X) :- {r1}(X), not {view}(X).
                -{r2}(X) :- {r2}(X), not {view}(X).
                +{r1}(X) :- {view}(X), not {r1}(X), not {r2}(X).
                "
            ),
            None,
        )
        .unwrap()
    }

    /// Two independent union views plus one free-standing base table.
    fn two_component_engine() -> Engine {
        let mut db = Database::new();
        for name in ["a1", "b1", "a2", "b2", "z"] {
            db.add_relation(Relation::with_tuples(name, 1, vec![tuple![1]]).unwrap())
                .unwrap();
        }
        let mut engine = Engine::new(db);
        engine
            .register_view(union_strategy("v1", "a1", "b1"), StrategyMode::Incremental)
            .unwrap();
        engine
            .register_view(union_strategy("v2", "a2", "b2"), StrategyMode::Incremental)
            .unwrap();
        engine
    }

    #[test]
    fn footprint_covers_reads_writes_and_self() {
        let engine = union_engine(StrategyMode::Incremental);
        let fp = engine.view_footprint("v").unwrap();
        assert!(fp.reads.contains("r1") && fp.reads.contains("r2"));
        assert_eq!(
            fp.writes,
            BTreeSet::from(["r1".to_owned(), "r2".to_owned()])
        );
        assert!(fp.closure.contains("v"));
        assert!(fp.closure.is_superset(&fp.reads) && fp.closure.is_superset(&fp.writes));
        assert!(engine.view_footprint("r1").is_none());
    }

    #[test]
    fn footprint_closure_includes_cascade_targets() {
        // w = σ_{a>2}(v) writes into v, so w's closure must contain v's
        // entire closure (a commit on w can cascade into v and from
        // there into r1/r2).
        let mut db = Database::new();
        db.add_relation(Relation::with_tuples("r1", 1, vec![tuple![1], tuple![3]]).unwrap())
            .unwrap();
        db.add_relation(Relation::with_tuples("r2", 1, vec![tuple![8]]).unwrap())
            .unwrap();
        let mut engine = Engine::new(db);
        engine
            .register_view(union_strategy("v", "r1", "r2"), StrategyMode::Original)
            .unwrap();
        let w_strategy = UpdateStrategy::parse(
            DatabaseSchema::new().with(Schema::new("v", vec![("a", SortKind::Int)])),
            Schema::new("w", vec![("a", SortKind::Int)]),
            "
            false :- w(X), not X > 2.
            +v(X) :- w(X), not v(X).
            mv(X) :- v(X), X > 2.
            -v(X) :- mv(X), not w(X).
            ",
            None,
        )
        .unwrap();
        engine
            .register_view(w_strategy, StrategyMode::Original)
            .unwrap();
        let v_closure = engine.view_footprint("v").unwrap().closure.clone();
        let w = engine.view_footprint("w").unwrap();
        assert!(w.writes.contains("v"));
        assert!(w.closure.is_superset(&v_closure));
        for name in ["w", "v", "r1", "r2"] {
            assert!(w.closure.contains(name), "missing {name}");
        }
    }

    #[test]
    fn split_components_partitions_and_absorb_restores() {
        let engine = two_component_engine();
        let original = engine.db.clone();
        let components = engine.split_components();
        // {v1,a1,b1}, {v2,a2,b2}, {z}
        assert_eq!(components.len(), 3);
        let sizes: Vec<usize> = components.iter().map(|e| e.db.names().count()).collect();
        assert_eq!(sizes, vec![3, 3, 1]);
        for component in &components {
            for view in component.views.keys() {
                let fp = &component.views[view].footprint;
                assert!(
                    fp.closure.iter().all(|n| component.db.contains_relation(n)),
                    "closure of '{view}' escapes its component"
                );
            }
        }
        // Components stay independently updatable.
        let mut components = components;
        let c1 = components
            .iter_mut()
            .find(|e| e.is_view("v1"))
            .expect("v1 component");
        c1.execute("INSERT INTO v1 VALUES (9);").unwrap();
        assert!(c1.relation("a1").unwrap().contains(&tuple![9]));

        let mut merged = Engine::new(Database::new());
        for component in components {
            merged.absorb(component).unwrap();
        }
        assert_eq!(merged.db.names().count(), original.names().count());
        assert!(merged.is_view("v1") && merged.is_view("v2"));
        assert!(merged.relation("a1").unwrap().contains(&tuple![9]));
        // Absorbing a clashing engine is rejected.
        let mut db = Database::new();
        db.add_relation(Relation::new("z", 1)).unwrap();
        assert!(merged.absorb(Engine::new(db)).is_err());
    }

    #[test]
    fn read_trace_stays_within_declared_footprint() {
        let mut engine = union_engine(StrategyMode::Incremental);
        let closure = engine.view_footprint("v").unwrap().closure.clone();
        engine.set_read_trace(true);
        engine.execute("INSERT INTO v VALUES (41);").unwrap();
        engine.execute("DELETE FROM v WHERE a = 41;").unwrap();
        let traced = engine.take_read_trace();
        assert!(!traced.is_empty(), "tracing records evaluation reads");
        for name in &traced {
            // Only stored relations are lock-relevant; overlay-resident
            // delta/intermediate relations are exempt.
            if engine.relation(name).is_some() {
                assert!(closure.contains(name), "undeclared read of '{name}'");
            }
        }
        engine.set_read_trace(false);
        engine.execute("INSERT INTO v VALUES (42);").unwrap();
        assert!(engine.take_read_trace().is_empty());
    }

    #[test]
    fn constraint_check_plans_are_cached_across_updates() {
        let mut engine = constrained_engine(StrategyMode::Incremental);
        engine.execute("INSERT INTO v VALUES (3, 7);").unwrap();
        // The first update may compile constraint-check rules that the
        // warm-up never sees (they are rewritten per the Δ⁺V fast path);
        // from then on the cache must be steady.
        let after_first = engine.plan_cache().misses();
        engine.execute("INSERT INTO v VALUES (4, 8);").unwrap();
        engine.execute("DELETE FROM v WHERE x = 3;").unwrap();
        assert_eq!(engine.plan_cache().misses(), after_first);
        assert_eq!(
            engine.plan_cache().misses(),
            engine.plan_cache().len() as u64
        );
    }

    #[test]
    fn refresh_view_drops_stale_plans() {
        // refresh_view follows direct base-table mutation; join orders
        // planned against the old sizes must not survive it.
        let mut engine = union_engine(StrategyMode::Incremental);
        engine.execute("INSERT INTO v VALUES (3);").unwrap();
        assert!(!engine.plan_cache().is_empty());
        engine.refresh_view("v").unwrap();
        assert!(engine.plan_cache().is_empty());
    }

    #[test]
    fn range_pushdown_toggle_drops_plans() {
        let mut engine = union_engine(StrategyMode::Incremental);
        engine.execute("INSERT INTO v VALUES (3);").unwrap();
        assert!(!engine.plan_cache().is_empty());
        engine.set_range_pushdown(false);
        assert!(engine.plan_cache().is_empty(), "setting changed");
        engine.set_range_pushdown(false);
        engine.execute("INSERT INTO v VALUES (5);").unwrap();
        let planned = engine.plan_cache().len();
        engine.set_range_pushdown(false); // same value: plans survive
        assert_eq!(engine.plan_cache().len(), planned);
        // The engine still computes the same results either way.
        assert!(engine.relation("v").unwrap().contains(&tuple![5]));
    }
}
