//! Engine errors.

use std::fmt;

/// Result alias for engine operations.
pub type EngineResult<T> = Result<T, EngineError>;

/// Errors raised by the updatable-view runtime.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    /// The statement targets a relation that is not a registered view.
    NotAView(String),
    /// A view update violates one of the strategy's integrity
    /// constraints; the transaction is rejected (paper §6.1: "RAISE
    /// 'Invalid view updates'").
    ConstraintViolation { view: String, constraint: String },
    /// The computed source delta is contradictory (the strategy is not
    /// well defined on this input).
    ContradictoryDelta(String),
    /// DML parsing failed.
    Dml(String),
    /// A DML row has the wrong arity / unknown column.
    BadStatement(String),
    /// Datalog evaluation failed.
    Eval(String),
    /// Storage failure.
    Store(String),
    /// A name clash or missing relation during registration.
    Registration(String),
    /// A snapshot stream could not be written, or does not match this
    /// engine's relation set on restore.
    Snapshot(String),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::NotAView(n) => write!(f, "'{n}' is not a registered updatable view"),
            EngineError::ConstraintViolation { view, constraint } => {
                write!(
                    f,
                    "invalid view update on '{view}': constraint violated: {constraint}"
                )
            }
            EngineError::ContradictoryDelta(m) => {
                write!(f, "contradictory source delta: {m}")
            }
            EngineError::Dml(m) => write!(f, "{m}"),
            EngineError::BadStatement(m) => write!(f, "bad statement: {m}"),
            EngineError::Eval(m) => write!(f, "evaluation error: {m}"),
            EngineError::Store(m) => write!(f, "store error: {m}"),
            EngineError::Registration(m) => write!(f, "registration error: {m}"),
            EngineError::Snapshot(m) => write!(f, "snapshot error: {m}"),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<birds_eval::EvalError> for EngineError {
    fn from(e: birds_eval::EvalError) -> Self {
        EngineError::Eval(e.to_string())
    }
}

impl From<birds_store::StoreError> for EngineError {
    fn from(e: birds_store::StoreError) -> Self {
        EngineError::Store(e.to_string())
    }
}

impl From<birds_sql::dml::DmlParseError> for EngineError {
    fn from(e: birds_sql::dml::DmlParseError) -> Self {
        EngineError::Dml(e.to_string())
    }
}
