//! Engine snapshots: serialize every stored relation to a versioned
//! binary stream and restore it later.
//!
//! A snapshot captures *contents only* — relation names, arities and
//! tuple sets, materialized views included — using the store codec
//! (`birds_store::codec`). It does not capture strategies, plans or
//! indexes: those are code-derived, so recovery re-registers the same
//! views (the same construction code that built the engine) and then
//! [`Engine::restore`] overwrites the relation contents. Each relation
//! is written as one CRC-framed record, so a truncated or bit-flipped
//! snapshot fails loudly at restore time instead of half-loading.
//!
//! Layout: `"BSNP"` header ([`codec::StreamHeader`]) · `u64` relation
//! count · one framed record per relation.

use crate::engine::Engine;
use crate::error::{EngineError, EngineResult};
use birds_store::codec::{self, RecordRead, StreamHeader};
use birds_store::Relation;
use std::io::{Read, Write};

/// Magic tag of an engine snapshot stream.
pub const SNAPSHOT_MAGIC: [u8; 4] = *b"BSNP";

/// Write a snapshot stream covering exactly `relations`. The sharded
/// service uses this directly to checkpoint across shard engines; a
/// single engine snapshots itself via [`Engine::snapshot`].
pub fn write_snapshot(w: &mut impl Write, relations: &[&Relation]) -> EngineResult<()> {
    let header = StreamHeader {
        magic: SNAPSHOT_MAGIC,
    };
    header.write(w).map_err(snapshot_err)?;
    let mut count = Vec::with_capacity(8);
    codec::put_u64(&mut count, relations.len() as u64);
    w.write_all(&count)
        .map_err(|e| snapshot_err(codec::CodecError::Io(e)))?;
    let mut payload = Vec::new();
    for rel in relations {
        payload.clear();
        codec::put_relation(&mut payload, rel);
        codec::write_record(w, &payload).map_err(snapshot_err)?;
    }
    Ok(())
}

/// Read every relation out of a snapshot stream.
pub fn read_snapshot(r: &mut impl Read) -> EngineResult<Vec<Relation>> {
    StreamHeader::read(r, SNAPSHOT_MAGIC).map_err(snapshot_err)?;
    let mut count_bytes = [0u8; 8];
    r.read_exact(&mut count_bytes)
        .map_err(|e| snapshot_err(codec::CodecError::Io(e)))?;
    let count = u64::from_le_bytes(count_bytes);
    let mut relations = Vec::new();
    for i in 0..count {
        let payload = match codec::read_record(r).map_err(snapshot_err)? {
            RecordRead::Payload(p) => p,
            RecordRead::Eof | RecordRead::Torn => {
                return Err(EngineError::Snapshot(format!(
                    "snapshot truncated at relation {i} of {count}"
                )));
            }
        };
        let mut cur = codec::Cursor::new(&payload);
        let rel = codec::get_relation(&mut cur).map_err(snapshot_err)?;
        if !cur.is_exhausted() {
            return Err(EngineError::Snapshot(format!(
                "trailing bytes after relation '{}'",
                rel.name()
            )));
        }
        relations.push(rel);
    }
    Ok(relations)
}

fn snapshot_err(e: codec::CodecError) -> EngineError {
    EngineError::Snapshot(e.to_string())
}

impl Engine {
    /// Serialize every stored relation (base tables and materialized
    /// views) to `w`. See the module docs for the format and what is
    /// deliberately *not* captured.
    pub fn snapshot(&self, w: &mut impl Write) -> EngineResult<()> {
        let relations: Vec<&Relation> = self.database().relations().collect();
        write_snapshot(w, &relations)
    }

    /// Replace the contents of every stored relation from a snapshot
    /// stream previously produced by [`Engine::snapshot`] (or the
    /// service's sharded checkpoint writer).
    ///
    /// The snapshot must cover **exactly** this engine's relation set —
    /// same names, same arities. A mismatch (a view added or dropped
    /// since the snapshot was taken, an arity change) is a schema
    /// migration, which this subsystem deliberately refuses to guess at:
    /// the restore fails without modifying the engine. On success the
    /// plan cache is cleared so the next evaluation replans against the
    /// restored relation sizes, and secondary indexes are rebuilt.
    pub fn restore(&mut self, mut r: impl Read) -> EngineResult<()> {
        let relations = read_snapshot(&mut r)?;
        // Validate the full set before touching anything.
        for rel in &relations {
            match self.relation(rel.name()) {
                None => {
                    return Err(EngineError::Snapshot(format!(
                        "snapshot carries unknown relation '{}'",
                        rel.name()
                    )));
                }
                Some(existing) if existing.arity() != rel.arity() => {
                    return Err(EngineError::Snapshot(format!(
                        "snapshot relation '{}' has arity {} but the engine expects {}",
                        rel.name(),
                        rel.arity(),
                        existing.arity()
                    )));
                }
                Some(_) => {}
            }
        }
        let expected = self.database().relations().count();
        if relations.len() != expected {
            return Err(EngineError::Snapshot(format!(
                "snapshot covers {} relations but the engine has {expected}",
                relations.len()
            )));
        }
        for rel in relations {
            let target = self
                .database_mut()
                .relation_mut(rel.name())
                .expect("validated above");
            target.replace_all(rel.into_tuples())?;
        }
        self.clear_plan_cache();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::StrategyMode;
    use birds_core::UpdateStrategy;
    use birds_store::{tuple, Database, DatabaseSchema, Schema, SortKind};

    fn union_engine() -> Engine {
        let mut db = Database::new();
        db.add_relation(Relation::with_tuples("r1", 1, vec![tuple![1]]).unwrap())
            .unwrap();
        db.add_relation(Relation::with_tuples("r2", 1, vec![tuple![2], tuple![4]]).unwrap())
            .unwrap();
        let strategy = UpdateStrategy::parse(
            DatabaseSchema::new()
                .with(Schema::new("r1", vec![("a", SortKind::Int)]))
                .with(Schema::new("r2", vec![("a", SortKind::Int)])),
            Schema::new("v", vec![("a", SortKind::Int)]),
            "
            -r1(X) :- r1(X), not v(X).
            -r2(X) :- r2(X), not v(X).
            +r1(X) :- v(X), not r1(X), not r2(X).
            ",
            None,
        )
        .unwrap();
        let mut engine = Engine::new(db);
        engine
            .register_view(strategy, StrategyMode::Incremental)
            .unwrap();
        engine
    }

    #[test]
    fn snapshot_restore_round_trip() {
        let mut source = union_engine();
        source.execute("INSERT INTO v VALUES (9);").unwrap();
        source.execute("DELETE FROM v WHERE a = 2;").unwrap();
        let mut bytes = Vec::new();
        source.snapshot(&mut bytes).unwrap();

        // A freshly built engine (same registration code, seed data)
        // restored from the snapshot must match the source exactly.
        let mut recovered = union_engine();
        recovered.restore(&bytes[..]).unwrap();
        assert!(recovered.database().same_contents(source.database()));

        // The restored engine stays updatable (indexes were rebuilt).
        recovered.execute("INSERT INTO v VALUES (70);").unwrap();
        assert!(recovered.relation("r1").unwrap().contains(&tuple![70]));
    }

    #[test]
    fn restore_rejects_schema_mismatch_without_mutation() {
        let source = union_engine();
        let mut bytes = Vec::new();
        source.snapshot(&mut bytes).unwrap();

        // An engine with a different relation set refuses the snapshot.
        let mut other = Engine::new(Database::new());
        other
            .database_mut()
            .add_relation(Relation::new("r1", 1))
            .unwrap();
        let err = other.restore(&bytes[..]).unwrap_err();
        assert!(matches!(err, EngineError::Snapshot(_)), "{err}");
        assert!(other.relation("r1").unwrap().is_empty(), "unmodified");
    }

    #[test]
    fn restore_rejects_truncated_snapshots() {
        let source = union_engine();
        let mut bytes = Vec::new();
        source.snapshot(&mut bytes).unwrap();
        for cut in [bytes.len() - 1, bytes.len() / 2, 10] {
            let mut target = union_engine();
            assert!(
                target.restore(&bytes[..cut]).is_err(),
                "truncation at {cut} must fail"
            );
        }
    }

    #[test]
    fn restore_rejects_corrupted_payloads() {
        let source = union_engine();
        let mut bytes = Vec::new();
        source.snapshot(&mut bytes).unwrap();
        let mut corrupt = bytes.clone();
        let last = corrupt.len() - 1;
        corrupt[last] ^= 0x40;
        let mut target = union_engine();
        assert!(target.restore(&corrupt[..]).is_err(), "CRC must catch it");
    }
}
