//! Algorithm 2 (Appendix D): deriving the view delta `ΔV` from a sequence
//! of DML statements.
//!
//! Each statement yields per-statement sets `δ⁺` / `δ⁻`, merged so later
//! statements override earlier ones:
//!
//! ```text
//! Δ⁺V ← (Δ⁺V \ δ⁻) ∪ δ⁺
//! Δ⁻V ← (Δ⁻V \ δ⁺) ∪ δ⁻
//! ```
//!
//! `DELETE`/`UPDATE` predicates are evaluated against the *transaction-
//! local* view state (the stored view with the pending delta applied), so
//! a statement sees the effects of earlier statements in the same
//! transaction. Equality conditions probe the view's hash indexes, which
//! keeps single-key deletes `O(1)` — the paper's PostgreSQL benefits from
//! B-tree indexes the same way. The pending insertions are held in an
//! indexed [`Relation`] mirroring the view's per-column indexes, so a
//! keyed statement late in a large batch probes the pending set too
//! instead of scanning it — without this, deriving a k-statement batch
//! degrades to `O(k²)` and erases the service layer's batching win.

use crate::error::{EngineError, EngineResult};
use birds_sql::{Condition, DmlStatement};
use birds_store::{Delta, Relation, Schema, Tuple, Value};
use std::collections::HashSet;

/// Derive the merged, normalized view delta for a statement sequence.
///
/// The result is *effective* w.r.t. the stored view: insertions are not
/// already present, deletions are present (this normalization is what the
/// incremental programs and rollback logic rely on).
pub fn derive_view_delta(
    view: &Relation,
    schema: &Schema,
    statements: &[DmlStatement],
) -> EngineResult<Delta> {
    // Pending insertions carry the same single-column indexes the view
    // relation gets at registration, so both sides of the transaction-
    // local state answer keyed predicates by probe.
    let mut ins = Relation::new("Δ⁺", schema.arity());
    for col in 0..schema.arity() {
        ins.ensure_index(&[col])
            .map_err(|e| EngineError::Store(e.to_string()))?;
    }
    let mut del: HashSet<Tuple> = HashSet::new();

    for stmt in statements {
        let (d_plus, d_minus) = statement_effect(view, schema, &ins, &del, stmt)?;
        // Δ⁺V ← (Δ⁺V \ δ⁻) ∪ δ⁺ ; Δ⁻V ← (Δ⁻V \ δ⁺) ∪ δ⁻
        for t in &d_minus {
            ins.remove(t);
        }
        for t in &d_plus {
            del.remove(t);
        }
        for t in d_plus {
            ins.insert(t)
                .map_err(|e| EngineError::Store(e.to_string()))?;
        }
        del.extend(d_minus);
    }

    // Normalize to effective sets w.r.t. the stored view.
    let ins: HashSet<Tuple> = ins
        .tuples()
        .iter()
        .filter(|t| !view.contains(t))
        .cloned()
        .collect();
    del.retain(|t| view.contains(t));
    Ok(Delta::from_sets(ins, del))
}

/// `δ⁺` / `δ⁻` of a single statement against the transaction-local state.
fn statement_effect(
    view: &Relation,
    schema: &Schema,
    pending_ins: &Relation,
    pending_del: &HashSet<Tuple>,
    stmt: &DmlStatement,
) -> EngineResult<(Vec<Tuple>, Vec<Tuple>)> {
    match stmt {
        DmlStatement::Insert { rows, .. } => {
            let mut d_plus = Vec::with_capacity(rows.len());
            for row in rows {
                if row.len() != schema.arity() {
                    return Err(EngineError::BadStatement(format!(
                        "INSERT row has {} values but view '{}' has arity {}",
                        row.len(),
                        schema.name,
                        schema.arity()
                    )));
                }
                d_plus.push(Tuple::new(row.clone()));
            }
            Ok((d_plus, vec![]))
        }
        DmlStatement::Delete { predicate, .. } => {
            let matching = matching_tuples(view, schema, pending_ins, pending_del, predicate)?;
            Ok((vec![], matching))
        }
        DmlStatement::Update {
            sets, predicate, ..
        } => {
            // UPDATE = DELETE matching + INSERT updated copies (App. D).
            let matching = matching_tuples(view, schema, pending_ins, pending_del, predicate)?;
            let mut assignments: Vec<(usize, Value)> = Vec::with_capacity(sets.len());
            for (col, value) in sets {
                let idx = schema.attribute_index(col).ok_or_else(|| {
                    EngineError::BadStatement(format!(
                        "unknown column '{col}' on view '{}'",
                        schema.name
                    ))
                })?;
                assignments.push((idx, *value));
            }
            let updated: Vec<Tuple> = matching
                .iter()
                .map(|t| {
                    let mut vals = t.values().to_vec();
                    for (idx, v) in &assignments {
                        vals[*idx] = *v;
                    }
                    Tuple::new(vals)
                })
                .collect();
            Ok((updated, matching))
        }
    }
}

/// Tuples of the transaction-local view state matching a conjunctive
/// predicate: `(view \ pending_del) ∪ pending_ins`, both sides answered
/// by index probe on positive equality conditions when possible.
fn matching_tuples(
    view: &Relation,
    schema: &Schema,
    pending_ins: &Relation,
    pending_del: &HashSet<Tuple>,
    predicate: &[Condition],
) -> EngineResult<Vec<Tuple>> {
    // Resolve columns up front.
    let mut resolved: Vec<(usize, &Condition)> = Vec::with_capacity(predicate.len());
    for c in predicate {
        let idx = schema.attribute_index(&c.column).ok_or_else(|| {
            EngineError::BadStatement(format!(
                "unknown column '{}' on view '{}'",
                c.column, schema.name
            ))
        })?;
        resolved.push((idx, c));
    }

    let mut out: Vec<Tuple> = Vec::new();
    collect_matching(view, &resolved, Some(pending_del), &mut out);
    collect_matching(pending_ins, &resolved, None, &mut out);
    out.sort();
    out.dedup();
    Ok(out)
}

/// Append `rel`'s tuples matching the resolved conditions (minus
/// `exclude`) to `out`. Positive equality conditions drive an index
/// probe when `rel` has a matching index; otherwise a filtered scan.
fn collect_matching(
    rel: &Relation,
    resolved: &[(usize, &Condition)],
    exclude: Option<&HashSet<Tuple>>,
    out: &mut Vec<Tuple>,
) {
    let matches = |t: &Tuple| {
        resolved.iter().all(|(i, c)| c.matches(&t[*i])) && exclude.is_none_or(|ex| !ex.contains(t))
    };

    let eq_cols: Vec<usize> = resolved
        .iter()
        .filter(|(_, c)| c.op == birds_datalog::CmpOp::Eq && !c.negated)
        .map(|(i, _)| *i)
        .collect();
    let full_index = !eq_cols.is_empty() && rel.has_index(&eq_cols);
    // Fall back to any single indexed equality column, filtering the rest.
    let partial_index = eq_cols.iter().find(|&&c| rel.has_index(&[c])).copied();
    if full_index {
        let key: Vec<Value> = resolved
            .iter()
            .filter(|(_, c)| c.op == birds_datalog::CmpOp::Eq && !c.negated)
            .map(|(_, c)| c.value)
            .collect();
        out.extend(rel.probe(&eq_cols, &key).filter(|t| matches(t)).cloned());
    } else if let Some(col) = partial_index {
        let key = resolved
            .iter()
            .find(|(i, c)| *i == col && c.op == birds_datalog::CmpOp::Eq && !c.negated)
            .map(|(_, c)| c.value)
            .expect("col came from eq_cols");
        out.extend(rel.probe(&[col], &[key]).filter(|t| matches(t)).cloned());
    } else {
        out.extend(rel.iter().filter(|t| matches(t)).cloned());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use birds_sql::parse_script;
    use birds_store::{tuple, SortKind};

    fn view() -> (Relation, Schema) {
        let rel =
            Relation::with_tuples("v", 2, vec![tuple![1, "a"], tuple![2, "b"], tuple![3, "c"]])
                .unwrap();
        let schema = Schema::new("v", vec![("id", SortKind::Int), ("name", SortKind::Str)]);
        (rel, schema)
    }

    fn delta_for(script: &str) -> Delta {
        let (rel, schema) = view();
        let stmts = parse_script(script).unwrap();
        derive_view_delta(&rel, &schema, &stmts).unwrap()
    }

    #[test]
    fn insert_yields_insertions() {
        let d = delta_for("INSERT INTO v VALUES (4, 'd');");
        assert_eq!(d.insertions.len(), 1);
        assert!(d.insertions.contains(&tuple![4, "d"]));
        assert!(d.deletions.is_empty());
    }

    #[test]
    fn insert_existing_tuple_is_normalized_away() {
        let d = delta_for("INSERT INTO v VALUES (1, 'a');");
        assert!(d.is_empty());
    }

    #[test]
    fn delete_by_key() {
        let d = delta_for("DELETE FROM v WHERE id = 2;");
        assert_eq!(d.deletions.len(), 1);
        assert!(d.deletions.contains(&tuple![2, "b"]));
    }

    #[test]
    fn delete_by_range() {
        let d = delta_for("DELETE FROM v WHERE id >= 2;");
        assert_eq!(d.deletions.len(), 2);
    }

    #[test]
    fn update_is_delete_plus_insert() {
        let d = delta_for("UPDATE v SET name = 'z' WHERE id = 1;");
        assert!(d.deletions.contains(&tuple![1, "a"]));
        assert!(d.insertions.contains(&tuple![1, "z"]));
    }

    #[test]
    fn later_statements_override_earlier_ones() {
        // Appendix D example: insert then delete the same tuple — the
        // insertion disappears.
        let d = delta_for("INSERT INTO v VALUES (9, 'x'); DELETE FROM v WHERE id = 9;");
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn statements_see_earlier_effects() {
        // Delete then update: the update sees the deletion.
        let d = delta_for("DELETE FROM v WHERE id = 1; UPDATE v SET name = 'q' WHERE id <= 2;");
        // id=1 already deleted, so only id=2 is updated.
        assert!(d.deletions.contains(&tuple![1, "a"]));
        assert!(d.deletions.contains(&tuple![2, "b"]));
        assert!(d.insertions.contains(&tuple![2, "q"]));
        assert!(!d.insertions.contains(&tuple![1, "q"]));
    }

    #[test]
    fn update_of_pending_insert() {
        let d = delta_for("INSERT INTO v VALUES (7, 'n'); UPDATE v SET name = 'm' WHERE id = 7;");
        assert!(d.insertions.contains(&tuple![7, "m"]));
        assert!(!d.insertions.contains(&tuple![7, "n"]));
        assert!(!d.deletions.contains(&tuple![7, "n"]), "never stored");
    }

    #[test]
    fn unknown_column_rejected() {
        let (rel, schema) = view();
        let stmts = parse_script("DELETE FROM v WHERE nope = 1;").unwrap();
        assert!(matches!(
            derive_view_delta(&rel, &schema, &stmts),
            Err(EngineError::BadStatement(_))
        ));
    }

    #[test]
    fn arity_mismatch_rejected() {
        let (rel, schema) = view();
        let stmts = parse_script("INSERT INTO v VALUES (1);").unwrap();
        assert!(matches!(
            derive_view_delta(&rel, &schema, &stmts),
            Err(EngineError::BadStatement(_))
        ));
    }
}
