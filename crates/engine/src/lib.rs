//! # birds-engine
//!
//! The updatable-view runtime: an in-process substitute for the
//! PostgreSQL + trigger deployment of §6.1.
//!
//! An [`Engine`] owns a [`birds_store::Database`] of base tables plus a
//! registry of updatable views. Each registered view carries its
//! materialized relation, its update strategy, and (optionally) the
//! incrementalized delta program. A view update request — one or more DML
//! statements, exactly as in the paper's trigger — is processed by:
//!
//! 1. deriving the view delta `ΔV` from the statements (Algorithm 2 /
//!    Appendix D, [`algorithm2`]);
//! 2. checking the strategy's integrity constraints against `(S, V′)`;
//! 3. computing the source delta `ΔS` by evaluating the putback program
//!    (original mode) or the incremental program `∂put` (incremental
//!    mode, §5) and applying it to the source relations.
//!
//! Views defined over other updatable views (the paper's
//! `residents1962`-over-`residents` case study) cascade: a source delta
//! that targets a registered view is translated into a view update on
//! that view and processed recursively.

pub mod algorithm2;
pub mod engine;
pub mod error;
pub mod snapshot;

pub use algorithm2::derive_view_delta;
pub use engine::{
    strategy_touches, Engine, ExecutionStats, StrategyMode, ViewDefinition, ViewFootprint,
};
pub use error::{EngineError, EngineResult};
pub use snapshot::{read_snapshot, write_snapshot, SNAPSHOT_MAGIC};
