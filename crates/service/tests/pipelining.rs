//! Out-of-order pipelining and serving-limit guarantees of the epoll
//! reactor (ISSUE 7).
//!
//! The ordering contract under test (see `birds_service::protocol`):
//! same-session requests stay FIFO; independent `query`/`stats`/
//! autocommit requests may complete in any order — in particular, a
//! slow request on shard A must not delay a fast request on shard B
//! *on the same connection*; every id is answered exactly once; `quit`
//! is a barrier whose bye is the connection's last response.
//!
//! Determinism: the "slow" request is made slow by parking on its
//! shard's write lock via the `debug_write_lock_shard` test hook, not
//! by timing, so the tests cannot flake on an oversubscribed runner.
//! Every socket carries a read timeout so a regression fails the test
//! instead of hanging it.
//!
//! The engine fixture is the disjoint-union shape from `sharding.rs`:
//! independent components `v{i} = a{i} ∪ b{i}`, one shard each.

use birds_core::UpdateStrategy;
use birds_engine::{Engine, StrategyMode};
use birds_service::{Json, Server, ServerConfig, Service};
use birds_store::{tuple, Database, DatabaseSchema, Relation, Schema, SortKind};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

fn union_strategy(view: &str, r1: &str, r2: &str) -> UpdateStrategy {
    UpdateStrategy::parse(
        DatabaseSchema::new()
            .with(Schema::new(r1, vec![("a", SortKind::Int)]))
            .with(Schema::new(r2, vec![("a", SortKind::Int)])),
        Schema::new(view, vec![("a", SortKind::Int)]),
        &format!(
            "
            -{r1}(X) :- {r1}(X), not {view}(X).
            -{r2}(X) :- {r2}(X), not {view}(X).
            +{r1}(X) :- {view}(X), not {r1}(X), not {r2}(X).
            "
        ),
        None,
    )
    .unwrap()
}

fn disjoint_engine(views: usize) -> Engine {
    let mut db = Database::new();
    for i in 0..views {
        db.add_relation(Relation::with_tuples(format!("a{i}"), 1, vec![tuple![1]]).unwrap())
            .unwrap();
        db.add_relation(Relation::with_tuples(format!("b{i}"), 1, vec![tuple![2]]).unwrap())
            .unwrap();
    }
    let mut engine = Engine::new(db);
    for i in 0..views {
        engine
            .register_view(
                union_strategy(&format!("v{i}"), &format!("a{i}"), &format!("b{i}")),
                StrategyMode::Incremental,
            )
            .unwrap();
    }
    engine
}

/// A pipelining-capable test connection with a read timeout (so a
/// lost response fails loudly instead of hanging the suite).
struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(addr: std::net::SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(20)))
            .unwrap();
        Client {
            writer: stream.try_clone().unwrap(),
            reader: BufReader::new(stream),
        }
    }

    /// Fire a burst of request lines without reading any response.
    fn pipeline(&mut self, lines: &[&str]) {
        let mut burst = String::new();
        for line in lines {
            burst.push_str(line);
            burst.push('\n');
        }
        self.writer.write_all(burst.as_bytes()).unwrap();
        self.writer.flush().unwrap();
    }

    /// Read one response line ("" on clean EOF).
    fn read_line(&mut self) -> String {
        let mut line = String::new();
        self.reader.read_line(&mut line).expect("response line");
        line
    }

    /// Lockstep round trip.
    fn send(&mut self, line: &str) -> String {
        self.pipeline(&[line]);
        self.read_line()
    }
}

fn response_id(line: &str) -> Option<Json> {
    Json::parse(line).ok()?.get("id").cloned()
}

#[test]
fn slow_shard_does_not_delay_fast_shard_on_one_connection() {
    // THE acceptance check: a same-connection fast request completes
    // while a slow cross-shard request is still in flight.
    let service = Service::new(disjoint_engine(2));
    let server = Server::spawn_config(
        "127.0.0.1:0",
        service.clone(),
        ServerConfig {
            workers: 4,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let mut client = Client::connect(server.addr());

    // Park v0's shard behind a held write lock: the autocommit INSERT
    // below blocks in its group commit until the guard drops.
    let guard = service.debug_write_lock_shard("v0").expect("v0 shard");

    client.pipeline(&[
        r#"{"op":"execute","sql":"INSERT INTO v0 VALUES (71);","id":"slow"}"#,
        r#"{"op":"query","relation":"v1","id":"fast"}"#,
    ]);

    // The fast query answers first — while the slow execute is still
    // wedged on shard 0's lock. (Under in-order execution this read
    // would block behind the guard and the test would time out.)
    let first = client.read_line();
    assert_eq!(
        response_id(&first),
        Some(Json::str("fast")),
        "fast response overtakes the in-flight slow one: {first}"
    );
    assert!(first.contains("[2]"), "{first}");

    // Release the shard; the slow execute now completes and answers.
    drop(guard);
    let second = client.read_line();
    assert_eq!(response_id(&second), Some(Json::str("slow")), "{second}");
    assert!(second.contains("\"applied\": true"), "{second}");

    let bye = client.send(r#"{"op":"quit","id":"q"}"#);
    assert!(bye.contains("\"bye\": true"), "{bye}");
    server.shutdown();
    server.join().unwrap();
    assert!(service.query("v0").unwrap().contains(&tuple![71]));
}

#[test]
fn interleaved_mixed_lanes_answer_every_id_exactly_once_in_session_order() {
    // N interleaved requests — a FIFO batch conversation, concurrent
    // stateless reads, and a malformed line — fired down one connection
    // without reading. Every id must be answered exactly once,
    // same-session responses in submission order, bye last.
    let service = Service::new(disjoint_engine(3));
    let server = Server::spawn_config(
        "127.0.0.1:0",
        service.clone(),
        ServerConfig {
            workers: 4,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let mut client = Client::connect(server.addr());

    let mut burst: Vec<String> = Vec::new();
    burst.push(r#"{"op":"begin","id":"s0"}"#.into());
    for i in 1..=5 {
        burst.push(format!(
            r#"{{"op":"execute","sql":"INSERT INTO v0 VALUES ({});","id":"s{i}"}}"#,
            70 + i
        ));
    }
    burst.push(r#"{"op":"commit","id":"s6"}"#.into());
    for i in 0..4 {
        burst.push(format!(r#"{{"op":"query","relation":"v1","id":"q{i}"}}"#));
        burst.push(format!(r#"{{"op":"ping","id":"p{i}"}}"#));
    }
    burst.push(r#"{"op":"stats","id":"t0"}"#.into());
    burst.push(r#"{"op":"nope","id":"bad"}"#.into());
    burst.push(r#"{"op":"quit","id":"z"}"#.into());
    let lines: Vec<&str> = burst.iter().map(String::as_str).collect();
    client.pipeline(&lines);

    let mut responses = Vec::new();
    for _ in 0..burst.len() {
        let line = client.read_line();
        assert!(!line.is_empty(), "connection closed early: {responses:?}");
        responses.push(line);
    }

    // Exactly once: the multiset of response ids equals the request ids.
    let mut got: Vec<String> = responses
        .iter()
        .map(|l| {
            response_id(l)
                .and_then(|id| id.as_str().map(str::to_owned))
                .unwrap_or_else(|| panic!("response without id: {l}"))
        })
        .collect();
    let order = got.clone();
    let mut want: Vec<String> = burst
        .iter()
        .map(|l| {
            Json::parse(l)
                .ok()
                .and_then(|d| d.get("id").and_then(Json::as_str).map(str::to_owned))
                .unwrap_or_else(|| "bad".into())
        })
        .collect();
    got.sort();
    want.sort();
    assert_eq!(got, want, "every id answered exactly once");

    // Same-session responses (s0..s6) arrive in submission order.
    let session_order: Vec<&String> = order.iter().filter(|id| id.starts_with('s')).collect();
    let expected: Vec<String> = (0..=6).map(|i| format!("s{i}")).collect();
    assert_eq!(
        session_order.iter().map(|s| s.as_str()).collect::<Vec<_>>(),
        expected.iter().map(String::as_str).collect::<Vec<_>>(),
        "session lane stays FIFO: {order:?}"
    );
    // And their payloads reflect FIFO batch state: buffered 1..=5, then
    // a 5-statement commit.
    let by_id = |id: &str| {
        responses
            .iter()
            .find(|l| response_id(l) == Some(Json::str(id)))
            .unwrap()
    };
    assert!(by_id("s0").contains("\"batch\": true"));
    for i in 1..=5 {
        assert!(
            by_id(&format!("s{i}")).contains(&format!("\"buffered\": {i}")),
            "{}",
            by_id(&format!("s{i}"))
        );
    }
    assert!(by_id("s6").contains("\"statements\": 5"), "{}", by_id("s6"));
    assert!(by_id("bad").contains("\"ok\": false"));
    assert_eq!(order.last().map(String::as_str), Some("z"), "bye is last");

    server.shutdown();
    server.join().unwrap();
    assert!(service.query("v0").unwrap().contains(&tuple![75]));
}

#[test]
fn max_conns_is_a_live_limit_with_typed_accept_time_rejection() {
    let service = Service::new(disjoint_engine(1));
    let server = Server::spawn_config(
        "127.0.0.1:0",
        service,
        ServerConfig {
            workers: 2,
            max_conns: Some(2),
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = server.addr();

    let mut a = Client::connect(addr);
    let mut b = Client::connect(addr);
    // Round-trip both so they are registered (accept is asynchronous).
    assert!(a.send(r#"{"op":"ping"}"#).contains("pong"));
    assert!(b.send(r#"{"op":"ping"}"#).contains("pong"));

    // Third connection: typed rejection, then close — not a hang, not a
    // silent drop, and crucially not a stolen thread.
    let mut c = Client::connect(addr);
    let rejection = c.read_line();
    assert!(
        rejection.contains("\"ok\": false")
            && rejection.contains("server at its 2-connection limit"),
        "{rejection}"
    );
    assert_eq!(c.read_line(), "", "rejected connection is closed");

    // The limit is *live*: closing one connection frees a slot (the old
    // thread-per-connection server counted accepted-ever, so a freed
    // slot is exactly what its semantics could not provide). The close
    // is asynchronous, so poll until the slot opens.
    assert!(a.send(r#"{"op":"quit"}"#).contains("bye"));
    let mut admitted = false;
    for _ in 0..100 {
        // Probe with a ping: an accepted connection sends no greeting,
        // so the first line is either "pong" (admitted) or the typed
        // rejection. Writes/reads on a just-rejected socket can fail
        // with a reset — that also just means "retry".
        let stream = TcpStream::connect(addr).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        let _ = (&stream).write_all(b"{\"op\":\"ping\",\"id\":\"d\"}\n");
        let mut line = String::new();
        match BufReader::new(stream).read_line(&mut line) {
            Ok(_) if line.contains("pong") => {
                admitted = true;
                break;
            }
            _ => std::thread::sleep(Duration::from_millis(20)),
        }
    }
    assert!(admitted, "slot freed by quit was never granted");

    server.shutdown();
    server.join().unwrap();
}

#[test]
fn graceful_shutdown_drains_in_flight_requests_and_flushes_outboxes() {
    let service = Service::new(disjoint_engine(2));
    let server = Server::spawn_config(
        "127.0.0.1:0",
        service.clone(),
        ServerConfig {
            workers: 4,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let mut client = Client::connect(server.addr());

    // Wedge a write in flight on shard 0…
    let guard = service.debug_write_lock_shard("v0").expect("v0 shard");
    client.pipeline(&[
        r#"{"op":"execute","sql":"INSERT INTO v0 VALUES (88);","id":"w"}"#,
        r#"{"op":"query","relation":"v1","id":"r"}"#,
    ]);
    let fast = client.read_line();
    assert_eq!(response_id(&fast), Some(Json::str("r")), "{fast}");

    // …request shutdown while it is still wedged…
    server.shutdown();
    std::thread::sleep(Duration::from_millis(50));
    drop(guard);

    // …and the drain still answers it before closing the connection.
    let slow = client.read_line();
    assert_eq!(
        response_id(&slow),
        Some(Json::str("w")),
        "in-flight request answered during drain: {slow}"
    );
    assert!(slow.contains("\"applied\": true"), "{slow}");
    assert_eq!(client.read_line(), "", "connection closed after drain");

    server.join().unwrap();
    assert!(
        service.query("v0").unwrap().contains(&tuple![88]),
        "drained write is applied"
    );
}

#[test]
fn rejected_connection_does_not_count_toward_exit_after() {
    // `--exit-after N` counts *served* connections closing; an
    // accept-time rejection must not tick it (it never became a
    // connection).
    let service = Service::new(disjoint_engine(1));
    let server = Server::spawn_config(
        "127.0.0.1:0",
        service,
        ServerConfig {
            workers: 2,
            max_conns: Some(1),
            exit_after: Some(2),
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = server.addr();

    let mut a = Client::connect(addr);
    assert!(a.send(r#"{"op":"ping"}"#).contains("pong"));
    let mut rejected = Client::connect(addr);
    assert!(rejected.read_line().contains("connection limit"));
    assert!(a.send(r#"{"op":"quit"}"#).contains("bye"));

    // One served connection closed (plus one rejection): the server
    // must still be accepting. A second served close reaches the limit.
    let mut b = Client::connect(addr);
    assert!(b.send(r#"{"op":"ping"}"#).contains("pong"));
    assert!(b.send(r#"{"op":"quit"}"#).contains("bye"));
    server.join().unwrap();
}
