//! Footprint-sharding behaviour of the service: disjoint views commit
//! independently (and correctly) under concurrency, multi-shard batches
//! lock in global order, group-commit epochs preserve per-transaction
//! semantics on rejection, and the shard split is invisible to clients
//! (merge on teardown, routing on reads).
//!
//! The single-shard linearizability suite lives in `stress.rs` and runs
//! unmodified against the sharded service; this file covers what only
//! exists with more than one shard.

use birds_core::UpdateStrategy;
use birds_engine::{Engine, StrategyMode};
use birds_service::{Service, ServiceConfig, ServiceError};
use birds_store::{tuple, Database, DatabaseSchema, Relation, Schema, SortKind, Value};
use std::sync::{Arc, Mutex};
use std::time::Duration;

fn union_strategy(view: &str, r1: &str, r2: &str) -> UpdateStrategy {
    UpdateStrategy::parse(
        DatabaseSchema::new()
            .with(Schema::new(r1, vec![("a", SortKind::Int)]))
            .with(Schema::new(r2, vec![("a", SortKind::Int)])),
        Schema::new(view, vec![("a", SortKind::Int)]),
        &format!(
            "
            -{r1}(X) :- {r1}(X), not {view}(X).
            -{r2}(X) :- {r2}(X), not {view}(X).
            +{r1}(X) :- {view}(X), not {r1}(X), not {r2}(X).
            "
        ),
        None,
    )
    .unwrap()
}

/// `views` disjoint union views (`v{i} = a{i} ∪ b{i}`) plus one free
/// base table `zfree` that no view touches.
fn disjoint_engine(views: usize) -> Engine {
    let mut db = Database::new();
    for i in 0..views {
        db.add_relation(Relation::with_tuples(format!("a{i}"), 1, vec![tuple![1]]).unwrap())
            .unwrap();
        db.add_relation(Relation::with_tuples(format!("b{i}"), 1, vec![tuple![2]]).unwrap())
            .unwrap();
    }
    db.add_relation(Relation::with_tuples("zfree", 1, vec![tuple![99]]).unwrap())
        .unwrap();
    let mut engine = Engine::new(db);
    for i in 0..views {
        engine
            .register_view(
                union_strategy(&format!("v{i}"), &format!("a{i}"), &format!("b{i}")),
                StrategyMode::Incremental,
            )
            .unwrap();
    }
    engine
}

#[test]
fn disjoint_views_get_disjoint_shards() {
    let service = Service::new(disjoint_engine(3));
    // 3 view components + the free-table singleton.
    assert_eq!(service.shard_count(), 4);
    service.read(|view| {
        for i in 0..3 {
            assert!(view.is_view(&format!("v{i}")));
        }
        assert_eq!(view.relation("zfree").unwrap().len(), 1);
        // 3 × (view + 2 sources) + zfree.
        assert_eq!(view.relations().count(), 10);
    });
}

#[test]
fn concurrent_disjoint_commits_are_correct_and_sequenced() {
    const VIEWS: usize = 4;
    const BATCHES: usize = 20;
    let service = Service::new(disjoint_engine(VIEWS));
    type CommitLog = Vec<(u64, usize, Vec<String>)>;
    let log: Arc<Mutex<CommitLog>> = Arc::new(Mutex::new(Vec::new()));

    let handles: Vec<_> = (0..VIEWS)
        .map(|i| {
            let service = service.clone();
            let log = Arc::clone(&log);
            std::thread::spawn(move || {
                let mut session = service.session();
                for b in 0..BATCHES {
                    let value = 1000 * (i + 1) + b;
                    let scripts = vec![format!("INSERT INTO v{i} VALUES ({value});")];
                    session.begin().unwrap();
                    for script in &scripts {
                        session.execute(script).unwrap();
                    }
                    let outcome = session.commit().unwrap();
                    log.lock().unwrap().push((outcome.commit_seq, i, scripts));
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }

    // The global sequence is dense across shards…
    let mut log = Arc::try_unwrap(log).unwrap().into_inner().unwrap();
    log.sort_by_key(|(seq, _, _)| *seq);
    assert_eq!(log.len(), VIEWS * BATCHES);
    for (pos, (seq, _, _)) in log.iter().enumerate() {
        assert_eq!(*seq, pos as u64 + 1, "commit sequence has gaps");
    }
    // …and per shard it respects each session's program order.
    for i in 0..VIEWS {
        let per_view: Vec<&Vec<String>> = log
            .iter()
            .filter(|(_, view, _)| *view == i)
            .map(|(_, _, scripts)| scripts)
            .collect();
        let expected: Vec<Vec<String>> = (0..BATCHES)
            .map(|b| vec![format!("INSERT INTO v{i} VALUES ({});", 1000 * (i + 1) + b)])
            .collect();
        assert_eq!(per_view.len(), BATCHES);
        for (got, want) in per_view.iter().zip(expected.iter()) {
            assert_eq!(*got, want, "view {i} commit order broke program order");
        }
    }

    // Replaying the log in commit order on a fresh engine lands on the
    // same database — linearizability by equivalence, across shards.
    let replay_service = Service::new(disjoint_engine(VIEWS));
    let mut replay = replay_service.session();
    for (_, _, scripts) in &log {
        replay.begin().unwrap();
        for script in scripts {
            replay.execute(script).unwrap();
        }
        replay.commit().unwrap();
    }
    drop(replay);
    let concurrent = service.into_engine().ok().expect("sessions dropped");
    let serial = replay_service.into_engine().ok().expect("replay dropped");
    assert!(
        concurrent.database().same_contents(serial.database()),
        "disjoint-shard execution diverged from its commit-order serialization"
    );
}

#[test]
fn one_batch_spanning_two_shards_commits_atomically_enough() {
    let service = Service::new(disjoint_engine(2));
    let mut session = service.session();
    session.begin().unwrap();
    session.execute("INSERT INTO v0 VALUES (10);").unwrap();
    session.execute("INSERT INTO v1 VALUES (20);").unwrap();
    session.execute("INSERT INTO v0 VALUES (11);").unwrap();
    let outcome = session.commit().unwrap();
    assert_eq!(outcome.views, 2);
    assert_eq!(outcome.statements, 3);
    assert_eq!(outcome.commit_seq, 1);
    assert!(service.query("a0").unwrap().contains(&tuple![10]));
    assert!(service.query("a0").unwrap().contains(&tuple![11]));
    assert!(service.query("a1").unwrap().contains(&tuple![20]));
}

#[test]
fn reads_route_and_teardown_merges_all_shards() {
    let service = Service::new(disjoint_engine(2));
    let mut session = service.session();
    session.execute("INSERT INTO v1 VALUES (55);").unwrap();
    drop(session);
    // Single-shard read of a free table (its own singleton shard).
    assert_eq!(service.query("zfree").unwrap(), vec![tuple![99]]);
    // Whole-service snapshot sees every shard consistently.
    service.read(|view| {
        assert!(view.relation("a1").unwrap().contains(&tuple![55]));
        assert_eq!(view.view_names(), vec!["v0".to_owned(), "v1".to_owned()]);
    });
    // Teardown merges the shards back into one engine.
    let engine = service.into_engine().ok().expect("sole owner");
    assert!(engine.is_view("v0") && engine.is_view("v1"));
    assert_eq!(engine.database().names().count(), 7);
    assert!(engine.relation("a1").unwrap().contains(&tuple![55]));
}

/// A selection view with a domain constraint (`w` keeps positives in
/// `s`): what the group-commit rejection path needs.
fn constrained_service(window: Duration) -> Service {
    let mut db = Database::new();
    db.add_relation(Relation::with_tuples("s", 1, vec![tuple![3]]).unwrap())
        .unwrap();
    let strategy = UpdateStrategy::parse(
        DatabaseSchema::new().with(Schema::new("s", vec![("x", SortKind::Int)])),
        Schema::new("w", vec![("x", SortKind::Int)]),
        "
        false :- w(X), not X > 0.
        +s(X) :- w(X), not s(X).
        sp(X) :- s(X), X > 0.
        -s(X) :- sp(X), not w(X).
        ",
        None,
    )
    .unwrap();
    let mut engine = Engine::new(db);
    engine
        .register_view(strategy, StrategyMode::Incremental)
        .unwrap();
    Service::with_config(
        engine,
        ServiceConfig {
            epoch_window: window,
        },
    )
}

#[test]
fn epoch_rejection_falls_back_to_per_transaction_semantics() {
    // Two concurrent autocommit transactions inside one epoch window:
    // one violates the constraint, one is fine. Whatever epochs the
    // scheduler produced, the violator must fail, the valid one must
    // apply, and exactly one commit must be sequenced.
    for _ in 0..10 {
        let service = constrained_service(Duration::from_micros(500));
        let bad = {
            let service = service.clone();
            std::thread::spawn(move || {
                let mut session = service.session();
                session.execute("INSERT INTO w VALUES (-5);")
            })
        };
        let good = {
            let service = service.clone();
            std::thread::spawn(move || {
                let mut session = service.session();
                session.execute("INSERT INTO w VALUES (7);")
            })
        };
        let bad = bad.join().unwrap();
        let good = good.join().unwrap();
        assert!(
            matches!(bad, Err(ServiceError::Engine(_))),
            "constraint violator must fail: {bad:?}"
        );
        assert!(good.is_ok(), "valid transaction must survive: {good:?}");
        let s = service.query("s").unwrap();
        assert!(s.iter().any(|t| t[0] == Value::int(7)));
        assert!(!s.iter().any(|t| t[0] == Value::int(-5)));
        assert_eq!(service.commits(), 1, "only the valid tx is sequenced");
    }
}

#[test]
fn windowed_epochs_coalesce_but_count_every_transaction() {
    const CLIENTS: usize = 6;
    const PER_CLIENT: usize = 10;
    let service = constrained_service(Duration::from_micros(300));
    let handles: Vec<_> = (0..CLIENTS)
        .map(|c| {
            let service = service.clone();
            std::thread::spawn(move || {
                let mut session = service.session();
                for k in 0..PER_CLIENT {
                    let value = 100 * (c + 1) + k;
                    session
                        .execute(&format!("INSERT INTO w VALUES ({value});"))
                        .unwrap();
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(service.commits(), (CLIENTS * PER_CLIENT) as u64);
    let s = service.query("s").unwrap();
    for c in 0..CLIENTS {
        for k in 0..PER_CLIENT {
            let value = 100 * (c + 1) + k;
            assert!(
                s.iter().any(|t| t[0] == Value::int(value as i64)),
                "insert of {value} lost in a coalesced epoch"
            );
        }
    }
}

#[test]
fn single_shard_reads_do_not_serialize_behind_other_shards_writers() {
    // ISSUE 5 satellite: `query` and `stats` route through the owning
    // shard (one read lock at a time), so a long write on one shard —
    // simulated here by parking on its write lock — must not block
    // reads of *other* shards. (`Service::read`, the all-shard barrier,
    // stays available for cross-shard-consistent reads and would block
    // here by design.)
    let service = Service::new(disjoint_engine(2));
    let _writer = service
        .debug_write_lock_shard("v0")
        .expect("v0 has a shard");

    let (tx, rx) = std::sync::mpsc::channel();
    let probe = {
        let service = service.clone();
        std::thread::spawn(move || {
            // Owning-shard queries of the *unlocked* shard only: the
            // satellite's guarantee is that these never take (or wait
            // on) any other shard's lock. (view_names/relation_stats
            // visit every shard in turn, so they would rightly wait for
            // v0's writer at its slot — covered by the barrier-free
            // shape test below, not this blocking test.)
            let v1 = service.query("v1").expect("v1 known");
            let b1 = service.query("b1").expect("b1 known");
            tx.send((v1, b1)).unwrap();
        })
    };
    let (v1, b1) = rx
        .recv_timeout(Duration::from_secs(5))
        .expect("single-shard reads must complete while v0's shard is write-locked");
    assert_eq!(v1, vec![tuple![1], tuple![2]]);
    assert_eq!(b1, vec![tuple![2]]);
    probe.join().unwrap();
}

#[test]
fn view_names_and_relation_stats_walk_shards_without_a_barrier() {
    let service = Service::new(disjoint_engine(2));
    assert_eq!(service.view_names(), vec!["v0".to_owned(), "v1".to_owned()]);
    let stats = service.relation_stats();
    let names: Vec<&str> = stats.iter().map(|s| s.name.as_str()).collect();
    assert_eq!(names, vec!["a0", "a1", "b0", "b1", "v0", "v1", "zfree"]);
    assert!(stats.iter().all(|s| s.tuples >= 1));
}

#[test]
fn relation_stats_surface_index_probe_counters() {
    // An incremental update probes source relations through their
    // registration-time indexes; the published snapshot must carry the
    // cumulative hit counters, and none of the probes may have fallen
    // back to a full scan (that would mean the planner requested an
    // index nothing built — the drift these counters exist to expose).
    let service = Service::new(disjoint_engine(1));
    let mut session = service.session();
    session.execute("INSERT INTO v0 VALUES (7);").unwrap();
    session.execute("DELETE FROM v0 WHERE a = 1;").unwrap();
    let stats = service.relation_stats();
    let hits: u64 = stats.iter().map(|s| s.index_hits).sum();
    assert!(hits > 0, "no probe was served by an index: {stats:?}");
    assert!(
        stats.iter().all(|s| s.index_misses == 0),
        "silent scan fallback: {stats:?}"
    );
}
