//! Dynamic view registration on a live service (ISSUE 10 tentpole):
//! registration under concurrent disjoint-shard writers, commit
//! progress through the quiesce window, footprint conformance of the
//! quiesce barrier (via the engine's read trace), cascade-target
//! protection on deregistration, WAL recovery of interleaved
//! registrations and commits, and the wire-level `register` /
//! `unregister` / `validate` ops.

use birds_core::UpdateStrategy;
use birds_engine::{Engine, StrategyMode};
use birds_service::{DurabilityConfig, LocalClient, Service, ServiceConfig, ServiceError};
use birds_store::{tuple, Database, DatabaseSchema, Relation, Schema, SortKind, Tuple};
use birds_wal::FsyncPolicy;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// The union strategy `view = r1 ∪ r2` over unary int sources.
fn union_strategy(view: &str, r1: &str, r2: &str) -> UpdateStrategy {
    UpdateStrategy::parse(
        DatabaseSchema::new()
            .with(Schema::new(r1, vec![("a", SortKind::Int)]))
            .with(Schema::new(r2, vec![("a", SortKind::Int)])),
        Schema::new(view, vec![("a", SortKind::Int)]),
        &format!(
            "
            -{r1}(X) :- {r1}(X), not {view}(X).
            -{r2}(X) :- {r2}(X), not {view}(X).
            +{r1}(X) :- {view}(X), not {r1}(X), not {r2}(X).
            "
        ),
        None,
    )
    .unwrap()
}

/// `views` disjoint union views (`v{i} = a{i} ∪ b{i}`) plus two free
/// base tables `p` and `q` for a later live registration to claim.
fn engine_with_free_tables(views: usize) -> Engine {
    let mut db = Database::new();
    for i in 0..views {
        db.add_relation(Relation::with_tuples(format!("a{i}"), 1, vec![tuple![1]]).unwrap())
            .unwrap();
        db.add_relation(Relation::with_tuples(format!("b{i}"), 1, vec![tuple![2]]).unwrap())
            .unwrap();
    }
    db.add_relation(Relation::with_tuples("p", 1, vec![tuple![10]]).unwrap())
        .unwrap();
    db.add_relation(Relation::with_tuples("q", 1, vec![tuple![20]]).unwrap())
        .unwrap();
    let mut engine = Engine::new(db);
    for i in 0..views {
        engine
            .register_view(
                union_strategy(&format!("v{i}"), &format!("a{i}"), &format!("b{i}")),
                StrategyMode::Incremental,
            )
            .unwrap();
    }
    engine
}

fn sorted(service: &Service, relation: &str) -> Vec<Tuple> {
    service.query(relation).unwrap()
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "birds-dynreg-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Tentpole: a registration lands while writers hammer disjoint shards.
/// Every commit succeeds, the global commit sequence stays dense (the
/// registration consumes a seq like any transaction), and the final
/// state equals the serial replay — the registration is just another
/// serializable transaction.
#[test]
fn registration_is_serializable_against_concurrent_disjoint_writers() {
    const VIEWS: usize = 3;
    const BATCHES: usize = 15;
    let service = Service::new(engine_with_free_tables(VIEWS));
    assert_eq!(service.shard_count(), VIEWS + 2); // + free p, q

    let writers: Vec<_> = (0..VIEWS)
        .map(|i| {
            let service = service.clone();
            std::thread::spawn(move || {
                let mut session = service.session();
                for b in 0..BATCHES {
                    let value = 1000 * (i + 1) + b;
                    session
                        .execute(&format!("INSERT INTO v{i} VALUES ({value});"))
                        .unwrap();
                }
            })
        })
        .collect();
    // Register `w = p ∪ q` mid-stream: its footprint is disjoint from
    // every writer's shard.
    let seq = service
        .register_view(union_strategy("w", "p", "q"), StrategyMode::Incremental)
        .unwrap();
    assert!(seq >= 1);
    for writer in writers {
        writer.join().unwrap();
    }

    // Dense sequence: every writer transaction + the registration.
    assert_eq!(service.commits(), (VIEWS * BATCHES) as u64 + 1);
    // Serial-replay equivalence: every writer's inserts landed in its
    // own a{i} (disjoint shards — nothing was lost or cross-applied).
    for i in 0..VIEWS {
        let a = sorted(&service, &format!("a{i}"));
        for b in 0..BATCHES {
            let value = 1000 * (i + 1) + b;
            assert!(a.contains(&tuple![value as i64]), "v{i} lost {value}");
        }
    }
    // The registration itself took effect and the new view is writable.
    assert_eq!(sorted(&service, "w"), vec![tuple![10], tuple![20]]);
    let mut session = service.session();
    session.execute("INSERT INTO w VALUES (30);").unwrap();
    assert_eq!(
        sorted(&service, "w"),
        vec![tuple![10], tuple![20], tuple![30]]
    );
}

/// The quiesce barrier write-locks only the shards inside the new
/// view's footprint: while it is held, a commit on an *untouched* shard
/// completes, and a commit on an *affected* shard blocks until the
/// registration installs its successor topology.
#[test]
fn commits_on_untouched_shards_proceed_during_quiesce() {
    // v0 = a0 ∪ b0, v1 = a1 ∪ b1, free p and q. The new view
    // `w = a0 ∪ p` overlaps v0's shard (a0) — so v0 commits must wait —
    // but not v1's.
    let service = Service::new(engine_with_free_tables(2));
    let affected_done = Arc::new(AtomicBool::new(false));

    let untouched = {
        let service = service.clone();
        move || {
            let mut session = service.session();
            session.execute("INSERT INTO v1 VALUES (111);").unwrap();
        }
    };
    let affected = {
        let service = service.clone();
        let affected_done = Arc::clone(&affected_done);
        move || {
            let mut session = service.session();
            session.execute("INSERT INTO v0 VALUES (100);").unwrap();
            affected_done.store(true, Ordering::SeqCst);
        }
    };

    let mut affected_handle = None;
    service
        .register_view_with_quiesce_hook(
            union_strategy("w", "a0", "p"),
            StrategyMode::Incremental,
            || {
                // Barrier is held: v0's shard (and p's) are write-locked.
                let handle = std::thread::spawn(affected);
                // A commit on v1's untouched shard completes while the
                // barrier is up — if the quiesce were global this join
                // would deadlock, so it doubles as the proof.
                std::thread::spawn(untouched).join().unwrap();
                std::thread::sleep(std::time::Duration::from_millis(50));
                assert!(
                    !affected_done.load(Ordering::SeqCst),
                    "a commit on an affected shard slipped through the barrier"
                );
                affected_handle = Some(handle);
            },
        )
        .unwrap();
    // Barrier released: the blocked commit drains against the successor
    // topology (v0 and w now share a shard).
    affected_handle.unwrap().join().unwrap();
    assert!(affected_done.load(Ordering::SeqCst));
    assert!(sorted(&service, "a0").contains(&tuple![100]));
    assert!(sorted(&service, "a1").contains(&tuple![111]));
    // w materialized a0 ∪ p as of its registration seq. (A commit
    // through v0 maintains v0 only — sibling views over shared sources
    // are refreshed explicitly, per the engine's `refresh_view`
    // contract — so the late v0 insert does not appear in w.)
    assert_eq!(sorted(&service, "w"), vec![tuple![1], tuple![10]]);
}

/// Footprint conformance: the registration's engine work reads only
/// relations inside the quiesced footprint — pinned with the engine's
/// shared read-trace sink, which survives the merge/split cycle.
#[test]
fn registration_reads_stay_inside_the_declared_footprint() {
    let mut engine = engine_with_free_tables(1);
    engine.set_read_trace(true);
    let service = Service::new(engine);
    service.debug_take_read_trace(); // drop construction noise

    service
        .register_view(union_strategy("w", "p", "q"), StrategyMode::Incremental)
        .unwrap();
    let traced = service.debug_take_read_trace();
    assert!(!traced.is_empty(), "materializing w must read its sources");
    for relation in &traced {
        // Delta relations are traced under their sigil-prefixed names
        // (`+w` / `-w`); conformance is about the base relation.
        let base = relation.trim_start_matches(['+', '-']);
        assert!(
            ["p", "q", "w"].contains(&base),
            "registration read '{relation}', outside the declared footprint {{p, q, w}}"
        );
    }
}

/// Deregistering a view that another view's footprint still reaches is
/// refused with the dependent's name — dropping it would dangle the
/// dependent's update path.
#[test]
fn unregister_of_a_cascade_target_is_rejected() {
    let service = Service::new(engine_with_free_tables(1));
    // w's sources include the *view* v0: w's putdelta writes into v0,
    // so v0 becomes a cascade target of w.
    service
        .register_view(union_strategy("w", "v0", "p"), StrategyMode::Incremental)
        .unwrap();
    assert_eq!(
        service.unregister_view("v0"),
        Err(ServiceError::RelationConflict("w".into()))
    );
    // Dropping the dependent first unblocks the target.
    service.unregister_view("w").unwrap();
    service.unregister_view("v0").unwrap();
    assert!(service.view_names().is_empty());
}

/// Durability of the tentpole: registrations and deregistrations are
/// WAL records ordered by commit seq; a checkpoint snapshots the live
/// registration set as a manifest. A service recovered from the data
/// directory replays the interleaving exactly — runtime-registered
/// views survive restarts with their contents.
#[test]
fn recovery_replays_interleaved_registrations_and_commits() {
    let dir = temp_dir("interleaved");
    let seed = || {
        let mut db = Database::new();
        db.add_relation(Relation::with_tuples("r1", 1, vec![tuple![1]]).unwrap())
            .unwrap();
        db.add_relation(Relation::with_tuples("r2", 1, vec![tuple![2], tuple![4]]).unwrap())
            .unwrap();
        Engine::new(db)
    };
    let durable = |fsync| {
        let mut config = DurabilityConfig::new(&dir);
        config.fsync = fsync;
        config.checkpoint_every = None;
        config
    };
    {
        let service = Service::open(
            seed(),
            ServiceConfig::default(),
            durable(FsyncPolicy::Epoch),
        )
        .unwrap();
        // seq 1: register v; seq 2: commit through it.
        service
            .register_view(union_strategy("v", "r1", "r2"), StrategyMode::Incremental)
            .unwrap();
        let mut session = service.session();
        session.execute("INSERT INTO v VALUES (7);").unwrap();
        // Checkpoint mid-history: the snapshot manifest must carry v's
        // definition, and everything after replays from the WAL.
        service.checkpoint().unwrap();
        // seq 3: drop v; seq 4: re-register; seq 5: commit again.
        service.unregister_view("v").unwrap();
        service
            .register_view(union_strategy("v", "r1", "r2"), StrategyMode::Incremental)
            .unwrap();
        session.execute("INSERT INTO v VALUES (9);").unwrap();
        assert_eq!(service.commits(), 5);
    }
    // Recover from a seed with NO views: v must come back from the
    // checkpoint manifest + WAL replay, contents intact.
    let recovered = Service::open(
        seed(),
        ServiceConfig::default(),
        durable(FsyncPolicy::Epoch),
    )
    .unwrap();
    assert_eq!(recovered.commits(), 5);
    assert_eq!(recovered.view_names(), vec!["v".to_owned()]);
    assert_eq!(
        sorted(&recovered, "v"),
        vec![tuple![1], tuple![2], tuple![4], tuple![7], tuple![9]]
    );
    // The recovered registration is live: commits and deregistration
    // keep working.
    let mut session = recovered.session();
    session.execute("DELETE FROM v WHERE a = 7;").unwrap();
    assert!(!sorted(&recovered, "v").contains(&tuple![7]));
    recovered.unregister_view("v").unwrap();
    assert!(recovered.view_names().is_empty());
    std::fs::remove_dir_all(&dir).unwrap();
}

/// The wire ops: `register` re-shards the live service, `unregister`
/// undoes it, `validate` answers statelessly, and typed rejections
/// surface as ordinary error responses.
#[test]
fn protocol_register_unregister_validate_round_trip() {
    let service = Service::new(engine_with_free_tables(0)); // just p and q
    let mut client = LocalClient::connect(&service);
    let spec = r#""view":{"name":"w","columns":[["a","int"]]},
        "sources":[{"name":"p","columns":[["a","int"]]},{"name":"q","columns":[["a","int"]]}],
        "putdelta":"-p(X) :- p(X), not w(X). -q(X) :- q(X), not w(X). +p(X) :- w(X), not p(X), not q(X).""#;

    let resp = client.request_line(&format!(r#"{{"op":"validate",{spec}}}"#));
    assert!(resp.contains(r#""valid": true"#), "{resp}");

    let resp = client.request_line(&format!(
        r#"{{"op":"register",{spec},"mode":"incremental"}}"#
    ));
    assert!(resp.contains(r#""registered": "w""#), "{resp}");
    assert!(resp.contains(r#""shards": 1"#), "{resp}");
    let resp = client.request_line(r#"{"op":"execute","sql":"INSERT INTO w VALUES (30);"}"#);
    assert!(resp.contains(r#""applied": true"#), "{resp}");
    let resp = client.request_line(r#"{"op":"query","relation":"w"}"#);
    assert!(resp.contains("[[10], [20], [30]]"), "{resp}");

    // Duplicate registration: typed error, connection stays usable.
    let resp = client.request_line(&format!(
        r#"{{"op":"register",{spec},"mode":"incremental"}}"#
    ));
    assert!(resp.contains("already registered"), "{resp}");

    let resp = client.request_line(r#"{"op":"unregister","view":"w"}"#);
    assert!(resp.contains(r#""unregistered": "w""#), "{resp}");
    assert!(resp.contains(r#""shards": 2"#), "{resp}");
    let resp = client.request_line(r#"{"op":"query","relation":"w"}"#);
    assert!(resp.contains("unknown relation"), "{resp}");

    // Stateless validate of an ill-behaved strategy: a verdict, not an
    // error — and nothing registered.
    let resp = client.request_line(
        r#"{"op":"validate","view":{"name":"w2","columns":[["a","int"]]},
           "sources":[{"name":"p","columns":[["a","int"]]}],
           "putdelta":"+p(X) :- w2(X)."}"#
            .replace('\n', " ")
            .as_str(),
    );
    assert!(resp.contains(r#""valid": false"#), "{resp}");
    assert!(service.view_names().is_empty());
}
