//! Deadlock-freedom stress for the lock manager: many threads acquiring
//! randomized, overlapping footprints (plus whole-set readers, the
//! `Service::read` pattern) must always make progress. The manager's
//! guarantee is structural — every multi-lock acquisition happens in
//! global id order — so the test's job is to hammer the orderings that
//! would deadlock a naive implementation and fail loudly (bounded
//! wall-clock, not a hung CI job) if progress ever stops.

use birds_service::{LockId, LockManager};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::time::Duration;

/// SplitMix64 — tiny deterministic per-thread RNG, no dependencies.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

#[test]
fn randomized_overlapping_footprints_never_deadlock() {
    const SLOTS: usize = 8;
    const THREADS: usize = 12;
    const ROUNDS: usize = 500;
    // Generous bound: the whole test takes well under a second when the
    // manager is healthy; a deadlock would hang forever without it.
    const DEADLINE: Duration = Duration::from_secs(60);

    let manager: Arc<LockManager<u64>> = Arc::new(LockManager::new(vec![0; SLOTS]));
    let writes_issued = Arc::new(AtomicU64::new(0));
    let (done_tx, done_rx) = mpsc::channel::<usize>();

    let mut workers = Vec::new();
    for t in 0..THREADS {
        let manager = Arc::clone(&manager);
        let writes_issued = Arc::clone(&writes_issued);
        let done = done_tx.clone();
        workers.push(std::thread::spawn(move || {
            let mut rng = Rng(t as u64 + 1);
            for _ in 0..ROUNDS {
                match rng.below(5) {
                    // Whole-set reader (the `Service::read` snapshot).
                    0 => {
                        let guards = manager.read_all();
                        assert_eq!(guards.len(), SLOTS);
                    }
                    // Single-slot reader (the `Service::query` path).
                    1 => {
                        let id = manager.id(rng.below(SLOTS)).unwrap();
                        let _guard = manager.read(id);
                    }
                    // Multi-slot writer with a random (overlapping,
                    // unsorted, possibly duplicated) footprint — the
                    // commit path.
                    _ => {
                        let k = 1 + rng.below(4);
                        let ids: Vec<LockId> = (0..k)
                            .map(|_| manager.id(rng.below(SLOTS)).unwrap())
                            .collect();
                        let mut guards = manager.write_set(ids);
                        for (_, slot) in &mut guards {
                            **slot += 1;
                            writes_issued.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            }
            done.send(t).expect("main thread alive");
        }));
    }
    drop(done_tx);

    let mut finished = 0usize;
    while finished < THREADS {
        match done_rx.recv_timeout(DEADLINE) {
            Ok(_) => finished += 1,
            Err(_) => panic!(
                "lock manager stalled: only {finished}/{THREADS} threads \
                 finished within {DEADLINE:?} — deadlock or livelock"
            ),
        }
    }
    // Every worker has sent its done message, so these joins cannot
    // block; they make sure each thread's stack (and its Arc clone of
    // the manager) is actually gone before the unwrap below.
    for worker in workers {
        worker.join().expect("worker panicked");
    }

    // Every write that was issued under a guard landed: no lost updates
    // through the manager.
    let slots = Arc::try_unwrap(manager)
        .ok()
        .expect("all workers joined")
        .into_inner();
    let total: u64 = slots.iter().sum();
    assert_eq!(total, writes_issued.load(Ordering::Relaxed));
    assert!(total > 0, "writers actually ran");
}
