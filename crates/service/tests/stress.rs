//! Concurrency stress: many writer threads against one service.
//!
//! The service serializes commits under its write lock and numbers them
//! with a global commit sequence. These tests check *linearizability by
//! equivalence*: whatever interleaving the scheduler produces, the final
//! database must equal a serial replay of the same batches in commit
//! order — and shared-lock readers must only ever observe states that
//! satisfy the view invariant (`v = r1 ∪ r2` for the union strategy).

use birds_core::UpdateStrategy;
use birds_engine::{Engine, StrategyMode};
use birds_service::{ExecOutcome, Service};
use birds_store::{tuple, Database, DatabaseSchema, Relation, Schema, SortKind, Tuple, Value};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

/// Example 3.1 union view over a fixed seed database.
fn union_engine() -> Engine {
    let mut db = Database::new();
    db.add_relation(Relation::with_tuples("r1", 1, vec![tuple![1]]).unwrap())
        .unwrap();
    db.add_relation(Relation::with_tuples("r2", 1, vec![tuple![2], tuple![4]]).unwrap())
        .unwrap();
    let strategy = UpdateStrategy::parse(
        DatabaseSchema::new()
            .with(Schema::new("r1", vec![("a", SortKind::Int)]))
            .with(Schema::new("r2", vec![("a", SortKind::Int)])),
        Schema::new("v", vec![("a", SortKind::Int)]),
        "
        -r1(X) :- r1(X), not v(X).
        -r2(X) :- r2(X), not v(X).
        +r1(X) :- v(X), not r1(X), not r2(X).
        ",
        None,
    )
    .unwrap();
    let mut engine = Engine::new(db);
    engine
        .register_view(strategy, StrategyMode::Incremental)
        .unwrap();
    engine
}

/// The batch scripts thread `t` issues, in its own program order. Each
/// batch inserts a fresh window of thread-private values and deletes the
/// previous window, so every batch genuinely mutates and threads never
/// contend on the same tuples (commutativity is NOT assumed by the
/// checker, though — it replays in observed commit order).
fn thread_batches(t: i64, batches: usize, window: usize) -> Vec<Vec<String>> {
    (0..batches as i64)
        .map(|b| {
            let mut scripts = Vec::new();
            for k in 0..window as i64 {
                let v = 1000 * (t + 1) + 10 * b + k;
                scripts.push(format!("INSERT INTO v VALUES ({v});"));
            }
            if b > 0 {
                for k in 0..window as i64 {
                    let v = 1000 * (t + 1) + 10 * (b - 1) + k;
                    scripts.push(format!("DELETE FROM v WHERE a = {v};"));
                }
            }
            scripts
        })
        .collect()
}

#[test]
fn concurrent_batches_equal_serial_replay_in_commit_order() {
    const THREADS: i64 = 8;
    const BATCHES: usize = 12;
    const WINDOW: usize = 4;

    // (commit_seq, scripts of that batch) — filled concurrently.
    type CommitLog = Vec<(u64, Vec<String>)>;
    let service = Service::new(union_engine());
    let log: Arc<Mutex<CommitLog>> = Arc::new(Mutex::new(Vec::new()));

    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let service = service.clone();
            let log = Arc::clone(&log);
            std::thread::spawn(move || {
                let mut session = service.session();
                for scripts in thread_batches(t, BATCHES, WINDOW) {
                    session.begin().unwrap();
                    for script in &scripts {
                        session.execute(script).unwrap();
                    }
                    let outcome = session.commit().unwrap();
                    log.lock().unwrap().push((outcome.commit_seq, scripts));
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }

    let mut log = Arc::try_unwrap(log).unwrap().into_inner().unwrap();
    assert_eq!(log.len(), (THREADS as usize) * BATCHES);
    log.sort_by_key(|(seq, _)| *seq);
    // Commit sequences are dense: every commit observed exactly once.
    for (i, (seq, _)) in log.iter().enumerate() {
        assert_eq!(*seq, i as u64 + 1, "commit sequence has gaps");
    }

    // Serial replay of the same batches, in commit order, on a fresh
    // engine — batched exactly as the concurrent run batched them.
    let replay_service = Service::new(union_engine());
    let mut replay = replay_service.session();
    for (_, scripts) in &log {
        replay.begin().unwrap();
        for script in scripts {
            replay.execute(script).unwrap();
        }
        replay.commit().unwrap();
    }
    drop(replay);

    let concurrent = service.into_engine().ok().expect("all sessions dropped");
    let serial = replay_service.into_engine().ok().expect("replay dropped");
    assert!(
        concurrent.database().same_contents(serial.database()),
        "concurrent execution diverged from its own commit-order serialization"
    );

    // And the survivors are exactly each thread's last window plus the
    // untouched seed tuples.
    let v = concurrent.relation("v").unwrap();
    assert_eq!(v.len(), 3 + (THREADS as usize) * WINDOW);
}

#[test]
fn readers_never_observe_a_torn_view() {
    const WRITERS: i64 = 4;
    const BATCHES: usize = 10;

    let service = Service::new(union_engine());
    let stop = Arc::new(AtomicBool::new(false));

    // Readers: under ONE shared-lock acquisition, snapshot r1, r2, v and
    // check the view invariant v = r1 ∪ r2. A torn (mid-update) state
    // would break it.
    let readers: Vec<_> = (0..3)
        .map(|_| {
            let service = service.clone();
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut checks = 0usize;
                while !stop.load(Ordering::Relaxed) {
                    let (r1, r2, v) = service.read(|engine| {
                        let snap = |name: &str| -> Vec<Tuple> {
                            engine.relation(name).unwrap().iter().cloned().collect()
                        };
                        (snap("r1"), snap("r2"), snap("v"))
                    });
                    let mut union: Vec<&Tuple> = r1.iter().chain(r2.iter()).collect();
                    union.sort();
                    union.dedup();
                    let mut view: Vec<&Tuple> = v.iter().collect();
                    view.sort();
                    assert_eq!(union, view, "reader observed v ≠ r1 ∪ r2");
                    checks += 1;
                }
                checks
            })
        })
        .collect();

    let writers: Vec<_> = (0..WRITERS)
        .map(|t| {
            let service = service.clone();
            std::thread::spawn(move || {
                let mut session = service.session();
                for scripts in thread_batches(t, BATCHES, 3) {
                    session.begin().unwrap();
                    for script in &scripts {
                        session.execute(script).unwrap();
                    }
                    session.commit().unwrap();
                }
            })
        })
        .collect();
    for w in writers {
        w.join().unwrap();
    }
    stop.store(true, Ordering::Relaxed);
    for r in readers {
        let checks = r.join().unwrap();
        assert!(checks > 0, "reader thread never got the lock");
    }
    assert_eq!(service.commits(), (WRITERS as usize * BATCHES) as u64);
}

#[test]
fn concurrent_autocommit_writers_on_disjoint_keys() {
    // Autocommit from many threads: per-statement transactions, fully
    // serialized by the write lock. Disjoint key ranges make the final
    // state order-independent, so it is checked directly.
    const THREADS: i64 = 6;
    const PER_THREAD: i64 = 25;

    let service = Service::new(union_engine());
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let service = service.clone();
            std::thread::spawn(move || {
                let mut session = service.session();
                for i in 0..PER_THREAD {
                    let v = 10_000 * (t + 1) + i;
                    let outcome = session
                        .execute(&format!("INSERT INTO v VALUES ({v});"))
                        .unwrap();
                    assert!(matches!(outcome, ExecOutcome::Applied(_)));
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }

    assert_eq!(service.commits(), (THREADS * PER_THREAD) as u64);
    let r1 = service.query("r1").unwrap();
    for t in 0..THREADS {
        for i in 0..PER_THREAD {
            let v = 10_000 * (t + 1) + i;
            assert!(
                r1.iter().any(|tup| tup[0] == Value::int(v)),
                "insert of {v} lost under concurrency"
            );
        }
    }
}
