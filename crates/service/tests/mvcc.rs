//! MVCC read-path guarantees: snapshot isolation and non-interference.
//!
//! These tests pin the two claims the snapshot subsystem makes
//! (`crates/service/src/snapshot.rs`):
//!
//! 1. **Readers never wait for writers.** A held shard *write* lock —
//!    the worst case, a commit parked mid-critical-section — must not
//!    block `query`, `snapshot`, or `relation_stats`, because reads go
//!    through published `Arc` images, never through the shard locks.
//! 2. **A pinned snapshot is immutable.** A `ServiceSnapshot` taken
//!    before a storm of commits observes exactly the image it pinned —
//!    same tuples, same per-shard commit seqs — no matter how many
//!    epochs advance underneath it.
//!
//! The engine here is the disjoint-union fixture from `sharding.rs`:
//! `views` independent components `v{i} = a{i} ∪ b{i}` plus a free
//! table, so writers fan out across shards and the cross-shard seqlock
//! path is exercised too.

use birds_core::UpdateStrategy;
use birds_engine::{Engine, StrategyMode};
use birds_service::Service;
use birds_store::{tuple, Database, DatabaseSchema, Relation, Schema, SortKind};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::time::Duration;

fn union_strategy(view: &str, r1: &str, r2: &str) -> UpdateStrategy {
    UpdateStrategy::parse(
        DatabaseSchema::new()
            .with(Schema::new(r1, vec![("a", SortKind::Int)]))
            .with(Schema::new(r2, vec![("a", SortKind::Int)])),
        Schema::new(view, vec![("a", SortKind::Int)]),
        &format!(
            "
            -{r1}(X) :- {r1}(X), not {view}(X).
            -{r2}(X) :- {r2}(X), not {view}(X).
            +{r1}(X) :- {view}(X), not {r1}(X), not {r2}(X).
            "
        ),
        None,
    )
    .unwrap()
}

fn disjoint_engine(views: usize) -> Engine {
    let mut db = Database::new();
    for i in 0..views {
        db.add_relation(Relation::with_tuples(format!("a{i}"), 1, vec![tuple![1]]).unwrap())
            .unwrap();
        db.add_relation(Relation::with_tuples(format!("b{i}"), 1, vec![tuple![2]]).unwrap())
            .unwrap();
    }
    db.add_relation(Relation::with_tuples("zfree", 1, vec![tuple![99]]).unwrap())
        .unwrap();
    let mut engine = Engine::new(db);
    for i in 0..views {
        engine
            .register_view(
                union_strategy(&format!("v{i}"), &format!("a{i}"), &format!("b{i}")),
                StrategyMode::Incremental,
            )
            .unwrap();
    }
    engine
}

/// The full observable image of a snapshot: per-shard seqs plus every
/// relation's sorted contents.
fn fingerprint(
    snapshot: &birds_service::ServiceSnapshot,
) -> (Vec<u64>, Vec<(String, Vec<String>)>) {
    let mut rels: Vec<(String, Vec<String>)> = snapshot
        .relations()
        .map(|rel| {
            let mut tuples: Vec<String> = rel.iter().map(|t| format!("{t:?}")).collect();
            tuples.sort();
            (rel.name().to_owned(), tuples)
        })
        .collect();
    rels.sort();
    (snapshot.shard_seqs(), rels)
}

/// A reader pinned to an old snapshot observes a commit-seq-consistent,
/// frozen image while 4 writers advance 100+ epochs under it — and a
/// fresh snapshot taken at any point during the storm satisfies every
/// shard's view invariant (`v{i} = a{i} ∪ b{i}`).
#[test]
fn pinned_snapshot_survives_concurrent_writer_storm() {
    const WRITERS: usize = 4;
    const BATCHES: usize = 30; // 4 × 30 = 120 epochs past the pin
    let service = Service::new(disjoint_engine(WRITERS));

    // Seed one commit so the pinned image is not the trivial seq-0 one.
    let mut session = service.session();
    session.execute("INSERT INTO v0 VALUES (7);").unwrap();
    drop(session);

    let pinned = service.snapshot();
    let pinned_before = fingerprint(&pinned);
    let pin_seq = pinned.commit_seq();
    assert_eq!(pin_seq, 1);

    let stop = Arc::new(AtomicBool::new(false));
    let checker = {
        let service = service.clone();
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            // Fresh snapshots taken mid-storm must be internally
            // consistent: within a shard, images publish atomically, so
            // the union invariant holds in every observed image.
            while !stop.load(Ordering::Relaxed) {
                let fresh = service.snapshot();
                for i in 0..WRITERS {
                    let view: std::collections::BTreeSet<String> = fresh
                        .relation(&format!("v{i}"))
                        .unwrap()
                        .iter()
                        .map(|t| format!("{t:?}"))
                        .collect();
                    let union: std::collections::BTreeSet<String> = fresh
                        .relation(&format!("a{i}"))
                        .unwrap()
                        .iter()
                        .chain(fresh.relation(&format!("b{i}")).unwrap().iter())
                        .map(|t| format!("{t:?}"))
                        .collect();
                    assert_eq!(view, union, "shard {i} image violates v = a ∪ b");
                }
            }
        })
    };

    let writers: Vec<_> = (0..WRITERS)
        .map(|i| {
            let service = service.clone();
            std::thread::spawn(move || {
                let mut session = service.session();
                for b in 0..BATCHES {
                    let value = 1000 * (i + 1) + b;
                    session.begin().unwrap();
                    session
                        .execute(&format!("INSERT INTO v{i} VALUES ({value});"))
                        .unwrap();
                    session.commit().unwrap();
                }
            })
        })
        .collect();
    for w in writers {
        w.join().unwrap();
    }
    stop.store(true, Ordering::Relaxed);
    checker.join().unwrap();

    // The pinned image is bit-for-bit what it was: same shard seqs,
    // same relations, same tuples.
    assert_eq!(fingerprint(&pinned), pinned_before);
    assert_eq!(pinned.commit_seq(), pin_seq);
    assert_eq!(pinned.relation("v0").unwrap().len(), 3); // {1, 2, 7}

    // The live service has moved on past all 120 commits…
    let fresh = service.snapshot();
    assert_eq!(fresh.commit_seq(), pin_seq + (WRITERS * BATCHES) as u64);
    // …and every writer's tuples are visible in it.
    for i in 0..WRITERS {
        let v = service.query(&format!("v{i}")).unwrap();
        assert_eq!(v.len(), 2 + BATCHES + usize::from(i == 0));
    }
}

/// Two batch commits with **disjoint multi-shard footprints** publish
/// concurrently — they hold disjoint shard locks, so nothing else
/// orders them — and a reader must still never assemble half of
/// either. The publication seqlock alone cannot express "two
/// publications in flight" (two opening increments make the counter
/// even again, 0→1→2, while both are mid-swap), so multi-shard
/// publications serialize on a dedicated mutex; this test pins that.
///
/// Each writer's batch inserts the same value into both views of its
/// pair, so in every consistent cut the pair's contents are equal; a
/// torn cut shows up as one view holding a value its partner lacks.
#[test]
fn disjoint_multi_shard_commits_publish_atomically() {
    const BATCHES: usize = 200;
    const PAIRS: [(usize, usize); 2] = [(0, 1), (2, 3)];
    let service = Service::new(disjoint_engine(4));

    let stop = Arc::new(AtomicBool::new(false));
    let checker = {
        let service = service.clone();
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                let fresh = service.snapshot();
                for (x, y) in PAIRS {
                    let contents = |i: usize| -> std::collections::BTreeSet<String> {
                        fresh
                            .relation(&format!("v{i}"))
                            .unwrap()
                            .iter()
                            .map(|t| format!("{t:?}"))
                            .collect()
                    };
                    assert_eq!(
                        contents(x),
                        contents(y),
                        "torn cut: v{x} and v{y} were committed together \
                         but a snapshot saw them diverge"
                    );
                }
            }
        })
    };

    let writers: Vec<_> = PAIRS
        .map(|(x, y)| {
            let service = service.clone();
            std::thread::spawn(move || {
                let mut session = service.session();
                for b in 0..BATCHES {
                    let value = 1000 + b;
                    session.begin().unwrap();
                    session
                        .execute(&format!(
                            "INSERT INTO v{x} VALUES ({value}); \
                             INSERT INTO v{y} VALUES ({value});"
                        ))
                        .unwrap();
                    session.commit().unwrap();
                }
            })
        })
        .into_iter()
        .collect();
    for w in writers {
        w.join().unwrap();
    }
    stop.store(true, Ordering::Relaxed);
    checker.join().unwrap();

    // Both pairs converged: base {1, 2} plus every batch's value.
    for i in 0..4 {
        assert_eq!(service.query(&format!("v{i}")).unwrap().len(), 2 + BATCHES);
    }
}

/// A held shard *write* lock — a commit parked mid-critical-section —
/// does not block the lock-free read path. Every read below runs on a
/// separate thread with a timeout, so a regression to lock-taking reads
/// fails fast instead of deadlocking the suite.
#[test]
fn held_write_lock_does_not_block_reads() {
    const VIEWS: usize = 3;
    let service = Service::new(disjoint_engine(VIEWS));
    let mut session = service.session();
    session.execute("INSERT INTO v1 VALUES (41);").unwrap();
    drop(session);

    // Park "commits" on EVERY shard: write locks on all view shards
    // and the free-table shard, held for the duration.
    let guards: Vec<_> = (0..VIEWS)
        .map(|i| service.debug_write_lock_shard(&format!("v{i}")).unwrap())
        .chain(std::iter::once(
            service.debug_write_lock_shard("zfree").unwrap(),
        ))
        .collect();

    let (tx, rx) = mpsc::channel();
    let reader = {
        let service = service.clone();
        std::thread::spawn(move || {
            // Single-shard query on a write-locked shard…
            let v1 = service.query("v1").unwrap();
            // …a consistent all-shard snapshot…
            let snapshot = service.snapshot();
            // …and the stats aggregate, all while every lock is held.
            let stats = service.relation_stats();
            tx.send((v1, snapshot.commit_seq(), stats)).unwrap();
        })
    };
    let (v1, seq, stats) = rx
        .recv_timeout(Duration::from_secs(10))
        .expect("reads must not block behind held shard write locks");
    reader.join().unwrap();

    assert_eq!(v1, vec![tuple![1], tuple![2], tuple![41]]);
    assert_eq!(seq, 1);
    assert_eq!(stats.len(), 3 * VIEWS + 1);
    drop(guards);

    // Unknown names are a typed error, not a hang or a panic.
    assert!(matches!(
        service.query("no_such_relation"),
        Err(birds_service::ServiceError::UnknownRelation(name)) if name == "no_such_relation"
    ));
}
