//! Durability integration tests: WAL + snapshot + crash recovery
//! through the public `Service` API, including the randomized
//! crash-recovery torture tests (ISSUE 5 satellite).
//!
//! "Crashing" here means abandoning a data directory (or a byte-level
//! copy of one taken mid-run / truncated mid-record) and recovering a
//! fresh service from it — the same observable states a SIGKILL
//! produces, minus the process spawn (the CI `durability-smoke` job
//! covers the real-SIGKILL path against a live `birds-serve`).

use birds_core::UpdateStrategy;
use birds_engine::{Engine, StrategyMode};
use birds_service::{DurabilityConfig, Service, ServiceConfig};
use birds_store::{tuple, Database, DatabaseSchema, Relation, Schema, SortKind, Tuple};
use birds_wal::FsyncPolicy;
use std::path::{Path, PathBuf};

/// SplitMix64 — tiny deterministic RNG, no dependencies (same trick as
/// `locks_stress.rs`).
struct Rng64(u64);

impl Rng64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform-ish value in `[lo, hi)`.
    fn range(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.next() % (hi - lo)
    }
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "birds-durability-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Recursively copy a data directory — the moral equivalent of what a
/// crash leaves on disk (for mid-run copies, including torn tails).
fn copy_dir(from: &Path, to: &Path) {
    std::fs::create_dir_all(to).unwrap();
    for entry in std::fs::read_dir(from).unwrap() {
        let entry = entry.unwrap();
        let target = to.join(entry.file_name());
        if entry.file_type().unwrap().is_dir() {
            copy_dir(&entry.path(), &target);
        } else {
            std::fs::copy(entry.path(), &target).unwrap();
        }
    }
}

/// The paper's Example 3.1 engine: `v = r1 ∪ r2`.
fn union_engine() -> Engine {
    let mut db = Database::new();
    db.add_relation(Relation::with_tuples("r1", 1, vec![tuple![1]]).unwrap())
        .unwrap();
    db.add_relation(Relation::with_tuples("r2", 1, vec![tuple![2], tuple![4]]).unwrap())
        .unwrap();
    let strategy = UpdateStrategy::parse(
        DatabaseSchema::new()
            .with(Schema::new("r1", vec![("a", SortKind::Int)]))
            .with(Schema::new("r2", vec![("a", SortKind::Int)])),
        Schema::new("v", vec![("a", SortKind::Int)]),
        "
        -r1(X) :- r1(X), not v(X).
        -r2(X) :- r2(X), not v(X).
        +r1(X) :- v(X), not r1(X), not r2(X).
        ",
        None,
    )
    .unwrap();
    let mut engine = Engine::new(db);
    engine
        .register_view(strategy, StrategyMode::Incremental)
        .unwrap();
    engine
}

/// `n` disjoint union views `v{i} = a{i} ∪ b{i}` — one footprint shard
/// each, so concurrent commits (and their WAL appends) never contend.
fn disjoint_engine(n: usize) -> Engine {
    let mut db = Database::new();
    for i in 0..n {
        for side in ["a", "b"] {
            db.add_relation(
                Relation::with_tuples(format!("{side}{i}"), 1, vec![tuple![i as i64]]).unwrap(),
            )
            .unwrap();
        }
    }
    let mut engine = Engine::new(db);
    for i in 0..n {
        let strategy = UpdateStrategy::parse(
            DatabaseSchema::new()
                .with(Schema::new(format!("a{i}"), vec![("x", SortKind::Int)]))
                .with(Schema::new(format!("b{i}"), vec![("x", SortKind::Int)])),
            Schema::new(format!("v{i}"), vec![("x", SortKind::Int)]),
            &format!(
                "
                -a{i}(X) :- a{i}(X), not v{i}(X).
                -b{i}(X) :- b{i}(X), not v{i}(X).
                +a{i}(X) :- v{i}(X), not a{i}(X), not b{i}(X).
                "
            ),
            None,
        )
        .unwrap();
        engine
            .register_view(strategy, StrategyMode::Incremental)
            .unwrap();
    }
    engine
}

fn durable(dir: &Path, fsync: FsyncPolicy, checkpoint_every: Option<u64>) -> DurabilityConfig {
    let mut d = DurabilityConfig::new(dir);
    d.fsync = fsync;
    d.checkpoint_every = checkpoint_every;
    d
}

fn open(engine: Engine, dir: &Path, fsync: FsyncPolicy) -> Service {
    Service::open(engine, ServiceConfig::default(), durable(dir, fsync, None)).unwrap()
}

fn sorted(service: &Service, relation: &str) -> Vec<Tuple> {
    service.query(relation).unwrap()
}

#[test]
fn commits_survive_restart() {
    for fsync in [FsyncPolicy::Always, FsyncPolicy::Epoch, FsyncPolicy::Off] {
        let dir = temp_dir(&format!("restart-{fsync}"));
        {
            let service = open(union_engine(), &dir, fsync);
            let mut session = service.session();
            session.execute("INSERT INTO v VALUES (9);").unwrap();
            session.begin().unwrap();
            session.execute("INSERT INTO v VALUES (10);").unwrap();
            session.execute("DELETE FROM v WHERE a = 2;").unwrap();
            session.commit().unwrap();
            assert_eq!(service.commits(), 2);
        }
        // "Restart": a fresh engine from the same registration code,
        // recovered from the directory.
        let recovered = open(union_engine(), &dir, fsync);
        assert_eq!(recovered.commits(), 2, "commit sequence resumes");
        assert_eq!(
            sorted(&recovered, "v"),
            vec![tuple![1], tuple![4], tuple![9], tuple![10]],
            "fsync {fsync}"
        );
        assert!(sorted(&recovered, "r1").contains(&tuple![9]));
        assert!(!sorted(&recovered, "r2").contains(&tuple![2]));
        // And the recovered service keeps committing durably.
        let mut session = recovered.session();
        session.execute("INSERT INTO v VALUES (11);").unwrap();
        drop(session);
        drop(recovered);
        let again = open(union_engine(), &dir, fsync);
        assert!(sorted(&again, "v").contains(&tuple![11]));
        assert_eq!(again.commits(), 3);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

#[test]
fn recovery_equals_serial_replay_of_every_durable_prefix() {
    // Single-client torture: run N commits against a durable service,
    // then "SIGKILL" at every interesting byte offset by truncating a
    // copy of the WAL tail and recovering. Whatever k records survive,
    // the recovered database must equal a serial in-memory replay of
    // the first k scripts — the durable commit-seq prefix.
    let scripts: Vec<String> = (0..12)
        .map(|i| {
            if i % 4 == 3 {
                format!("DELETE FROM v WHERE a = {};", 100 + i - 1)
            } else {
                format!("INSERT INTO v VALUES ({});", 100 + i)
            }
        })
        .collect();
    let dir = temp_dir("prefix");
    {
        let service = open(union_engine(), &dir, FsyncPolicy::Epoch);
        let mut session = service.session();
        for script in &scripts {
            session.execute(script).unwrap();
        }
    }
    let wal_file = {
        let wal_dir = dir.join("wal");
        let mut files: Vec<PathBuf> = std::fs::read_dir(&wal_dir)
            .unwrap()
            .map(|e| e.unwrap().path())
            .collect();
        files.sort();
        assert_eq!(files.len(), 1, "one shard, one segment");
        files[0].clone()
    };
    let original = std::fs::read(&wal_file).unwrap();
    let mut rng = Rng64(0xB1AD5);
    let mut cuts: Vec<usize> = (0..40)
        .map(|_| rng.range(0, original.len() as u64) as usize)
        .collect();
    cuts.push(0);
    cuts.push(original.len());
    for cut in cuts {
        let crash_dir = temp_dir("prefix-crash");
        copy_dir(&dir, &crash_dir);
        std::fs::write(crash_dir.join("wal").join(wal_file.file_name().unwrap()), {
            &original[..cut]
        })
        .unwrap();
        let recovered = open(union_engine(), &crash_dir, FsyncPolicy::Epoch);
        let k = recovered.commits() as usize;
        assert!(k <= scripts.len(), "cut {cut}");
        // Serial replay of the first k scripts on a fresh in-memory
        // service.
        let replay = Service::new(union_engine());
        let mut session = replay.session();
        for script in &scripts[..k] {
            session.execute(script).unwrap();
        }
        drop(session);
        for relation in ["r1", "r2", "v"] {
            assert_eq!(
                sorted(&recovered, relation),
                sorted(&replay, relation),
                "cut {cut}: '{relation}' diverged from the {k}-commit serial replay"
            );
        }
        drop(recovered);
        std::fs::remove_dir_all(&crash_dir).unwrap();
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn concurrent_torture_mid_run_crash_images_recover_consistently() {
    // Concurrent torture: three clients on three disjoint shards commit
    // while the main thread takes crash images (byte-level directory
    // copies) at randomized moments. Each image recovers to exactly a
    // per-shard prefix of the submitted scripts — and every commit that
    // was acknowledged before the image was taken is in it.
    const VIEWS: usize = 3;
    const PER_CLIENT: usize = 40;
    let dir = temp_dir("torture");
    let service = Service::open(
        disjoint_engine(VIEWS),
        ServiceConfig::default(),
        durable(&dir, FsyncPolicy::Epoch, None),
    )
    .unwrap();
    assert_eq!(service.shard_count(), VIEWS);

    let acked = std::sync::Arc::new(std::sync::Mutex::new(Vec::<u64>::new()));
    let handles: Vec<_> = (0..VIEWS)
        .map(|client| {
            let service = service.clone();
            let acked = acked.clone();
            std::thread::spawn(move || {
                let mut session = service.session();
                for i in 0..PER_CLIENT {
                    let value = 1000 + i as i64;
                    let script = format!("INSERT INTO v{client} VALUES ({value});");
                    session.execute(&script).unwrap();
                    acked.lock().unwrap().push(
                        // Track durably acknowledged commits by count;
                        // the assertion below uses the snapshot length.
                        (client * PER_CLIENT + i) as u64,
                    );
                }
            })
        })
        .collect();

    // Take crash images while the writers run.
    let mut images = Vec::new();
    let mut rng = Rng64(0x70AD);
    for image in 0..6 {
        std::thread::sleep(std::time::Duration::from_micros(rng.range(200, 3000)));
        let acked_before = acked.lock().unwrap().len();
        let image_dir = temp_dir(&format!("torture-img-{image}"));
        copy_dir(&dir, &image_dir);
        images.push((image_dir, acked_before));
    }
    for h in handles {
        h.join().unwrap();
    }
    let total = service.commits();
    assert_eq!(total as usize, VIEWS * PER_CLIENT);
    drop(service);
    images.push((dir.clone(), (VIEWS * PER_CLIENT) as u64 as usize));

    for (image_dir, acked_before) in images {
        let recovered = Service::open(
            disjoint_engine(VIEWS),
            ServiceConfig::default(),
            durable(&image_dir, FsyncPolicy::Epoch, None),
        )
        .unwrap_or_else(|e| panic!("crash image {image_dir:?} failed recovery: {e}"));
        // Durable-prefix property: everything acknowledged before the
        // image was taken survived it (appends are write-ahead and the
        // copy of each append-only file is a prefix of a later state).
        assert!(
            recovered.commits() as usize >= acked_before,
            "{image_dir:?}: {} recovered < {acked_before} acked",
            recovered.commits()
        );
        // Per-shard prefix property: each view recovered the inserts
        // 1000..1000+k_i for some k_i (its client submits in order, so
        // the shard's log is a prefix of its stream).
        for client in 0..VIEWS {
            let v = sorted(&recovered, &format!("v{client}"));
            let inserted: Vec<i64> = v
                .iter()
                .filter_map(|t| match t.get(0) {
                    Some(birds_store::Value::Int(x)) if *x >= 1000 => Some(*x),
                    _ => None,
                })
                .collect();
            let expected: Vec<i64> = (0..inserted.len() as i64).map(|i| 1000 + i).collect();
            assert_eq!(
                inserted, expected,
                "{image_dir:?}: v{client} is not a prefix of its stream"
            );
            // Serial-replay equivalence per shard: the base table holds
            // exactly the seed plus the recovered prefix.
            let a = sorted(&recovered, &format!("a{client}"));
            assert_eq!(a.len(), 1 + inserted.len());
        }
        drop(recovered);
        std::fs::remove_dir_all(&image_dir).unwrap();
    }
}

#[test]
fn checkpoint_snapshots_then_truncates_and_recovery_prefers_the_snapshot() {
    let dir = temp_dir("checkpoint");
    {
        let service = open(union_engine(), &dir, FsyncPolicy::Epoch);
        let mut session = service.session();
        for i in 0..8 {
            session
                .execute(&format!("INSERT INTO v VALUES ({});", 200 + i))
                .unwrap();
        }
        let watermark = service.checkpoint().unwrap();
        assert_eq!(watermark, 8);
        assert!(dir.join("snapshot.bin").exists());
        // Post-checkpoint commits land in the (fresh) WAL.
        session.execute("INSERT INTO v VALUES (300);").unwrap();
    }
    let recovered = open(union_engine(), &dir, FsyncPolicy::Epoch);
    assert_eq!(recovered.commits(), 9);
    let v = sorted(&recovered, "v");
    assert!(v.contains(&tuple![207]) && v.contains(&tuple![300]));
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn automatic_checkpoints_bound_the_wal() {
    let dir = temp_dir("auto-ck");
    {
        let service = Service::open(
            union_engine(),
            ServiceConfig::default(),
            durable(&dir, FsyncPolicy::Epoch, Some(5)),
        )
        .unwrap();
        let mut session = service.session();
        for i in 0..12 {
            session
                .execute(&format!("INSERT INTO v VALUES ({});", 400 + i))
                .unwrap();
        }
    }
    assert!(
        dir.join("snapshot.bin").exists(),
        "threshold crossings checkpointed automatically"
    );
    let recovered = open(union_engine(), &dir, FsyncPolicy::Epoch);
    assert_eq!(recovered.commits(), 12);
    assert_eq!(sorted(&recovered, "v").len(), 3 + 12);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn multi_view_batch_commits_replay_in_application_order() {
    let dir = temp_dir("multiview");
    {
        let service = Service::open(
            disjoint_engine(2),
            ServiceConfig::default(),
            durable(&dir, FsyncPolicy::Epoch, None),
        )
        .unwrap();
        let mut session = service.session();
        session.begin().unwrap();
        session.execute("INSERT INTO v0 VALUES (500);").unwrap();
        session.execute("INSERT INTO v1 VALUES (501);").unwrap();
        session.execute("DELETE FROM v0 WHERE x = 0;").unwrap();
        let outcome = session.commit().unwrap();
        assert_eq!(outcome.views, 2);
    }
    let recovered = Service::open(
        disjoint_engine(2),
        ServiceConfig::default(),
        durable(&dir, FsyncPolicy::Epoch, None),
    )
    .unwrap();
    assert_eq!(recovered.commits(), 1);
    assert_eq!(sorted(&recovered, "v0"), vec![tuple![500]]);
    assert!(sorted(&recovered, "v1").contains(&tuple![501]));
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn group_commit_epochs_are_wal_batches() {
    // Concurrent autocommit clients under a real epoch window: every
    // acknowledged transaction must survive a restart, however the
    // epochs coalesced.
    let dir = temp_dir("epochs");
    {
        let service = Service::open(
            union_engine(),
            ServiceConfig {
                epoch_window: std::time::Duration::from_micros(200),
            },
            durable(&dir, FsyncPolicy::Epoch, None),
        )
        .unwrap();
        let handles: Vec<_> = (0..4)
            .map(|client| {
                let service = service.clone();
                std::thread::spawn(move || {
                    let mut session = service.session();
                    for i in 0..10 {
                        let value = 1000 + client * 100 + i;
                        session
                            .execute(&format!("INSERT INTO v VALUES ({value});"))
                            .unwrap();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(service.commits(), 40);
    }
    let recovered = open(union_engine(), &dir, FsyncPolicy::Epoch);
    assert_eq!(recovered.commits(), 40);
    let v = sorted(&recovered, "v");
    for client in 0..4 {
        for i in 0..10 {
            let value = 1000 + client * 100 + i;
            assert!(v.contains(&tuple![value]), "lost acked insert {value}");
        }
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn noop_deletes_never_become_effective_on_replay() {
    // ISSUE 5 satellite, end to end: commit 1 deletes a tuple that does
    // not exist (a no-op) and inserts one that does not; commit 2 then
    // inserts the very tuple commit 1 "deleted". Replaying the log
    // across two restarts must not let commit 1's no-effect delete
    // resurface and kill commit 2's insert.
    let dir = temp_dir("noop-delete");
    {
        let service = open(union_engine(), &dir, FsyncPolicy::Epoch);
        let mut session = service.session();
        session.begin().unwrap();
        session.execute("DELETE FROM v WHERE a = 42;").unwrap(); // no-op
        session.execute("INSERT INTO v VALUES (9);").unwrap();
        session.commit().unwrap();
        session.execute("INSERT INTO v VALUES (42);").unwrap();
    }
    let recovered = open(union_engine(), &dir, FsyncPolicy::Epoch);
    assert!(sorted(&recovered, "v").contains(&tuple![42]), "restart 1");
    drop(recovered);
    let recovered = open(union_engine(), &dir, FsyncPolicy::Epoch);
    assert!(sorted(&recovered, "v").contains(&tuple![42]), "restart 2");
    assert!(sorted(&recovered, "v").contains(&tuple![9]));
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn recovery_rejects_a_mismatched_engine() {
    let dir = temp_dir("mismatch");
    {
        let service = open(union_engine(), &dir, FsyncPolicy::Epoch);
        service
            .session()
            .execute("INSERT INTO v VALUES (7);")
            .unwrap();
        service.checkpoint().unwrap();
    }
    // Recovering with a different registration (the 1-view disjoint
    // engine) must fail loudly, not half-load.
    let err = Service::open(
        disjoint_engine(1),
        ServiceConfig::default(),
        durable(&dir, FsyncPolicy::Epoch, None),
    )
    .err()
    .expect("schema mismatch must be rejected");
    let message = err.to_string();
    assert!(message.contains("snapshot"), "{message}");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn protocol_checkpoint_op_checkpoints_durable_services() {
    let dir = temp_dir("proto-ck");
    {
        let service = open(union_engine(), &dir, FsyncPolicy::Epoch);
        let mut client = birds_service::LocalClient::connect(&service);
        client.request_line(r#"{"op":"execute","sql":"INSERT INTO v VALUES (9);"}"#);
        let resp = client.request_line(r#"{"op":"checkpoint","id":7}"#);
        assert!(
            resp.contains("\"watermark\": 1") && resp.contains("\"id\": 7"),
            "{resp}"
        );
        assert!(dir.join("snapshot.bin").exists());
    }
    // The checkpoint is a valid recovery point on its own.
    let recovered = open(union_engine(), &dir, FsyncPolicy::Epoch);
    assert!(sorted(&recovered, "v").contains(&tuple![9]));
    // In-memory services reject the op with a typed error.
    let mem = Service::new(union_engine());
    let mut client = birds_service::LocalClient::connect(&mem);
    let resp = client.request_line(r#"{"op":"checkpoint"}"#);
    assert!(
        resp.contains("\"ok\": false") && resp.contains("durability error"),
        "{resp}"
    );
    drop(recovered);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn in_memory_service_has_no_durability_surface() {
    let service = Service::new(union_engine());
    assert!(service.data_dir().is_none());
    assert!(service.checkpoint().is_err());
}
