//! The thread-safe, multi-session service over [`birds_engine::Engine`] —
//! footprint-sharded since PR 4, MVCC snapshot reads since PR 6, and
//! **dynamically re-shardable** since PR 10: views can be registered
//! and deregistered on a live service.
//!
//! At construction the engine is split along **view dependency
//! footprints** into independently locked components
//! ([`crate::footprint`]): each shard owns every relation the views
//! inside it can touch (reads, writes, cascades), so a commit needs only
//! its own shard's write lock and commits on disjoint views proceed in
//! parallel. Lock sets are always acquired in global [`LockId`] order
//! ([`crate::locks`]), which makes overlapping commits deadlock-free by
//! construction. What remains global is the **commit sequence** — every
//! transaction still gets a unique, dense serial number, assigned while
//! its footprint is locked, so the concurrent history stays equivalent
//! to the serial replay in commit order.
//!
//! ## Live topology
//!
//! The sharded state — lock slots, routing table, group-commit queues,
//! snapshot cells, WAL segment writers — lives in one `Topology`
//! value behind an `Arc` that every request loads exactly once
//! (`Service::topology`). Dynamic registration
//! ([`Service::register_view`] / [`Service::unregister_view`]) builds a
//! *successor* topology and swaps the `Arc`: the quiesce barrier is the
//! write locks of **only the shards the new view's footprint touches**
//! (computed by [`birds_engine::strategy_touches`] before any lock is
//! taken); disjoint shards keep committing throughout. The affected
//! shards' engines are taken out of their slots (which become `None` —
//! permanently, for a retired generation), merged
//! ([`Engine::merge`]), mutated, re-split, and installed under **fresh**
//! slot `Arc`s, so a stale thread that raced the swap can never touch a
//! new engine through an old lock set: it finds `None`, reloads the
//! topology, and retries. Surviving shards carry their slot, cell and
//! committer `Arc`s across generations unchanged — `LockId` *i* names
//! the same lock in every generation, which keeps ascending-order
//! acquisition deadlock-free even when old- and new-generation threads
//! interleave.
//!
//! Lock order across the subsystem: checkpoint lock → registration
//! lock → shard locks (ascending) → WAL writer mutex. Registrations
//! serialize on the registration lock; checkpoints freeze the
//! registration set for their whole duration by taking that lock too.
//!
//! ## Invariants
//!
//! * **Commit-seq assignment**: seqs come from one global counter,
//!   bumped only while the commit's footprint is write-locked, so
//!   per-shard seq order equals application order and the global order
//!   is a valid serial history. Registrations consume a seq from the
//!   same counter while holding every affected shard's write lock, so
//!   the WAL's interleaving of topology changes and commits is exact.
//! * **Snapshot visibility**: every commit publishes each touched
//!   shard's [`ShardSnapshot`] *before releasing its locks and before
//!   acknowledging any client* — a client that saw `Ok` finds its write
//!   on the lock-free read path, and a reader never sees a commit's
//!   effects before that commit's WAL record was appended. A
//!   registration publishes every replacement shard's snapshot (tagged
//!   with the registration's seq) *before* the topology swap, so both
//!   generations are consistent cuts at every instant.
//! * **Durability coupling**: on a durable service, no result slot is
//!   filled until the epoch-end fsync ran (see [`crate::group_commit`]),
//!   and a registration is installed only after its
//!   [`WalRecord::Register`] reached the log.
//!
//! ## Read path
//!
//! Reads never touch the shard engine locks: [`Service::query`],
//! [`Service::relation_stats`], [`Service::view_names`] and
//! [`Service::read`]/[`Service::snapshot`] all work against the shards'
//! published MVCC snapshots ([`crate::snapshot`]). A long analytical
//! read holds an `Arc` to an immutable image; writers keep committing
//! (each publication refreshes a shadow buffer, never the pinned one)
//! and readers keep reading — neither waits for the other.
//!
//! Each client holds a [`Session`] in one of two modes:
//!
//! * **autocommit** (the default): every `execute` call is its own
//!   transaction, routed through the target shard's group committer —
//!   concurrent autocommit transactions on the same shard coalesce into
//!   one net delta per view ([`crate::group_commit`]);
//! * **batch** (after `begin`): statements buffer locally — no lock
//!   taken — until `commit` coalesces them into one *net* view delta per
//!   view and applies each in a single incremental pass, locking exactly
//!   the shards its views live in.

use crate::error::{ServiceError, ServiceResult};
use crate::footprint::{partition, ShardMap};
use crate::group_commit::{EpochWal, GroupCommitter, PendingTx};
use crate::locks::{LockId, LockManager};
use crate::snapshot::{ServiceSnapshot, ShardSnapshot, SnapshotCell};
use birds_core::UpdateStrategy;
use birds_engine::{
    strategy_touches, Engine, EngineError, ExecutionStats, StrategyMode, ViewDefinition,
};
use birds_sql::{parse_script, DmlStatement};
use birds_store::{Database, Delta, Relation, RelationVersion, Tuple};
use birds_wal::{
    FsyncPolicy, Registration, SegmentWriter, ViewDef, WalRecord, DEFAULT_SEGMENT_BYTES,
};
use std::collections::{BTreeMap, BTreeSet};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, RwLock, RwLockWriteGuard};
use std::time::Duration;

/// Service tuning knobs.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Group-commit epoch window: how long an autocommit submitter parks
    /// before its first leadership attempt, letting concurrent
    /// transactions pile into the same epoch. `0` (the default) keeps
    /// single-statement latency and still coalesces whatever queued
    /// while the previous epoch held the shard lock.
    pub epoch_window: Duration,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            epoch_window: Duration::ZERO,
        }
    }
}

/// Durability knobs for [`Service::open`]: where the data directory
/// lives and how eagerly the WAL reaches stable storage.
#[derive(Debug, Clone)]
pub struct DurabilityConfig {
    /// Directory holding the snapshot file and `wal/` segments. Created
    /// if absent; recovered from if not.
    pub data_dir: PathBuf,
    /// When appends are flushed — see [`FsyncPolicy`].
    pub fsync: FsyncPolicy,
    /// Checkpoint (snapshot-then-truncate) after this many durable
    /// commits; `None` disables automatic checkpoints (manual
    /// [`Service::checkpoint`] still works).
    pub checkpoint_every: Option<u64>,
    /// WAL segment rotation threshold, in bytes.
    pub segment_bytes: u64,
}

impl DurabilityConfig {
    /// Sensible defaults: `epoch` fsync, checkpoint every 1024 commits,
    /// 8 MiB segments.
    pub fn new(data_dir: impl Into<PathBuf>) -> DurabilityConfig {
        DurabilityConfig {
            data_dir: data_dir.into(),
            fsync: FsyncPolicy::default(),
            checkpoint_every: Some(1024),
            segment_bytes: DEFAULT_SEGMENT_BYTES,
        }
    }
}

/// One relation's statistics as of its last published snapshot: tuple
/// count plus cumulative index probe counters (see
/// [`Service::relation_stats`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RelationStats {
    /// Relation name.
    pub name: String,
    /// Tuple count at the snapshot's commit boundary.
    pub tuples: usize,
    /// Probes served by a secondary index (hash or ordered).
    pub index_hits: u64,
    /// Probes that fell back to a full scan — a climbing value means
    /// the planner requested an index the relation never built.
    pub index_misses: u64,
}

/// The durable half of a running service: the data directory plus
/// checkpoint bookkeeping. The per-shard segment writers live in the
/// `Topology` (they are re-seated when a live re-shard grows the
/// shard set).
struct WalState {
    fsync: FsyncPolicy,
    data_dir: PathBuf,
    checkpoint_every: Option<u64>,
    /// Segment rotation threshold — kept so a live registration can open
    /// writers for freshly minted shard slots.
    segment_bytes: u64,
    commits_since_checkpoint: AtomicU64,
    /// Serializes checkpointers (the shard locks alone would let two
    /// checkpoints interleave their snapshot/truncate halves).
    checkpoint_lock: Mutex<()>,
    /// Consecutive failed emergency-heal checkpoints (log throttling).
    heal_failures: AtomicU64,
}

/// One generation of the sharded state. Every request loads the current
/// generation exactly once (`Service::topology`) and works against a
/// consistent quintuple; a live re-shard builds a successor and swaps
/// the `Arc` while holding the affected shards' write locks.
///
/// All five vectors are indexed by [`LockId`]; a retired slot (its
/// engine merged away by a re-shard that didn't reuse the index) holds
/// `None` forever and is never routed to.
struct Topology {
    /// One engine component (and one reader-writer lock) per footprint
    /// shard; slot order is [`LockId`] order. `None` marks a retired
    /// slot — a stale thread that finds it reloads the topology.
    shards: LockManager<Option<Engine>>,
    /// Relation name → owning shard (shared with every
    /// [`ServiceSnapshot`] handed out).
    route: Arc<ShardMap>,
    /// One group-commit queue per shard. A retired shard's committer is
    /// closed by the re-shard that retired it; its queued transactions
    /// migrate to the successor's committers.
    committers: Vec<Arc<GroupCommitter>>,
    /// One published-snapshot cell per shard; the entire lock-free read
    /// path hangs off these. Survivors share cells across generations.
    cells: Vec<Arc<SnapshotCell>>,
    /// One WAL segment writer per shard (empty on in-memory services).
    /// Shared across generations so a surviving shard's log continues
    /// seamlessly through a re-shard.
    writers: Vec<Arc<Mutex<SegmentWriter>>>,
}

struct ServiceInner {
    /// The current topology generation. The `RwLock` guards only the
    /// `Arc` pointer (clone on load, store on swap) — never engine work.
    topology: RwLock<Arc<Topology>>,
    /// Serializes topology changes (register/unregister). Held for the
    /// whole re-shard; checkpoints take it too, freezing the
    /// registration set while the manifest is written.
    registration_lock: Mutex<()>,
    commit_seq: AtomicU64,
    /// Seqlock over *multi-shard* snapshot publication: odd while a
    /// multi-shard commit is swapping several cells, bumped to even
    /// when done. Single-shard commits never touch it — they commute
    /// with each other, so any mix of their publications is a
    /// consistent cut; only a multi-shard commit can establish a
    /// cross-shard invariant that a reader must not see half of.
    publication_seq: AtomicU64,
    /// Serializes multi-shard publications. Two batch commits with
    /// *disjoint* multi-shard footprints hold disjoint shard locks, so
    /// without this their seqlock brackets would interleave — two
    /// opening increments make the counter even again (0→1→2) while
    /// both are still mid-swap, and a reader could assemble a torn
    /// cut. Held only around the pointer swaps (no engine work), so
    /// the cost is negligible.
    publication_lock: Mutex<()>,
    config: ServiceConfig,
    /// `Some` when the service is durable ([`Service::open`]).
    wal: Option<WalState>,
}

/// Why a successor topology could not be installed.
enum InstallError {
    /// Nothing was installed and nothing durable was written; the merged
    /// engine (mutation already reverted by the caller) comes back for
    /// reseating into the still-held guards. Boxed: the error path
    /// carries a whole engine, the `Ok` path should stay thin.
    Aborted(Box<Engine>, ServiceError),
}

/// Convert an engine-side view definition into its WAL form.
fn def_to_wal(def: &ViewDefinition) -> ViewDef {
    ViewDef {
        sources: def.sources.clone(),
        view: def.view.clone(),
        putdelta: def.putdelta.clone(),
        expected_get: def.expected_get.clone(),
        get: def.get.clone(),
        incremental: def.mode == StrategyMode::Incremental,
    }
}

/// Convert a WAL view definition back into the engine's form.
fn def_from_wal(def: &ViewDef) -> ViewDefinition {
    ViewDefinition {
        sources: def.sources.clone(),
        view: def.view.clone(),
        putdelta: def.putdelta.clone(),
        expected_get: def.expected_get.clone(),
        get: def.get.clone(),
        mode: if def.incremental {
            StrategyMode::Incremental
        } else {
            StrategyMode::Original
        },
    }
}

/// Reconcile the caller-provided engine's view set with a checkpoint
/// manifest: the manifest is authoritative. Views the engine registered
/// that the manifest doesn't carry (or carries with a different
/// definition) are dropped — as a fixpoint, because a view can only be
/// unregistered once nothing depends on it — and manifest views the
/// engine lacks are registered in manifest (dependency) order.
fn reconcile_views(engine: &mut Engine, manifest: &[ViewDef]) -> ServiceResult<()> {
    let manifest_defs: BTreeMap<&str, ViewDefinition> = manifest
        .iter()
        .map(|def| (def.view.name.as_str(), def_from_wal(def)))
        .collect();
    loop {
        let stale: Vec<String> = engine
            .view_definitions()
            .into_iter()
            .filter(|def| manifest_defs.get(def.view.name.as_str()) != Some(def))
            .map(|def| def.view.name)
            .collect();
        if stale.is_empty() {
            break;
        }
        let mut progress = false;
        for name in &stale {
            if engine.unregister_view(name).is_ok() {
                progress = true;
            }
        }
        if !progress {
            return Err(ServiceError::Durability(format!(
                "snapshot manifest reconciliation stalled on views {stale:?} \
                 (circular footprint dependency)"
            )));
        }
    }
    for def in manifest {
        if !engine.is_view(&def.view.name) {
            engine
                .register_definition(&def_from_wal(def))
                .map_err(|e| {
                    ServiceError::Durability(format!(
                        "re-registering view '{}' from the snapshot manifest: {e}",
                        def.view.name
                    ))
                })?;
        }
    }
    Ok(())
}

/// Replay one recovered WAL record into the engine.
fn replay_record(engine: &mut Engine, record: WalRecord) -> ServiceResult<()> {
    match record {
        WalRecord::Commit { seqs, deltas } => {
            let seq = seqs.first().copied().unwrap_or(0);
            for (view, delta) in deltas {
                engine.apply_delta(&view, delta).map_err(|e| {
                    ServiceError::Durability(format!("replaying commit seq {seq}: {e}"))
                })?;
            }
        }
        WalRecord::Register(reg) => {
            // A view the engine already carries (the operator's startup
            // code re-registered it, or the checkpoint manifest did) is
            // not registered twice — the logged definition prevails at
            // the checkpoint that wrote it.
            if !engine.is_view(&reg.def.view.name) {
                engine
                    .register_definition(&def_from_wal(&reg.def))
                    .map_err(|e| {
                        ServiceError::Durability(format!(
                            "replaying registration of view '{}' (seq {}): {e}",
                            reg.def.view.name, reg.seq
                        ))
                    })?;
            }
        }
        WalRecord::Unregister { seq, view } => match engine.unregister_view(&view) {
            // Already absent: the checkpoint manifest (or the operator's
            // engine) never had it — the unregister is a no-op on replay.
            Ok(()) | Err(EngineError::NotAView(_)) => {}
            Err(e) => {
                return Err(ServiceError::Durability(format!(
                    "replaying deregistration of view '{view}' (seq {seq}): {e}"
                )))
            }
        },
    }
    Ok(())
}

/// Outcome of a [`Session::execute`] call.
#[derive(Debug, Clone, PartialEq)]
pub enum ExecOutcome {
    /// Autocommit mode: the statements were applied immediately. For a
    /// transaction that committed as part of a group-commit epoch, the
    /// stats are the epoch's per-view totals.
    Applied(ExecutionStats),
    /// Batch mode: the statements were buffered; the payload is the total
    /// number of statements now pending in the session.
    Buffered(usize),
}

/// Outcome of a successful [`Session::commit`].
#[derive(Debug, Clone)]
pub struct CommitOutcome {
    /// Position of this commit in the service-wide serial order
    /// (1-based; assigned while the commit's footprint is locked).
    pub commit_seq: u64,
    /// Number of statements that were coalesced.
    pub statements: usize,
    /// Number of distinct views the batch touched.
    pub views: usize,
    /// Summed execution stats over all per-view applications.
    pub stats: ExecutionStats,
}

/// Shared handle to one sharded engine; cheap to clone, safe to send
/// across threads. All handles see the same database.
#[derive(Clone)]
pub struct Service {
    inner: Arc<ServiceInner>,
}

impl Service {
    /// Wrap an engine (typically with views already registered),
    /// splitting it into footprint shards with the default config.
    pub fn new(engine: Engine) -> Self {
        Service::with_config(engine, ServiceConfig::default())
    }

    /// Wrap an engine with explicit tuning knobs.
    pub fn with_config(engine: Engine, config: ServiceConfig) -> Self {
        Service::build(engine, config, None).expect("in-memory service construction cannot fail")
    }

    /// Open a **durable** service: recover the data directory (latest
    /// snapshot, then the WAL in global commit-seq order), then serve
    /// with write-ahead logging on every commit path.
    ///
    /// `engine` provides the base tables (and any statically registered
    /// views). Recovery first reconciles the engine's view set against
    /// the checkpoint's **registration manifest** (runtime-registered
    /// views survive restarts even when the startup code doesn't know
    /// them; a definition the manifest carries wins over the caller's),
    /// restores relation *contents* from the snapshot, then replays the
    /// WAL — commits through the deterministic [`Engine::apply_delta`]
    /// path, interleaved with logged registrations and deregistrations
    /// in exact global commit-seq order. Torn record tails (a crash
    /// mid-append) are CRC-detected and truncated.
    ///
    /// ```
    /// # use birds_core::UpdateStrategy;
    /// # use birds_engine::{Engine, StrategyMode};
    /// # use birds_service::{DurabilityConfig, Service, ServiceConfig};
    /// # use birds_store::{tuple, Database, DatabaseSchema, Relation, Schema, SortKind, Value};
    /// # fn build_engine() -> Engine {
    /// #     let mut db = Database::new();
    /// #     db.add_relation(Relation::with_tuples("r1", 1, vec![tuple![1]]).unwrap()).unwrap();
    /// #     db.add_relation(Relation::with_tuples("r2", 1, vec![tuple![2]]).unwrap()).unwrap();
    /// #     let strategy = UpdateStrategy::parse(
    /// #         DatabaseSchema::new()
    /// #             .with(Schema::new("r1", vec![("a", SortKind::Int)]))
    /// #             .with(Schema::new("r2", vec![("a", SortKind::Int)])),
    /// #         Schema::new("v", vec![("a", SortKind::Int)]),
    /// #         "-r1(X) :- r1(X), not v(X).
    /// #          -r2(X) :- r2(X), not v(X).
    /// #          +r1(X) :- v(X), not r1(X), not r2(X).",
    /// #         None,
    /// #     ).unwrap();
    /// #     let mut engine = Engine::new(db);
    /// #     engine.register_view(strategy, StrategyMode::Incremental).unwrap();
    /// #     engine
    /// # }
    /// let dir = std::env::temp_dir().join(format!("birds-doc-open-{}", std::process::id()));
    /// # std::fs::remove_dir_all(&dir).ok();
    /// // `build_engine()` registers the union view `v = r1 ∪ r2` over
    /// // base tables r1 = {1} and r2 = {2}.
    /// let service = Service::open(
    ///     build_engine(),
    ///     ServiceConfig::default(),
    ///     DurabilityConfig::new(&dir),
    /// )?;
    /// let mut session = service.session();
    /// session.execute("INSERT INTO v VALUES (7);")?; // logged before Ok
    /// drop((session, service));
    ///
    /// // Reopen from the same directory: recovery replays the WAL and
    /// // the commit is visible again.
    /// let service = Service::open(
    ///     build_engine(),
    ///     ServiceConfig::default(),
    ///     DurabilityConfig::new(&dir),
    /// )?;
    /// assert_eq!(service.query("v")?, vec![tuple![1], tuple![2], tuple![7]]);
    /// # std::fs::remove_dir_all(&dir).ok();
    /// # Ok::<(), birds_service::ServiceError>(())
    /// ```
    pub fn open(
        engine: Engine,
        config: ServiceConfig,
        durability: DurabilityConfig,
    ) -> ServiceResult<Service> {
        Service::build(engine, config, Some(durability))
    }

    fn build(
        mut engine: Engine,
        config: ServiceConfig,
        durability: Option<DurabilityConfig>,
    ) -> ServiceResult<Service> {
        let mut start_seq = 0u64;
        let durability = match durability {
            None => None,
            Some(d) => {
                let recovery = birds_wal::recover(&d.data_dir)
                    .map_err(|e| ServiceError::Durability(e.to_string()))?;
                if let Some(body) = &recovery.snapshot {
                    if body.starts_with(&birds_engine::SNAPSHOT_MAGIC) {
                        // Pre-manifest snapshot (written before dynamic
                        // registration existed): the caller's engine
                        // defines the view set, as it always did.
                        engine.restore(&body[..])?;
                    } else {
                        let (defs, consumed) = birds_wal::decode_view_defs(body).map_err(|e| {
                            ServiceError::Durability(format!("checkpoint manifest: {e}"))
                        })?;
                        reconcile_views(&mut engine, &defs)?;
                        engine.restore(&body[consumed..])?;
                    }
                }
                for record in recovery.records {
                    replay_record(&mut engine, record)?;
                }
                start_seq = recovery.max_seq;
                // Replay can grow relations far past the sizes the
                // snapshot restore planned against; drop those plans so
                // the first post-recovery evaluation sees real sizes.
                engine.clear_plan_cache();
                Some(d)
            }
        };
        let (components, route) = partition(engine);
        let shard_count = components.len();
        let (wal, writers) = match durability {
            None => (None, Vec::new()),
            Some(d) => {
                let writers = (0..shard_count)
                    .map(|shard| {
                        SegmentWriter::open(&d.data_dir, shard, d.segment_bytes)
                            .map(|writer| Arc::new(Mutex::new(writer)))
                    })
                    .collect::<Result<Vec<_>, _>>()
                    .map_err(|e| ServiceError::Durability(e.to_string()))?;
                (
                    Some(WalState {
                        fsync: d.fsync,
                        data_dir: d.data_dir,
                        checkpoint_every: d.checkpoint_every,
                        segment_bytes: d.segment_bytes,
                        commits_since_checkpoint: AtomicU64::new(0),
                        checkpoint_lock: Mutex::new(()),
                        heal_failures: AtomicU64::new(0),
                    }),
                    writers,
                )
            }
        };
        let committers = (0..shard_count)
            .map(|_| Arc::new(GroupCommitter::new()))
            .collect();
        let shards = LockManager::new(components.into_iter().map(Some).collect());
        // Initial snapshot publication: every shard's image as of the
        // recovered (or zero) commit seq. Nothing is shared yet, so no
        // locks are needed.
        let cells: Vec<Arc<SnapshotCell>> = shards
            .ids()
            .map(|id| {
                let mut slot = shards.write(id);
                let engine = slot.as_mut().expect("fresh slots are live");
                Arc::new(SnapshotCell::new(ShardSnapshot::capture(engine, start_seq)))
            })
            .collect();
        Ok(Service {
            inner: Arc::new(ServiceInner {
                topology: RwLock::new(Arc::new(Topology {
                    shards,
                    route: Arc::new(route),
                    committers,
                    cells,
                    writers,
                })),
                registration_lock: Mutex::new(()),
                commit_seq: AtomicU64::new(start_seq),
                publication_seq: AtomicU64::new(0),
                publication_lock: Mutex::new(()),
                config,
                wal,
            }),
        })
    }

    /// Load the current topology generation (one `Arc` clone under a
    /// pointer-only lock). Every request works against the generation
    /// it loaded; a re-shard mid-request is detected by the `None` slot
    /// of a retired shard, upon which the request reloads and retries.
    fn topology(&self) -> Arc<Topology> {
        match self.inner.topology.read() {
            Ok(topology) => Arc::clone(&topology),
            Err(poisoned) => Arc::clone(&poisoned.into_inner()),
        }
    }

    /// Open a new session in autocommit mode.
    pub fn session(&self) -> Session {
        Session {
            service: self.clone(),
            batch: None,
        }
    }

    /// Number of **live** footprint shards (disjoint views land in
    /// different shards and commit in parallel). Retired lock slots —
    /// left behind by live re-shards — are not counted.
    pub fn shard_count(&self) -> usize {
        self.topology().route.shard_ids().len()
    }
}

impl Service {
    /// Assemble a consistent, **lock-free** snapshot over every shard —
    /// the MVCC read entry point. The returned [`ServiceSnapshot`] is an
    /// owned value: pin it as long as you like; it observes none of the
    /// commits that land after assembly, and holding it never blocks a
    /// writer (nor vice versa — no shard engine lock is taken).
    ///
    /// Cross-shard consistency: single-shard commits publish their cell
    /// independently (they commute, so any mix of cells is a consistent
    /// cut); only multi-shard commits bracket their publication with the
    /// publication seqlock, and assembly retries the cheap pointer
    /// collection while one is in flight. A live re-shard swaps the
    /// whole topology `Arc` atomically, so assembly sees either
    /// generation in full — never a mix.
    ///
    /// ```
    /// # use birds_service::Service;
    /// # use birds_engine::Engine;
    /// # use birds_store::{tuple, Database, Relation};
    /// let mut db = Database::new();
    /// db.add_relation(Relation::with_tuples("r", 1, vec![tuple![1]]).unwrap())
    ///     .unwrap();
    /// let service = Service::new(Engine::new(db));
    ///
    /// let pinned = service.snapshot();
    /// assert_eq!(pinned.relation("r").unwrap().len(), 1);
    /// assert_eq!(pinned.commit_seq(), 0); // nothing committed yet
    /// assert!(pinned.relation("nope").is_none());
    /// ```
    pub fn snapshot(&self) -> ServiceSnapshot {
        let topo = self.topology();
        if topo.cells.len() <= 1 {
            // A single cell load is trivially consistent.
            let shards = topo.cells.iter().map(|cell| cell.load()).collect();
            return ServiceSnapshot::new(shards, Arc::clone(&topo.route));
        }
        let mut spins = 0u32;
        loop {
            let before = self.inner.publication_seq.load(Ordering::Acquire);
            if before % 2 == 1 {
                // A multi-shard publication is mid-swap; its cell stores
                // are pointer writes, so it normally clears within a few
                // spins. If the publisher was preempted inside the
                // bracket, yield instead of burning CPU (on a single
                // core a pure spin could starve the very thread we are
                // waiting on).
                spins += 1;
                if spins < 64 {
                    std::hint::spin_loop();
                } else {
                    std::thread::yield_now();
                }
                continue;
            }
            let shards: Vec<_> = topo.cells.iter().map(|cell| cell.load()).collect();
            if self.inner.publication_seq.load(Ordering::Acquire) == before {
                return ServiceSnapshot::new(shards, Arc::clone(&topo.route));
            }
        }
    }

    /// Run a closure against a consistent whole-service snapshot — a
    /// convenience over [`Service::snapshot`] for callers that don't
    /// need to pin the image past the closure. Entirely lock-free:
    /// in-flight commits proceed, and the closure sees none of them.
    ///
    /// ```
    /// # use birds_engine::Engine;
    /// # use birds_service::Service;
    /// # use birds_store::{tuple, Database, Relation, Value};
    /// # let mut db = Database::new();
    /// # db.add_relation(Relation::with_tuples("r", 2, vec![tuple![1, 2]]).unwrap()).unwrap();
    /// # let service = Service::new(Engine::new(db));
    /// let arity = service.read(|snapshot| {
    ///     assert_eq!(snapshot.relations().count(), 1);
    ///     snapshot.relation("r").unwrap().arity()
    /// });
    /// assert_eq!(arity, 2);
    /// ```
    pub fn read<R>(&self, f: impl FnOnce(&ServiceSnapshot) -> R) -> R {
        f(&self.snapshot())
    }

    /// Sorted snapshot of a relation's tuples, read lock-free from the
    /// owning shard's published snapshot.
    /// [`ServiceError::UnknownRelation`] for names no shard owns.
    ///
    /// ```
    /// # use birds_engine::Engine;
    /// # use birds_service::{Service, ServiceError};
    /// # use birds_store::{tuple, Database, Relation, Value};
    /// # let mut db = Database::new();
    /// # db.add_relation(Relation::with_tuples("r", 1, vec![tuple![3], tuple![1]]).unwrap())
    /// #     .unwrap();
    /// # let service = Service::new(Engine::new(db));
    /// assert_eq!(service.query("r")?, vec![tuple![1], tuple![3]]); // sorted
    /// assert_eq!(
    ///     service.query("typo"),
    ///     Err(ServiceError::UnknownRelation("typo".into())),
    /// );
    /// # Ok::<(), birds_service::ServiceError>(())
    /// ```
    pub fn query(&self, relation: &str) -> ServiceResult<Vec<Tuple>> {
        let topo = self.topology();
        let shard = topo
            .route
            .shard_of(relation)
            .ok_or_else(|| ServiceError::UnknownRelation(relation.to_owned()))?;
        let snapshot = topo.cells[shard.index()].load();
        let rel = snapshot
            .relation(relation)
            .ok_or_else(|| ServiceError::UnknownRelation(relation.to_owned()))?;
        let mut tuples: Vec<Tuple> = rel.iter().cloned().collect();
        tuples.sort();
        Ok(tuples)
    }

    /// Names of all registered views, in name order — from the
    /// published snapshots, no shard lock taken.
    pub fn view_names(&self) -> Vec<String> {
        self.snapshot().view_names()
    }

    /// Statistics for every relation, in name order — from the
    /// published snapshots, no shard lock taken. The counts are a
    /// consistent cut (see [`Service::snapshot`]); the index hit/miss
    /// counters are cumulative as of each relation's last publication,
    /// so a climbing miss count flags a probe path that fell back to a
    /// full scan (planner/registration drift) instead of failing silently.
    pub fn relation_stats(&self) -> Vec<RelationStats> {
        let snapshot = self.snapshot();
        let mut stats: Vec<RelationStats> = snapshot
            .relations()
            .map(|rel| RelationStats {
                name: rel.name().to_owned(),
                tuples: rel.len(),
                index_hits: rel.index_hits(),
                index_misses: rel.index_misses(),
            })
            .collect();
        stats.sort_by(|a, b| a.name.cmp(&b.name));
        stats
    }

    /// Test hook: hold the write lock of the shard owning `relation`,
    /// simulating a long-running commit there. Lets tests prove that
    /// the lock-free read path does not serialize behind writers — and,
    /// since PR 10, that a registration quiescing this shard blocks
    /// while commits on *other* shards proceed.
    #[doc(hidden)]
    pub fn debug_write_lock_shard(&self, relation: &str) -> Option<impl Drop> {
        /// Owns both the guard and the slot `Arc` it borrows from; the
        /// declaration order makes the guard drop first.
        struct ShardWriteGuard {
            _guard: RwLockWriteGuard<'static, Option<Engine>>,
            _slot: Arc<RwLock<Option<Engine>>>,
        }
        impl Drop for ShardWriteGuard {
            fn drop(&mut self) {}
        }
        let topo = self.topology();
        let shard = topo.route.shard_of(relation)?;
        let slot = topo.shards.slot(shard);
        let guard = slot.write().unwrap_or_else(|e| e.into_inner());
        // SAFETY: the transmute erases the guard's borrow of the local
        // `slot` binding so both can move into the struct together; the
        // struct keeps the `Arc` alive for as long as the guard exists,
        // and the field order drops the guard first.
        let guard: RwLockWriteGuard<'static, Option<Engine>> =
            unsafe { std::mem::transmute(guard) };
        Some(ShardWriteGuard {
            _guard: guard,
            _slot: slot,
        })
    }

    /// Bench hook: the pre-MVCC read path — acquire the owning shard's
    /// read lock and copy the live relation. Kept (hidden) so the
    /// reader/writer-interference benchmark can measure the locked
    /// baseline against the lock-free [`Service::query`].
    #[doc(hidden)]
    pub fn debug_query_locked(&self, relation: &str) -> ServiceResult<Vec<Tuple>> {
        loop {
            let topo = self.topology();
            let shard = topo
                .route
                .shard_of(relation)
                .ok_or_else(|| ServiceError::UnknownRelation(relation.to_owned()))?;
            let slot = topo.shards.read(shard);
            let Some(engine) = slot.as_ref() else {
                // Raced a live re-shard into a retired slot: reload.
                drop(slot);
                std::thread::yield_now();
                continue;
            };
            let rel = engine
                .relation(relation)
                .ok_or_else(|| ServiceError::UnknownRelation(relation.to_owned()))?;
            let mut tuples: Vec<Tuple> = rel.iter().cloned().collect();
            tuples.sort();
            return Ok(tuples);
        }
    }

    /// Test hook: drain the engines' shared read-trace sink (enable it
    /// with [`Engine::set_read_trace`] before constructing the
    /// service). All shards share one sink `Arc`, so draining any live
    /// shard drains them all — used by the footprint-conformance tests
    /// to assert a commit read only relations inside its locked shards.
    #[doc(hidden)]
    pub fn debug_take_read_trace(&self) -> BTreeSet<String> {
        let topo = self.topology();
        for id in topo.shards.ids() {
            let mut slot = topo.shards.write(id);
            if let Some(engine) = slot.as_mut() {
                return engine.take_read_trace();
            }
        }
        BTreeSet::new()
    }

    /// Publish `shard`'s current image at high-water seq `commit_seq`.
    /// Must be called while the shard's write lock is held (the `engine`
    /// reference is the proof), so publications are ordered like
    /// commits.
    fn publish_shard(&self, topo: &Topology, shard: LockId, engine: &mut Engine, commit_seq: u64) {
        topo.cells[shard.index()].publish(ShardSnapshot::capture(engine, commit_seq));
    }

    /// Publish every shard in a batch commit's footprint. With a new
    /// seq (`Some`) the shards' high-water advances to it; with `None`
    /// (the no-seq in-memory error path) each shard republishes its
    /// mutated contents at its unchanged high-water. Multi-shard
    /// publications serialize on `publication_lock` and bracket with
    /// the publication seqlock so a concurrent [`Service::snapshot`]
    /// never assembles half of one.
    fn publish_guarded(
        &self,
        topo: &Topology,
        guards: &mut [(LockId, RwLockWriteGuard<'_, Option<Engine>>)],
        seq: Option<u64>,
    ) {
        let multi = guards.len() > 1;
        // Disjoint multi-shard footprints don't contend on any shard
        // lock, so the seqlock bracket alone can't keep them apart:
        // serialize here, making "counter is odd" equivalent to
        // "exactly one publication is mid-swap". The critical section
        // is Arc pointer swaps only.
        let _serialized = multi.then(|| {
            self.inner
                .publication_lock
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner())
        });
        if multi {
            // Odd: publication in flight.
            self.inner.publication_seq.fetch_add(1, Ordering::AcqRel);
        }
        for (id, slot) in guards.iter_mut() {
            let publish_seq = seq.unwrap_or_else(|| topo.cells[id.index()].load().commit_seq());
            let engine = slot.as_mut().expect("commit holds live slots");
            self.publish_shard(topo, *id, engine, publish_seq);
        }
        if multi {
            // Even: done.
            self.inner.publication_seq.fetch_add(1, Ordering::AcqRel);
        }
    }

    /// Number of committed transactions (autocommit scripts, batch
    /// commits and topology registrations all count) since the service
    /// started — on a durable service, since the data directory was
    /// created.
    ///
    /// Seq-stability caveat: a transaction with **no durable effect**
    /// (an empty script, an empty batch, a net delta that cancels to
    /// nothing, an aborted registration) consumes a commit seq but
    /// writes no WAL record — some of those paths hold no shard lock,
    /// so logging them could not preserve per-shard append order. After
    /// a crash the sequence resumes from the highest *logged* seq, so
    /// no-op transactions' seqs may be reassigned; every effectful
    /// commit's seq is stable.
    pub fn commits(&self) -> u64 {
        self.inner.commit_seq.load(Ordering::SeqCst)
    }

    /// Tear the service down and recover the engine (shards merged back
    /// into one). Fails (returning `self`) while other handles —
    /// sessions included — are still alive.
    pub fn into_engine(self) -> Result<Engine, Service> {
        match Arc::try_unwrap(self.inner) {
            Ok(inner) => {
                let topology = match inner.topology.into_inner() {
                    Ok(topology) => topology,
                    Err(poisoned) => poisoned.into_inner(),
                };
                let topology = Arc::try_unwrap(topology)
                    .unwrap_or_else(|_| panic!("topology still shared during teardown"));
                let mut merged = Engine::new(Database::new());
                // Retired slots hold `None` and contribute nothing.
                for component in topology.shards.into_inner().into_iter().flatten() {
                    merged
                        .absorb(component)
                        .expect("footprint shards are disjoint by construction");
                }
                Ok(merged)
            }
            Err(inner) => Err(Service { inner }),
        }
    }

    fn next_commit_seq(&self) -> u64 {
        // Assigned while the commit's footprint is write-locked (or, for
        // empty commits, without any state change to order against), so
        // per-shard sequence order matches application order and the
        // global sequence stays dense.
        self.inner.commit_seq.fetch_add(1, Ordering::SeqCst) + 1
    }

    /// Autocommit one transaction through the target shard's group
    /// committer: enqueue, optionally park for the epoch window, then
    /// contend for epoch leadership until the result slot fills.
    fn submit_autocommit(
        &self,
        view: String,
        statements: Vec<DmlStatement>,
    ) -> ServiceResult<(u64, ExecutionStats)> {
        let tx = PendingTx::new(view, statements);
        let mut topo = self.topology();
        let mut shard = loop {
            let Some(shard) = topo.route.shard_of(tx.view()) else {
                return Err(ServiceError::Engine(EngineError::NotAView(
                    tx.view().to_owned(),
                )));
            };
            if topo.committers[shard.index()].enqueue(Arc::clone(&tx))? {
                break shard;
            }
            // The committer was closed by a live re-shard that raced our
            // topology load; reload and enqueue in the successor.
            std::thread::yield_now();
            topo = self.topology();
        };
        let window = self.inner.config.epoch_window;
        let mut result = None;
        if !window.is_zero() {
            // Epoch window: park so concurrent submitters can join this
            // epoch; the sleeps of parked submitters overlap, so offered
            // concurrency turns into epoch depth.
            std::thread::sleep(window);
            result = tx.take_result()?;
        }
        let result = match result {
            Some(result) => result,
            None => loop {
                let mut stale = false;
                {
                    let mut slot = topo.shards.write(shard);
                    match slot.as_mut() {
                        Some(engine) => {
                            let epoch = topo.committers[shard.index()].drain()?;
                            if !epoch.is_empty() {
                                let epoch_wal = self.inner.wal.as_ref().map(|wal| EpochWal {
                                    writer: &topo.writers[shard.index()],
                                    fsync: wal.fsync,
                                });
                                crate::group_commit::process_epoch(
                                    engine,
                                    &self.inner.commit_seq,
                                    epoch,
                                    epoch_wal.as_ref(),
                                    // Single-shard publication: no seqlock
                                    // bracket needed (see `publication_seq`).
                                    |engine, seq| self.publish_shard(&topo, shard, engine, seq),
                                );
                            }
                        }
                        // The shard was retired by a live re-shard while
                        // we blocked on its lock; the registrar migrated
                        // (or failed) our queued transaction.
                        None => stale = true,
                    }
                }
                if stale {
                    topo = self.topology();
                    if let Some(successor) = topo.route.shard_of(tx.view()) {
                        shard = successor;
                    }
                    // An unroutable view means an unregister raced us;
                    // the registrar failed our transaction, so the next
                    // `take_result` breaks out.
                }
                if let Some(result) = tx.take_result()? {
                    break result;
                }
                // Not filled and the queue was empty: another leader
                // drained our transaction and is mid-epoch; loop and
                // re-check (the next lock acquisition blocks until that
                // epoch finishes).
            },
        };
        // Every member counts toward the checkpoint threshold — leaders
        // and window-parked followers alike (a follower returning early
        // must not let the WAL outgrow `checkpoint_every`).
        match &result {
            Ok(_) => self.after_durable_commit(1),
            Err(ServiceError::Durability(_)) => self.heal_after_durability_failure(),
            Err(_) => {}
        }
        result
    }

    /// Best-effort self-heal after a commit failed durably. A WAL
    /// append/sync failure seals the shard's segment writer — every
    /// further commit on that shard fails fast — and the only way to
    /// unseal is a checkpoint (it rebuilds the segment series from a
    /// fresh snapshot). Automatic checkpoints count *successful*
    /// commits, so they would never fire on a shard that can no longer
    /// commit; this hook attempts an emergency checkpoint whenever a
    /// durability failure is observed and a writer is sealed. The
    /// moment the underlying fault clears (disk space freed, volume
    /// remounted), one failing commit triggers the heal and the service
    /// resumes — no restart needed. While the fault persists the
    /// attempts keep failing fast (throttled logging); a manual
    /// [`Service::checkpoint`] (or the protocol's `{"op":"checkpoint"}`)
    /// is the operator-driven alternative.
    fn heal_after_durability_failure(&self) {
        let Some(wal) = &self.inner.wal else {
            return;
        };
        let topo = self.topology();
        let any_sealed = topo.writers.iter().any(|writer| {
            writer
                .lock()
                .map(|writer| writer.is_sealed())
                .unwrap_or(false)
        });
        if !any_sealed {
            return;
        }
        let Ok(guard) = wal.checkpoint_lock.try_lock() else {
            return; // a checkpoint is already running; it will unseal
        };
        match self.checkpoint_locked(wal, &guard) {
            Ok(watermark) => {
                wal.heal_failures.store(0, Ordering::SeqCst);
                eprintln!(
                    "[birds-service] sealed WAL healed by emergency checkpoint \
                     (watermark {watermark})"
                );
            }
            Err(e) => {
                let failures = wal.heal_failures.fetch_add(1, Ordering::SeqCst) + 1;
                if failures.is_power_of_two() {
                    eprintln!(
                        "[birds-service] emergency checkpoint failed \
                         (attempt {failures}, WAL stays sealed): {e}"
                    );
                }
            }
        }
    }

    /// Bump the checkpoint counter after `n` durable commits and run an
    /// automatic checkpoint when the threshold is crossed. Called with
    /// no shard locks held (checkpointing takes them all).
    fn after_durable_commit(&self, n: u64) {
        let Some(wal) = &self.inner.wal else {
            return;
        };
        let Some(every) = wal.checkpoint_every else {
            return;
        };
        let count = wal.commits_since_checkpoint.fetch_add(n, Ordering::SeqCst) + n;
        if count < every {
            return;
        }
        // One volunteer checkpoints; contenders skip (their commits are
        // covered by the volunteer's snapshot anyway).
        let Ok(guard) = wal.checkpoint_lock.try_lock() else {
            return;
        };
        if wal.commits_since_checkpoint.load(Ordering::SeqCst) < every {
            return; // someone checkpointed while we raced for the lock
        }
        if let Err(e) = self.checkpoint_locked(wal, &guard) {
            // A failed automatic checkpoint only means the WAL keeps
            // growing; durability is unaffected. Surface it and retry at
            // the next threshold crossing.
            eprintln!("[birds-service] automatic checkpoint failed: {e}");
        }
    }

    /// Snapshot-then-truncate checkpoint, built from the shards'
    /// **published MVCC snapshots** — serialization runs with no shard
    /// lock held, so commits keep flowing while the snapshot file is
    /// written. Returns the watermark. Fails with
    /// [`ServiceError::Durability`] on an in-memory service.
    ///
    /// The snapshot file leads with a **registration manifest**: the
    /// full live view-definition set, so a restart reconstructs
    /// runtime-registered views before restoring relation contents.
    /// The registration lock is held for the whole checkpoint, freezing
    /// the view set the manifest describes.
    ///
    /// Each shard's write lock is taken *briefly*, one shard at a time
    /// (never all together), only to pair the shard's current snapshot
    /// pointer with a fresh WAL segment: records already in the log are
    /// then provably covered by the captured image, and records
    /// appended afterwards land in segments the checkpoint won't
    /// delete. The heavyweight work — serializing every tuple — happens
    /// afterwards, entirely lock-free, against the captured `Arc`s.
    pub fn checkpoint(&self) -> ServiceResult<u64> {
        let wal = self.inner.wal.as_ref().ok_or_else(|| {
            ServiceError::Durability("service has no data directory (in-memory)".into())
        })?;
        let guard = wal
            .checkpoint_lock
            .lock()
            .map_err(|_| ServiceError::Poisoned("checkpoint lock".into()))?;
        self.checkpoint_locked(wal, &guard)
    }

    fn checkpoint_locked(&self, wal: &WalState, _guard: &MutexGuard<'_, ()>) -> ServiceResult<u64> {
        // Freeze the topology for the whole checkpoint: the manifest,
        // the captured images and the rotated segments must all describe
        // one registration generation. (Lock order: checkpoint lock →
        // registration lock → shard locks → writer mutex.)
        let _registrar = self
            .inner
            .registration_lock
            .lock()
            .map_err(|_| ServiceError::Poisoned("registration lock".into()))?;
        let topo = self.topology();
        // The watermark is read *before* any shard is visited: every
        // commit that starts after this line gets a larger seq, and its
        // record lands either in a segment we keep (replayed) or — if
        // it beat us to a not-yet-rotated log — in a segment whose
        // shard's snapshot we load only after that commit published
        // (covered; replay of any overlap is idempotent, which the
        // durability tests pin).
        let watermark = self.inner.commit_seq.load(Ordering::SeqCst);
        // Phase 1 — per shard, ascending, briefly under the shard's
        // write lock: pair the published snapshot with a fresh WAL
        // segment, and collect the shard's live view definitions for
        // the manifest (per-shard dependency order is global dependency
        // order, because a footprint closure never crosses a shard). A
        // sealed writer (earlier IO failure — its tail may be torn)
        // cannot be rotated; its whole series is instead deleted after
        // the snapshot renames, which also unseals it.
        let mut images: Vec<Arc<ShardSnapshot>> = Vec::with_capacity(topo.cells.len());
        let mut defs: Vec<ViewDef> = Vec::new();
        let mut closed_segments: Vec<PathBuf> = Vec::new();
        let mut sealed_shards: Vec<usize> = Vec::new();
        for id in topo.shards.ids() {
            let slot = topo.shards.write(id);
            let image = topo.cells[id.index()].load();
            if let Some(engine) = slot.as_ref() {
                defs.extend(engine.view_definitions().iter().map(def_to_wal));
            }
            let mut writer = topo.writers[id.index()]
                .lock()
                .map_err(|_| ServiceError::Poisoned("wal segment writer".into()))?;
            if writer.is_sealed() {
                sealed_shards.push(id.index());
            } else {
                closed_segments.extend(
                    writer
                        .rotate_for_checkpoint()
                        .map_err(|e| ServiceError::Durability(format!("wal rotate: {e}")))?,
                );
            }
            images.push(image);
        }
        // Phase 2 — lock-free: serialize the manifest, then the captured
        // images. Commits on every shard proceed concurrently;
        // publications refresh the other version buffer, so the captured
        // images stay stable.
        let manifest = birds_wal::encode_view_defs(&defs);
        let relations: Vec<Relation> = images
            .iter()
            .flat_map(|image| image.relations().map(RelationVersion::to_relation))
            .collect();
        let relation_refs: Vec<&Relation> = relations.iter().collect();
        birds_wal::write_snapshot_file(&wal.data_dir, watermark, |mut w| {
            w.write_all(&manifest)?;
            birds_engine::write_snapshot(&mut w, &relation_refs)
                .map_err(|e| std::io::Error::other(e.to_string()))
        })
        .map_err(|e| ServiceError::Durability(format!("checkpoint snapshot: {e}")))?;
        // Phase 3 — the snapshot is durable and renamed in: the closed
        // segments are now redundant. A crash anywhere in this phase
        // merely leaves covered records around, which recovery filters
        // (seq ≤ watermark) or replays idempotently.
        for path in closed_segments {
            std::fs::remove_file(&path)
                .map_err(|e| ServiceError::Durability(format!("wal truncate: {e}")))?;
        }
        for index in sealed_shards {
            // Safe without the shard lock: a sealed writer admits no
            // appends, and `reset` both clears the damaged series and
            // unseals (subsequent commits start a clean log whose every
            // record is > watermark).
            topo.writers[index]
                .lock()
                .map_err(|_| ServiceError::Poisoned("wal segment writer".into()))?
                .reset()
                .map_err(|e| ServiceError::Durability(format!("wal reset: {e}")))?;
        }
        wal.commits_since_checkpoint.store(0, Ordering::SeqCst);
        Ok(watermark)
    }

    /// The data directory of a durable service (`None` when in-memory).
    pub fn data_dir(&self) -> Option<&std::path::Path> {
        self.inner.wal.as_ref().map(|wal| wal.data_dir.as_path())
    }
}

impl Service {
    /// Register a new updatable view on the **live** service.
    ///
    /// The strategy is validated first (same checks as the stateless
    /// `validate` protocol op); then the quiesce barrier takes the write
    /// locks of exactly the shards the view's footprint touches —
    /// commits on every other shard proceed throughout. The affected
    /// engines are merged, the view is registered and materialized, the
    /// component is re-split, a [`WalRecord::Register`] is appended
    /// (durable services), and the successor topology is swapped in.
    /// Returns the registration's commit seq.
    ///
    /// Failures leave the service exactly as it was; see the error
    /// taxonomy in [`crate::error`] for the typed rejections
    /// ([`ServiceError::ViewExists`], [`ServiceError::InvalidStrategy`],
    /// [`ServiceError::RelationConflict`]).
    ///
    /// ```
    /// use birds_core::UpdateStrategy;
    /// use birds_engine::{Engine, StrategyMode};
    /// use birds_service::Service;
    /// use birds_store::{tuple, Database, DatabaseSchema, Relation, Schema, SortKind};
    ///
    /// let mut db = Database::new();
    /// db.add_relation(Relation::with_tuples("r1", 1, vec![tuple![1]]).unwrap())
    ///     .unwrap();
    /// db.add_relation(Relation::with_tuples("r2", 1, vec![tuple![2]]).unwrap())
    ///     .unwrap();
    /// let service = Service::new(Engine::new(db));
    /// assert_eq!(service.shard_count(), 2); // two free relations, two shards
    ///
    /// let strategy = UpdateStrategy::parse(
    ///     DatabaseSchema::new()
    ///         .with(Schema::new("r1", vec![("a", SortKind::Int)]))
    ///         .with(Schema::new("r2", vec![("a", SortKind::Int)])),
    ///     Schema::new("v", vec![("a", SortKind::Int)]),
    ///     "-r1(X) :- r1(X), not v(X).
    ///      -r2(X) :- r2(X), not v(X).
    ///      +r1(X) :- v(X), not r1(X), not r2(X).",
    ///     None,
    /// )
    /// .unwrap();
    /// service.register_view(strategy, StrategyMode::Incremental)?;
    ///
    /// assert_eq!(service.shard_count(), 1); // r1, r2 and v now share a footprint
    /// let mut session = service.session();
    /// session.execute("INSERT INTO v VALUES (7);")?;
    /// assert_eq!(service.query("v")?, vec![tuple![1], tuple![2], tuple![7]]);
    /// # Ok::<(), birds_service::ServiceError>(())
    /// ```
    pub fn register_view(
        &self,
        strategy: UpdateStrategy,
        mode: StrategyMode,
    ) -> ServiceResult<u64> {
        self.register_view_with_quiesce_hook(strategy, mode, || {})
    }

    /// Test hook: [`Service::register_view`] with a callback invoked
    /// *while the quiesce barrier is held* (affected shards
    /// write-locked, successor not yet installed) — lets tests pin down
    /// that disjoint shards keep committing through the window.
    #[doc(hidden)]
    pub fn register_view_with_quiesce_hook(
        &self,
        strategy: UpdateStrategy,
        mode: StrategyMode,
        quiesce_hook: impl FnOnce(),
    ) -> ServiceResult<u64> {
        let result = {
            let _registrar = self
                .inner
                .registration_lock
                .lock()
                .map_err(|_| ServiceError::Poisoned("registration lock".into()))?;
            self.register_view_locked(strategy, mode, quiesce_hook)
        };
        // Registration consumed a durable commit seq; run the same
        // post-commit bookkeeping as the write paths (checkpoint
        // threshold, emergency heal) with no locks held.
        match &result {
            Ok(_) => self.after_durable_commit(1),
            Err(ServiceError::Durability(_)) => self.heal_after_durability_failure(),
            Err(_) => {}
        }
        result
    }

    /// Deregister a live view: its materialized contents are dropped,
    /// its former footprint re-splits (typically growing the shard
    /// count), and a [`WalRecord::Unregister`] is logged. Fails with
    /// `Engine(NotAView)` for names that aren't registered views and
    /// with [`ServiceError::RelationConflict`] if another view's
    /// footprint still depends on this one (the error carries the
    /// dependent view's name). Returns the deregistration's commit seq.
    pub fn unregister_view(&self, view: &str) -> ServiceResult<u64> {
        let result = {
            let _registrar = self
                .inner
                .registration_lock
                .lock()
                .map_err(|_| ServiceError::Poisoned("registration lock".into()))?;
            self.unregister_view_locked(view)
        };
        match &result {
            Ok(_) => self.after_durable_commit(1),
            Err(ServiceError::Durability(_)) => self.heal_after_durability_failure(),
            Err(_) => {}
        }
        result
    }

    fn register_view_locked(
        &self,
        strategy: UpdateStrategy,
        mode: StrategyMode,
        quiesce_hook: impl FnOnce(),
    ) -> ServiceResult<u64> {
        let topo = self.topology();
        let name = strategy.view.name.clone();
        // Pre-checks against the published catalogue — no lock taken,
        // and the registration lock guarantees no concurrent
        // registration invalidates them before we quiesce.
        if let Some(shard) = topo.route.shard_of(&name) {
            return Err(if topo.cells[shard.index()].load().is_view(&name) {
                ServiceError::ViewExists(name)
            } else {
                ServiceError::RelationConflict(name)
            });
        }
        for schema in &strategy.source_schema.relations {
            let Some(shard) = topo.route.shard_of(&schema.name) else {
                return Err(ServiceError::InvalidStrategy {
                    reason: format!("source relation '{}' does not exist", schema.name),
                });
            };
            let live_arity = topo.cells[shard.index()]
                .load()
                .relation(&schema.name)
                .map(RelationVersion::arity);
            if live_arity != Some(schema.arity()) {
                return Err(ServiceError::RelationConflict(schema.name.clone()));
            }
        }
        // Full validation — shape checks plus the solver's
        // well-behavedness analysis — before any shard is disturbed.
        // The derived get program doubles as the footprint input.
        let report =
            birds_core::validate(&strategy).map_err(|e| ServiceError::InvalidStrategy {
                reason: e.to_string(),
            })?;
        if !report.valid {
            return Err(ServiceError::InvalidStrategy {
                reason: report
                    .reason
                    .unwrap_or_else(|| "strategy failed validation".into()),
            });
        }
        let get = report
            .derived_get
            .expect("valid reports carry a view definition");
        // The quiesce set: every live shard owning a relation the new
        // view's closure touches. Relations the footprint names but no
        // shard owns are impossible here (sources were checked; the
        // view name is fresh and joins whatever shard the merge lands
        // in).
        let mut affected: Vec<LockId> = strategy_touches(&strategy, &get)
            .iter()
            .filter_map(|relation| topo.route.shard_of(relation))
            .collect();
        affected.sort();
        affected.dedup();
        // Quiesce: write-lock exactly the affected shards (ascending —
        // deadlock-free against every commit). Disjoint shards are
        // untouched and keep committing.
        let mut guards = topo.shards.write_set(affected.clone());
        quiesce_hook();
        let components: Vec<Engine> = guards
            .iter_mut()
            .map(|(_, slot)| slot.take().expect("routed shards are live"))
            .collect();
        let mut merged =
            Engine::merge(components).expect("affected shards are disjoint by construction");
        if let Err(e) = merged.register_view_unchecked(strategy, get, mode) {
            // Materialization can still fail (e.g. the putdelta program
            // errors on the live contents); the engine rolled the
            // registration back, so re-seating restores the exact
            // pre-call topology.
            self.reseat(&topo, &mut guards, merged);
            return Err(ServiceError::InvalidStrategy {
                reason: e.to_string(),
            });
        }
        let def = merged
            .view_definition(&name)
            .expect("freshly registered view has a definition");
        let seq = self.next_commit_seq();
        let record = WalRecord::Register(Box::new(Registration {
            seq,
            def: def_to_wal(&def),
        }));
        match self.install_successor(&topo, &affected, merged, seq, &record) {
            Ok(()) => Ok(seq),
            Err(InstallError::Aborted(mut merged, e)) => {
                merged
                    .unregister_view(&name)
                    .expect("aborted registration unwinds cleanly");
                self.reseat(&topo, &mut guards, *merged);
                Err(e)
            }
        }
    }

    fn unregister_view_locked(&self, view: &str) -> ServiceResult<u64> {
        let topo = self.topology();
        let Some(shard) = topo.route.shard_of(view) else {
            return Err(ServiceError::Engine(EngineError::NotAView(view.to_owned())));
        };
        let mut guards = topo.shards.write_set(vec![shard]);
        let mut merged = guards[0].1.take().expect("routed shards are live");
        if !merged.is_view(view) {
            let err = ServiceError::Engine(EngineError::NotAView(view.to_owned()));
            self.reseat(&topo, &mut guards, merged);
            return Err(err);
        }
        if let Some(dependent) = merged.dependent_view(view).map(String::from) {
            // Another view's footprint closure still reaches this one
            // (its get or putdelta reads it): dropping it would leave
            // that view's strategy dangling.
            self.reseat(&topo, &mut guards, merged);
            return Err(ServiceError::RelationConflict(dependent));
        }
        let def = merged
            .view_definition(view)
            .expect("live view has a definition");
        merged
            .unregister_view(view)
            .expect("pre-checked deregistration succeeds");
        let seq = self.next_commit_seq();
        let record = WalRecord::Unregister {
            seq,
            view: view.to_owned(),
        };
        match self.install_successor(&topo, &[shard], merged, seq, &record) {
            Ok(()) => Ok(seq),
            Err(InstallError::Aborted(mut merged, e)) => {
                merged
                    .register_definition(&def)
                    .expect("aborted deregistration unwinds cleanly");
                self.reseat(&topo, &mut guards, *merged);
                Err(e)
            }
        }
    }

    /// Put the components of `merged` back into the (still write-locked)
    /// slots they were taken from — the failure path of a registration.
    /// Because the mutation was unwound first, the components re-split
    /// exactly like the original partition and land in their original
    /// slots.
    fn reseat(
        &self,
        topo: &Topology,
        guards: &mut [(LockId, RwLockWriteGuard<'_, Option<Engine>>)],
        merged: Engine,
    ) {
        for component in merged.split_components() {
            let name = component
                .database()
                .names()
                .next()
                .expect("footprint components are non-empty")
                .to_owned();
            let id = topo
                .route
                .shard_of(&name)
                .expect("reseated components match the live route");
            let (_, slot) = guards
                .iter_mut()
                .find(|(guard_id, _)| *guard_id == id)
                .expect("reseated components stay within the quiesced set");
            debug_assert!(slot.is_none(), "reseat into a non-empty slot");
            **slot = Some(component);
        }
    }

    /// Build and swap in the successor topology: split `merged`, assign
    /// shard ids (retired ids are reused in ascending order, overflow
    /// gets fresh ids), log `record` to the WAL, publish the replacement
    /// shards' snapshots at `seq`, migrate the retired committers'
    /// queued transactions, and atomically store the new `Topology`.
    ///
    /// On failure (WAL segment open or record append) **nothing is
    /// installed**: the caller gets the re-merged engine back to unwind
    /// and reseat — installing a registration whose WAL record never
    /// landed would strand every later commit on these shards behind a
    /// record recovery cannot replay.
    fn install_successor(
        &self,
        topo: &Topology,
        retired: &[LockId],
        merged: Engine,
        seq: u64,
        record: &WalRecord,
    ) -> Result<(), InstallError> {
        let components = merged.split_components();
        let old_len = topo.shards.len();
        // Ids for the new components: reuse the retired slots' indices
        // first (ascending), then extend past the current topology.
        let mut new_ids: Vec<LockId> = Vec::with_capacity(components.len());
        let mut reuse = retired.iter().copied();
        let mut fresh = old_len..;
        for _ in 0..components.len() {
            new_ids.push(match reuse.next() {
                Some(id) => id,
                None => LockId::new(fresh.next().expect("usize range is unbounded")),
            });
        }
        let new_len = old_len.max(new_ids.last().map_or(0, |id| id.index() + 1));
        let mut writers = topo.writers.clone();
        if let Some(wal) = &self.inner.wal {
            for index in writers.len()..new_len {
                match SegmentWriter::open(&wal.data_dir, index, wal.segment_bytes) {
                    Ok(writer) => writers.push(Arc::new(Mutex::new(writer))),
                    Err(e) => {
                        return Err(InstallError::Aborted(
                            Box::new(
                                Engine::merge(components)
                                    .expect("components of one engine are disjoint"),
                            ),
                            ServiceError::Durability(format!(
                                "opening wal segment for new shard: {e}"
                            )),
                        ))
                    }
                }
            }
            // Log the registration to the first retired shard's existing
            // writer: its segment series already holds every earlier
            // record of that shard, the shard's locks are held (no
            // concurrent append), and seq exceeds every seq previously
            // logged there — per-shard monotonicity is preserved. The
            // record must be durable *before* the swap: after the swap,
            // commits through the new view would be unreplayable without
            // it.
            let log_slot = retired[0];
            let epoch_wal = EpochWal {
                writer: &writers[log_slot.index()],
                fsync: wal.fsync,
            };
            if let Err(e) = epoch_wal
                .append(record)
                .and_then(|()| epoch_wal.sync_epoch())
            {
                return Err(InstallError::Aborted(
                    Box::new(
                        Engine::merge(components).expect("components of one engine are disjoint"),
                    ),
                    e,
                ));
            }
        }
        // The successor route (built before the components move).
        let route = Arc::new(
            topo.route
                .successor(retired, components.iter().zip(new_ids.iter().copied())),
        );
        let mut replacements: BTreeMap<usize, Engine> = new_ids
            .iter()
            .map(|id| id.index())
            .zip(components)
            .collect();
        let mut slots = Vec::with_capacity(new_len);
        let mut cells = Vec::with_capacity(new_len);
        let mut committers = Vec::with_capacity(new_len);
        for index in 0..new_len {
            if let Some(mut component) = replacements.remove(&index) {
                // Replacement shard: FRESH slot/cell/committer Arcs, so
                // an old-generation thread still holding the previous
                // generation's lock set can never reach this engine.
                // Published before the swap, so the new generation is a
                // consistent cut the moment it becomes visible.
                cells.push(Arc::new(SnapshotCell::new(ShardSnapshot::capture(
                    &mut component,
                    seq,
                ))));
                slots.push(Arc::new(RwLock::new(Some(component))));
                committers.push(Arc::new(GroupCommitter::new()));
            } else if retired.iter().any(|id| id.index() == index) {
                // Retired without replacement: the slot stays `None`
                // forever (in this and all later generations unless a
                // future re-shard reuses the index with fresh Arcs).
                cells.push(Arc::new(SnapshotCell::new(ShardSnapshot::empty(seq))));
                slots.push(Arc::new(RwLock::new(None)));
                committers.push(Arc::new(GroupCommitter::new()));
            } else if index < old_len {
                // Survivor: same Arcs across generations — LockId
                // identity is what keeps ascending lock order global.
                slots.push(topo.shards.slot(LockId::new(index)));
                cells.push(Arc::clone(&topo.cells[index]));
                committers.push(Arc::clone(&topo.committers[index]));
            } else {
                unreachable!("extended indices always carry a replacement");
            }
        }
        // Close the retired committers and migrate their queued
        // transactions into the successor queues *before* the swap: a
        // submitter that already enqueued against the old topology gets
        // carried over (or failed), never stranded. New submitters that
        // load the old topology after this find the committer closed and
        // reload.
        for id in retired {
            for orphan in topo.committers[id.index()].close_and_drain() {
                match route.shard_of(orphan.view()) {
                    Some(successor) => {
                        if !matches!(
                            committers[successor.index()].enqueue(Arc::clone(&orphan)),
                            Ok(true)
                        ) {
                            orphan.fill(Err(ServiceError::Poisoned("group-commit queue".into())));
                        }
                    }
                    // The view vanished (this very unregister): fail the
                    // transaction the same way a fresh submit would.
                    None => orphan.fill(Err(ServiceError::Engine(EngineError::NotAView(
                        orphan.view().to_owned(),
                    )))),
                }
            }
        }
        let successor = Arc::new(Topology {
            shards: LockManager::from_slots(slots),
            route,
            committers,
            cells,
            writers,
        });
        match self.inner.topology.write() {
            Ok(mut current) => *current = successor,
            Err(poisoned) => *poisoned.into_inner() = successor,
        }
        Ok(())
    }
}

/// One client's connection-scoped state: its mode and pending batch.
pub struct Session {
    service: Service,
    /// `Some` while a batch is open (between `begin` and
    /// `commit`/`rollback`); statements buffer here, in arrival order.
    batch: Option<Vec<DmlStatement>>,
}

impl Session {
    /// The service this session runs against.
    pub fn service(&self) -> &Service {
        &self.service
    }

    /// Is a batch currently open?
    pub fn in_batch(&self) -> bool {
        self.batch.is_some()
    }

    /// Statements pending in the open batch (0 outside a batch).
    pub fn pending(&self) -> usize {
        self.batch.as_ref().map_or(0, Vec::len)
    }

    /// Execute a DML script. In autocommit mode the statements apply
    /// immediately as one transaction; in batch mode they buffer until
    /// [`Session::commit`].
    pub fn execute(&mut self, sql: &str) -> ServiceResult<ExecOutcome> {
        let statements = parse_script(sql).map_err(|e| ServiceError::Parse(e.to_string()))?;
        self.execute_statements(statements)
    }

    /// Pre-parsed variant of [`Session::execute`].
    pub fn execute_statements(
        &mut self,
        statements: Vec<DmlStatement>,
    ) -> ServiceResult<ExecOutcome> {
        match &mut self.batch {
            Some(buffer) => {
                buffer.extend(statements);
                Ok(ExecOutcome::Buffered(buffer.len()))
            }
            None => {
                let Some(first) = statements.first() else {
                    // An empty script is still a (trivial) transaction.
                    self.service.next_commit_seq();
                    return Ok(ExecOutcome::Applied(ExecutionStats::default()));
                };
                let table = first.table().to_owned();
                if statements.iter().any(|s| s.table() != table) {
                    return Err(ServiceError::Engine(EngineError::BadStatement(
                        "a transaction must target a single view".into(),
                    )));
                }
                let (_seq, stats) = self.service.submit_autocommit(table, statements)?;
                Ok(ExecOutcome::Applied(stats))
            }
        }
    }

    /// Open a batch. Fails if one is already open.
    pub fn begin(&mut self) -> ServiceResult<()> {
        if self.batch.is_some() {
            return Err(ServiceError::BatchAlreadyOpen);
        }
        self.batch = Some(Vec::new());
        Ok(())
    }

    /// Coalesce and apply the open batch: statements are grouped by
    /// target view (preserving per-view arrival order), each group is
    /// folded by Algorithm 2 into one net delta, and each net delta is
    /// applied in a single strategy evaluation — locking exactly the
    /// shards the batch's views live in, in global lock order.
    ///
    /// On error the batch is discarded; atomicity is per view (a
    /// multi-view batch that fails on its k-th view keeps the first k−1
    /// applied — single-view batches, the common case, are atomic).
    ///
    /// On a durable service the commit's net per-view deltas are
    /// appended to the WAL (one record, written to the lowest-id locked
    /// shard's log while every locked shard is still held) and synced
    /// per the fsync policy **before** this method returns `Ok` — a
    /// crash after `Ok` never loses the commit. A multi-view batch that
    /// fails on its k-th view logs the applied k−1 prefix (under a fresh
    /// commit seq) so recovery converges to exactly the in-memory state,
    /// then still returns the error.
    ///
    /// ```
    /// # use birds_core::UpdateStrategy;
    /// # use birds_engine::{Engine, StrategyMode};
    /// # use birds_service::Service;
    /// # use birds_store::{tuple, Database, DatabaseSchema, Relation, Schema, SortKind, Value};
    /// # let mut db = Database::new();
    /// # db.add_relation(Relation::with_tuples("r1", 1, vec![tuple![1]]).unwrap()).unwrap();
    /// # db.add_relation(Relation::with_tuples("r2", 1, vec![tuple![2]]).unwrap()).unwrap();
    /// # let strategy = UpdateStrategy::parse(
    /// #     DatabaseSchema::new()
    /// #         .with(Schema::new("r1", vec![("a", SortKind::Int)]))
    /// #         .with(Schema::new("r2", vec![("a", SortKind::Int)])),
    /// #     Schema::new("v", vec![("a", SortKind::Int)]),
    /// #     "-r1(X) :- r1(X), not v(X).
    /// #      -r2(X) :- r2(X), not v(X).
    /// #      +r1(X) :- v(X), not r1(X), not r2(X).",
    /// #     None,
    /// # ).unwrap();
    /// # let mut engine = Engine::new(db);
    /// # engine.register_view(strategy, StrategyMode::Incremental).unwrap();
    /// // The engine registers the union view `v = r1 ∪ r2`, with
    /// // r1 = {1} and r2 = {2}.
    /// let service = Service::new(engine);
    /// let mut session = service.session();
    ///
    /// session.begin()?;
    /// session.execute("INSERT INTO v VALUES (10);")?; // buffered
    /// session.execute("INSERT INTO v VALUES (11);")?; // buffered
    /// session.execute("DELETE FROM v WHERE a = 10;")?; // cancels the first
    /// let outcome = session.commit()?; // ONE incremental pass, net delta {+11}
    ///
    /// assert_eq!(outcome.commit_seq, 1);
    /// assert_eq!(outcome.statements, 3);
    /// assert_eq!(outcome.views, 1);
    /// // The commit's snapshot is published before `commit` returns:
    /// // lock-free reads see your own writes.
    /// assert_eq!(service.query("v")?, vec![tuple![1], tuple![2], tuple![11]]);
    /// # Ok::<(), birds_service::ServiceError>(())
    /// ```
    pub fn commit(&mut self) -> ServiceResult<CommitOutcome> {
        let statements = self.batch.take().ok_or(ServiceError::NoBatchOpen)?;
        let statement_count = statements.len();
        if statement_count == 0 {
            // An empty commit is still a (trivial) transaction.
            return Ok(CommitOutcome {
                commit_seq: self.service.next_commit_seq(),
                statements: 0,
                views: 0,
                stats: ExecutionStats::default(),
            });
        }
        // Group by view, keeping first-appearance order of views and
        // arrival order of statements within each view.
        let mut groups: Vec<(String, Vec<DmlStatement>)> = Vec::new();
        for stmt in statements {
            match groups.iter_mut().find(|(view, _)| view == stmt.table()) {
                Some((_, group)) => group.push(stmt),
                None => groups.push((stmt.table().to_owned(), vec![stmt])),
            }
        }
        loop {
            // The commit's footprint: the owning shard of every target
            // view, write-locked in global id order (deadlock-free;
            // commits on disjoint shards don't contend at all). A `None`
            // slot means a live re-shard retired the generation while we
            // blocked — reload the topology and re-resolve.
            let topo = self.service.topology();
            let lock_set = topo
                .route
                .lock_set(groups.iter().map(|(view, _)| view.as_str()))?;
            let guards = topo.shards.write_set(lock_set);
            if guards.iter().any(|(_, slot)| slot.is_none()) {
                drop(guards);
                std::thread::yield_now();
                continue;
            }
            return self.commit_locked(&topo, guards, &groups, statement_count);
        }
    }

    fn commit_locked(
        &mut self,
        topo: &Topology,
        mut guards: Vec<(LockId, RwLockWriteGuard<'_, Option<Engine>>)>,
        groups: &[(String, Vec<DmlStatement>)],
        statement_count: usize,
    ) -> ServiceResult<CommitOutcome> {
        let inner = &self.service.inner;
        let mut total = ExecutionStats::default();
        // The applied per-view net deltas, in application order — the
        // WAL record for this commit.
        let mut applied: Vec<(String, Delta)> = Vec::new();
        // Whether any delta reached an engine (`applied` only tracks
        // loggable copies, so it misses in-memory and empty-net cases).
        let mut any_applied = false;
        let mut failure: Option<ServiceError> = None;
        for (view, group) in groups {
            let shard = topo
                .route
                .shard_of(view)
                .expect("lock_set resolved every view");
            let engine = guards
                .iter_mut()
                .find(|(id, _)| *id == shard)
                .map(|(_, guard)| guard.as_mut().expect("commit holds live slots"))
                .expect("footprint guards cover every target view");
            // Derive against the in-lock state so earlier groups'
            // cascades are visible, then apply in one pass. The derived
            // delta is normalized against that same state, so it is
            // exactly what gets applied — the replay-log entry (cloned
            // only on durable services; the in-memory hot path applies
            // by value).
            let result = engine.derive_delta(view, group).and_then(|delta| {
                let log_copy = inner
                    .wal
                    .is_some()
                    .then(|| delta.clone())
                    .filter(|d| !d.is_empty());
                engine
                    .apply_delta(view, delta)
                    .map(|stats| (log_copy, stats))
            });
            match result {
                Ok((log_copy, stats)) => {
                    any_applied = true;
                    total.view_delta_size += stats.view_delta_size;
                    total.source_delta_size += stats.source_delta_size;
                    total.cascades += stats.cascades;
                    if let Some(delta) = log_copy {
                        applied.push((view.clone(), delta));
                    }
                }
                Err(e) => {
                    failure = Some(ServiceError::Engine(e));
                    break;
                }
            }
        }
        if let Some(e) = &failure {
            if applied.is_empty() || inner.wal.is_none() {
                // Nothing loggable: fail without a seq or a log record,
                // exactly like the in-memory path always has. Earlier
                // groups may still have applied (atomicity is per view),
                // so republish the mutated state at each shard's
                // *unchanged* high-water seq before the locks drop —
                // the lock-free read path must keep matching memory.
                if any_applied {
                    self.service.publish_guarded(topo, &mut guards, None);
                }
                return Err(e.clone());
            }
        }
        let commit_seq = self.service.next_commit_seq();
        if let Some(wal) = &inner.wal {
            if !applied.is_empty() {
                // Log to the lowest-id locked shard (guards are
                // ascending): every appender to that segment holds that
                // shard's write lock, so the log stays append-ordered.
                // Same append + epoch-sync discipline as the group
                // committer's `EpochWal` — this one-record commit is its
                // own epoch.
                let epoch_wal = EpochWal {
                    writer: &topo.writers[guards[0].0.index()],
                    fsync: wal.fsync,
                };
                let logged = epoch_wal
                    .append(&WalRecord::Commit {
                        seqs: vec![commit_seq],
                        deltas: applied,
                    })
                    .and_then(|()| epoch_wal.sync_epoch());
                if let Err(e) = logged {
                    // Applied in memory but not durably acknowledged:
                    // the engine-level failure (if any) still wins the
                    // error report; otherwise surface the WAL failure.
                    // Memory did change, so publish before unlocking.
                    self.service
                        .publish_guarded(topo, &mut guards, Some(commit_seq));
                    drop(guards);
                    self.service.heal_after_durability_failure();
                    return Err(failure.unwrap_or(e));
                }
            }
        }
        // Publish every locked shard at the new high-water seq — after
        // the WAL append, before the locks drop and before the caller
        // learns the outcome (read-your-writes on the lock-free path).
        if any_applied {
            self.service
                .publish_guarded(topo, &mut guards, Some(commit_seq));
        }
        drop(guards);
        match failure {
            Some(e) => Err(e),
            None => {
                self.service.after_durable_commit(1);
                Ok(CommitOutcome {
                    commit_seq,
                    statements: statement_count,
                    views: groups.len(),
                    stats: total,
                })
            }
        }
    }

    /// Discard the open batch, returning how many statements were
    /// dropped.
    pub fn rollback(&mut self) -> ServiceResult<usize> {
        let buffer = self.batch.take().ok_or(ServiceError::NoBatchOpen)?;
        Ok(buffer.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use birds_core::UpdateStrategy;
    use birds_engine::StrategyMode;
    use birds_store::{tuple, Database, DatabaseSchema, Relation, Schema, SortKind};

    /// The union-view strategy `v = r1 ∪ r2` over unary int sources.
    fn union_strategy() -> UpdateStrategy {
        UpdateStrategy::parse(
            DatabaseSchema::new()
                .with(Schema::new("r1", vec![("a", SortKind::Int)]))
                .with(Schema::new("r2", vec![("a", SortKind::Int)])),
            Schema::new("v", vec![("a", SortKind::Int)]),
            "
            -r1(X) :- r1(X), not v(X).
            -r2(X) :- r2(X), not v(X).
            +r1(X) :- v(X), not r1(X), not r2(X).
            ",
            None,
        )
        .unwrap()
    }

    fn union_database() -> Database {
        let mut db = Database::new();
        db.add_relation(Relation::with_tuples("r1", 1, vec![tuple![1]]).unwrap())
            .unwrap();
        db.add_relation(Relation::with_tuples("r2", 1, vec![tuple![2], tuple![4]]).unwrap())
            .unwrap();
        db
    }

    fn union_service() -> Service {
        let mut engine = Engine::new(union_database());
        engine
            .register_view(union_strategy(), StrategyMode::Incremental)
            .unwrap();
        Service::new(engine)
    }

    #[test]
    fn autocommit_applies_immediately() {
        let service = union_service();
        let mut session = service.session();
        let outcome = session.execute("INSERT INTO v VALUES (9);").unwrap();
        assert!(matches!(outcome, ExecOutcome::Applied(_)));
        assert!(service.query("r1").unwrap().contains(&tuple![9]));
        assert_eq!(service.commits(), 1);
    }

    #[test]
    fn batch_buffers_then_commits_net_delta() {
        let service = union_service();
        let mut session = service.session();
        session.begin().unwrap();
        session.execute("INSERT INTO v VALUES (10);").unwrap();
        session.execute("INSERT INTO v VALUES (11);").unwrap();
        let outcome = session.execute("DELETE FROM v WHERE a = 10;").unwrap();
        assert_eq!(outcome, ExecOutcome::Buffered(3));
        // Nothing applied yet.
        assert!(!service.query("r1").unwrap().contains(&tuple![11]));
        assert_eq!(service.commits(), 0);

        let commit = session.commit().unwrap();
        assert_eq!(commit.statements, 3);
        assert_eq!(commit.views, 1);
        assert_eq!(commit.commit_seq, 1);
        // Net effect: only 11 inserted (10 cancelled in the batch).
        assert_eq!(commit.stats.view_delta_size, 1);
        let r1 = service.query("r1").unwrap();
        assert!(r1.contains(&tuple![11]) && !r1.contains(&tuple![10]));
        assert!(!session.in_batch());
    }

    #[test]
    fn rollback_discards_buffer() {
        let service = union_service();
        let mut session = service.session();
        session.begin().unwrap();
        session.execute("INSERT INTO v VALUES (77);").unwrap();
        assert_eq!(session.rollback().unwrap(), 1);
        assert!(!service.query("v").unwrap().contains(&tuple![77]));
        assert!(matches!(session.rollback(), Err(ServiceError::NoBatchOpen)));
    }

    #[test]
    fn begin_twice_rejected_commit_without_begin_rejected() {
        let service = union_service();
        let mut session = service.session();
        session.begin().unwrap();
        assert!(matches!(
            session.begin(),
            Err(ServiceError::BatchAlreadyOpen)
        ));
        session.rollback().unwrap();
        assert!(matches!(session.commit(), Err(ServiceError::NoBatchOpen)));
    }

    #[test]
    fn empty_commit_is_a_trivial_transaction() {
        let service = union_service();
        let mut session = service.session();
        session.begin().unwrap();
        let commit = session.commit().unwrap();
        assert_eq!(commit.statements, 0);
        assert_eq!(commit.commit_seq, 1);
    }

    #[test]
    fn failed_commit_discards_batch_and_preserves_state() {
        let service = union_service();
        let mut session = service.session();
        session.begin().unwrap();
        // Target a non-view: the commit must fail cleanly.
        session.execute("INSERT INTO r1 VALUES (5);").unwrap();
        assert!(session.commit().is_err());
        assert!(!session.in_batch(), "failed commit closes the batch");
        assert_eq!(service.query("r1").unwrap().len(), 1);
        assert_eq!(service.commits(), 0);
    }

    #[test]
    fn sessions_share_one_database() {
        let service = union_service();
        let mut a = service.session();
        let mut b = service.session();
        a.execute("INSERT INTO v VALUES (100);").unwrap();
        b.execute("DELETE FROM v WHERE a = 100;").unwrap();
        assert!(!service.query("v").unwrap().contains(&tuple![100]));
        assert_eq!(service.commits(), 2);
    }

    #[test]
    fn into_engine_requires_sole_ownership() {
        let service = union_service();
        let session = service.session();
        let service = match service.into_engine() {
            Err(still_shared) => still_shared,
            Ok(_) => panic!("session still alive: must refuse"),
        };
        drop(session);
        let engine = match service.into_engine() {
            Ok(engine) => engine,
            Err(_) => panic!("sole owner now: must succeed"),
        };
        assert!(engine.is_view("v"));
    }

    #[test]
    fn unknown_table_is_rejected_without_locking() {
        let service = union_service();
        let mut session = service.session();
        let err = session.execute("INSERT INTO nope VALUES (1);").unwrap_err();
        assert!(matches!(
            err,
            ServiceError::Engine(EngineError::NotAView(_))
        ));
        assert_eq!(service.commits(), 0);
    }

    #[test]
    fn mixed_table_autocommit_script_is_rejected() {
        let service = union_service();
        let mut session = service.session();
        let err = session
            .execute("BEGIN; INSERT INTO v VALUES (1); INSERT INTO r1 VALUES (2); END;")
            .unwrap_err();
        assert!(matches!(
            err,
            ServiceError::Engine(EngineError::BadStatement(_))
        ));
    }

    #[test]
    fn empty_autocommit_script_is_a_trivial_transaction() {
        let service = union_service();
        let mut session = service.session();
        let outcome = session.execute("").unwrap();
        assert_eq!(outcome, ExecOutcome::Applied(ExecutionStats::default()));
        assert_eq!(service.commits(), 1);
    }

    #[test]
    fn union_view_shares_one_shard_with_its_sources() {
        let service = union_service();
        // {v, r1, r2} is one footprint component.
        assert_eq!(service.shard_count(), 1);
        service.read(|view| {
            assert!(view.is_view("v"));
            assert!(!view.is_view("r1"));
            assert_eq!(view.view_names(), vec!["v".to_owned()]);
            assert_eq!(view.relations().count(), 3);
            assert_eq!(view.relation("r2").unwrap().len(), 2);
            assert!(view.relation("nope").is_none());
        });
    }

    // ---- dynamic registration ------------------------------------

    #[test]
    fn register_view_live_merges_shards_and_serves_writes() {
        // Start with NO views: two free relations, two shards.
        let service = Service::new(Engine::new(union_database()));
        assert_eq!(service.shard_count(), 2);

        let seq = service
            .register_view(union_strategy(), StrategyMode::Incremental)
            .unwrap();
        assert_eq!(seq, 1);
        assert_eq!(service.shard_count(), 1);
        assert_eq!(service.view_names(), vec!["v".to_owned()]);

        // The new view is immediately writable through the normal path.
        let mut session = service.session();
        session.execute("INSERT INTO v VALUES (7);").unwrap();
        assert_eq!(
            service.query("v").unwrap(),
            vec![tuple![1], tuple![2], tuple![4], tuple![7]]
        );
    }

    #[test]
    fn duplicate_registration_is_rejected() {
        let service = union_service();
        let err = service
            .register_view(union_strategy(), StrategyMode::Incremental)
            .unwrap_err();
        assert_eq!(err, ServiceError::ViewExists("v".into()));
        assert_eq!(service.shard_count(), 1);
    }

    #[test]
    fn view_name_colliding_with_base_relation_is_rejected() {
        // A "view" named like the live base relation r1, sourced from r2.
        let service = Service::new(Engine::new(union_database()));
        let strategy = UpdateStrategy::parse(
            DatabaseSchema::new().with(Schema::new("r2", vec![("a", SortKind::Int)])),
            Schema::new("r1", vec![("a", SortKind::Int)]),
            "
            -r2(X) :- r2(X), not r1(X).
            +r2(X) :- r1(X), not r2(X).
            ",
            None,
        )
        .unwrap();
        let err = service
            .register_view(strategy, StrategyMode::Incremental)
            .unwrap_err();
        assert_eq!(err, ServiceError::RelationConflict("r1".into()));
    }

    #[test]
    fn missing_source_relation_is_invalid_strategy() {
        let mut db = Database::new();
        db.add_relation(Relation::with_tuples("r1", 1, vec![tuple![1]]).unwrap())
            .unwrap();
        let service = Service::new(Engine::new(db)); // no r2
        let err = service
            .register_view(union_strategy(), StrategyMode::Incremental)
            .unwrap_err();
        match err {
            ServiceError::InvalidStrategy { reason } => {
                assert!(reason.contains("does not exist"), "reason: {reason}")
            }
            other => panic!("expected InvalidStrategy, got {other:?}"),
        }
    }

    #[test]
    fn source_arity_mismatch_is_a_relation_conflict() {
        // Live r2 is unary; the strategy declares it binary.
        let service = Service::new(Engine::new(union_database()));
        let strategy = UpdateStrategy::parse(
            DatabaseSchema::new().with(Schema::new(
                "r2",
                vec![("a", SortKind::Int), ("b", SortKind::Int)],
            )),
            Schema::new("v2", vec![("a", SortKind::Int), ("b", SortKind::Int)]),
            "
            -r2(X, Y) :- r2(X, Y), not v2(X, Y).
            +r2(X, Y) :- v2(X, Y), not r2(X, Y).
            ",
            None,
        )
        .unwrap();
        let err = service
            .register_view(strategy, StrategyMode::Incremental)
            .unwrap_err();
        assert_eq!(err, ServiceError::RelationConflict("r2".into()));
    }

    #[test]
    fn unregister_view_splits_shards_and_forgets_the_view() {
        let service = union_service();
        assert_eq!(service.shard_count(), 1);
        service.unregister_view("v").unwrap();
        // r1 and r2 are free again: two shards, no views.
        assert_eq!(service.shard_count(), 2);
        assert!(service.view_names().is_empty());
        assert_eq!(
            service.query("v"),
            Err(ServiceError::UnknownRelation("v".into()))
        );
        // Base contents survive, and re-registration works.
        assert_eq!(service.query("r1").unwrap(), vec![tuple![1]]);
        service
            .register_view(union_strategy(), StrategyMode::Incremental)
            .unwrap();
        assert_eq!(service.shard_count(), 1);
        assert_eq!(
            service.query("v").unwrap(),
            vec![tuple![1], tuple![2], tuple![4]]
        );
    }

    #[test]
    fn unregister_unknown_view_is_rejected() {
        let service = union_service();
        assert_eq!(
            service.unregister_view("nope"),
            Err(ServiceError::Engine(EngineError::NotAView("nope".into())))
        );
        // A base relation is not an updatable view either.
        assert_eq!(
            service.unregister_view("r1"),
            Err(ServiceError::Engine(EngineError::NotAView("r1".into())))
        );
    }
}
