//! The thread-safe, multi-session service over [`birds_engine::Engine`] —
//! footprint-sharded since PR 4, with MVCC snapshot reads since PR 6.
//!
//! At construction the engine is split along **view dependency
//! footprints** into independently locked components
//! ([`crate::footprint`]): each shard owns every relation the views
//! inside it can touch (reads, writes, cascades), so a commit needs only
//! its own shard's write lock and commits on disjoint views proceed in
//! parallel. Lock sets are always acquired in global [`LockId`] order
//! ([`crate::locks`]), which makes overlapping commits deadlock-free by
//! construction. The engine-wide `RwLock` of PR 3 is gone; what remains
//! global is the **commit sequence** — every transaction still gets a
//! unique, dense serial number, assigned while its footprint is locked,
//! so the concurrent history stays equivalent to the serial replay in
//! commit order (the stress suite's linearizability check).
//!
//! ## Invariants
//!
//! * **Commit-seq assignment**: seqs come from one global counter,
//!   bumped only while the commit's footprint is write-locked, so
//!   per-shard seq order equals application order and the global order
//!   is a valid serial history.
//! * **Snapshot visibility**: every commit publishes each touched
//!   shard's [`ShardSnapshot`] *before releasing its locks and before
//!   acknowledging any client* — a client that saw `Ok` finds its write
//!   on the lock-free read path, and a reader never sees a commit's
//!   effects before that commit's WAL record was appended.
//! * **Durability coupling**: on a durable service, no result slot is
//!   filled until the epoch-end fsync ran (see [`crate::group_commit`]).
//!
//! ## Read path
//!
//! Reads never touch the shard engine locks: [`Service::query`],
//! [`Service::relation_stats`], [`Service::view_names`] and
//! [`Service::read`]/[`Service::snapshot`] all work against the shards'
//! published MVCC snapshots ([`crate::snapshot`]). A long analytical
//! read holds an `Arc` to an immutable image; writers keep committing
//! (each publication refreshes a shadow buffer, never the pinned one)
//! and readers keep reading — neither waits for the other.
//!
//! Each client holds a [`Session`] in one of two modes:
//!
//! * **autocommit** (the default): every `execute` call is its own
//!   transaction, routed through the target shard's group committer —
//!   concurrent autocommit transactions on the same shard coalesce into
//!   one net delta per view ([`crate::group_commit`]);
//! * **batch** (after `begin`): statements buffer locally — no lock
//!   taken — until `commit` coalesces them into one *net* view delta per
//!   view and applies each in a single incremental pass, locking exactly
//!   the shards its views live in.

use crate::error::{ServiceError, ServiceResult};
use crate::footprint::{partition, ShardMap};
use crate::group_commit::{EpochWal, GroupCommitter, PendingTx};
use crate::locks::{LockId, LockManager};
use crate::snapshot::{ServiceSnapshot, ShardSnapshot, SnapshotCell};
use birds_engine::{Engine, EngineError, ExecutionStats};
use birds_sql::{parse_script, DmlStatement};
use birds_store::{Database, Delta, Relation, RelationVersion, Tuple};
use birds_wal::{FsyncPolicy, SegmentWriter, WalRecord, DEFAULT_SEGMENT_BYTES};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Service tuning knobs.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Group-commit epoch window: how long an autocommit submitter parks
    /// before its first leadership attempt, letting concurrent
    /// transactions pile into the same epoch. `0` (the default) keeps
    /// single-statement latency and still coalesces whatever queued
    /// while the previous epoch held the shard lock.
    pub epoch_window: Duration,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            epoch_window: Duration::ZERO,
        }
    }
}

/// Durability knobs for [`Service::open`]: where the data directory
/// lives and how eagerly the WAL reaches stable storage.
#[derive(Debug, Clone)]
pub struct DurabilityConfig {
    /// Directory holding the snapshot file and `wal/` segments. Created
    /// if absent; recovered from if not.
    pub data_dir: PathBuf,
    /// When appends are flushed — see [`FsyncPolicy`].
    pub fsync: FsyncPolicy,
    /// Checkpoint (snapshot-then-truncate) after this many durable
    /// commits; `None` disables automatic checkpoints (manual
    /// [`Service::checkpoint`] still works).
    pub checkpoint_every: Option<u64>,
    /// WAL segment rotation threshold, in bytes.
    pub segment_bytes: u64,
}

impl DurabilityConfig {
    /// Sensible defaults: `epoch` fsync, checkpoint every 1024 commits,
    /// 8 MiB segments.
    pub fn new(data_dir: impl Into<PathBuf>) -> DurabilityConfig {
        DurabilityConfig {
            data_dir: data_dir.into(),
            fsync: FsyncPolicy::default(),
            checkpoint_every: Some(1024),
            segment_bytes: DEFAULT_SEGMENT_BYTES,
        }
    }
}

/// One relation's statistics as of its last published snapshot: tuple
/// count plus cumulative index probe counters (see
/// [`Service::relation_stats`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RelationStats {
    /// Relation name.
    pub name: String,
    /// Tuple count at the snapshot's commit boundary.
    pub tuples: usize,
    /// Probes served by a secondary index (hash or ordered).
    pub index_hits: u64,
    /// Probes that fell back to a full scan — a climbing value means
    /// the planner requested an index the relation never built.
    pub index_misses: u64,
}

/// The durable half of a running service: one segment writer per shard
/// (same indexing as the lock manager) plus checkpoint bookkeeping.
struct WalState {
    writers: Vec<Mutex<SegmentWriter>>,
    fsync: FsyncPolicy,
    data_dir: PathBuf,
    checkpoint_every: Option<u64>,
    commits_since_checkpoint: AtomicU64,
    /// Serializes checkpointers (the shard locks alone would let two
    /// checkpoints interleave their snapshot/truncate halves).
    checkpoint_lock: Mutex<()>,
    /// Consecutive failed emergency-heal checkpoints (log throttling).
    heal_failures: AtomicU64,
}

/// Outcome of a [`Session::execute`] call.
#[derive(Debug, Clone, PartialEq)]
pub enum ExecOutcome {
    /// Autocommit mode: the statements were applied immediately. For a
    /// transaction that committed as part of a group-commit epoch, the
    /// stats are the epoch's per-view totals.
    Applied(ExecutionStats),
    /// Batch mode: the statements were buffered; the payload is the total
    /// number of statements now pending in the session.
    Buffered(usize),
}

/// Outcome of a successful [`Session::commit`].
#[derive(Debug, Clone)]
pub struct CommitOutcome {
    /// Position of this commit in the service-wide serial order
    /// (1-based; assigned while the commit's footprint is locked).
    pub commit_seq: u64,
    /// Number of statements that were coalesced.
    pub statements: usize,
    /// Number of distinct views the batch touched.
    pub views: usize,
    /// Summed execution stats over all per-view applications.
    pub stats: ExecutionStats,
}

/// Shared handle to one sharded engine; cheap to clone, safe to send
/// across threads. All handles see the same database.
#[derive(Clone)]
pub struct Service {
    inner: Arc<ServiceInner>,
}

struct ServiceInner {
    /// One engine component (and one reader-writer lock) per footprint
    /// shard; slot order is [`LockId`] order.
    shards: LockManager<Engine>,
    /// Relation name → owning shard (shared with every
    /// [`ServiceSnapshot`] handed out).
    route: Arc<ShardMap>,
    /// One group-commit queue per shard (same indexing as `shards`).
    committers: Vec<GroupCommitter>,
    /// One published-snapshot cell per shard (same indexing as
    /// `shards`); the entire lock-free read path hangs off these.
    cells: Vec<SnapshotCell>,
    commit_seq: AtomicU64,
    /// Seqlock over *multi-shard* snapshot publication: odd while a
    /// multi-shard commit is swapping several cells, bumped to even
    /// when done. Single-shard commits never touch it — they commute
    /// with each other, so any mix of their publications is a
    /// consistent cut; only a multi-shard commit can establish a
    /// cross-shard invariant that a reader must not see half of.
    publication_seq: AtomicU64,
    /// Serializes multi-shard publications. Two batch commits with
    /// *disjoint* multi-shard footprints hold disjoint shard locks, so
    /// without this their seqlock brackets would interleave — two
    /// opening increments make the counter even again (0→1→2) while
    /// both are still mid-swap, and a reader could assemble a torn
    /// cut. Held only around the pointer swaps (no engine work), so
    /// the cost is negligible.
    publication_lock: Mutex<()>,
    config: ServiceConfig,
    /// `Some` when the service is durable ([`Service::open`]).
    wal: Option<WalState>,
}

impl Service {
    /// Wrap an engine (typically with views already registered),
    /// splitting it into footprint shards with the default config.
    pub fn new(engine: Engine) -> Self {
        Service::with_config(engine, ServiceConfig::default())
    }

    /// Wrap an engine with explicit tuning knobs.
    pub fn with_config(engine: Engine, config: ServiceConfig) -> Self {
        Service::build(engine, config, None).expect("in-memory service construction cannot fail")
    }

    /// Open a **durable** service: recover the data directory (latest
    /// snapshot, then the WAL in global commit-seq order), then serve
    /// with write-ahead logging on every commit path.
    ///
    /// `engine` must be built by the same registration code that built
    /// it originally — the same base tables and views in the same order.
    /// Recovery restores relation *contents* from the snapshot (a
    /// registration mismatch is a typed error, not silent corruption)
    /// and replays each logged epoch's net per-view deltas through the
    /// deterministic [`Engine::apply_delta`] path, merging the per-shard
    /// logs by first member commit seq — which, because seqs are
    /// assigned under the commit's shard locks, is exactly the global
    /// commit order. Torn record tails (a crash mid-append) are
    /// CRC-detected and truncated.
    ///
    /// ```
    /// # use birds_core::UpdateStrategy;
    /// # use birds_engine::{Engine, StrategyMode};
    /// # use birds_service::{DurabilityConfig, Service, ServiceConfig};
    /// # use birds_store::{tuple, Database, DatabaseSchema, Relation, Schema, SortKind, Value};
    /// # fn build_engine() -> Engine {
    /// #     let mut db = Database::new();
    /// #     db.add_relation(Relation::with_tuples("r1", 1, vec![tuple![1]]).unwrap()).unwrap();
    /// #     db.add_relation(Relation::with_tuples("r2", 1, vec![tuple![2]]).unwrap()).unwrap();
    /// #     let strategy = UpdateStrategy::parse(
    /// #         DatabaseSchema::new()
    /// #             .with(Schema::new("r1", vec![("a", SortKind::Int)]))
    /// #             .with(Schema::new("r2", vec![("a", SortKind::Int)])),
    /// #         Schema::new("v", vec![("a", SortKind::Int)]),
    /// #         "-r1(X) :- r1(X), not v(X).
    /// #          -r2(X) :- r2(X), not v(X).
    /// #          +r1(X) :- v(X), not r1(X), not r2(X).",
    /// #         None,
    /// #     ).unwrap();
    /// #     let mut engine = Engine::new(db);
    /// #     engine.register_view(strategy, StrategyMode::Incremental).unwrap();
    /// #     engine
    /// # }
    /// let dir = std::env::temp_dir().join(format!("birds-doc-open-{}", std::process::id()));
    /// # std::fs::remove_dir_all(&dir).ok();
    /// // `build_engine()` registers the union view `v = r1 ∪ r2` over
    /// // base tables r1 = {1} and r2 = {2}.
    /// let service = Service::open(
    ///     build_engine(),
    ///     ServiceConfig::default(),
    ///     DurabilityConfig::new(&dir),
    /// )?;
    /// let mut session = service.session();
    /// session.execute("INSERT INTO v VALUES (7);")?; // logged before Ok
    /// drop((session, service));
    ///
    /// // Reopen from the same directory: recovery replays the WAL and
    /// // the commit is visible again.
    /// let service = Service::open(
    ///     build_engine(),
    ///     ServiceConfig::default(),
    ///     DurabilityConfig::new(&dir),
    /// )?;
    /// assert_eq!(service.query("v")?, vec![tuple![1], tuple![2], tuple![7]]);
    /// # std::fs::remove_dir_all(&dir).ok();
    /// # Ok::<(), birds_service::ServiceError>(())
    /// ```
    pub fn open(
        engine: Engine,
        config: ServiceConfig,
        durability: DurabilityConfig,
    ) -> ServiceResult<Service> {
        Service::build(engine, config, Some(durability))
    }

    fn build(
        mut engine: Engine,
        config: ServiceConfig,
        durability: Option<DurabilityConfig>,
    ) -> ServiceResult<Service> {
        let mut start_seq = 0u64;
        let durability = match durability {
            None => None,
            Some(d) => {
                let recovery = birds_wal::recover(&d.data_dir)
                    .map_err(|e| ServiceError::Durability(e.to_string()))?;
                if let Some(body) = &recovery.snapshot {
                    engine.restore(&body[..])?;
                }
                for record in recovery.records {
                    let seq = record.first_seq();
                    for (view, delta) in record.deltas {
                        engine.apply_delta(&view, delta).map_err(|e| {
                            ServiceError::Durability(format!("replaying commit seq {seq}: {e}"))
                        })?;
                    }
                }
                start_seq = recovery.max_seq;
                // Replay can grow relations far past the sizes the
                // snapshot restore planned against; drop those plans so
                // the first post-recovery evaluation sees real sizes.
                engine.clear_plan_cache();
                Some(d)
            }
        };
        let (shards, route) = partition(engine);
        let wal = match durability {
            None => None,
            Some(d) => {
                let writers = (0..shards.len())
                    .map(|shard| {
                        SegmentWriter::open(&d.data_dir, shard, d.segment_bytes).map(Mutex::new)
                    })
                    .collect::<Result<Vec<_>, _>>()
                    .map_err(|e| ServiceError::Durability(e.to_string()))?;
                Some(WalState {
                    writers,
                    fsync: d.fsync,
                    data_dir: d.data_dir,
                    checkpoint_every: d.checkpoint_every,
                    commits_since_checkpoint: AtomicU64::new(0),
                    checkpoint_lock: Mutex::new(()),
                    heal_failures: AtomicU64::new(0),
                })
            }
        };
        let committers = (0..shards.len()).map(|_| GroupCommitter::new()).collect();
        // Initial snapshot publication: every shard's image as of the
        // recovered (or zero) commit seq. Nothing is shared yet, so no
        // locks are needed.
        let cells = shards
            .ids()
            .map(|id| SnapshotCell::new(ShardSnapshot::capture(&mut shards.write(id), start_seq)))
            .collect();
        Ok(Service {
            inner: Arc::new(ServiceInner {
                shards,
                route: Arc::new(route),
                committers,
                cells,
                commit_seq: AtomicU64::new(start_seq),
                publication_seq: AtomicU64::new(0),
                publication_lock: Mutex::new(()),
                config,
                wal,
            }),
        })
    }

    /// Open a new session in autocommit mode.
    pub fn session(&self) -> Session {
        Session {
            service: self.clone(),
            batch: None,
        }
    }

    /// Number of footprint shards (disjoint views land in different
    /// shards and commit in parallel).
    pub fn shard_count(&self) -> usize {
        self.inner.shards.len()
    }

    /// Assemble a consistent, **lock-free** snapshot over every shard —
    /// the MVCC read entry point. The returned [`ServiceSnapshot`] is an
    /// owned value: pin it as long as you like; it observes none of the
    /// commits that land after assembly, and holding it never blocks a
    /// writer (nor vice versa — no shard engine lock is taken).
    ///
    /// Cross-shard consistency: single-shard commits publish their cell
    /// independently (they commute, so any mix of cells is a consistent
    /// cut); only multi-shard commits bracket their publication with the
    /// publication seqlock, and assembly retries the cheap pointer
    /// collection while one is in flight.
    ///
    /// ```
    /// # use birds_service::Service;
    /// # use birds_engine::Engine;
    /// # use birds_store::{tuple, Database, Relation};
    /// let mut db = Database::new();
    /// db.add_relation(Relation::with_tuples("r", 1, vec![tuple![1]]).unwrap())
    ///     .unwrap();
    /// let service = Service::new(Engine::new(db));
    ///
    /// let pinned = service.snapshot();
    /// assert_eq!(pinned.relation("r").unwrap().len(), 1);
    /// assert_eq!(pinned.commit_seq(), 0); // nothing committed yet
    /// assert!(pinned.relation("nope").is_none());
    /// ```
    pub fn snapshot(&self) -> ServiceSnapshot {
        let cells = &self.inner.cells;
        if cells.len() <= 1 {
            // A single cell load is trivially consistent.
            let shards = cells.iter().map(SnapshotCell::load).collect();
            return ServiceSnapshot::new(shards, Arc::clone(&self.inner.route));
        }
        let mut spins = 0u32;
        loop {
            let before = self.inner.publication_seq.load(Ordering::Acquire);
            if before % 2 == 1 {
                // A multi-shard publication is mid-swap; its cell stores
                // are pointer writes, so it normally clears within a few
                // spins. If the publisher was preempted inside the
                // bracket, yield instead of burning CPU (on a single
                // core a pure spin could starve the very thread we are
                // waiting on).
                spins += 1;
                if spins < 64 {
                    std::hint::spin_loop();
                } else {
                    std::thread::yield_now();
                }
                continue;
            }
            let shards: Vec<_> = cells.iter().map(SnapshotCell::load).collect();
            if self.inner.publication_seq.load(Ordering::Acquire) == before {
                return ServiceSnapshot::new(shards, Arc::clone(&self.inner.route));
            }
        }
    }

    /// Run a closure against a consistent whole-service snapshot — a
    /// convenience over [`Service::snapshot`] for callers that don't
    /// need to pin the image past the closure. Entirely lock-free:
    /// in-flight commits proceed, and the closure sees none of them.
    ///
    /// ```
    /// # use birds_engine::Engine;
    /// # use birds_service::Service;
    /// # use birds_store::{tuple, Database, Relation, Value};
    /// # let mut db = Database::new();
    /// # db.add_relation(Relation::with_tuples("r", 2, vec![tuple![1, 2]]).unwrap()).unwrap();
    /// # let service = Service::new(Engine::new(db));
    /// let arity = service.read(|snapshot| {
    ///     assert_eq!(snapshot.relations().count(), 1);
    ///     snapshot.relation("r").unwrap().arity()
    /// });
    /// assert_eq!(arity, 2);
    /// ```
    pub fn read<R>(&self, f: impl FnOnce(&ServiceSnapshot) -> R) -> R {
        f(&self.snapshot())
    }

    /// Sorted snapshot of a relation's tuples, read lock-free from the
    /// owning shard's published snapshot.
    /// [`ServiceError::UnknownRelation`] for names no shard owns.
    ///
    /// ```
    /// # use birds_engine::Engine;
    /// # use birds_service::{Service, ServiceError};
    /// # use birds_store::{tuple, Database, Relation, Value};
    /// # let mut db = Database::new();
    /// # db.add_relation(Relation::with_tuples("r", 1, vec![tuple![3], tuple![1]]).unwrap())
    /// #     .unwrap();
    /// # let service = Service::new(Engine::new(db));
    /// assert_eq!(service.query("r")?, vec![tuple![1], tuple![3]]); // sorted
    /// assert_eq!(
    ///     service.query("typo"),
    ///     Err(ServiceError::UnknownRelation("typo".into())),
    /// );
    /// # Ok::<(), birds_service::ServiceError>(())
    /// ```
    pub fn query(&self, relation: &str) -> ServiceResult<Vec<Tuple>> {
        let shard = self
            .inner
            .route
            .shard_of(relation)
            .ok_or_else(|| ServiceError::UnknownRelation(relation.to_owned()))?;
        let snapshot = self.inner.cells[shard.index()].load();
        let rel = snapshot
            .relation(relation)
            .ok_or_else(|| ServiceError::UnknownRelation(relation.to_owned()))?;
        let mut tuples: Vec<Tuple> = rel.iter().cloned().collect();
        tuples.sort();
        Ok(tuples)
    }

    /// Names of all registered views, in name order — from the
    /// published snapshots, no shard lock taken.
    pub fn view_names(&self) -> Vec<String> {
        self.snapshot().view_names()
    }

    /// Statistics for every relation, in name order — from the
    /// published snapshots, no shard lock taken. The counts are a
    /// consistent cut (see [`Service::snapshot`]); the index hit/miss
    /// counters are cumulative as of each relation's last publication,
    /// so a climbing miss count flags a probe path that fell back to a
    /// full scan (planner/registration drift) instead of failing silently.
    pub fn relation_stats(&self) -> Vec<RelationStats> {
        let snapshot = self.snapshot();
        let mut stats: Vec<RelationStats> = snapshot
            .relations()
            .map(|rel| RelationStats {
                name: rel.name().to_owned(),
                tuples: rel.len(),
                index_hits: rel.index_hits(),
                index_misses: rel.index_misses(),
            })
            .collect();
        stats.sort_by(|a, b| a.name.cmp(&b.name));
        stats
    }

    /// Test hook: hold the write lock of the shard owning `relation`,
    /// simulating a long-running commit there. Lets tests prove that
    /// the lock-free read path does not serialize behind writers (and
    /// that single-shard reads on *other* shards never did).
    #[doc(hidden)]
    pub fn debug_write_lock_shard(&self, relation: &str) -> Option<impl Drop + '_> {
        let shard = self.inner.route.shard_of(relation)?;
        Some(self.inner.shards.write(shard))
    }

    /// Bench hook: the pre-MVCC read path — acquire the owning shard's
    /// read lock and copy the live relation. Kept (hidden) so the
    /// reader/writer-interference benchmark can measure the locked
    /// baseline against the lock-free [`Service::query`].
    #[doc(hidden)]
    pub fn debug_query_locked(&self, relation: &str) -> ServiceResult<Vec<Tuple>> {
        let shard = self
            .inner
            .route
            .shard_of(relation)
            .ok_or_else(|| ServiceError::UnknownRelation(relation.to_owned()))?;
        let engine = self.inner.shards.read(shard);
        let rel = engine
            .relation(relation)
            .ok_or_else(|| ServiceError::UnknownRelation(relation.to_owned()))?;
        let mut tuples: Vec<Tuple> = rel.iter().cloned().collect();
        tuples.sort();
        Ok(tuples)
    }

    /// Publish `shard`'s current image at high-water seq `commit_seq`.
    /// Must be called while the shard's write lock is held (the `engine`
    /// reference is the proof), so publications are ordered like
    /// commits.
    fn publish_shard(&self, shard: LockId, engine: &mut Engine, commit_seq: u64) {
        self.inner.cells[shard.index()].publish(ShardSnapshot::capture(engine, commit_seq));
    }

    /// Publish every shard in a batch commit's footprint. With a new
    /// seq (`Some`) the shards' high-water advances to it; with `None`
    /// (the no-seq in-memory error path) each shard republishes its
    /// mutated contents at its unchanged high-water. Multi-shard
    /// publications serialize on `publication_lock` and bracket with
    /// the publication seqlock so a concurrent [`Service::snapshot`]
    /// never assembles half of one.
    fn publish_guarded(
        &self,
        guards: &mut [(LockId, std::sync::RwLockWriteGuard<'_, Engine>)],
        seq: Option<u64>,
    ) {
        let multi = guards.len() > 1;
        // Disjoint multi-shard footprints don't contend on any shard
        // lock, so the seqlock bracket alone can't keep them apart:
        // serialize here, making "counter is odd" equivalent to
        // "exactly one publication is mid-swap". The critical section
        // is Arc pointer swaps only.
        let _serialized = multi.then(|| {
            self.inner
                .publication_lock
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner())
        });
        if multi {
            // Odd: publication in flight.
            self.inner.publication_seq.fetch_add(1, Ordering::AcqRel);
        }
        for (id, engine) in guards.iter_mut() {
            let seq = seq.unwrap_or_else(|| self.inner.cells[id.index()].load().commit_seq());
            self.publish_shard(*id, engine, seq);
        }
        if multi {
            // Even: done.
            self.inner.publication_seq.fetch_add(1, Ordering::AcqRel);
        }
    }

    /// Number of committed transactions (autocommit scripts and batch
    /// commits both count) since the service started — on a durable
    /// service, since the data directory was created.
    ///
    /// Seq-stability caveat: a transaction with **no durable effect**
    /// (an empty script, an empty batch, a net delta that cancels to
    /// nothing) consumes a commit seq but writes no WAL record — some
    /// of those paths hold no shard lock, so logging them could not
    /// preserve per-shard append order. After a crash the sequence
    /// resumes from the highest *logged* seq, so no-op transactions'
    /// seqs may be reassigned; every effectful commit's seq is stable.
    pub fn commits(&self) -> u64 {
        self.inner.commit_seq.load(Ordering::SeqCst)
    }

    /// Tear the service down and recover the engine (shards merged back
    /// into one). Fails (returning `self`) while other handles —
    /// sessions included — are still alive.
    pub fn into_engine(self) -> Result<Engine, Service> {
        match Arc::try_unwrap(self.inner) {
            Ok(inner) => {
                let mut merged = Engine::new(Database::new());
                for component in inner.shards.into_inner() {
                    merged
                        .absorb(component)
                        .expect("footprint shards are disjoint by construction");
                }
                Ok(merged)
            }
            Err(inner) => Err(Service { inner }),
        }
    }

    fn next_commit_seq(&self) -> u64 {
        // Assigned while the commit's footprint is write-locked (or, for
        // empty commits, without any state change to order against), so
        // per-shard sequence order matches application order and the
        // global sequence stays dense.
        self.inner.commit_seq.fetch_add(1, Ordering::SeqCst) + 1
    }

    /// Autocommit one transaction through the target shard's group
    /// committer: enqueue, optionally park for the epoch window, then
    /// contend for epoch leadership until the result slot fills.
    fn submit_autocommit(
        &self,
        shard: LockId,
        view: String,
        statements: Vec<DmlStatement>,
    ) -> ServiceResult<(u64, ExecutionStats)> {
        let committer = &self.inner.committers[shard.index()];
        let tx = PendingTx::new(view, statements);
        committer.enqueue(tx.clone())?;
        let window = self.inner.config.epoch_window;
        let mut result = None;
        if !window.is_zero() {
            // Epoch window: park so concurrent submitters can join this
            // epoch; the sleeps of parked submitters overlap, so offered
            // concurrency turns into epoch depth.
            std::thread::sleep(window);
            result = tx.take_result()?;
        }
        let result = match result {
            Some(result) => result,
            None => loop {
                {
                    let mut engine = self.inner.shards.write(shard);
                    let epoch = committer.drain()?;
                    if !epoch.is_empty() {
                        let epoch_wal = self.inner.wal.as_ref().map(|wal| EpochWal {
                            writer: &wal.writers[shard.index()],
                            fsync: wal.fsync,
                        });
                        crate::group_commit::process_epoch(
                            &mut engine,
                            &self.inner.commit_seq,
                            epoch,
                            epoch_wal.as_ref(),
                            // Single-shard publication: no seqlock
                            // bracket needed (see `publication_seq`).
                            |engine, seq| self.publish_shard(shard, engine, seq),
                        );
                    }
                }
                if let Some(result) = tx.take_result()? {
                    break result;
                }
                // Not filled and the queue was empty: another leader
                // drained our transaction and is mid-epoch; loop and
                // re-check (the next lock acquisition blocks until that
                // epoch finishes).
            },
        };
        // Every member counts toward the checkpoint threshold — leaders
        // and window-parked followers alike (a follower returning early
        // must not let the WAL outgrow `checkpoint_every`).
        match &result {
            Ok(_) => self.after_durable_commit(1),
            Err(ServiceError::Durability(_)) => self.heal_after_durability_failure(),
            Err(_) => {}
        }
        result
    }

    /// Best-effort self-heal after a commit failed durably. A WAL
    /// append/sync failure seals the shard's segment writer — every
    /// further commit on that shard fails fast — and the only way to
    /// unseal is a checkpoint (it rebuilds the segment series from a
    /// fresh snapshot). Automatic checkpoints count *successful*
    /// commits, so they would never fire on a shard that can no longer
    /// commit; this hook attempts an emergency checkpoint whenever a
    /// durability failure is observed and a writer is sealed. The
    /// moment the underlying fault clears (disk space freed, volume
    /// remounted), one failing commit triggers the heal and the service
    /// resumes — no restart needed. While the fault persists the
    /// attempts keep failing fast (throttled logging); a manual
    /// [`Service::checkpoint`] (or the protocol's `{"op":"checkpoint"}`)
    /// is the operator-driven alternative.
    fn heal_after_durability_failure(&self) {
        let Some(wal) = &self.inner.wal else {
            return;
        };
        let any_sealed = wal.writers.iter().any(|writer| {
            writer
                .lock()
                .map(|writer| writer.is_sealed())
                .unwrap_or(false)
        });
        if !any_sealed {
            return;
        }
        let Ok(guard) = wal.checkpoint_lock.try_lock() else {
            return; // a checkpoint is already running; it will unseal
        };
        match self.checkpoint_locked(wal, &guard) {
            Ok(watermark) => {
                wal.heal_failures.store(0, Ordering::SeqCst);
                eprintln!(
                    "[birds-service] sealed WAL healed by emergency checkpoint \
                     (watermark {watermark})"
                );
            }
            Err(e) => {
                let failures = wal.heal_failures.fetch_add(1, Ordering::SeqCst) + 1;
                if failures.is_power_of_two() {
                    eprintln!(
                        "[birds-service] emergency checkpoint failed \
                         (attempt {failures}, WAL stays sealed): {e}"
                    );
                }
            }
        }
    }

    /// Bump the checkpoint counter after `n` durable commits and run an
    /// automatic checkpoint when the threshold is crossed. Called with
    /// no shard locks held (checkpointing takes them all).
    fn after_durable_commit(&self, n: u64) {
        let Some(wal) = &self.inner.wal else {
            return;
        };
        let Some(every) = wal.checkpoint_every else {
            return;
        };
        let count = wal.commits_since_checkpoint.fetch_add(n, Ordering::SeqCst) + n;
        if count < every {
            return;
        }
        // One volunteer checkpoints; contenders skip (their commits are
        // covered by the volunteer's snapshot anyway).
        let Ok(guard) = wal.checkpoint_lock.try_lock() else {
            return;
        };
        if wal.commits_since_checkpoint.load(Ordering::SeqCst) < every {
            return; // someone checkpointed while we raced for the lock
        }
        if let Err(e) = self.checkpoint_locked(wal, &guard) {
            // A failed automatic checkpoint only means the WAL keeps
            // growing; durability is unaffected. Surface it and retry at
            // the next threshold crossing.
            eprintln!("[birds-service] automatic checkpoint failed: {e}");
        }
    }

    /// Snapshot-then-truncate checkpoint, built from the shards'
    /// **published MVCC snapshots** — serialization runs with no shard
    /// lock held, so commits keep flowing while the snapshot file is
    /// written. Returns the watermark. Fails with
    /// [`ServiceError::Durability`] on an in-memory service.
    ///
    /// Each shard's write lock is taken *briefly*, one shard at a time
    /// (never all together), only to pair the shard's current snapshot
    /// pointer with a fresh WAL segment: records already in the log are
    /// then provably covered by the captured image, and records
    /// appended afterwards land in segments the checkpoint won't
    /// delete. The heavyweight work — serializing every tuple — happens
    /// afterwards, entirely lock-free, against the captured `Arc`s.
    pub fn checkpoint(&self) -> ServiceResult<u64> {
        let wal = self.inner.wal.as_ref().ok_or_else(|| {
            ServiceError::Durability("service has no data directory (in-memory)".into())
        })?;
        let guard = wal
            .checkpoint_lock
            .lock()
            .map_err(|_| ServiceError::Poisoned("checkpoint lock".into()))?;
        self.checkpoint_locked(wal, &guard)
    }

    fn checkpoint_locked(
        &self,
        wal: &WalState,
        _guard: &std::sync::MutexGuard<'_, ()>,
    ) -> ServiceResult<u64> {
        // The watermark is read *before* any shard is visited: every
        // commit that starts after this line gets a larger seq, and its
        // record lands either in a segment we keep (replayed) or — if
        // it beat us to a not-yet-rotated log — in a segment whose
        // shard's snapshot we load only after that commit published
        // (covered; replay of any overlap is idempotent, which the
        // durability tests pin).
        let watermark = self.inner.commit_seq.load(Ordering::SeqCst);
        // Phase 1 — per shard, ascending, briefly under the shard's
        // write lock: pair the published snapshot with a fresh WAL
        // segment. The lock orders us against commits (apply → append →
        // publish all happen inside one critical section), so every
        // record already in the closed segments is covered by the
        // snapshot we load here. A sealed writer (earlier IO failure —
        // its tail may be torn) cannot be rotated; its whole series is
        // instead deleted after the snapshot renames, which also
        // unseals it. (Lock order: checkpoint lock, then shard lock,
        // then writer mutex — the same order commits use, minus the
        // checkpoint lock they never take.)
        let mut images: Vec<Arc<ShardSnapshot>> = Vec::with_capacity(self.inner.cells.len());
        let mut closed_segments: Vec<PathBuf> = Vec::new();
        let mut sealed_shards: Vec<usize> = Vec::new();
        for id in self.inner.shards.ids() {
            let _engine = self.inner.shards.write(id);
            let image = self.inner.cells[id.index()].load();
            let mut writer = wal.writers[id.index()]
                .lock()
                .map_err(|_| ServiceError::Poisoned("wal segment writer".into()))?;
            if writer.is_sealed() {
                sealed_shards.push(id.index());
            } else {
                closed_segments.extend(
                    writer
                        .rotate_for_checkpoint()
                        .map_err(|e| ServiceError::Durability(format!("wal rotate: {e}")))?,
                );
            }
            images.push(image);
        }
        // Phase 2 — lock-free: serialize the captured images. Commits
        // on every shard proceed concurrently; publications refresh the
        // other version buffer, so the captured images stay stable.
        let relations: Vec<Relation> = images
            .iter()
            .flat_map(|image| image.relations().map(RelationVersion::to_relation))
            .collect();
        let relation_refs: Vec<&Relation> = relations.iter().collect();
        birds_wal::write_snapshot_file(&wal.data_dir, watermark, |mut w| {
            birds_engine::write_snapshot(&mut w, &relation_refs)
                .map_err(|e| std::io::Error::other(e.to_string()))
        })
        .map_err(|e| ServiceError::Durability(format!("checkpoint snapshot: {e}")))?;
        // Phase 3 — the snapshot is durable and renamed in: the closed
        // segments are now redundant. A crash anywhere in this phase
        // merely leaves covered records around, which recovery filters
        // (seq ≤ watermark) or replays idempotently.
        for path in closed_segments {
            std::fs::remove_file(&path)
                .map_err(|e| ServiceError::Durability(format!("wal truncate: {e}")))?;
        }
        for index in sealed_shards {
            // Safe without the shard lock: a sealed writer admits no
            // appends, and `reset` both clears the damaged series and
            // unseals (subsequent commits start a clean log whose every
            // record is > watermark).
            wal.writers[index]
                .lock()
                .map_err(|_| ServiceError::Poisoned("wal segment writer".into()))?
                .reset()
                .map_err(|e| ServiceError::Durability(format!("wal reset: {e}")))?;
        }
        wal.commits_since_checkpoint.store(0, Ordering::SeqCst);
        Ok(watermark)
    }

    /// The data directory of a durable service (`None` when in-memory).
    pub fn data_dir(&self) -> Option<&std::path::Path> {
        self.inner.wal.as_ref().map(|wal| wal.data_dir.as_path())
    }
}

/// One client's connection-scoped state: its mode and pending batch.
pub struct Session {
    service: Service,
    /// `Some` while a batch is open (between `begin` and
    /// `commit`/`rollback`); statements buffer here, in arrival order.
    batch: Option<Vec<DmlStatement>>,
}

impl Session {
    /// The service this session runs against.
    pub fn service(&self) -> &Service {
        &self.service
    }

    /// Is a batch currently open?
    pub fn in_batch(&self) -> bool {
        self.batch.is_some()
    }

    /// Statements pending in the open batch (0 outside a batch).
    pub fn pending(&self) -> usize {
        self.batch.as_ref().map_or(0, Vec::len)
    }

    /// Execute a DML script. In autocommit mode the statements apply
    /// immediately as one transaction; in batch mode they buffer until
    /// [`Session::commit`].
    pub fn execute(&mut self, sql: &str) -> ServiceResult<ExecOutcome> {
        let statements = parse_script(sql).map_err(|e| ServiceError::Parse(e.to_string()))?;
        self.execute_statements(statements)
    }

    /// Pre-parsed variant of [`Session::execute`].
    pub fn execute_statements(
        &mut self,
        statements: Vec<DmlStatement>,
    ) -> ServiceResult<ExecOutcome> {
        match &mut self.batch {
            Some(buffer) => {
                buffer.extend(statements);
                Ok(ExecOutcome::Buffered(buffer.len()))
            }
            None => {
                let Some(first) = statements.first() else {
                    // An empty script is still a (trivial) transaction.
                    self.service.next_commit_seq();
                    return Ok(ExecOutcome::Applied(ExecutionStats::default()));
                };
                let table = first.table().to_owned();
                if statements.iter().any(|s| s.table() != table) {
                    return Err(ServiceError::Engine(EngineError::BadStatement(
                        "a transaction must target a single view".into(),
                    )));
                }
                let shard =
                    self.service.inner.route.shard_of(&table).ok_or_else(|| {
                        ServiceError::Engine(EngineError::NotAView(table.clone()))
                    })?;
                let (_seq, stats) = self.service.submit_autocommit(shard, table, statements)?;
                Ok(ExecOutcome::Applied(stats))
            }
        }
    }

    /// Open a batch. Fails if one is already open.
    pub fn begin(&mut self) -> ServiceResult<()> {
        if self.batch.is_some() {
            return Err(ServiceError::BatchAlreadyOpen);
        }
        self.batch = Some(Vec::new());
        Ok(())
    }

    /// Coalesce and apply the open batch: statements are grouped by
    /// target view (preserving per-view arrival order), each group is
    /// folded by Algorithm 2 into one net delta, and each net delta is
    /// applied in a single strategy evaluation — locking exactly the
    /// shards the batch's views live in, in global lock order.
    ///
    /// On error the batch is discarded; atomicity is per view (a
    /// multi-view batch that fails on its k-th view keeps the first k−1
    /// applied — single-view batches, the common case, are atomic).
    ///
    /// On a durable service the commit's net per-view deltas are
    /// appended to the WAL (one record, written to the lowest-id locked
    /// shard's log while every locked shard is still held) and synced
    /// per the fsync policy **before** this method returns `Ok` — a
    /// crash after `Ok` never loses the commit. A multi-view batch that
    /// fails on its k-th view logs the applied k−1 prefix (under a fresh
    /// commit seq) so recovery converges to exactly the in-memory state,
    /// then still returns the error.
    ///
    /// ```
    /// # use birds_core::UpdateStrategy;
    /// # use birds_engine::{Engine, StrategyMode};
    /// # use birds_service::Service;
    /// # use birds_store::{tuple, Database, DatabaseSchema, Relation, Schema, SortKind, Value};
    /// # let mut db = Database::new();
    /// # db.add_relation(Relation::with_tuples("r1", 1, vec![tuple![1]]).unwrap()).unwrap();
    /// # db.add_relation(Relation::with_tuples("r2", 1, vec![tuple![2]]).unwrap()).unwrap();
    /// # let strategy = UpdateStrategy::parse(
    /// #     DatabaseSchema::new()
    /// #         .with(Schema::new("r1", vec![("a", SortKind::Int)]))
    /// #         .with(Schema::new("r2", vec![("a", SortKind::Int)])),
    /// #     Schema::new("v", vec![("a", SortKind::Int)]),
    /// #     "-r1(X) :- r1(X), not v(X).
    /// #      -r2(X) :- r2(X), not v(X).
    /// #      +r1(X) :- v(X), not r1(X), not r2(X).",
    /// #     None,
    /// # ).unwrap();
    /// # let mut engine = Engine::new(db);
    /// # engine.register_view(strategy, StrategyMode::Incremental).unwrap();
    /// // The engine registers the union view `v = r1 ∪ r2`, with
    /// // r1 = {1} and r2 = {2}.
    /// let service = Service::new(engine);
    /// let mut session = service.session();
    ///
    /// session.begin()?;
    /// session.execute("INSERT INTO v VALUES (10);")?; // buffered
    /// session.execute("INSERT INTO v VALUES (11);")?; // buffered
    /// session.execute("DELETE FROM v WHERE a = 10;")?; // cancels the first
    /// let outcome = session.commit()?; // ONE incremental pass, net delta {+11}
    ///
    /// assert_eq!(outcome.commit_seq, 1);
    /// assert_eq!(outcome.statements, 3);
    /// assert_eq!(outcome.views, 1);
    /// // The commit's snapshot is published before `commit` returns:
    /// // lock-free reads see your own writes.
    /// assert_eq!(service.query("v")?, vec![tuple![1], tuple![2], tuple![11]]);
    /// # Ok::<(), birds_service::ServiceError>(())
    /// ```
    pub fn commit(&mut self) -> ServiceResult<CommitOutcome> {
        let statements = self.batch.take().ok_or(ServiceError::NoBatchOpen)?;
        let statement_count = statements.len();
        if statement_count == 0 {
            // An empty commit is still a (trivial) transaction.
            return Ok(CommitOutcome {
                commit_seq: self.service.next_commit_seq(),
                statements: 0,
                views: 0,
                stats: ExecutionStats::default(),
            });
        }
        // Group by view, keeping first-appearance order of views and
        // arrival order of statements within each view.
        let mut groups: Vec<(String, Vec<DmlStatement>)> = Vec::new();
        for stmt in statements {
            match groups.iter_mut().find(|(view, _)| view == stmt.table()) {
                Some((_, group)) => group.push(stmt),
                None => groups.push((stmt.table().to_owned(), vec![stmt])),
            }
        }
        let views = groups.len();
        let inner = &self.service.inner;
        // The commit's footprint: the owning shard of every target view,
        // write-locked in global id order (deadlock-free; commits on
        // disjoint shards don't contend at all).
        let lock_set = inner
            .route
            .lock_set(groups.iter().map(|(view, _)| view.as_str()))?;
        let mut guards = inner.shards.write_set(lock_set);
        let mut total = ExecutionStats::default();
        // The applied per-view net deltas, in application order — the
        // WAL record for this commit.
        let mut applied: Vec<(String, Delta)> = Vec::new();
        // Whether any delta reached an engine (`applied` only tracks
        // loggable copies, so it misses in-memory and empty-net cases).
        let mut any_applied = false;
        let mut failure: Option<ServiceError> = None;
        for (view, group) in groups {
            let shard = inner
                .route
                .shard_of(&view)
                .expect("lock_set resolved every view");
            let engine = guards
                .iter_mut()
                .find(|(id, _)| *id == shard)
                .map(|(_, guard)| &mut **guard)
                .expect("footprint guards cover every target view");
            // Derive against the in-lock state so earlier groups'
            // cascades are visible, then apply in one pass. The derived
            // delta is normalized against that same state, so it is
            // exactly what gets applied — the replay-log entry (cloned
            // only on durable services; the in-memory hot path applies
            // by value).
            let result = engine.derive_delta(&view, &group).and_then(|delta| {
                let log_copy = inner
                    .wal
                    .is_some()
                    .then(|| delta.clone())
                    .filter(|d| !d.is_empty());
                engine
                    .apply_delta(&view, delta)
                    .map(|stats| (log_copy, stats))
            });
            match result {
                Ok((log_copy, stats)) => {
                    any_applied = true;
                    total.view_delta_size += stats.view_delta_size;
                    total.source_delta_size += stats.source_delta_size;
                    total.cascades += stats.cascades;
                    if let Some(delta) = log_copy {
                        applied.push((view, delta));
                    }
                }
                Err(e) => {
                    failure = Some(ServiceError::Engine(e));
                    break;
                }
            }
        }
        if let Some(e) = &failure {
            if applied.is_empty() || inner.wal.is_none() {
                // Nothing loggable: fail without a seq or a log record,
                // exactly like the in-memory path always has. Earlier
                // groups may still have applied (atomicity is per view),
                // so republish the mutated state at each shard's
                // *unchanged* high-water seq before the locks drop —
                // the lock-free read path must keep matching memory.
                if any_applied {
                    self.service.publish_guarded(&mut guards, None);
                }
                return Err(e.clone());
            }
        }
        let commit_seq = self.service.next_commit_seq();
        if let Some(wal) = &inner.wal {
            if !applied.is_empty() {
                // Log to the lowest-id locked shard (guards are
                // ascending): every appender to that segment holds that
                // shard's write lock, so the log stays append-ordered.
                // Same append + epoch-sync discipline as the group
                // committer's `EpochWal` — this one-record commit is its
                // own epoch.
                let epoch_wal = EpochWal {
                    writer: &wal.writers[guards[0].0.index()],
                    fsync: wal.fsync,
                };
                let logged = epoch_wal
                    .append(&WalRecord {
                        seqs: vec![commit_seq],
                        deltas: applied,
                    })
                    .and_then(|()| epoch_wal.sync_epoch());
                if let Err(e) = logged {
                    // Applied in memory but not durably acknowledged:
                    // the engine-level failure (if any) still wins the
                    // error report; otherwise surface the WAL failure.
                    // Memory did change, so publish before unlocking.
                    self.service.publish_guarded(&mut guards, Some(commit_seq));
                    drop(guards);
                    self.service.heal_after_durability_failure();
                    return Err(failure.unwrap_or(e));
                }
            }
        }
        // Publish every locked shard at the new high-water seq — after
        // the WAL append, before the locks drop and before the caller
        // learns the outcome (read-your-writes on the lock-free path).
        if any_applied {
            self.service.publish_guarded(&mut guards, Some(commit_seq));
        }
        drop(guards);
        match failure {
            Some(e) => Err(e),
            None => {
                self.service.after_durable_commit(1);
                Ok(CommitOutcome {
                    commit_seq,
                    statements: statement_count,
                    views,
                    stats: total,
                })
            }
        }
    }

    /// Discard the open batch, returning how many statements were
    /// dropped.
    pub fn rollback(&mut self) -> ServiceResult<usize> {
        let buffer = self.batch.take().ok_or(ServiceError::NoBatchOpen)?;
        Ok(buffer.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use birds_core::UpdateStrategy;
    use birds_engine::StrategyMode;
    use birds_store::{tuple, Database, DatabaseSchema, Relation, Schema, SortKind};

    fn union_service() -> Service {
        let mut db = Database::new();
        db.add_relation(Relation::with_tuples("r1", 1, vec![tuple![1]]).unwrap())
            .unwrap();
        db.add_relation(Relation::with_tuples("r2", 1, vec![tuple![2], tuple![4]]).unwrap())
            .unwrap();
        let strategy = UpdateStrategy::parse(
            DatabaseSchema::new()
                .with(Schema::new("r1", vec![("a", SortKind::Int)]))
                .with(Schema::new("r2", vec![("a", SortKind::Int)])),
            Schema::new("v", vec![("a", SortKind::Int)]),
            "
            -r1(X) :- r1(X), not v(X).
            -r2(X) :- r2(X), not v(X).
            +r1(X) :- v(X), not r1(X), not r2(X).
            ",
            None,
        )
        .unwrap();
        let mut engine = Engine::new(db);
        engine
            .register_view(strategy, StrategyMode::Incremental)
            .unwrap();
        Service::new(engine)
    }

    #[test]
    fn autocommit_applies_immediately() {
        let service = union_service();
        let mut session = service.session();
        let outcome = session.execute("INSERT INTO v VALUES (9);").unwrap();
        assert!(matches!(outcome, ExecOutcome::Applied(_)));
        assert!(service.query("r1").unwrap().contains(&tuple![9]));
        assert_eq!(service.commits(), 1);
    }

    #[test]
    fn batch_buffers_then_commits_net_delta() {
        let service = union_service();
        let mut session = service.session();
        session.begin().unwrap();
        session.execute("INSERT INTO v VALUES (10);").unwrap();
        session.execute("INSERT INTO v VALUES (11);").unwrap();
        let outcome = session.execute("DELETE FROM v WHERE a = 10;").unwrap();
        assert_eq!(outcome, ExecOutcome::Buffered(3));
        // Nothing applied yet.
        assert!(!service.query("r1").unwrap().contains(&tuple![11]));
        assert_eq!(service.commits(), 0);

        let commit = session.commit().unwrap();
        assert_eq!(commit.statements, 3);
        assert_eq!(commit.views, 1);
        assert_eq!(commit.commit_seq, 1);
        // Net effect: only 11 inserted (10 cancelled in the batch).
        assert_eq!(commit.stats.view_delta_size, 1);
        let r1 = service.query("r1").unwrap();
        assert!(r1.contains(&tuple![11]) && !r1.contains(&tuple![10]));
        assert!(!session.in_batch());
    }

    #[test]
    fn rollback_discards_buffer() {
        let service = union_service();
        let mut session = service.session();
        session.begin().unwrap();
        session.execute("INSERT INTO v VALUES (77);").unwrap();
        assert_eq!(session.rollback().unwrap(), 1);
        assert!(!service.query("v").unwrap().contains(&tuple![77]));
        assert!(matches!(session.rollback(), Err(ServiceError::NoBatchOpen)));
    }

    #[test]
    fn begin_twice_rejected_commit_without_begin_rejected() {
        let service = union_service();
        let mut session = service.session();
        session.begin().unwrap();
        assert!(matches!(
            session.begin(),
            Err(ServiceError::BatchAlreadyOpen)
        ));
        session.rollback().unwrap();
        assert!(matches!(session.commit(), Err(ServiceError::NoBatchOpen)));
    }

    #[test]
    fn empty_commit_is_a_trivial_transaction() {
        let service = union_service();
        let mut session = service.session();
        session.begin().unwrap();
        let commit = session.commit().unwrap();
        assert_eq!(commit.statements, 0);
        assert_eq!(commit.commit_seq, 1);
    }

    #[test]
    fn failed_commit_discards_batch_and_preserves_state() {
        let service = union_service();
        let mut session = service.session();
        session.begin().unwrap();
        // Target a non-view: the commit must fail cleanly.
        session.execute("INSERT INTO r1 VALUES (5);").unwrap();
        assert!(session.commit().is_err());
        assert!(!session.in_batch(), "failed commit closes the batch");
        assert_eq!(service.query("r1").unwrap().len(), 1);
        assert_eq!(service.commits(), 0);
    }

    #[test]
    fn sessions_share_one_database() {
        let service = union_service();
        let mut a = service.session();
        let mut b = service.session();
        a.execute("INSERT INTO v VALUES (100);").unwrap();
        b.execute("DELETE FROM v WHERE a = 100;").unwrap();
        assert!(!service.query("v").unwrap().contains(&tuple![100]));
        assert_eq!(service.commits(), 2);
    }

    #[test]
    fn into_engine_requires_sole_ownership() {
        let service = union_service();
        let session = service.session();
        let service = match service.into_engine() {
            Err(still_shared) => still_shared,
            Ok(_) => panic!("session still alive: must refuse"),
        };
        drop(session);
        let engine = match service.into_engine() {
            Ok(engine) => engine,
            Err(_) => panic!("sole owner now: must succeed"),
        };
        assert!(engine.is_view("v"));
    }

    #[test]
    fn unknown_table_is_rejected_without_locking() {
        let service = union_service();
        let mut session = service.session();
        let err = session.execute("INSERT INTO nope VALUES (1);").unwrap_err();
        assert!(matches!(
            err,
            ServiceError::Engine(EngineError::NotAView(_))
        ));
        assert_eq!(service.commits(), 0);
    }

    #[test]
    fn mixed_table_autocommit_script_is_rejected() {
        let service = union_service();
        let mut session = service.session();
        let err = session
            .execute("BEGIN; INSERT INTO v VALUES (1); INSERT INTO r1 VALUES (2); END;")
            .unwrap_err();
        assert!(matches!(
            err,
            ServiceError::Engine(EngineError::BadStatement(_))
        ));
    }

    #[test]
    fn empty_autocommit_script_is_a_trivial_transaction() {
        let service = union_service();
        let mut session = service.session();
        let outcome = session.execute("").unwrap();
        assert_eq!(outcome, ExecOutcome::Applied(ExecutionStats::default()));
        assert_eq!(service.commits(), 1);
    }

    #[test]
    fn union_view_shares_one_shard_with_its_sources() {
        let service = union_service();
        // {v, r1, r2} is one footprint component.
        assert_eq!(service.shard_count(), 1);
        service.read(|view| {
            assert!(view.is_view("v"));
            assert!(!view.is_view("r1"));
            assert_eq!(view.view_names(), vec!["v".to_owned()]);
            assert_eq!(view.relations().count(), 3);
            assert_eq!(view.relation("r2").unwrap().len(), 2);
            assert!(view.relation("nope").is_none());
        });
    }
}
