//! The thread-safe, multi-session service over [`birds_engine::Engine`].
//!
//! A [`Service`] owns the engine behind one `RwLock`: reads (queries,
//! stats) take the shared lock and run concurrently; view updates take
//! the exclusive lock. Each client holds a [`Session`], which runs in one
//! of two modes:
//!
//! * **autocommit** (the default): every `execute` call is its own
//!   transaction — one strategy evaluation per statement script;
//! * **batch** (after `begin`): statements buffer locally in the session
//!   — no lock taken — until `commit` coalesces them into one *net* view
//!   delta per view (Algorithm 2 over the whole buffer) and applies each
//!   in a **single** incremental pass. Batching is what lets the service
//!   sustain write-heavy traffic: the per-update cost is paid once per
//!   batch, not once per statement (see the `throughput` benchmark).
//!
//! Commits are serialized by the write lock and numbered by a global
//! commit sequence; the stress tests replay batches in commit order to
//! check that concurrent execution is equivalent to a serial history.

use crate::error::{ServiceError, ServiceResult};
use birds_engine::{Engine, ExecutionStats};
use birds_sql::{parse_script, DmlStatement};
use birds_store::Tuple;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock, RwLockReadGuard, RwLockWriteGuard};

/// Outcome of a [`Session::execute`] call.
#[derive(Debug, Clone, PartialEq)]
pub enum ExecOutcome {
    /// Autocommit mode: the statements were applied immediately.
    Applied(ExecutionStats),
    /// Batch mode: the statements were buffered; the payload is the total
    /// number of statements now pending in the session.
    Buffered(usize),
}

/// Outcome of a successful [`Session::commit`].
#[derive(Debug, Clone)]
pub struct CommitOutcome {
    /// Position of this commit in the service-wide serial order
    /// (1-based; assigned under the write lock).
    pub commit_seq: u64,
    /// Number of statements that were coalesced.
    pub statements: usize,
    /// Number of distinct views the batch touched.
    pub views: usize,
    /// Summed execution stats over all per-view applications.
    pub stats: ExecutionStats,
}

/// Shared handle to one engine; cheap to clone, safe to send across
/// threads. All handles see the same database.
#[derive(Clone)]
pub struct Service {
    inner: Arc<ServiceInner>,
}

struct ServiceInner {
    engine: RwLock<Engine>,
    commit_seq: AtomicU64,
}

/// Recover from lock poisoning: a panicking writer aborts only its own
/// request; the engine's mutation paths roll back on error, so the data
/// it guards is still structurally sound for other sessions.
fn read_lock(lock: &RwLock<Engine>) -> RwLockReadGuard<'_, Engine> {
    lock.read().unwrap_or_else(|e| e.into_inner())
}

fn write_lock(lock: &RwLock<Engine>) -> RwLockWriteGuard<'_, Engine> {
    lock.write().unwrap_or_else(|e| e.into_inner())
}

impl Service {
    /// Wrap an engine (typically with views already registered).
    pub fn new(engine: Engine) -> Self {
        Service {
            inner: Arc::new(ServiceInner {
                engine: RwLock::new(engine),
                commit_seq: AtomicU64::new(0),
            }),
        }
    }

    /// Open a new session in autocommit mode.
    pub fn session(&self) -> Session {
        Session {
            service: self.clone(),
            batch: None,
        }
    }

    /// Run a closure under the shared (read) lock.
    pub fn read<R>(&self, f: impl FnOnce(&Engine) -> R) -> R {
        f(&read_lock(&self.inner.engine))
    }

    /// Run a closure under the exclusive (write) lock.
    pub fn write<R>(&self, f: impl FnOnce(&mut Engine) -> R) -> R {
        f(&mut write_lock(&self.inner.engine))
    }

    /// Sorted snapshot of a relation's tuples (`None` for unknown names).
    pub fn query(&self, relation: &str) -> Option<Vec<Tuple>> {
        self.read(|engine| {
            engine.relation(relation).map(|rel| {
                let mut tuples: Vec<Tuple> = rel.iter().cloned().collect();
                tuples.sort();
                tuples
            })
        })
    }

    /// Number of committed transactions (autocommit scripts and batch
    /// commits both count) since the service started.
    pub fn commits(&self) -> u64 {
        self.inner.commit_seq.load(Ordering::SeqCst)
    }

    /// Tear the service down and recover the engine. Fails (returning
    /// `self`) while other handles — sessions included — are still alive.
    pub fn into_engine(self) -> Result<Engine, Service> {
        match Arc::try_unwrap(self.inner) {
            Ok(inner) => Ok(inner.engine.into_inner().unwrap_or_else(|e| e.into_inner())),
            Err(inner) => Err(Service { inner }),
        }
    }

    fn next_commit_seq(&self) -> u64 {
        // Called only while holding the write lock, so the sequence is
        // consistent with the serialization order of the commits.
        self.inner.commit_seq.fetch_add(1, Ordering::SeqCst) + 1
    }
}

/// One client's connection-scoped state: its mode and pending batch.
pub struct Session {
    service: Service,
    /// `Some` while a batch is open (between `begin` and
    /// `commit`/`rollback`); statements buffer here, in arrival order.
    batch: Option<Vec<DmlStatement>>,
}

impl Session {
    /// The service this session runs against.
    pub fn service(&self) -> &Service {
        &self.service
    }

    /// Is a batch currently open?
    pub fn in_batch(&self) -> bool {
        self.batch.is_some()
    }

    /// Statements pending in the open batch (0 outside a batch).
    pub fn pending(&self) -> usize {
        self.batch.as_ref().map_or(0, Vec::len)
    }

    /// Execute a DML script. In autocommit mode the statements apply
    /// immediately as one transaction; in batch mode they buffer until
    /// [`Session::commit`].
    pub fn execute(&mut self, sql: &str) -> ServiceResult<ExecOutcome> {
        let statements = parse_script(sql).map_err(|e| ServiceError::Parse(e.to_string()))?;
        self.execute_statements(statements)
    }

    /// Pre-parsed variant of [`Session::execute`].
    pub fn execute_statements(
        &mut self,
        statements: Vec<DmlStatement>,
    ) -> ServiceResult<ExecOutcome> {
        match &mut self.batch {
            Some(buffer) => {
                buffer.extend(statements);
                Ok(ExecOutcome::Buffered(buffer.len()))
            }
            None => {
                let stats = self.service.write(|engine| {
                    let stats = engine.execute_statements(&statements)?;
                    self.service.next_commit_seq();
                    Ok::<_, ServiceError>(stats)
                })?;
                Ok(ExecOutcome::Applied(stats))
            }
        }
    }

    /// Open a batch. Fails if one is already open.
    pub fn begin(&mut self) -> ServiceResult<()> {
        if self.batch.is_some() {
            return Err(ServiceError::BatchAlreadyOpen);
        }
        self.batch = Some(Vec::new());
        Ok(())
    }

    /// Coalesce and apply the open batch: statements are grouped by
    /// target view (preserving per-view arrival order), each group is
    /// folded by Algorithm 2 into one net delta, and each net delta is
    /// applied in a single strategy evaluation — all under one exclusive
    /// lock acquisition.
    ///
    /// On error the batch is discarded; atomicity is per view (a
    /// multi-view batch that fails on its k-th view keeps the first k−1
    /// applied — single-view batches, the common case, are atomic).
    pub fn commit(&mut self) -> ServiceResult<CommitOutcome> {
        let statements = self.batch.take().ok_or(ServiceError::NoBatchOpen)?;
        let statement_count = statements.len();
        if statement_count == 0 {
            // An empty commit is still a (trivial) transaction.
            let commit_seq = self.service.write(|_| self.service.next_commit_seq());
            return Ok(CommitOutcome {
                commit_seq,
                statements: 0,
                views: 0,
                stats: ExecutionStats::default(),
            });
        }
        // Group by view, keeping first-appearance order of views and
        // arrival order of statements within each view.
        let mut groups: Vec<(String, Vec<DmlStatement>)> = Vec::new();
        for stmt in statements {
            match groups.iter_mut().find(|(view, _)| view == stmt.table()) {
                Some((_, group)) => group.push(stmt),
                None => groups.push((stmt.table().to_owned(), vec![stmt])),
            }
        }
        let views = groups.len();
        self.service.write(|engine| {
            let mut total = ExecutionStats::default();
            for (view, group) in groups {
                // Derive against the in-lock state so earlier groups'
                // cascades are visible, then apply in one pass.
                let delta = engine.derive_delta(&view, &group)?;
                let stats = engine.apply_delta(&view, delta)?;
                total.view_delta_size += stats.view_delta_size;
                total.source_delta_size += stats.source_delta_size;
                total.cascades += stats.cascades;
            }
            let commit_seq = self.service.next_commit_seq();
            Ok(CommitOutcome {
                commit_seq,
                statements: statement_count,
                views,
                stats: total,
            })
        })
    }

    /// Discard the open batch, returning how many statements were
    /// dropped.
    pub fn rollback(&mut self) -> ServiceResult<usize> {
        let buffer = self.batch.take().ok_or(ServiceError::NoBatchOpen)?;
        Ok(buffer.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use birds_core::UpdateStrategy;
    use birds_engine::StrategyMode;
    use birds_store::{tuple, Database, DatabaseSchema, Relation, Schema, SortKind};

    fn union_service() -> Service {
        let mut db = Database::new();
        db.add_relation(Relation::with_tuples("r1", 1, vec![tuple![1]]).unwrap())
            .unwrap();
        db.add_relation(Relation::with_tuples("r2", 1, vec![tuple![2], tuple![4]]).unwrap())
            .unwrap();
        let strategy = UpdateStrategy::parse(
            DatabaseSchema::new()
                .with(Schema::new("r1", vec![("a", SortKind::Int)]))
                .with(Schema::new("r2", vec![("a", SortKind::Int)])),
            Schema::new("v", vec![("a", SortKind::Int)]),
            "
            -r1(X) :- r1(X), not v(X).
            -r2(X) :- r2(X), not v(X).
            +r1(X) :- v(X), not r1(X), not r2(X).
            ",
            None,
        )
        .unwrap();
        let mut engine = Engine::new(db);
        engine
            .register_view(strategy, StrategyMode::Incremental)
            .unwrap();
        Service::new(engine)
    }

    #[test]
    fn autocommit_applies_immediately() {
        let service = union_service();
        let mut session = service.session();
        let outcome = session.execute("INSERT INTO v VALUES (9);").unwrap();
        assert!(matches!(outcome, ExecOutcome::Applied(_)));
        assert!(service.query("r1").unwrap().contains(&tuple![9]));
        assert_eq!(service.commits(), 1);
    }

    #[test]
    fn batch_buffers_then_commits_net_delta() {
        let service = union_service();
        let mut session = service.session();
        session.begin().unwrap();
        session.execute("INSERT INTO v VALUES (10);").unwrap();
        session.execute("INSERT INTO v VALUES (11);").unwrap();
        let outcome = session.execute("DELETE FROM v WHERE a = 10;").unwrap();
        assert_eq!(outcome, ExecOutcome::Buffered(3));
        // Nothing applied yet.
        assert!(!service.query("r1").unwrap().contains(&tuple![11]));
        assert_eq!(service.commits(), 0);

        let commit = session.commit().unwrap();
        assert_eq!(commit.statements, 3);
        assert_eq!(commit.views, 1);
        assert_eq!(commit.commit_seq, 1);
        // Net effect: only 11 inserted (10 cancelled in the batch).
        assert_eq!(commit.stats.view_delta_size, 1);
        let r1 = service.query("r1").unwrap();
        assert!(r1.contains(&tuple![11]) && !r1.contains(&tuple![10]));
        assert!(!session.in_batch());
    }

    #[test]
    fn rollback_discards_buffer() {
        let service = union_service();
        let mut session = service.session();
        session.begin().unwrap();
        session.execute("INSERT INTO v VALUES (77);").unwrap();
        assert_eq!(session.rollback().unwrap(), 1);
        assert!(!service.query("v").unwrap().contains(&tuple![77]));
        assert!(matches!(session.rollback(), Err(ServiceError::NoBatchOpen)));
    }

    #[test]
    fn begin_twice_rejected_commit_without_begin_rejected() {
        let service = union_service();
        let mut session = service.session();
        session.begin().unwrap();
        assert!(matches!(
            session.begin(),
            Err(ServiceError::BatchAlreadyOpen)
        ));
        session.rollback().unwrap();
        assert!(matches!(session.commit(), Err(ServiceError::NoBatchOpen)));
    }

    #[test]
    fn empty_commit_is_a_trivial_transaction() {
        let service = union_service();
        let mut session = service.session();
        session.begin().unwrap();
        let commit = session.commit().unwrap();
        assert_eq!(commit.statements, 0);
        assert_eq!(commit.commit_seq, 1);
    }

    #[test]
    fn failed_commit_discards_batch_and_preserves_state() {
        let service = union_service();
        let mut session = service.session();
        session.begin().unwrap();
        // Target a non-view: the commit must fail cleanly.
        session.execute("INSERT INTO r1 VALUES (5);").unwrap();
        assert!(session.commit().is_err());
        assert!(!session.in_batch(), "failed commit closes the batch");
        assert_eq!(service.query("r1").unwrap().len(), 1);
        assert_eq!(service.commits(), 0);
    }

    #[test]
    fn sessions_share_one_database() {
        let service = union_service();
        let mut a = service.session();
        let mut b = service.session();
        a.execute("INSERT INTO v VALUES (100);").unwrap();
        b.execute("DELETE FROM v WHERE a = 100;").unwrap();
        assert!(!service.query("v").unwrap().contains(&tuple![100]));
        assert_eq!(service.commits(), 2);
    }

    #[test]
    fn into_engine_requires_sole_ownership() {
        let service = union_service();
        let session = service.session();
        let service = match service.into_engine() {
            Err(still_shared) => still_shared,
            Ok(_) => panic!("session still alive: must refuse"),
        };
        drop(session);
        let engine = match service.into_engine() {
            Ok(engine) => engine,
            Err(_) => panic!("sole owner now: must succeed"),
        };
        assert!(engine.is_view("v"));
    }
}
