//! The line-delimited JSON protocol spoken by `birds-serve`.
//!
//! Every request is one JSON object on one line; every response is one
//! JSON object on one line. Requests carry an `"op"` discriminator:
//!
//! | request                                   | reply (on success)                                            |
//! |-------------------------------------------|---------------------------------------------------------------|
//! | `{"op":"ping"}`                           | `{"ok":true,"pong":true}`                                     |
//! | `{"op":"execute","sql":"…"}`              | `{"ok":true,"applied":…}` or `{"ok":true,"buffered":n}`       |
//! | `{"op":"begin"}`                          | `{"ok":true,"batch":true}`                                    |
//! | `{"op":"commit"}`                         | `{"ok":true,"commit_seq":n,"statements":n,…}`                 |
//! | `{"op":"rollback"}`                       | `{"ok":true,"discarded":n}`                                   |
//! | `{"op":"query","relation":"v"}`           | `{"ok":true,"relation":"v","tuples":[[…],…]}`                 |
//! | `{"op":"stats"}`                          | `{"ok":true,"commits":n,"views":[…],"relations":[…]}`         |
//! | `{"op":"checkpoint"}`                     | `{"ok":true,"watermark":n}` (durable servers only)            |
//! | `{"op":"register",…}`                     | `{"ok":true,"registered":"v","commit_seq":n,"shards":n}`      |
//! | `{"op":"unregister","view":"v"}`          | `{"ok":true,"unregistered":"v","commit_seq":n,"shards":n}`    |
//! | `{"op":"validate",…}`                     | `{"ok":true,"valid":true}` or `{"ok":true,"valid":false,"reason":"…"}` |
//! | `{"op":"quit"}`                           | `{"ok":true,"bye":true}` and the connection closes            |
//!
//! **Dynamic registration (PR 10).** `register` carries a full update
//! strategy and registers it on the **live** service — only the shards
//! the new view's footprint touches quiesce; everything else keeps
//! committing (see `birds_service::Service::register_view`). The
//! payload:
//!
//! ```json
//! {"op":"register",
//!  "view":    {"name":"v","columns":[["a","int"]]},
//!  "sources": [{"name":"r1","columns":[["a","int"]]},
//!              {"name":"r2","columns":[["a","int"]]}],
//!  "putdelta": "-r1(X) :- r1(X), not v(X). …",
//!  "expected_get": null,
//!  "mode": "incremental"}
//! ```
//!
//! Column sorts are `"int"`, `"float"`, `"string"`, `"bool"`; `"mode"`
//! is `"incremental"` (default) or `"original"`; `"expected_get"` is an
//! optional Datalog program defining the view. `validate` takes the
//! same payload minus `"mode"` and runs the full well-behavedness
//! analysis (Algorithm 1) **statelessly** — nothing is registered, and
//! an ill-formed strategy reports `valid:false` rather than a protocol
//! error. Typed registration rejections (`view 'v' is already
//! registered`, `invalid strategy: …`, `relation conflict on '…'`)
//! come back as ordinary `{"ok":false,"error":"…"}` responses.
//!
//! Errors never close the connection (except transport failures):
//! `{"ok":false,"error":"…"}`.
//!
//! **Pipelining and the ordering contract:** a request may carry an
//! `"id"` field (any JSON value); the server echoes it verbatim as
//! `"id"` in the matching response — including error responses,
//! whenever the id is salvageable from the malformed line — so a client
//! may send many requests before reading any response and correlate the
//! replies. Since the epoll reactor (PR 7), responses are **not**
//! guaranteed to arrive in submission order; the contract is:
//!
//! * **Session-stateful requests stay FIFO.** `begin`, `commit`,
//!   `rollback`, and `execute` inside an open batch run one at a time,
//!   in submission order, against the connection's session (see
//!   [`Request::is_session_op`]).
//! * **Independent requests may complete in any order.** `ping`,
//!   `query`, `stats`, `checkpoint`, and autocommit `execute` (each its
//!   own transaction) execute concurrently on a worker pool — a slow
//!   query on one shard does not delay a fast query on another, even on
//!   the same connection. A pipelining client that needs
//!   read-your-writes must await the write's response before issuing
//!   the read (or wrap both in a `begin`…`commit` batch, which is
//!   FIFO).
//! * **`quit` is a barrier.** Every previously accepted request on the
//!   connection answers first; the `bye` is always the connection's
//!   last response. Requests pipelined *after* a `quit` are dropped.
//!
//! Each response is still written atomically as one line, and every id
//! is answered exactly once. Clients that await each response before
//! sending the next (lockstep, like `birds-serve --connect`) observe no
//! behavioral change; the wire format itself is identical. See
//! [`Envelope`].
//!
//! Oversized request lines (beyond the server's `--max-line` cap,
//! default 1 MiB) are rejected with `{"ok":false,"error":"request
//! exceeds …"}` without ever being buffered in full; the connection
//! stays open.
//!
//! Tuple values map to JSON as: `Int` → number, `Float` → number,
//! `Str` → string, `Bool` → boolean.

use crate::error::ServiceError;
use crate::json::Json;
use crate::service::{CommitOutcome, ExecOutcome, Service, Session};
use birds_core::UpdateStrategy;
use birds_engine::{ExecutionStats, StrategyMode};
use birds_store::{DatabaseSchema, Schema, SortKind, Tuple, Value};

/// A decoded protocol request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Liveness check.
    Ping,
    /// Execute (or buffer, in batch mode) a DML script.
    Execute {
        /// The SQL script.
        sql: String,
    },
    /// Open a batch.
    Begin,
    /// Coalesce and apply the open batch.
    Commit,
    /// Discard the open batch.
    Rollback,
    /// Snapshot a relation.
    Query {
        /// Relation (base table or view) name.
        relation: String,
    },
    /// Service-wide statistics.
    Stats,
    /// Snapshot-then-truncate checkpoint (durable services only) — the
    /// operator's lever for bounding the WAL and for healing a sealed
    /// writer without a restart.
    Checkpoint,
    /// Register an update strategy as a live view (PR 10): validates,
    /// quiesces only the affected shards, re-shards, logs to the WAL.
    Register {
        /// The strategy payload (view + sources + putdelta program).
        spec: StrategySpec,
        /// Evaluation mode for the putback program.
        mode: StrategyMode,
    },
    /// Deregister a live view (inverse of `register`).
    Unregister {
        /// The view to deregister.
        view: String,
    },
    /// Statelessly run the well-behavedness analysis (Algorithm 1) on a
    /// strategy without registering anything.
    Validate {
        /// The strategy payload.
        spec: StrategySpec,
    },
    /// Close the session.
    Quit,
}

/// The wire form of an update strategy: the `register` / `validate`
/// payload, before it is parsed into a [`UpdateStrategy`].
#[derive(Debug, Clone, PartialEq)]
pub struct StrategySpec {
    /// Schema of the view relation.
    pub view: Schema,
    /// Schemas of the source relations, in declaration order.
    pub sources: Vec<Schema>,
    /// The putback (putdelta) program, as Datalog source text.
    pub putdelta: String,
    /// Optional expected view definition (rules with head `v`).
    pub expected_get: Option<String>,
}

impl StrategySpec {
    /// Parse the wire payload into a shape-checked [`UpdateStrategy`].
    pub fn to_strategy(&self) -> Result<UpdateStrategy, ServiceError> {
        UpdateStrategy::parse(
            DatabaseSchema {
                relations: self.sources.clone(),
            },
            self.view.clone(),
            &self.putdelta,
            self.expected_get.as_deref(),
        )
        .map_err(|e| ServiceError::InvalidStrategy {
            reason: e.to_string(),
        })
    }
}

fn sort_to_str(sort: SortKind) -> &'static str {
    match sort {
        SortKind::Int => "int",
        SortKind::Float => "float",
        SortKind::Str => "string",
        SortKind::Bool => "bool",
    }
}

fn sort_from_str(s: &str) -> Result<SortKind, ServiceError> {
    match s {
        "int" => Ok(SortKind::Int),
        "float" => Ok(SortKind::Float),
        "string" => Ok(SortKind::Str),
        "bool" => Ok(SortKind::Bool),
        other => Err(ServiceError::Protocol(format!(
            "unknown column sort '{other}' (expected int|float|string|bool)"
        ))),
    }
}

fn schema_to_json(schema: &Schema) -> Json {
    Json::Obj(vec![
        ("name".to_owned(), Json::str(schema.name.clone())),
        (
            "columns".to_owned(),
            Json::Arr(
                schema
                    .attributes
                    .iter()
                    .map(|attr| {
                        Json::Arr(vec![
                            Json::str(attr.name.clone()),
                            Json::str(sort_to_str(attr.sort)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// Decode `{"name":…,"columns":[[name, sort],…]}` into a [`Schema`].
pub fn schema_from_json(doc: &Json) -> Result<Schema, ServiceError> {
    let name = doc
        .get("name")
        .and_then(Json::as_str)
        .ok_or_else(|| ServiceError::Protocol("relation needs a string field 'name'".into()))?;
    let columns = doc
        .get("columns")
        .and_then(Json::as_arr)
        .ok_or_else(|| ServiceError::Protocol("relation needs an array field 'columns'".into()))?;
    let mut attrs: Vec<(&str, SortKind)> = Vec::with_capacity(columns.len());
    for column in columns {
        let pair = column
            .as_arr()
            .filter(|pair| pair.len() == 2)
            .ok_or_else(|| {
                ServiceError::Protocol("each column must be a [name, sort] pair".into())
            })?;
        let col_name = pair[0]
            .as_str()
            .ok_or_else(|| ServiceError::Protocol("column name must be a string".into()))?;
        let sort = pair[1]
            .as_str()
            .ok_or_else(|| ServiceError::Protocol("column sort must be a string".into()))
            .and_then(sort_from_str)?;
        attrs.push((col_name, sort));
    }
    Ok(Schema::new(name, attrs))
}

/// Decode a `register` / `validate` payload (everything but `op` and
/// `mode`) into a [`StrategySpec`].
pub fn spec_from_json(doc: &Json) -> Result<StrategySpec, ServiceError> {
    let view = doc
        .get("view")
        .ok_or_else(|| ServiceError::Protocol("missing object field 'view'".into()))
        .and_then(schema_from_json)?;
    let sources = doc
        .get("sources")
        .and_then(Json::as_arr)
        .ok_or_else(|| ServiceError::Protocol("missing array field 'sources'".into()))?
        .iter()
        .map(schema_from_json)
        .collect::<Result<Vec<_>, _>>()?;
    let putdelta = doc
        .get("putdelta")
        .and_then(Json::as_str)
        .ok_or_else(|| ServiceError::Protocol("missing string field 'putdelta'".into()))?
        .to_owned();
    let expected_get = match doc.get("expected_get") {
        None | Some(Json::Null) => None,
        Some(value) => Some(
            value
                .as_str()
                .ok_or_else(|| {
                    ServiceError::Protocol("'expected_get' must be a string or null".into())
                })?
                .to_owned(),
        ),
    };
    Ok(StrategySpec {
        view,
        sources,
        putdelta,
        expected_get,
    })
}

fn spec_fields(spec: &StrategySpec) -> Vec<(String, Json)> {
    let mut fields = vec![
        ("view".to_owned(), schema_to_json(&spec.view)),
        (
            "sources".to_owned(),
            Json::Arr(spec.sources.iter().map(schema_to_json).collect()),
        ),
        ("putdelta".to_owned(), Json::str(spec.putdelta.clone())),
    ];
    if let Some(get) = &spec.expected_get {
        fields.push(("expected_get".to_owned(), Json::str(get.clone())));
    }
    fields
}

impl Request {
    /// Decode one request line.
    pub fn parse(line: &str) -> Result<Request, ServiceError> {
        let doc =
            Json::parse(line).map_err(|e| ServiceError::Protocol(format!("bad JSON: {e}")))?;
        Request::from_json(&doc)
    }

    /// Decode a request from an already-parsed document (the transport
    /// parses each line exactly once — see [`Envelope::parse`]).
    pub fn from_json(doc: &Json) -> Result<Request, ServiceError> {
        let op = doc
            .get("op")
            .and_then(Json::as_str)
            .ok_or_else(|| ServiceError::Protocol("missing string field 'op'".into()))?;
        match op {
            "ping" => Ok(Request::Ping),
            "execute" => {
                let sql = doc
                    .get("sql")
                    .and_then(Json::as_str)
                    .ok_or_else(|| {
                        ServiceError::Protocol("'execute' needs a string field 'sql'".into())
                    })?
                    .to_owned();
                Ok(Request::Execute { sql })
            }
            "begin" => Ok(Request::Begin),
            "commit" => Ok(Request::Commit),
            "rollback" => Ok(Request::Rollback),
            "query" => {
                let relation = doc
                    .get("relation")
                    .and_then(Json::as_str)
                    .ok_or_else(|| {
                        ServiceError::Protocol("'query' needs a string field 'relation'".into())
                    })?
                    .to_owned();
                Ok(Request::Query { relation })
            }
            "stats" => Ok(Request::Stats),
            "checkpoint" => Ok(Request::Checkpoint),
            "register" => {
                let spec = spec_from_json(doc)?;
                let mode = match doc.get("mode").and_then(Json::as_str) {
                    None | Some("incremental") => StrategyMode::Incremental,
                    Some("original") => StrategyMode::Original,
                    Some(other) => {
                        return Err(ServiceError::Protocol(format!(
                            "unknown mode '{other}' (expected incremental|original)"
                        )))
                    }
                };
                Ok(Request::Register { spec, mode })
            }
            "unregister" => {
                let view = doc
                    .get("view")
                    .and_then(Json::as_str)
                    .ok_or_else(|| {
                        ServiceError::Protocol("'unregister' needs a string field 'view'".into())
                    })?
                    .to_owned();
                Ok(Request::Unregister { view })
            }
            "validate" => Ok(Request::Validate {
                spec: spec_from_json(doc)?,
            }),
            "quit" => Ok(Request::Quit),
            other => Err(ServiceError::Protocol(format!("unknown op '{other}'"))),
        }
    }

    /// Whether this request must run on the connection's **session
    /// lane** (FIFO, one at a time, against the session's state) rather
    /// than fan out to the worker pool — the classification behind the
    /// module-level ordering contract.
    ///
    /// `begin`/`commit`/`rollback` always touch session state.
    /// `execute` does only while a batch is open (`in_batch` — the
    /// transport tracks this at parse time: `begin` opens,
    /// `commit`/`rollback` close, exactly mirroring [`Session`] since
    /// those ops consume the batch even on error); an autocommit
    /// `execute` is its own transaction and runs on the concurrent
    /// stateless lane. Everything else reads global service state.
    pub fn is_session_op(&self, in_batch: bool) -> bool {
        match self {
            Request::Begin | Request::Commit | Request::Rollback => true,
            Request::Execute { .. } => in_batch,
            // Topology changes run FIFO on the session lane so a client
            // that pipelines `register` followed by writes to the new
            // view observes its own registration. (The service layer
            // additionally serializes registrations globally.)
            Request::Register { .. } | Request::Unregister { .. } => true,
            _ => false,
        }
    }

    /// Encode this request as one protocol line carrying a correlation
    /// `id` (see [`Envelope`]).
    pub fn encode_with_id(&self, id: Json) -> String {
        let encoded = self.encode();
        let Ok(Json::Obj(mut fields)) = Json::parse(&encoded) else {
            unreachable!("encode always yields an object");
        };
        fields.push(("id".to_owned(), id));
        Json::Obj(fields).to_compact()
    }

    /// Encode this request as one protocol line (no trailing newline).
    pub fn encode(&self) -> String {
        let mut fields = vec![(
            "op".to_owned(),
            Json::str(match self {
                Request::Ping => "ping",
                Request::Execute { .. } => "execute",
                Request::Begin => "begin",
                Request::Commit => "commit",
                Request::Rollback => "rollback",
                Request::Query { .. } => "query",
                Request::Stats => "stats",
                Request::Checkpoint => "checkpoint",
                Request::Register { .. } => "register",
                Request::Unregister { .. } => "unregister",
                Request::Validate { .. } => "validate",
                Request::Quit => "quit",
            }),
        )];
        match self {
            Request::Execute { sql } => fields.push(("sql".to_owned(), Json::str(sql.clone()))),
            Request::Query { relation } => {
                fields.push(("relation".to_owned(), Json::str(relation.clone())))
            }
            Request::Register { spec, mode } => {
                fields.extend(spec_fields(spec));
                fields.push((
                    "mode".to_owned(),
                    Json::str(match mode {
                        StrategyMode::Incremental => "incremental",
                        StrategyMode::Original => "original",
                    }),
                ));
            }
            Request::Unregister { view } => {
                fields.push(("view".to_owned(), Json::str(view.clone())))
            }
            Request::Validate { spec } => fields.extend(spec_fields(spec)),
            _ => {}
        }
        Json::Obj(fields).to_compact()
    }
}

/// A decoded request plus its optional client-chosen correlation id.
#[derive(Debug, Clone, PartialEq)]
pub struct Envelope {
    /// The request's `"id"` field, echoed verbatim in the response.
    pub id: Option<Json>,
    /// The request itself.
    pub request: Request,
}

impl Envelope {
    /// Decode one request line (parsing the JSON exactly once). On a
    /// malformed request the id is still salvaged when the line parses
    /// as a JSON object, so the error response can be correlated by a
    /// pipelining client.
    pub fn parse(line: &str) -> Result<Envelope, (Option<Json>, ServiceError)> {
        let doc = match Json::parse(line) {
            Ok(doc) => doc,
            Err(e) => return Err((None, ServiceError::Protocol(format!("bad JSON: {e}")))),
        };
        let id = doc.get("id").cloned();
        match Request::from_json(&doc) {
            Ok(request) => Ok(Envelope { id, request }),
            Err(e) => Err((id, e)),
        }
    }
}

/// Best-effort extraction of a top-level `"id"` field from a *prefix*
/// of a request line — what the transport salvages when an oversized
/// request is discarded as it streams in (see `--max-line`): the server
/// never buffers the full line, but the id conventionally sits near the
/// front, so the retained prefix usually contains it and the
/// `RequestTooLarge` error response can still be correlated by a
/// pipelining client.
///
/// Tracks JSON string/escape state and brace depth, finds an `"id"` key
/// at the object's top level, and decodes its scalar value (string,
/// number, or boolean — the shapes [`Envelope::parse`] would echo).
/// Returns `None` when the prefix was cut before the id's value
/// completed, or contains no top-level id at all.
pub fn salvage_id(prefix: &str) -> Option<Json> {
    let bytes = prefix.as_bytes();
    let mut i = 0usize;
    let mut depth = 0i64;
    while i < bytes.len() {
        match bytes[i] {
            b'"' => {
                let end = scan_json_string(bytes, i)?;
                let is_id_key = depth == 1 && &bytes[i + 1..end] == b"id";
                i = end + 1;
                if !is_id_key {
                    continue;
                }
                while i < bytes.len() && bytes[i].is_ascii_whitespace() {
                    i += 1;
                }
                if bytes.get(i) != Some(&b':') {
                    continue; // a *value* that happens to be "id"
                }
                i += 1;
                while i < bytes.len() && bytes[i].is_ascii_whitespace() {
                    i += 1;
                }
                return salvage_scalar(prefix, i);
            }
            b'{' | b'[' => {
                depth += 1;
                i += 1;
            }
            b'}' | b']' => {
                depth -= 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    None
}

/// Index of the closing quote of the JSON string opening at `start`
/// (which must be a `"`), honoring escapes; `None` if the prefix ends
/// first.
fn scan_json_string(bytes: &[u8], start: usize) -> Option<usize> {
    let mut i = start + 1;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => i += 2,
            b'"' => return Some(i),
            _ => i += 1,
        }
    }
    None
}

/// Decode the scalar JSON value starting at byte `at` of `prefix`.
fn salvage_scalar(prefix: &str, at: usize) -> Option<Json> {
    let bytes = prefix.as_bytes();
    match bytes.get(at)? {
        b'"' => {
            let end = scan_json_string(bytes, at)?;
            Json::parse(&prefix[at..=end]).ok()
        }
        b't' | b'f' => {
            let rest = &prefix[at..];
            if rest.starts_with("true") {
                Some(Json::Bool(true))
            } else if rest.starts_with("false") {
                Some(Json::Bool(false))
            } else {
                None
            }
        }
        b'-' | b'0'..=b'9' => {
            let end = bytes[at..]
                .iter()
                .position(|b| !matches!(b, b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9'))
                .map_or(bytes.len(), |n| at + n);
            // A number running into the cut end of the prefix may be
            // truncated mid-digits — refuse rather than echo a wrong id.
            if end == bytes.len() {
                return None;
            }
            Json::parse(&prefix[at..end]).ok()
        }
        _ => None,
    }
}

/// Echo a correlation id (if any) into a response object.
pub fn with_id(response: Json, id: Option<Json>) -> Json {
    match (response, id) {
        (Json::Obj(mut fields), Some(id)) => {
            fields.push(("id".to_owned(), id));
            Json::Obj(fields)
        }
        (response, _) => response,
    }
}

fn value_json(v: &Value) -> Json {
    match v {
        Value::Int(i) => Json::Int(*i),
        Value::Float(f) => Json::Float(f.get()),
        Value::Str(s) => Json::str(s.as_str()),
        Value::Bool(b) => Json::Bool(*b),
    }
}

fn tuple_json(t: &Tuple) -> Json {
    Json::Arr(t.values().iter().map(value_json).collect())
}

fn stats_fields(stats: &ExecutionStats) -> Vec<(String, Json)> {
    vec![
        (
            "view_delta".to_owned(),
            Json::Int(stats.view_delta_size as i64),
        ),
        (
            "source_delta".to_owned(),
            Json::Int(stats.source_delta_size as i64),
        ),
        ("cascades".to_owned(), Json::Int(stats.cascades as i64)),
    ]
}

fn ok(mut fields: Vec<(String, Json)>) -> Json {
    let mut all = vec![("ok".to_owned(), Json::Bool(true))];
    all.append(&mut fields);
    Json::Obj(all)
}

/// Encode an error as a response object.
pub fn error_response(e: &ServiceError) -> Json {
    Json::Obj(vec![
        ("ok".to_owned(), Json::Bool(false)),
        ("error".to_owned(), Json::str(e.to_string())),
    ])
}

/// Encode a successful commit.
pub fn commit_response(outcome: &CommitOutcome) -> Json {
    let mut fields = vec![
        (
            "commit_seq".to_owned(),
            Json::Int(outcome.commit_seq as i64),
        ),
        (
            "statements".to_owned(),
            Json::Int(outcome.statements as i64),
        ),
        ("views".to_owned(), Json::Int(outcome.views as i64)),
    ];
    fields.extend(stats_fields(&outcome.stats));
    ok(fields)
}

/// Dispatch one decoded request against a session, producing the reply
/// object. `Quit` replies with `bye` — the transport decides to close.
/// Shared by the TCP server and the in-process [`crate::LocalClient`],
/// so both speak exactly the same protocol.
pub fn dispatch(session: &mut Session, request: &Request) -> Json {
    let result: Result<Json, ServiceError> = match request {
        Request::Ping => Ok(ok(vec![("pong".to_owned(), Json::Bool(true))])),
        Request::Execute { sql } => session.execute(sql).map(|outcome| match outcome {
            ExecOutcome::Applied(stats) => {
                let mut fields = vec![("applied".to_owned(), Json::Bool(true))];
                fields.extend(stats_fields(&stats));
                ok(fields)
            }
            ExecOutcome::Buffered(pending) => {
                ok(vec![("buffered".to_owned(), Json::Int(pending as i64))])
            }
        }),
        Request::Begin => session
            .begin()
            .map(|()| ok(vec![("batch".to_owned(), Json::Bool(true))])),
        Request::Commit => session.commit().map(|o| commit_response(&o)),
        Request::Rollback => session
            .rollback()
            .map(|n| ok(vec![("discarded".to_owned(), Json::Int(n as i64))])),
        // A name no shard owns surfaces as the typed
        // `ServiceError::UnknownRelation` straight from the service.
        Request::Query { relation } => session.service().query(relation).map(|tuples| {
            ok(vec![
                ("relation".to_owned(), Json::str(relation.clone())),
                ("count".to_owned(), Json::Int(tuples.len() as i64)),
                (
                    "tuples".to_owned(),
                    Json::Arr(tuples.iter().map(tuple_json).collect()),
                ),
            ])
        }),
        Request::Stats => Ok(stats_response(session.service(), session.pending())),
        Request::Checkpoint => session
            .service()
            .checkpoint()
            .map(|watermark| ok(vec![("watermark".to_owned(), Json::Int(watermark as i64))])),
        Request::Register { spec, mode } => spec.to_strategy().and_then(|strategy| {
            let service = session.service();
            let seq = service.register_view(strategy, *mode)?;
            Ok(ok(vec![
                ("registered".to_owned(), Json::str(spec.view.name.clone())),
                ("commit_seq".to_owned(), Json::Int(seq as i64)),
                ("shards".to_owned(), Json::Int(service.shard_count() as i64)),
            ]))
        }),
        Request::Unregister { view } => {
            let service = session.service();
            service.unregister_view(view).map(|seq| {
                ok(vec![
                    ("unregistered".to_owned(), Json::str(view.clone())),
                    ("commit_seq".to_owned(), Json::Int(seq as i64)),
                    ("shards".to_owned(), Json::Int(service.shard_count() as i64)),
                ])
            })
        }
        // Stateless by design: an ill-formed or ill-behaved strategy is
        // the *answer* (`valid:false`), not an error.
        Request::Validate { spec } => Ok(validate_response(spec)),
        Request::Quit => Ok(quit_response()),
    };
    result.unwrap_or_else(|e| error_response(&e))
}

/// The `quit` acknowledgement — the connection's last response (the
/// transport closes after writing it).
pub(crate) fn quit_response() -> Json {
    ok(vec![("bye".to_owned(), Json::Bool(true))])
}

/// The `validate` reply: parse the payload, run Algorithm 1, and report
/// the verdict. Every strategy-level failure — bad shape, unsafe rules,
/// a GetPut/PutGet counterexample — is a `valid:false` verdict with the
/// analysis's reason; only malformed *JSON* is a protocol error (caught
/// upstream at request parse time).
fn validate_response(spec: &StrategySpec) -> Json {
    let verdict = spec
        .to_strategy()
        .and_then(|strategy| {
            birds_core::validate(&strategy).map_err(|e| ServiceError::InvalidStrategy {
                reason: e.to_string(),
            })
        })
        .map(|report| (report.valid, report.reason));
    let (valid, reason) = match verdict {
        Ok((valid, reason)) => (valid, reason),
        Err(ServiceError::InvalidStrategy { reason }) => (false, Some(reason)),
        Err(e) => (false, Some(e.to_string())),
    };
    let mut fields = vec![("valid".to_owned(), Json::Bool(valid))];
    if let Some(reason) = reason {
        fields.push(("reason".to_owned(), Json::str(reason)));
    }
    ok(fields)
}

/// The `stats` reply. Lock-free on purpose: `view_names` /
/// `relation_stats` read the shards' published MVCC snapshots, so a
/// stats call never waits on any shard's group commit. `pending` is the
/// session's buffered-statement count, passed in by the caller — the
/// reactor's stateless lane supplies a mirror maintained by session-lane
/// workers rather than locking the session behind a slow commit.
fn stats_response(service: &Service, pending: usize) -> Json {
    let shards = service.shard_count();
    let views: Vec<Json> = service.view_names().into_iter().map(Json::str).collect();
    let relations: Vec<Json> = service
        .relation_stats()
        .into_iter()
        .map(|stats| {
            Json::Obj(vec![
                ("name".to_owned(), Json::str(stats.name)),
                ("tuples".to_owned(), Json::Int(stats.tuples as i64)),
                ("index_hits".to_owned(), Json::Int(stats.index_hits as i64)),
                (
                    "index_misses".to_owned(),
                    Json::Int(stats.index_misses as i64),
                ),
            ])
        })
        .collect();
    ok(vec![
        ("commits".to_owned(), Json::Int(service.commits() as i64)),
        ("pending".to_owned(), Json::Int(pending as i64)),
        ("shards".to_owned(), Json::Int(shards as i64)),
        ("views".to_owned(), Json::Arr(views)),
        ("relations".to_owned(), Json::Arr(relations)),
    ])
}

/// Serve a **stateless-lane** request (see [`Request::is_session_op`])
/// without touching any connection's session: autocommit `execute`,
/// `query`, `ping`, and `checkpoint` run through a scratch session —
/// each autocommit script is its own transaction, so a scratch session
/// is behaviorally identical to the connection's — while `stats` takes
/// the caller-supplied `pending` mirror. Must not be called with
/// session ops (`begin`/`commit`/`rollback`/in-batch `execute`); those
/// would misbehave against a scratch session, so they report a protocol
/// error instead.
pub(crate) fn stateless_response(service: &Service, request: &Request, pending: usize) -> Json {
    match request {
        Request::Stats => stats_response(service, pending),
        Request::Begin | Request::Commit | Request::Rollback => error_response(
            &ServiceError::Protocol("session op routed to the stateless lane".into()),
        ),
        _ => {
            let mut scratch = service.session();
            dispatch(&mut scratch, request)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn union_spec() -> StrategySpec {
        StrategySpec {
            view: Schema::new("v", vec![("a", SortKind::Int)]),
            sources: vec![
                Schema::new("r1", vec![("a", SortKind::Int)]),
                Schema::new("r2", vec![("a", SortKind::Int)]),
            ],
            putdelta: "-r1(X) :- r1(X), not v(X).\n\
                       -r2(X) :- r2(X), not v(X).\n\
                       +r1(X) :- v(X), not r1(X), not r2(X)."
                .to_owned(),
            expected_get: None,
        }
    }

    #[test]
    fn requests_round_trip_through_encode_parse() {
        let requests = [
            Request::Ping,
            Request::Execute {
                sql: "INSERT INTO v VALUES (1, 'a\"b');".to_owned(),
            },
            Request::Begin,
            Request::Commit,
            Request::Rollback,
            Request::Query {
                relation: "v".to_owned(),
            },
            Request::Stats,
            Request::Checkpoint,
            Request::Register {
                spec: union_spec(),
                mode: StrategyMode::Incremental,
            },
            Request::Register {
                spec: StrategySpec {
                    expected_get: Some("v(X) :- r1(X). v(X) :- r2(X).".to_owned()),
                    ..union_spec()
                },
                mode: StrategyMode::Original,
            },
            Request::Unregister {
                view: "v".to_owned(),
            },
            Request::Validate { spec: union_spec() },
            Request::Quit,
        ];
        for r in requests {
            let line = r.encode();
            assert!(!line.contains('\n'), "one line per request: {line}");
            assert_eq!(Request::parse(&line).unwrap(), r);
        }
    }

    #[test]
    fn malformed_requests_are_protocol_errors() {
        for line in [
            "not json",
            "{}",
            r#"{"op": 7}"#,
            r#"{"op":"nope"}"#,
            r#"{"op":"execute"}"#,
            r#"{"op":"query"}"#,
            r#"{"op":"unregister"}"#,
            r#"{"op":"register"}"#,
            r#"{"op":"register","view":{"name":"v","columns":[["a","int"]]},"sources":[],"putdelta":"x","mode":"sometimes"}"#,
            r#"{"op":"validate","view":{"name":"v","columns":[["a","nope"]]},"sources":[],"putdelta":"x"}"#,
        ] {
            assert!(
                matches!(Request::parse(line), Err(ServiceError::Protocol(_))),
                "{line}"
            );
        }
    }

    #[test]
    fn envelope_extracts_and_salvages_ids() {
        let env = Envelope::parse(r#"{"op":"ping","id":7}"#).unwrap();
        assert_eq!(env.id, Some(Json::Int(7)));
        assert_eq!(env.request, Request::Ping);

        let env = Envelope::parse(r#"{"op":"ping"}"#).unwrap();
        assert_eq!(env.id, None);

        // Malformed op, but the id survives for the error response.
        let (id, err) = Envelope::parse(r#"{"op":"nope","id":"abc"}"#).unwrap_err();
        assert_eq!(id, Some(Json::str("abc")));
        assert!(matches!(err, ServiceError::Protocol(_)));

        // Not JSON at all: no id to salvage.
        let (id, _) = Envelope::parse("garbage").unwrap_err();
        assert_eq!(id, None);
    }

    #[test]
    fn with_id_echoes_into_responses() {
        let tagged = with_id(
            ok(vec![("pong".to_owned(), Json::Bool(true))]),
            Some(Json::Int(42)),
        );
        assert_eq!(tagged.get("id").and_then(Json::as_i64), Some(42));
        let untagged = with_id(ok(vec![]), None);
        assert!(untagged.get("id").is_none());
    }

    #[test]
    fn encode_with_id_round_trips() {
        let line = Request::Ping.encode_with_id(Json::str("req-1"));
        let env = Envelope::parse(&line).unwrap();
        assert_eq!(env.request, Request::Ping);
        assert_eq!(env.id, Some(Json::str("req-1")));
    }

    #[test]
    fn salvage_id_finds_top_level_ids_in_prefixes() {
        // The common pipelining shapes: id early, value cut off later.
        assert_eq!(
            salvage_id(r#"{"op":"execute","id":42,"sql":"INSERT INTO v VAL"#),
            Some(Json::Int(42))
        );
        assert_eq!(
            salvage_id(r#"{"id":"req-7","op":"execute","sql":"xxxxxxx"#),
            Some(Json::str("req-7"))
        );
        assert_eq!(salvage_id(r#"{"id":true,"sql":"#), Some(Json::Bool(true)));
        assert_eq!(salvage_id(r#"{"id":-3.5,"op":"#), Some(Json::Float(-3.5)));
    }

    #[test]
    fn salvage_id_refuses_ambiguous_or_nested_shapes() {
        // No id at all.
        assert_eq!(salvage_id(r#"{"op":"execute","sql":"xxxx"#), None);
        // "id" as a *value*, not a key.
        assert_eq!(salvage_id(r#"{"op":"id","sql":"xxxx"#), None);
        // "id" inside a nested object or array is not the request id.
        assert_eq!(salvage_id(r#"{"meta":{"id":9},"sql":"xxxx"#), None);
        assert_eq!(salvage_id(r#"{"tags":["id",7],"sql":"xxxx"#), None);
        // An id whose value the cut truncated must not be echoed wrong:
        // the full number (1234...) may continue past the prefix.
        assert_eq!(salvage_id(r#"{"sql":"x","id":12"#), None);
        assert_eq!(salvage_id(r#"{"sql":"x","id":"unterminat"#), None);
        // Escaped quotes inside earlier strings don't derail the scan.
        assert_eq!(
            salvage_id(r#"{"sql":"say \"hi\" {not json}","id":5,"x":"#),
            Some(Json::Int(5))
        );
    }

    #[test]
    fn error_responses_carry_the_message() {
        let resp = error_response(&ServiceError::NoBatchOpen);
        assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(false));
        assert!(resp
            .get("error")
            .and_then(Json::as_str)
            .unwrap()
            .contains("no batch"));
    }
}
