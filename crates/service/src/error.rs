//! Service-layer errors.

use birds_engine::EngineError;
use std::fmt;

/// Result alias for service operations.
pub type ServiceResult<T> = Result<T, ServiceError>;

/// Errors raised by the service layer.
#[derive(Debug, Clone, PartialEq)]
pub enum ServiceError {
    /// SQL parsing failed.
    Parse(String),
    /// The engine rejected the transaction (constraint violation,
    /// unknown view, contradictory delta, …).
    Engine(EngineError),
    /// `begin` while a batch is already open.
    BatchAlreadyOpen,
    /// `commit` / `rollback` without an open batch.
    NoBatchOpen,
    /// A malformed protocol request (bad JSON, unknown op, missing
    /// field).
    Protocol(String),
    /// A request line exceeded the server's size cap; the line was
    /// discarded without being buffered in full.
    RequestTooLarge {
        /// The configured cap, in bytes.
        limit: usize,
    },
    /// An internal synchronization primitive was poisoned by a panicking
    /// request (e.g. a group-commit epoch leader). The failing request
    /// gets this typed error instead of propagating the panic to its
    /// connection thread; shard data itself is recovered (see
    /// `locks.rs`).
    Poisoned(String),
    /// The durability subsystem failed: recovery could not read or
    /// replay the data directory, or a WAL append/sync failed at commit
    /// time. A commit that gets this error was **not acknowledged as
    /// durable** — it may or may not have applied in memory, exactly
    /// like a commit interrupted by a crash.
    Durability(String),
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::Parse(m) => write!(f, "parse error: {m}"),
            ServiceError::Engine(e) => write!(f, "{e}"),
            ServiceError::BatchAlreadyOpen => {
                write!(f, "a batch is already open in this session")
            }
            ServiceError::NoBatchOpen => write!(f, "no batch is open in this session"),
            ServiceError::Protocol(m) => write!(f, "protocol error: {m}"),
            ServiceError::RequestTooLarge { limit } => {
                write!(f, "request exceeds the {limit}-byte line limit")
            }
            ServiceError::Poisoned(what) => {
                write!(f, "internal error: poisoned {what}")
            }
            ServiceError::Durability(m) => write!(f, "durability error: {m}"),
        }
    }
}

impl std::error::Error for ServiceError {}

impl From<EngineError> for ServiceError {
    fn from(e: EngineError) -> Self {
        ServiceError::Engine(e)
    }
}
