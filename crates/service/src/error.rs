//! Service-layer errors.
//!
//! ## Error taxonomy
//!
//! The service reports failures through exactly one enum,
//! [`ServiceError`], whose variants split along *who must act*:
//!
//! * **Caller mistakes** — fix the request and resend:
//!   [`ServiceError::Parse`] (bad SQL),
//!   [`ServiceError::Protocol`] (malformed wire request),
//!   [`ServiceError::RequestTooLarge`] (oversized line, dropped
//!   unbuffered), [`ServiceError::UnknownRelation`] (a read against a
//!   name no shard owns — carries the name),
//!   [`ServiceError::BatchAlreadyOpen`] / [`ServiceError::NoBatchOpen`]
//!   (session-mode misuse), [`ServiceError::ConnectionLimit`] (the
//!   server is at `--max-conns`; the connection is rejected at accept
//!   time — retry once capacity frees up).
//! * **Engine rejections** — the request was well-formed but the data
//!   said no: [`ServiceError::Engine`] wraps the typed
//!   [`EngineError`] (constraint violation, not-a-view, contradictory
//!   delta, …). Writes that target an unknown *view* surface as
//!   `Engine(NotAView)`, because updatability — not mere existence —
//!   is what the write path checks; reads use the service-level
//!   [`ServiceError::UnknownRelation`], since any relation (base table
//!   or view) is readable.
//! * **Registration rejections** — a live `register` / `unregister`
//!   was refused before touching the topology:
//!   [`ServiceError::ViewExists`] (the view name is already registered
//!   — idempotent retries can treat it as success),
//!   [`ServiceError::InvalidStrategy`] (the strategy failed shape
//!   checks or the solver's validation; carries the reason verbatim),
//!   and [`ServiceError::RelationConflict`] (the name collides with an
//!   existing base relation, a named source relation conflicts with a
//!   live relation's arity, or an unregister targets a view another
//!   view's footprint still depends on). All three leave every shard
//!   exactly as it was: pre-checks run before the quiesce barrier, and
//!   an engine-side failure re-splits the merged component unchanged.
//! * **Service faults** — the operator (or the service's own healing)
//!   must act: [`ServiceError::Poisoned`] (a request thread panicked
//!   holding an internal primitive; the data itself recovers) and
//!   [`ServiceError::Durability`] (recovery or a WAL append/sync
//!   failed; a commit reporting it was **never acknowledged durable**).
//!
//! Everything is `Clone + PartialEq`, so epoch leaders can fan one
//! failure out to every group-commit member and tests can assert on
//! exact errors:
//!
//! ```
//! use birds_service::ServiceError;
//!
//! let err = ServiceError::UnknownRelation("orders".into());
//! assert_eq!(err.to_string(), "unknown relation 'orders'");
//! assert_eq!(err, ServiceError::UnknownRelation("orders".into()));
//! ```

use birds_engine::EngineError;
use std::fmt;

/// Result alias for service operations.
pub type ServiceResult<T> = Result<T, ServiceError>;

/// Errors raised by the service layer.
#[derive(Debug, Clone, PartialEq)]
pub enum ServiceError {
    /// SQL parsing failed.
    Parse(String),
    /// The engine rejected the transaction (constraint violation,
    /// unknown view, contradictory delta, …).
    Engine(EngineError),
    /// `begin` while a batch is already open.
    BatchAlreadyOpen,
    /// `commit` / `rollback` without an open batch.
    NoBatchOpen,
    /// A read (`query`, `stats`) named a relation that exists in no
    /// shard. Carries the unknown name. Writes to unknown targets
    /// report [`EngineError::NotAView`] instead — see the module docs'
    /// taxonomy.
    UnknownRelation(String),
    /// A malformed protocol request (bad JSON, unknown op, missing
    /// field).
    Protocol(String),
    /// A request line exceeded the server's size cap; the line was
    /// discarded without being buffered in full.
    RequestTooLarge {
        /// The configured cap, in bytes.
        limit: usize,
    },
    /// The server is at its `--max-conns` live-connection limit: the
    /// new connection was answered with this error and closed at accept
    /// time (no session was created). Retry once existing connections
    /// close.
    ConnectionLimit {
        /// The configured live-connection cap.
        limit: usize,
    },
    /// An internal synchronization primitive was poisoned by a panicking
    /// request (e.g. a group-commit epoch leader). The failing request
    /// gets this typed error instead of propagating the panic to the
    /// worker serving it; shard data itself is recovered (see
    /// `locks.rs`).
    Poisoned(String),
    /// The durability subsystem failed: recovery could not read or
    /// replay the data directory, or a WAL append/sync failed at commit
    /// time. A commit that gets this error was **not acknowledged as
    /// durable** — it may or may not have applied in memory, exactly
    /// like a commit interrupted by a crash.
    Durability(String),
    /// A `register` named a view that is already registered. The live
    /// topology is unchanged; a client retrying a registration may
    /// treat this as success if the definition matches what it sent.
    ViewExists(String),
    /// A `register` carried a strategy that failed validation — shape
    /// checks (safety, non-recursion, delta-rule targets) or the
    /// solver's well-behavedness analysis. Nothing was registered.
    InvalidStrategy {
        /// The validator's reason, verbatim.
        reason: String,
    },
    /// A registration or deregistration conflicts with the live
    /// relation catalogue: the view name collides with an existing
    /// non-view relation, a declared source exists with a different
    /// arity, or the unregistered view is still in another view's
    /// footprint closure. Carries the conflicting relation name.
    RelationConflict(String),
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::Parse(m) => write!(f, "parse error: {m}"),
            ServiceError::Engine(e) => write!(f, "{e}"),
            ServiceError::BatchAlreadyOpen => {
                write!(f, "a batch is already open in this session")
            }
            ServiceError::NoBatchOpen => write!(f, "no batch is open in this session"),
            ServiceError::UnknownRelation(name) => {
                write!(f, "unknown relation '{name}'")
            }
            ServiceError::Protocol(m) => write!(f, "protocol error: {m}"),
            ServiceError::RequestTooLarge { limit } => {
                write!(f, "request exceeds the {limit}-byte line limit")
            }
            ServiceError::ConnectionLimit { limit } => {
                write!(f, "server at its {limit}-connection limit; retry later")
            }
            ServiceError::Poisoned(what) => {
                write!(f, "internal error: poisoned {what}")
            }
            ServiceError::Durability(m) => write!(f, "durability error: {m}"),
            ServiceError::ViewExists(name) => {
                write!(f, "view '{name}' is already registered")
            }
            ServiceError::InvalidStrategy { reason } => {
                write!(f, "invalid strategy: {reason}")
            }
            ServiceError::RelationConflict(name) => {
                write!(f, "relation conflict on '{name}'")
            }
        }
    }
}

impl std::error::Error for ServiceError {}

impl From<EngineError> for ServiceError {
    fn from(e: EngineError) -> Self {
        ServiceError::Engine(e)
    }
}
