//! Minimal Linux syscall shim for the epoll reactor — the offline
//! counterpart of the `libc` crate, in the same spirit as the vendored
//! dependency stubs: the build environment has no crates.io access, so
//! the handful of symbols the reactor needs (`epoll_*`, `eventfd`,
//! `listen`, `signal`, `write`) are declared directly against the C
//! library std already links. Everything std *can* do (nonblocking
//! mode, `TCP_NODELAY`, closing fds via `OwnedFd`/`File` drops) goes
//! through std; this module only covers what std has no API for.
//!
//! All wrappers are safe functions with the `unsafe` confined to the
//! FFI call itself; errors surface as [`std::io::Error`] from `errno`.

use std::fs::File;
use std::io::{Read, Write};
use std::os::fd::{AsRawFd, FromRawFd, OwnedFd, RawFd};
use std::os::raw::{c_int, c_uint, c_void};
use std::sync::atomic::{AtomicBool, AtomicI32, Ordering};

// Readiness bits (linux/eventpoll.h).
pub const EPOLLIN: u32 = 0x001;
pub const EPOLLOUT: u32 = 0x004;
pub const EPOLLERR: u32 = 0x008;
pub const EPOLLHUP: u32 = 0x010;
pub const EPOLLRDHUP: u32 = 0x2000;

const EPOLL_CTL_ADD: c_int = 1;
const EPOLL_CTL_DEL: c_int = 2;
const EPOLL_CTL_MOD: c_int = 3;
const EPOLL_CLOEXEC: c_int = 0o2000000;
const EFD_NONBLOCK: c_int = 0o4000;
const EFD_CLOEXEC: c_int = 0o2000000;
const SIGTERM: c_int = 15;
const EINTR: i32 = 4;

/// One `struct epoll_event`. The kernel ABI packs it on x86-64 (12
/// bytes, unaligned `data`); other architectures use natural alignment.
#[repr(C)]
#[cfg_attr(target_arch = "x86_64", repr(packed))]
#[derive(Clone, Copy)]
pub struct EpollEvent {
    /// Ready-state bit set (`EPOLL*`).
    pub events: u32,
    /// The user token registered with the fd.
    pub data: u64,
}

impl EpollEvent {
    /// An empty slot for the `epoll_wait` output buffer.
    pub fn zeroed() -> EpollEvent {
        EpollEvent { events: 0, data: 0 }
    }
}

extern "C" {
    fn epoll_create1(flags: c_int) -> c_int;
    fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
    fn epoll_wait(epfd: c_int, events: *mut EpollEvent, maxevents: c_int, timeout: c_int) -> c_int;
    fn eventfd(initval: c_uint, flags: c_int) -> c_int;
    fn listen(sockfd: c_int, backlog: c_int) -> c_int;
    fn signal(signum: c_int, handler: usize) -> usize;
    fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
}

fn cvt(ret: c_int) -> std::io::Result<c_int> {
    if ret < 0 {
        Err(std::io::Error::last_os_error())
    } else {
        Ok(ret)
    }
}

/// An epoll instance. Closed on drop (via [`OwnedFd`]).
pub struct Epoll {
    fd: OwnedFd,
}

impl Epoll {
    /// `epoll_create1(EPOLL_CLOEXEC)`.
    pub fn new() -> std::io::Result<Epoll> {
        let fd = cvt(unsafe { epoll_create1(EPOLL_CLOEXEC) })?;
        Ok(Epoll {
            fd: unsafe { OwnedFd::from_raw_fd(fd) },
        })
    }

    fn ctl(&self, op: c_int, fd: RawFd, events: u32, data: u64) -> std::io::Result<()> {
        let mut ev = EpollEvent { events, data };
        cvt(unsafe { epoll_ctl(self.fd.as_raw_fd(), op, fd, &mut ev) }).map(|_| ())
    }

    /// Register `fd` with an interest set and a token.
    pub fn add(&self, fd: RawFd, events: u32, data: u64) -> std::io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, events, data)
    }

    /// Change an already-registered fd's interest set.
    pub fn modify(&self, fd: RawFd, events: u32, data: u64) -> std::io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, events, data)
    }

    /// Deregister `fd`.
    pub fn delete(&self, fd: RawFd) -> std::io::Result<()> {
        self.ctl(EPOLL_CTL_DEL, fd, 0, 0)
    }

    /// Wait for readiness. `timeout_ms < 0` blocks indefinitely. A
    /// signal-interrupted wait reports zero events instead of an error
    /// (the caller's loop re-checks its shutdown flag either way).
    pub fn wait(&self, events: &mut [EpollEvent], timeout_ms: i32) -> std::io::Result<usize> {
        let n = unsafe {
            epoll_wait(
                self.fd.as_raw_fd(),
                events.as_mut_ptr(),
                events.len() as c_int,
                timeout_ms,
            )
        };
        if n < 0 {
            let err = std::io::Error::last_os_error();
            if err.raw_os_error() == Some(EINTR) {
                return Ok(0);
            }
            return Err(err);
        }
        Ok(n as usize)
    }
}

/// A nonblocking eventfd: the reactor's wakeup channel. Worker threads
/// (and the SIGTERM handler) `notify` it; the reactor registers it in
/// epoll and `drain`s it on readiness.
pub struct EventFd {
    file: File,
}

impl EventFd {
    /// `eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC)`.
    pub fn new() -> std::io::Result<EventFd> {
        let fd = cvt(unsafe { eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC) })?;
        Ok(EventFd {
            file: unsafe { File::from_raw_fd(fd) },
        })
    }

    /// The raw fd, for epoll registration (and the signal handler).
    pub fn raw_fd(&self) -> RawFd {
        self.file.as_raw_fd()
    }

    /// Bump the counter, waking any `epoll_wait` watching it. Best
    /// effort: an overflowing counter (EAGAIN) is already "signalled".
    pub fn notify(&self) {
        let _ = (&self.file).write(&1u64.to_ne_bytes());
    }

    /// Reset the counter to zero so level-triggered epoll quiesces.
    pub fn drain(&self) {
        let mut buf = [0u8; 8];
        let _ = (&self.file).read(&mut buf);
    }
}

/// Re-issue `listen(2)` on an already-listening socket to change its
/// accept backlog (Linux allows this; the kernel clamps to
/// `net.core.somaxconn`). Used by the `--backlog` flag for
/// connection-storm workloads where the default 128 drops SYNs.
pub fn set_listen_backlog(fd: RawFd, backlog: i32) -> std::io::Result<()> {
    cvt(unsafe { listen(fd, backlog) }).map(|_| ())
}

/// Set once a SIGTERM handler has been installed; the reactor that
/// enabled signal shutdown treats it as its own shutdown flag.
pub static SIGTERM_FLAG: AtomicBool = AtomicBool::new(false);

static SIGTERM_FD: AtomicI32 = AtomicI32::new(-1);

extern "C" fn on_sigterm(_sig: c_int) {
    // Async-signal-safe by construction: one atomic store + one
    // write(2) on an eventfd. No allocation, no locks, no std::io.
    SIGTERM_FLAG.store(true, Ordering::SeqCst);
    let fd = SIGTERM_FD.load(Ordering::SeqCst);
    if fd >= 0 {
        let one: u64 = 1;
        let _ = unsafe { write(fd, (&raw const one).cast::<c_void>(), 8) };
    }
}

/// Install a SIGTERM handler that sets [`SIGTERM_FLAG`] and notifies
/// `wakeup_fd` (an eventfd), so a blocked `epoll_wait` observes the
/// request immediately. Process-global: intended for the `birds-serve`
/// binary, which runs exactly one server.
pub fn install_sigterm_notify(wakeup_fd: RawFd) {
    SIGTERM_FD.store(wakeup_fd, Ordering::SeqCst);
    unsafe { signal(SIGTERM, on_sigterm as *const () as usize) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eventfd_notify_wakes_epoll_and_drain_quiesces() {
        let epoll = Epoll::new().unwrap();
        let efd = EventFd::new().unwrap();
        epoll.add(efd.raw_fd(), EPOLLIN, 7).unwrap();

        let mut events = vec![EpollEvent::zeroed(); 4];
        // Nothing signalled yet: a zero-timeout wait reports no events.
        assert_eq!(epoll.wait(&mut events, 0).unwrap(), 0);

        efd.notify();
        efd.notify();
        let n = epoll.wait(&mut events, 1000).unwrap();
        assert_eq!(n, 1);
        let (bits, data) = (events[0].events, events[0].data);
        assert_ne!(bits & EPOLLIN, 0);
        assert_eq!(data, 7);

        // One drain resets the counter: the level-triggered fd quiesces.
        efd.drain();
        assert_eq!(epoll.wait(&mut events, 0).unwrap(), 0);
    }

    #[test]
    fn epoll_tracks_interest_modifications() {
        use std::io::Write;
        use std::net::{TcpListener, TcpStream};
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (server, _) = listener.accept().unwrap();

        let epoll = Epoll::new().unwrap();
        let fd = server.as_raw_fd();
        epoll.add(fd, EPOLLIN, 1).unwrap();

        let mut events = vec![EpollEvent::zeroed(); 4];
        assert_eq!(epoll.wait(&mut events, 0).unwrap(), 0, "no data yet");

        (&client).write_all(b"x").unwrap();
        assert_eq!(epoll.wait(&mut events, 1000).unwrap(), 1);

        // Dropping read interest silences the (still readable) fd;
        // write interest reports immediately on an idle socket.
        epoll.modify(fd, 0, 1).unwrap();
        assert_eq!(epoll.wait(&mut events, 0).unwrap(), 0);
        epoll.modify(fd, EPOLLOUT, 1).unwrap();
        assert_eq!(epoll.wait(&mut events, 1000).unwrap(), 1);
        let bits = events[0].events;
        assert_ne!(bits & EPOLLOUT, 0);

        epoll.delete(fd).unwrap();
        assert_eq!(epoll.wait(&mut events, 0).unwrap(), 0);
    }
}
