//! The lock manager: ordered reader-writer locking over a fixed set of
//! slots.
//!
//! Every lockable resource (for the service: one footprint shard — a
//! connected component of view dependency footprints, see
//! [`crate::footprint`]) gets a [`LockId`] at construction. A commit
//! acquires the write locks of every shard in its footprint through
//! [`LockManager::write_set`], which sorts and deduplicates the ids and
//! acquires strictly ascending; shared acquisition follows the same
//! order ([`LockManager::read_all`] — a primitive the service itself no
//! longer needs on its read path, which goes through published MVCC
//! snapshots instead, see [`crate::snapshot`]). Because
//! **every** multi-lock acquisition in the process follows the same
//! global id order and never requests a lock while holding a higher one,
//! the wait-for graph cannot contain a cycle: the manager is
//! deadlock-free by construction, whatever footprints overlap (see the
//! `locks_stress` integration test).
//!
//! Poisoning: a panicking holder poisons its `RwLock`; the manager
//! *recovers* the guard (`PoisonError::into_inner`) instead of
//! propagating the panic to unrelated sessions. This is sound here
//! because everything the service stores in a slot (an [`Engine`]
//! component) rolls its mutations back on error, so the data a
//! panicking request leaves behind is structurally intact. Sync
//! primitives whose invariants a panic *can* break (the group-commit
//! queue) surface [`crate::ServiceError::Poisoned`] instead — see
//! [`crate::group_commit`].
//!
//! Successor managers: live re-sharding (dynamic view registration, see
//! `Service::register_view`) replaces the topology while commits on
//! untouched shards are in flight. Slots are therefore individually
//! `Arc`-shared: a successor manager built with
//! `LockManager::from_slots` *reuses* the slot `Arc`s of surviving
//! shards, so a thread blocked on (or holding) a surviving shard's lock
//! under the old manager is blocked on the *same* lock in the new one.
//! LockIds stay globally consistent across generations — id `i` always
//! names the same `Arc` in every manager that carries it — which is what
//! keeps ascending-order acquisition deadlock-free even when old-
//! and new-generation threads interleave.
//!
//! [`Engine`]: birds_engine::Engine

use std::sync::{Arc, RwLock, RwLockReadGuard, RwLockWriteGuard};

/// Identifier of one lock slot. Ids are dense indices; their `Ord` is
/// the global acquisition order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LockId(usize);

impl LockId {
    /// Crate-internal constructor: only sharding code that builds the
    /// manager and the route table from the same component list may mint
    /// ids (see [`crate::footprint::partition`]).
    pub(crate) fn new(index: usize) -> LockId {
        LockId(index)
    }

    /// The slot index behind this id.
    pub fn index(self) -> usize {
        self.0
    }
}

/// A fixed set of reader-writer locks acquired in global id order.
///
/// Slots are `Arc`-shared so a successor manager (live re-sharding) can
/// carry surviving slots over by reference — see the module docs.
pub struct LockManager<T> {
    slots: Vec<Arc<RwLock<T>>>,
}

impl<T> LockManager<T> {
    /// One lock per item; ids are handed out in `items` order.
    pub fn new(items: Vec<T>) -> Self {
        LockManager {
            slots: items
                .into_iter()
                .map(|item| Arc::new(RwLock::new(item)))
                .collect(),
        }
    }

    /// Build a successor manager from pre-shared slots: surviving slots
    /// of the predecessor (same `Arc`, same id) plus freshly allocated
    /// ones. Crate-internal — only re-sharding code may construct
    /// managers whose ids must stay consistent with a predecessor's.
    pub(crate) fn from_slots(slots: Vec<Arc<RwLock<T>>>) -> Self {
        LockManager { slots }
    }

    /// The shared slot behind `id` — for carrying a surviving shard's
    /// lock into a successor manager.
    pub(crate) fn slot(&self, id: LockId) -> Arc<RwLock<T>> {
        Arc::clone(&self.slots[id.0])
    }

    /// Number of lock slots.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// `true` when the manager has no slots.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// The id of slot `index`, if it exists.
    pub fn id(&self, index: usize) -> Option<LockId> {
        (index < self.slots.len()).then_some(LockId(index))
    }

    /// All ids in acquisition order.
    pub fn ids(&self) -> impl Iterator<Item = LockId> {
        (0..self.slots.len()).map(LockId)
    }

    /// Shared lock on one slot (poison-recovering, see module docs).
    pub fn read(&self, id: LockId) -> RwLockReadGuard<'_, T> {
        self.slots[id.0].read().unwrap_or_else(|e| e.into_inner())
    }

    /// Exclusive lock on one slot (poison-recovering).
    pub fn write(&self, id: LockId) -> RwLockWriteGuard<'_, T> {
        self.slots[id.0].write().unwrap_or_else(|e| e.into_inner())
    }

    /// Exclusive lock on a *set* of slots: `ids` is sorted and
    /// deduplicated, then acquired strictly ascending — the global order
    /// that makes overlapping footprints deadlock-free. Returns the
    /// guards tagged with their ids (ascending).
    pub fn write_set(&self, mut ids: Vec<LockId>) -> Vec<(LockId, RwLockWriteGuard<'_, T>)> {
        ids.sort_unstable();
        ids.dedup();
        ids.into_iter().map(|id| (id, self.write(id))).collect()
    }

    /// Shared lock on every slot, in id order — a consistent
    /// whole-service snapshot.
    pub fn read_all(&self) -> Vec<RwLockReadGuard<'_, T>> {
        self.ids().map(|id| self.read(id)).collect()
    }

    /// Tear down the manager and recover the slot contents in id order.
    ///
    /// Panics if any slot is still shared with another manager
    /// generation — callers tear down only after every predecessor
    /// topology has been dropped (the service guarantees this by
    /// consuming its last `Arc<Topology>`).
    pub fn into_inner(self) -> Vec<T> {
        self.slots
            .into_iter()
            .map(|slot| {
                Arc::try_unwrap(slot)
                    .unwrap_or_else(|_| panic!("lock slot still shared during teardown"))
                    .into_inner()
                    .unwrap_or_else(|e| e.into_inner())
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_set_sorts_and_dedups() {
        let manager = LockManager::new(vec![0u32, 1, 2, 3]);
        let ids = vec![
            manager.id(3).unwrap(),
            manager.id(1).unwrap(),
            manager.id(3).unwrap(),
        ];
        let guards = manager.write_set(ids);
        let order: Vec<usize> = guards.iter().map(|(id, _)| id.index()).collect();
        assert_eq!(order, vec![1, 3]);
    }

    #[test]
    fn poisoned_slots_are_recovered() {
        let manager = std::sync::Arc::new(LockManager::new(vec![7u32]));
        let id = manager.id(0).unwrap();
        let clone = manager.clone();
        // Poison the lock by panicking while holding it.
        let _ = std::thread::spawn(move || {
            let _guard = clone.write(clone.id(0).unwrap());
            panic!("poison");
        })
        .join();
        assert_eq!(*manager.read(id), 7, "read recovers a poisoned lock");
        *manager.write(id) = 8;
        assert_eq!(*manager.read(id), 8);
    }

    #[test]
    fn out_of_range_ids_are_rejected() {
        let manager = LockManager::new(vec![(); 2]);
        assert!(manager.id(1).is_some());
        assert!(manager.id(2).is_none());
        assert_eq!(manager.ids().count(), 2);
    }
}
