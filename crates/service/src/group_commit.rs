//! Group commit: coalesce concurrent autocommit transactions into one
//! incremental pass per view.
//!
//! Clients that never call `begin`/`commit` pay one strategy evaluation
//! per statement under the PR-3 design. This module gives them
//! batch-level throughput anyway: each shard has a `GroupCommitter`
//! queue; an autocommit transaction enqueues itself and the first
//! submitter to win the shard's write lock becomes the **epoch leader**,
//! draining everything queued at that moment and applying it as one
//! *net* delta per view (Algorithm 2 over the concatenated statements —
//! exactly the coalescing a session batch gets). Followers find their
//! result filled in when the leader releases the lock. With the default
//! zero epoch window the epoch is simply the leader's lock tenure:
//! uncontended clients keep single-statement latency, contended shards
//! batch automatically. A non-zero window additionally parks each
//! submitter before its first leadership attempt, trading latency for
//! deeper epochs (the fixed-epoch design of Obladi, arXiv:1809.10559).
//!
//! ## Semantics
//!
//! An epoch commits **atomically per view**: every member transaction
//! gets its own commit sequence number (assigned in epoch order, so the
//! global sequence stays dense and replayable), but the integrity
//! constraints are checked once against the epoch's net effect — the
//! same contract a multi-statement session batch has. When the net
//! delta is rejected, the leader falls back to replaying the members
//! individually, so per-transaction error attribution (and the
//! one-bad-transaction-doesn't-abort-its-neighbours property) is
//! preserved on the failure path. Member stats report the epoch's
//! totals, not a per-statement split.
//!
//! ## Durability
//!
//! With a WAL attached (`EpochWal`), every applied group is appended
//! to the shard's segment — the epoch *is* the WAL batch — while the
//! shard lock is still held, and **no member learns it committed until
//! the epoch's records are on disk** (per the fsync policy): result
//! slots are filled only after the epoch-end sync. A sync or append
//! failure turns the affected members' results into
//! [`ServiceError::Durability`] — the transaction may have applied in
//! memory, but it was never acknowledged, so "commit returned OK ⇒
//! survives a crash" still holds.
//!
//! Panic safety: the queue and result slots are `Mutex`es; if a leader
//! panics mid-epoch, waiters see the poisoned mutex and surface
//! [`ServiceError::Poisoned`] instead of panicking their own connection
//! threads (satellite of the sharding work — see `locks.rs` for why the
//! shard locks themselves recover instead).

use crate::error::{ServiceError, ServiceResult};
use birds_engine::{Engine, ExecutionStats};
use birds_sql::DmlStatement;
use birds_wal::{FsyncPolicy, SegmentWriter, WalRecord};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// What a completed transaction hands back to its submitter.
pub(crate) type TxResult = ServiceResult<(u64, ExecutionStats)>;

/// The durability hookup an epoch leader writes through: the owning
/// shard's segment writer plus the service's fsync policy.
pub(crate) struct EpochWal<'a> {
    pub(crate) writer: &'a Mutex<SegmentWriter>,
    pub(crate) fsync: FsyncPolicy,
}

impl EpochWal<'_> {
    /// Append one record under the writer mutex. The segment writer
    /// seals itself on a real IO failure, so a shard whose log may be
    /// torn mid-file refuses every further append — no commit is ever
    /// acknowledged with its record buried behind a torn region.
    pub(crate) fn append(&self, record: &WalRecord) -> ServiceResult<()> {
        let mut writer = self
            .writer
            .lock()
            .map_err(|_| ServiceError::Poisoned("wal segment writer".into()))?;
        writer
            .append(record, self.fsync)
            .map_err(|e| ServiceError::Durability(format!("wal append failed: {e}")))
    }

    /// The epoch-end sync, when the policy defers to epoch granularity.
    pub(crate) fn sync_epoch(&self) -> ServiceResult<()> {
        if self.fsync.sync_each_epoch() && !self.fsync.sync_each_record() {
            let mut writer = self
                .writer
                .lock()
                .map_err(|_| ServiceError::Poisoned("wal segment writer".into()))?;
            writer
                .sync()
                .map_err(|e| ServiceError::Durability(format!("wal sync failed: {e}")))?;
        }
        Ok(())
    }
}

/// One autocommit transaction waiting for an epoch leader.
pub(crate) struct PendingTx {
    /// The single view (or, erroneously, base relation — the engine
    /// rejects it) every statement targets.
    view: String,
    statements: Vec<DmlStatement>,
    result: Mutex<Option<TxResult>>,
}

impl PendingTx {
    pub(crate) fn new(view: String, statements: Vec<DmlStatement>) -> Arc<PendingTx> {
        Arc::new(PendingTx {
            view,
            statements,
            result: Mutex::new(None),
        })
    }

    /// The view every statement of this transaction targets — the
    /// routing key a live re-shard uses to move a queued transaction to
    /// its new shard's committer.
    pub(crate) fn view(&self) -> &str {
        &self.view
    }

    /// Take the finished result, `Ok(None)` while still pending. A
    /// poisoned slot means the epoch leader panicked mid-fill; surface
    /// that as a typed error rather than propagating the panic.
    pub(crate) fn take_result(&self) -> ServiceResult<Option<TxResult>> {
        match self.result.lock() {
            Ok(mut slot) => Ok(slot.take()),
            Err(_) => Err(ServiceError::Poisoned(
                "group-commit result slot (epoch leader panicked)".into(),
            )),
        }
    }

    /// Deliver the result. `pub(crate)` so a live re-shard can fail a
    /// queued transaction whose view was just unregistered.
    pub(crate) fn fill(&self, result: TxResult) {
        if let Ok(mut slot) = self.result.lock() {
            *slot = Some(result);
        }
        // A poisoned slot belongs to a submitter that already panicked;
        // nothing is waiting for the result.
    }
}

/// Per-shard queue of pending autocommit transactions.
///
/// A committer belongs to one topology generation. When a live re-shard
/// retires its shard, the registrar **closes** the queue under the same
/// mutex it drains it with ([`GroupCommitter::close_and_drain`]) and
/// moves every queued transaction to the successor topology's
/// committers — so a transaction is only ever queued in a committer
/// whose shard is live, and an enqueue that raced the close is told so
/// ([`GroupCommitter::enqueue`] returns `false`) and retries against
/// the current topology.
#[derive(Default)]
pub(crate) struct GroupCommitter {
    queue: Mutex<CommitterQueue>,
}

#[derive(Default)]
struct CommitterQueue {
    pending: VecDeque<Arc<PendingTx>>,
    /// Set once, by the re-shard that retired this committer's shard.
    closed: bool,
}

impl GroupCommitter {
    pub(crate) fn new() -> GroupCommitter {
        GroupCommitter::default()
    }

    /// Queue a transaction for the next epoch. Returns `false` (without
    /// queueing) when the committer was closed by a live re-shard — the
    /// submitter reloads the topology and enqueues there instead.
    pub(crate) fn enqueue(&self, tx: Arc<PendingTx>) -> ServiceResult<bool> {
        let mut queue = self
            .queue
            .lock()
            .map_err(|_| ServiceError::Poisoned("group-commit queue".into()))?;
        if queue.closed {
            return Ok(false);
        }
        queue.pending.push_back(tx);
        Ok(true)
    }

    /// Drain everything queued right now (the epoch of whichever leader
    /// holds the shard lock). May be empty when an earlier leader
    /// already processed this submitter's transaction.
    pub(crate) fn drain(&self) -> ServiceResult<Vec<Arc<PendingTx>>> {
        let mut queue = self
            .queue
            .lock()
            .map_err(|_| ServiceError::Poisoned("group-commit queue".into()))?;
        Ok(queue.pending.drain(..).collect())
    }

    /// Close the committer and hand back whatever was queued — called
    /// exactly once, by the re-shard retiring this committer's shard,
    /// while that shard's write lock is held. Close and drain happen
    /// under one mutex acquisition, so no transaction can slip in
    /// between them; poisoning is recovered (the queue is structurally
    /// sound either way) because the re-shard must complete.
    pub(crate) fn close_and_drain(&self) -> Vec<Arc<PendingTx>> {
        let mut queue = self.queue.lock().unwrap_or_else(|e| e.into_inner());
        queue.closed = true;
        queue.pending.drain(..).collect()
    }
}

/// Apply one epoch under the shard's write lock: group members by view
/// (first appearance order, preserving queue order within a view),
/// coalesce each group into one net delta and apply it in a single
/// incremental pass; on rejection, replay that group's members
/// individually. Assigns commit sequence numbers (successes only) in
/// application order and, with a WAL attached, appends one record per
/// applied delta. Every member's result slot is filled at the end —
/// after the epoch-end fsync, so a filled `Ok` means durable under the
/// configured policy.
///
/// When at least one delta was applied, `publish` is invoked — still
/// under the shard lock, after the epoch-end sync but **before any
/// result slot fills** — with the engine and the epoch's highest
/// applied commit seq. The caller uses it to publish the shard's MVCC
/// snapshot: filling first would let a member observe `Ok` and then
/// miss its own write on the lock-free read path.
pub(crate) fn process_epoch(
    engine: &mut Engine,
    commit_seq: &AtomicU64,
    epoch: Vec<Arc<PendingTx>>,
    wal: Option<&EpochWal<'_>>,
    publish: impl FnOnce(&mut Engine, u64),
) {
    let mut groups: Vec<(String, Vec<Arc<PendingTx>>)> = Vec::new();
    for tx in epoch {
        match groups.iter_mut().find(|(view, _)| *view == tx.view) {
            Some((_, group)) => group.push(tx),
            None => groups.push((tx.view.clone(), vec![tx])),
        }
    }
    // Results are gathered here and filled only after the epoch-end
    // sync: an autocommit client must never observe `Ok` before its
    // record is durable under the configured policy.
    let mut fills: Vec<(Arc<PendingTx>, TxResult)> = Vec::new();
    let mut appended_any = false;
    // Highest seq whose delta actually reached the engine (regardless
    // of later durability failures — memory changed either way): the
    // snapshot publication tag.
    let mut max_applied: Option<u64> = None;
    for (view, group) in groups {
        let coalesced: Vec<DmlStatement> = group
            .iter()
            .flat_map(|tx| tx.statements.iter().cloned())
            .collect();
        // Derive the net delta, keep a copy for the WAL (durable
        // services only — the in-memory hot path pays no clone), apply
        // it. The derived delta is normalized against the in-lock view
        // state, so it is byte-for-byte the delta that gets applied —
        // the exact replay-log entry.
        let net = engine.derive_delta(&view, &coalesced).and_then(|delta| {
            let log_copy = wal
                .is_some()
                .then(|| delta.clone())
                .filter(|d| !d.is_empty());
            engine
                .apply_delta(&view, delta)
                .map(|stats| (log_copy, stats))
        });
        match net {
            Ok((log_copy, stats)) => {
                let seqs: Vec<u64> = group
                    .iter()
                    .map(|_| commit_seq.fetch_add(1, Ordering::SeqCst) + 1)
                    .collect();
                max_applied = seqs.last().copied().or(max_applied);
                let logged = match (wal, log_copy) {
                    // An empty net delta (`log_copy` filtered to None)
                    // has no durable effect and is not logged — matching
                    // the batch-commit path; such a transaction's seq is
                    // not persisted (see `Service::commits`).
                    (Some(wal), Some(delta)) => wal
                        .append(&WalRecord::Commit {
                            seqs: seqs.clone(),
                            deltas: vec![(view.clone(), delta)],
                        })
                        .map(|()| {
                            appended_any = true;
                        }),
                    _ => Ok(()),
                };
                for (tx, seq) in group.into_iter().zip(seqs) {
                    let result = match &logged {
                        Ok(()) => Ok((seq, stats.clone())),
                        Err(e) => Err(e.clone()),
                    };
                    fills.push((tx, result));
                }
            }
            Err(_) if group.len() > 1 => {
                // The coalesced epoch was rejected; preserve
                // per-transaction semantics by replaying individually
                // (each successful member logged as its own record).
                for tx in group {
                    let net = engine
                        .derive_delta(&tx.view, &tx.statements)
                        .and_then(|delta| {
                            let log_copy = wal
                                .is_some()
                                .then(|| delta.clone())
                                .filter(|d| !d.is_empty());
                            engine
                                .apply_delta(&tx.view, delta)
                                .map(|stats| (log_copy, stats))
                        });
                    match net {
                        Ok((log_copy, stats)) => {
                            let seq = commit_seq.fetch_add(1, Ordering::SeqCst) + 1;
                            max_applied = Some(seq);
                            let logged = match (wal, log_copy) {
                                (Some(wal), Some(delta)) => wal
                                    .append(&WalRecord::Commit {
                                        seqs: vec![seq],
                                        deltas: vec![(tx.view.clone(), delta)],
                                    })
                                    .map(|()| {
                                        appended_any = true;
                                    }),
                                _ => Ok(()),
                            };
                            let result = match logged {
                                Ok(()) => Ok((seq, stats)),
                                Err(e) => Err(e),
                            };
                            fills.push((tx, result));
                        }
                        Err(e) => fills.push((tx, Err(ServiceError::Engine(e)))),
                    }
                }
            }
            Err(e) => {
                // Single-member group: the net path *is* the individual
                // path (derive + normalize + apply); report its error.
                for tx in group {
                    fills.push((tx, Err(ServiceError::Engine(e.clone()))));
                }
            }
        }
    }
    // Epoch-end sync: one fdatasync covers every record this epoch
    // appended (the group-commit durability amortization). If it fails,
    // no member is acknowledged.
    if let Some(wal) = wal {
        if appended_any {
            if let Err(e) = wal.sync_epoch() {
                for (_, result) in &mut fills {
                    if result.is_ok() {
                        *result = Err(e.clone());
                    }
                }
            }
        }
    }
    // Publish before filling: a member must find its own write on the
    // lock-free read path the moment it learns it committed.
    if let Some(seq) = max_applied {
        publish(engine, seq);
    }
    for (tx, result) in fills {
        tx.fill(result);
    }
}
