//! Group commit: coalesce concurrent autocommit transactions into one
//! incremental pass per view.
//!
//! Clients that never call `begin`/`commit` pay one strategy evaluation
//! per statement under the PR-3 design. This module gives them
//! batch-level throughput anyway: each shard has a `GroupCommitter`
//! queue; an autocommit transaction enqueues itself and the first
//! submitter to win the shard's write lock becomes the **epoch leader**,
//! draining everything queued at that moment and applying it as one
//! *net* delta per view (Algorithm 2 over the concatenated statements —
//! exactly the coalescing a session batch gets). Followers find their
//! result filled in when the leader releases the lock. With the default
//! zero epoch window the epoch is simply the leader's lock tenure:
//! uncontended clients keep single-statement latency, contended shards
//! batch automatically. A non-zero window additionally parks each
//! submitter before its first leadership attempt, trading latency for
//! deeper epochs (the fixed-epoch design of Obladi, arXiv:1809.10559).
//!
//! ## Semantics
//!
//! An epoch commits **atomically per view**: every member transaction
//! gets its own commit sequence number (assigned in epoch order, so the
//! global sequence stays dense and replayable), but the integrity
//! constraints are checked once against the epoch's net effect — the
//! same contract a multi-statement session batch has. When the net
//! delta is rejected, the leader falls back to replaying the members
//! individually, so per-transaction error attribution (and the
//! one-bad-transaction-doesn't-abort-its-neighbours property) is
//! preserved on the failure path. Member stats report the epoch's
//! totals, not a per-statement split.
//!
//! Panic safety: the queue and result slots are `Mutex`es; if a leader
//! panics mid-epoch, waiters see the poisoned mutex and surface
//! [`ServiceError::Poisoned`] instead of panicking their own connection
//! threads (satellite of the sharding work — see `locks.rs` for why the
//! shard locks themselves recover instead).

use crate::error::{ServiceError, ServiceResult};
use birds_engine::{Engine, ExecutionStats};
use birds_sql::DmlStatement;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// What a completed transaction hands back to its submitter.
pub(crate) type TxResult = ServiceResult<(u64, ExecutionStats)>;

/// One autocommit transaction waiting for an epoch leader.
pub(crate) struct PendingTx {
    /// The single view (or, erroneously, base relation — the engine
    /// rejects it) every statement targets.
    view: String,
    statements: Vec<DmlStatement>,
    result: Mutex<Option<TxResult>>,
}

impl PendingTx {
    pub(crate) fn new(view: String, statements: Vec<DmlStatement>) -> Arc<PendingTx> {
        Arc::new(PendingTx {
            view,
            statements,
            result: Mutex::new(None),
        })
    }

    /// Take the finished result, `Ok(None)` while still pending. A
    /// poisoned slot means the epoch leader panicked mid-fill; surface
    /// that as a typed error rather than propagating the panic.
    pub(crate) fn take_result(&self) -> ServiceResult<Option<TxResult>> {
        match self.result.lock() {
            Ok(mut slot) => Ok(slot.take()),
            Err(_) => Err(ServiceError::Poisoned(
                "group-commit result slot (epoch leader panicked)".into(),
            )),
        }
    }

    fn fill(&self, result: TxResult) {
        if let Ok(mut slot) = self.result.lock() {
            *slot = Some(result);
        }
        // A poisoned slot belongs to a submitter that already panicked;
        // nothing is waiting for the result.
    }
}

/// Per-shard queue of pending autocommit transactions.
#[derive(Default)]
pub(crate) struct GroupCommitter {
    queue: Mutex<VecDeque<Arc<PendingTx>>>,
}

impl GroupCommitter {
    pub(crate) fn new() -> GroupCommitter {
        GroupCommitter::default()
    }

    /// Queue a transaction for the next epoch.
    pub(crate) fn enqueue(&self, tx: Arc<PendingTx>) -> ServiceResult<()> {
        self.queue
            .lock()
            .map_err(|_| ServiceError::Poisoned("group-commit queue".into()))?
            .push_back(tx);
        Ok(())
    }

    /// Drain everything queued right now (the epoch of whichever leader
    /// holds the shard lock). May be empty when an earlier leader
    /// already processed this submitter's transaction.
    pub(crate) fn drain(&self) -> ServiceResult<Vec<Arc<PendingTx>>> {
        let mut queue = self
            .queue
            .lock()
            .map_err(|_| ServiceError::Poisoned("group-commit queue".into()))?;
        Ok(queue.drain(..).collect())
    }
}

/// Apply one epoch under the shard's write lock: group members by view
/// (first appearance order, preserving queue order within a view),
/// coalesce each group into one net delta and apply it in a single
/// incremental pass; on rejection, replay that group's members
/// individually. Fills every member's result slot and assigns commit
/// sequence numbers (successes only) in application order.
pub(crate) fn process_epoch(
    engine: &mut Engine,
    commit_seq: &AtomicU64,
    epoch: Vec<Arc<PendingTx>>,
) {
    let mut groups: Vec<(String, Vec<Arc<PendingTx>>)> = Vec::new();
    for tx in epoch {
        match groups.iter_mut().find(|(view, _)| *view == tx.view) {
            Some((_, group)) => group.push(tx),
            None => groups.push((tx.view.clone(), vec![tx])),
        }
    }
    for (view, group) in groups {
        let coalesced: Vec<DmlStatement> = group
            .iter()
            .flat_map(|tx| tx.statements.iter().cloned())
            .collect();
        let net = engine
            .derive_delta(&view, &coalesced)
            .and_then(|delta| engine.apply_delta(&view, delta));
        match net {
            Ok(stats) => {
                for tx in group {
                    let seq = commit_seq.fetch_add(1, Ordering::SeqCst) + 1;
                    tx.fill(Ok((seq, stats.clone())));
                }
            }
            Err(_) if group.len() > 1 => {
                // The coalesced epoch was rejected; preserve
                // per-transaction semantics by replaying individually.
                for tx in group {
                    match engine.execute_statements(&tx.statements) {
                        Ok(stats) => {
                            let seq = commit_seq.fetch_add(1, Ordering::SeqCst) + 1;
                            tx.fill(Ok((seq, stats)));
                        }
                        Err(e) => tx.fill(Err(ServiceError::Engine(e))),
                    }
                }
            }
            Err(e) => {
                // Single-member group: the net path *is* the individual
                // path (derive + normalize + apply); report its error.
                for tx in group {
                    tx.fill(Err(ServiceError::Engine(e.clone())));
                }
            }
        }
    }
}
