//! The epoll reactor: one event-loop thread owning every socket, plus a
//! fixed worker pool executing decoded requests — the serving layer that
//! decouples connection count from thread count.
//!
//! ## Structure
//!
//! * **Event loop** (this module's [`Reactor`]): a single thread blocked
//!   in `epoll_wait` over the nonblocking listener, a wakeup eventfd,
//!   and every live connection. It owns all connection state — sockets,
//!   framers, outboxes, request lanes — so none of it needs locks.
//! * **Worker pool**: `workers` threads popping decoded requests from a
//!   shared queue, dispatching them against the service, and pushing the
//!   response back through a completion list + eventfd wakeup. Workers
//!   never touch sockets.
//!
//! ## Two-lane scheduling (the ordering contract)
//!
//! Requests decoded from one connection are classified at parse time:
//!
//! * **Session lane** — stateful ops (`begin`/`commit`/`rollback`
//!   always; `execute` while a batch is open, tracked exactly at parse
//!   time since `begin` opens and `commit`/`rollback` always close,
//!   even on error). These stay FIFO: queued per connection, at most
//!   one in flight, each run against the connection's own session.
//! * **Stateless lane** — `ping`/`query`/`stats`/`checkpoint` and
//!   autocommit `execute` (each its own transaction through the group
//!   committer, via a scratch session). These fan out to the worker
//!   pool immediately and may complete **in any order**, across shards
//!   and across each other — the out-of-order pipelining this PR is
//!   about. Responses echo the request `id`, so clients correlate.
//!
//! `quit` (and EOF) is a barrier: no further reads, every accepted
//! request answers first, then (for `quit`) the bye goes out last and
//! the connection closes.
//!
//! ## Backpressure
//!
//! The reactor stops *reading* from a connection whose outbox exceeds
//! [`OUTBOX_HIGH_WATER`] bytes or whose accepted-but-unanswered load
//! reaches [`MAX_INFLIGHT_PER_CONN`] — level-triggered epoll re-arms
//! reads once responses drain, and TCP flow control propagates the
//! stall to the sender. Memory per connection is thereby bounded by
//! the line cap + the high water + one response in flight per lane.
//!
//! ## Shutdown
//!
//! A shutdown request (SIGTERM via [`crate::sys::SIGTERM_FLAG`], the
//! in-process [`crate::Server::shutdown`], or the `--exit-after` count
//! reaching zero live connections) drains gracefully: stop accepting,
//! stop reading, let in-flight and queued requests answer, flush every
//! outbox, then close. A deadline bounds the drain so a wedged request
//! cannot hang process exit.

use crate::conn::{Conn, ConnPhase, Frame};
use crate::error::ServiceError;
use crate::json::Json;
use crate::protocol::{
    dispatch, error_response, quit_response, salvage_id, stateless_response, with_id, Envelope,
    Request,
};
use crate::server::ServerConfig;
use crate::service::{Service, Session};
use crate::sys::{Epoll, EventFd, EPOLLERR, EPOLLHUP, EPOLLIN, EPOLLOUT, EPOLLRDHUP};
use std::collections::VecDeque;
use std::io::{ErrorKind, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::{Duration, Instant};

/// Stop reading from a connection whose outbox holds this many bytes.
pub const OUTBOX_HIGH_WATER: usize = 256 * 1024;
/// Stop reading from a connection with this many unanswered requests.
pub const MAX_INFLIGHT_PER_CONN: usize = 128;
/// How long a graceful drain may take before remaining connections are
/// closed forcibly (a wedged request must not hang process exit).
const DRAIN_DEADLINE: Duration = Duration::from_secs(10);

const TOKEN_LISTENER: u64 = u64::MAX;
const TOKEN_WAKEUP: u64 = u64::MAX - 1;

/// Which lane a job ran on (determines completion bookkeeping).
#[derive(Clone, Copy)]
enum Lane {
    Session,
    Stateless,
}

/// One decoded request handed to the worker pool.
struct Job {
    conn: usize,
    generation: u32,
    lane: Lane,
    request: Request,
    id: Option<Json>,
    session: Arc<Mutex<Session>>,
    pending_hint: Arc<AtomicUsize>,
}

/// A finished job's response, routed back to the reactor.
struct Completion {
    conn: usize,
    generation: u32,
    lane: Lane,
    response: Json,
}

struct JobQueue {
    queue: VecDeque<Job>,
    closed: bool,
}

/// State shared between the reactor thread, the worker pool, and the
/// [`crate::Server`] handle.
pub(crate) struct Shared {
    jobs: Mutex<JobQueue>,
    available: Condvar,
    completions: Mutex<Vec<Completion>>,
    wakeup: EventFd,
    shutdown: AtomicBool,
    /// Whether SIGTERM (via [`crate::sys::SIGTERM_FLAG`]) should shut
    /// this server down — set by [`crate::Server::enable_signal_shutdown`].
    signal_enabled: AtomicBool,
}

fn relock<T>(result: Result<T, PoisonError<T>>) -> T {
    // Queue contents are plain data; a worker that panicked mid-pop
    // cannot leave them inconsistent, so recover rather than cascade.
    result.unwrap_or_else(PoisonError::into_inner)
}

impl Shared {
    pub fn new() -> std::io::Result<Shared> {
        Ok(Shared {
            jobs: Mutex::new(JobQueue {
                queue: VecDeque::new(),
                closed: false,
            }),
            available: Condvar::new(),
            completions: Mutex::new(Vec::new()),
            wakeup: EventFd::new()?,
            shutdown: AtomicBool::new(false),
            signal_enabled: AtomicBool::new(false),
        })
    }

    pub fn wakeup_fd(&self) -> std::os::fd::RawFd {
        self.wakeup.raw_fd()
    }

    pub fn enable_signal_shutdown(&self) {
        self.signal_enabled.store(true, Ordering::SeqCst);
    }

    /// Ask the reactor to drain and exit (idempotent, thread-safe).
    pub fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        self.wakeup.notify();
    }

    fn shutdown_requested(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
            || (self.signal_enabled.load(Ordering::SeqCst)
                && crate::sys::SIGTERM_FLAG.load(Ordering::SeqCst))
    }

    fn push_job(&self, job: Job) {
        relock(self.jobs.lock()).queue.push_back(job);
        self.available.notify_one();
    }

    fn pop_job(&self) -> Option<Job> {
        let mut jobs = relock(self.jobs.lock());
        loop {
            if let Some(job) = jobs.queue.pop_front() {
                return Some(job);
            }
            if jobs.closed {
                return None;
            }
            jobs = relock(self.available.wait(jobs));
        }
    }

    fn close_jobs(&self) {
        relock(self.jobs.lock()).closed = true;
        self.available.notify_all();
    }

    fn complete(&self, completion: Completion) {
        relock(self.completions.lock()).push(completion);
        self.wakeup.notify();
    }

    fn take_completions(&self, into: &mut Vec<Completion>) {
        std::mem::swap(&mut *relock(self.completions.lock()), into);
    }
}

/// Worker thread body: pop, dispatch, complete, until the queue closes.
fn worker_loop(service: Service, shared: Arc<Shared>) {
    while let Some(job) = shared.pop_job() {
        let response = execute_job(&service, &job);
        shared.complete(Completion {
            conn: job.conn,
            generation: job.generation,
            lane: job.lane,
            response,
        });
    }
}

fn execute_job(service: &Service, job: &Job) -> Json {
    let body = match job.lane {
        Lane::Session => match job.session.lock() {
            Ok(mut session) => {
                let response = dispatch(&mut session, &job.request);
                job.pending_hint.store(session.pending(), Ordering::Relaxed);
                response
            }
            Err(_) => error_response(&ServiceError::Poisoned("session".into())),
        },
        Lane::Stateless => stateless_response(
            service,
            &job.request,
            job.pending_hint.load(Ordering::Relaxed),
        ),
    };
    with_id(body, job.id.clone())
}

/// What one nonblocking read attempt yielded.
enum ReadStep {
    Data(usize),
    Eof,
    Block,
    Failed,
}

/// The event loop. Owns the listener, the epoll instance, and every
/// connection; single-threaded by construction.
struct Reactor {
    epoll: Epoll,
    listener: TcpListener,
    service: Service,
    shared: Arc<Shared>,
    max_line: usize,
    max_conns: Option<usize>,
    exit_after: Option<usize>,
    /// Connection slab: slot index is the low half of the epoll token.
    conns: Vec<Option<Conn>>,
    /// Per-slot generation (high half of the token): bumped on close so
    /// stale events and late completions for a recycled slot are
    /// recognized and dropped.
    generations: Vec<u32>,
    free: Vec<usize>,
    live: usize,
    closed: usize,
    draining: bool,
    drain_deadline: Option<Instant>,
}

/// Run the serve loop: spawn the worker pool, run the reactor until it
/// drains, then close the job queue and join the workers.
pub(crate) fn serve(
    listener: TcpListener,
    service: Service,
    config: ServerConfig,
    workers: usize,
    shared: Arc<Shared>,
) -> std::io::Result<()> {
    let mut pool = Vec::with_capacity(workers);
    for i in 0..workers {
        let service = service.clone();
        let shared = Arc::clone(&shared);
        pool.push(
            std::thread::Builder::new()
                .name(format!("birds-worker-{i}"))
                .spawn(move || worker_loop(service, shared))?,
        );
    }
    let epoll = Epoll::new()?;
    epoll.add(listener.as_raw_fd(), EPOLLIN, TOKEN_LISTENER)?;
    epoll.add(shared.wakeup_fd(), EPOLLIN, TOKEN_WAKEUP)?;
    let reactor = Reactor {
        epoll,
        listener,
        service,
        shared: Arc::clone(&shared),
        max_line: config.max_line,
        max_conns: config.max_conns,
        exit_after: config.exit_after,
        conns: Vec::new(),
        generations: Vec::new(),
        free: Vec::new(),
        live: 0,
        closed: 0,
        draining: false,
        drain_deadline: None,
    };
    let result = reactor.run();
    shared.close_jobs();
    for handle in pool {
        let _ = handle.join();
    }
    result
}

impl Reactor {
    fn token(&self, idx: usize) -> u64 {
        (u64::from(self.generations[idx]) << 32) | idx as u64
    }

    fn run(mut self) -> std::io::Result<()> {
        let mut events = vec![crate::sys::EpollEvent::zeroed(); 1024];
        let mut scratch = vec![0u8; 64 * 1024];
        let mut completions: Vec<Completion> = Vec::new();
        loop {
            // While draining, poll with a short timeout so the deadline
            // and reap checks run even if no fd turns ready.
            let timeout = if self.draining { 50 } else { -1 };
            let ready = self.epoll.wait(&mut events, timeout)?;
            for event in &events[..ready] {
                let (bits, token) = (event.events, event.data);
                match token {
                    TOKEN_LISTENER => self.accept_ready(),
                    TOKEN_WAKEUP => self.shared.wakeup.drain(),
                    token => self.conn_event(token, bits, &mut scratch),
                }
            }
            self.drain_completions(&mut completions);
            if !self.draining
                && (self.shared.shutdown_requested()
                    || self.exit_after.is_some_and(|n| self.closed >= n))
            {
                self.begin_drain();
            }
            if self.draining {
                self.reap_drained();
                if self.live == 0 {
                    return Ok(());
                }
                if self.drain_deadline.is_some_and(|d| Instant::now() >= d) {
                    // Deadline: force-close whatever is left.
                    for idx in 0..self.conns.len() {
                        self.close_conn(idx);
                    }
                    return Ok(());
                }
            }
        }
    }

    // ---- accept path ----------------------------------------------

    fn accept_ready(&mut self) {
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    if self.draining {
                        continue; // dropped: no longer accepting
                    }
                    match self.max_conns {
                        Some(limit) if self.live >= limit => reject(stream, limit),
                        _ => self.register(stream),
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(e) => {
                    // Transient (client reset mid-handshake, fd
                    // pressure): skip the connection, keep serving.
                    eprintln!("[birds-serve] accept failed (connection skipped): {e}");
                    break;
                }
            }
        }
    }

    fn register(&mut self, stream: TcpStream) {
        if configure_stream(&stream).is_err() {
            return; // peer already gone
        }
        let idx = self.free.pop().unwrap_or_else(|| {
            self.conns.push(None);
            self.generations.push(0);
            self.conns.len() - 1
        });
        let mut conn = Conn::new(stream, self.service.session(), self.max_line);
        let interest = EPOLLIN | EPOLLRDHUP;
        if self
            .epoll
            .add(conn.stream.as_raw_fd(), interest, self.token(idx))
            .is_err()
        {
            self.free.push(idx);
            return;
        }
        conn.interest = interest;
        self.conns[idx] = Some(conn);
        self.live += 1;
    }

    // ---- connection events ----------------------------------------

    fn conn_event(&mut self, token: u64, bits: u32, scratch: &mut [u8]) {
        let idx = (token & u64::from(u32::MAX)) as usize;
        let generation = (token >> 32) as u32;
        if idx >= self.conns.len() || self.generations[idx] != generation {
            return; // stale event for a recycled slot
        }
        if bits & (EPOLLERR | EPOLLHUP) != 0 {
            self.close_conn(idx);
            return;
        }
        if bits & (EPOLLIN | EPOLLRDHUP) != 0 {
            self.read_ready(idx, scratch);
        }
        if self.conns[idx].is_some() && bits & EPOLLOUT != 0 {
            self.flush(idx);
        }
        if self.conns[idx].is_some() {
            self.settle(idx);
        }
        if self.conns[idx].is_some() {
            self.update_interest(idx);
        }
    }

    fn read_ready(&mut self, idx: usize, scratch: &mut [u8]) {
        loop {
            let step = {
                let Some(conn) = self.conns[idx].as_mut() else {
                    return;
                };
                if !matches!(conn.phase, ConnPhase::Open)
                    || conn.outbox.len() >= OUTBOX_HIGH_WATER
                    || conn.load() >= MAX_INFLIGHT_PER_CONN
                {
                    // Backpressure (or a quit barrier): leave unread
                    // bytes in the kernel buffer; level-triggered epoll
                    // re-reports them once reads re-arm.
                    ReadStep::Block
                } else {
                    loop {
                        match conn.stream.read(scratch) {
                            Ok(0) => break ReadStep::Eof,
                            Ok(n) => break ReadStep::Data(n),
                            Err(e) if e.kind() == ErrorKind::WouldBlock => break ReadStep::Block,
                            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                            Err(_) => break ReadStep::Failed,
                        }
                    }
                }
            };
            match step {
                ReadStep::Data(n) => {
                    let mut frames = Vec::new();
                    let conn = self.conns[idx].as_mut().expect("checked above");
                    conn.framer.feed(&scratch[..n], &mut frames);
                    self.process_frames(idx, frames);
                    if self.conns[idx].is_none() {
                        return;
                    }
                }
                ReadStep::Eof => {
                    let mut frames = Vec::new();
                    let conn = self.conns[idx].as_mut().expect("checked above");
                    // A dangling unterminated tail still counts as a line.
                    if let Some(tail) = conn.framer.finish() {
                        frames.push(tail);
                    }
                    self.process_frames(idx, frames);
                    if let Some(conn) = self.conns[idx].as_mut() {
                        if matches!(conn.phase, ConnPhase::Open) {
                            conn.phase = ConnPhase::HalfClosed;
                        }
                    }
                    return;
                }
                ReadStep::Block => return,
                ReadStep::Failed => {
                    self.close_conn(idx);
                    return;
                }
            }
        }
    }

    fn process_frames(&mut self, idx: usize, frames: Vec<Frame>) {
        for frame in frames {
            let Some(conn) = self.conns[idx].as_ref() else {
                return;
            };
            if !matches!(conn.phase, ConnPhase::Open) {
                // `quit` is a barrier: anything pipelined after it on
                // this connection is dropped, like the blocking server
                // closing mid-stream.
                return;
            }
            match frame {
                Frame::TooLong { prefix } => {
                    // The tail was discarded unread, but the retained
                    // prefix usually carries the request's id — salvage
                    // it so a pipelining client can correlate.
                    let id = salvage_id(&prefix);
                    let response = with_id(
                        error_response(&ServiceError::RequestTooLarge {
                            limit: self.max_line,
                        }),
                        id,
                    );
                    self.send(idx, &response);
                }
                Frame::Line(line) => {
                    if line.trim().is_empty() {
                        continue;
                    }
                    match Envelope::parse(&line) {
                        Ok(Envelope { id, request }) => self.submit(idx, request, id),
                        Err((id, e)) => {
                            let response = with_id(error_response(&e), id);
                            self.send(idx, &response);
                        }
                    }
                }
            }
        }
    }

    /// Route one decoded request onto its lane.
    fn submit(&mut self, idx: usize, request: Request, id: Option<Json>) {
        let generation = self.generations[idx];
        let Some(conn) = self.conns[idx].as_mut() else {
            return;
        };
        if request == Request::Quit {
            conn.phase = ConnPhase::Quitting {
                id,
                bye_queued: false,
            };
            return; // settle() queues the bye once in-flight work answers
        }
        if request.is_session_op(conn.in_batch_parsed) {
            match request {
                Request::Begin => conn.in_batch_parsed = true,
                Request::Commit | Request::Rollback => conn.in_batch_parsed = false,
                _ => {}
            }
            conn.session_queue.push_back((request, id));
            self.pump_session(idx);
        } else {
            conn.stateless_in_flight += 1;
            let job = Job {
                conn: idx,
                generation,
                lane: Lane::Stateless,
                request,
                id,
                session: Arc::clone(&conn.session),
                pending_hint: Arc::clone(&conn.pending_hint),
            };
            self.shared.push_job(job);
        }
    }

    /// Submit the next session-lane request if none is in flight —
    /// same-session FIFO, one at a time.
    fn pump_session(&mut self, idx: usize) {
        let generation = self.generations[idx];
        let Some(conn) = self.conns[idx].as_mut() else {
            return;
        };
        if conn.session_in_flight {
            return;
        }
        let Some((request, id)) = conn.session_queue.pop_front() else {
            return;
        };
        conn.session_in_flight = true;
        let job = Job {
            conn: idx,
            generation,
            lane: Lane::Session,
            request,
            id,
            session: Arc::clone(&conn.session),
            pending_hint: Arc::clone(&conn.pending_hint),
        };
        self.shared.push_job(job);
    }

    // ---- write path -----------------------------------------------

    /// Queue one response line and flush what the socket accepts.
    fn send(&mut self, idx: usize, response: &Json) {
        {
            let Some(conn) = self.conns[idx].as_mut() else {
                return;
            };
            let line = response.to_compact();
            conn.outbox.extend(line.as_bytes().iter().copied());
            conn.outbox.push_back(b'\n');
        }
        self.flush(idx);
    }

    fn flush(&mut self, idx: usize) {
        let mut failed = false;
        {
            let Some(conn) = self.conns[idx].as_mut() else {
                return;
            };
            while !conn.outbox.is_empty() {
                let n = match conn.stream.write(conn.outbox.as_slices().0) {
                    Ok(0) => {
                        failed = true;
                        break;
                    }
                    Ok(n) => n,
                    Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                    Err(_) => {
                        failed = true;
                        break;
                    }
                };
                conn.outbox.drain(..n);
            }
        }
        if failed {
            self.close_conn(idx);
        }
    }

    // ---- completions ----------------------------------------------

    fn drain_completions(&mut self, buffer: &mut Vec<Completion>) {
        self.shared.take_completions(buffer);
        for completion in buffer.drain(..) {
            let idx = completion.conn;
            if idx >= self.conns.len() || self.generations[idx] != completion.generation {
                continue; // connection closed while the job ran
            }
            {
                let Some(conn) = self.conns[idx].as_mut() else {
                    continue;
                };
                match completion.lane {
                    Lane::Session => conn.session_in_flight = false,
                    Lane::Stateless => conn.stateless_in_flight -= 1,
                }
            }
            self.send(idx, &completion.response);
            if self.conns[idx].is_none() {
                continue;
            }
            self.pump_session(idx);
            self.settle(idx);
            if self.conns[idx].is_some() {
                self.update_interest(idx);
            }
        }
    }

    // ---- lifecycle ------------------------------------------------

    /// Progress a connection's lifecycle: queue the bye once a quitting
    /// connection has answered everything, close once drained.
    fn settle(&mut self, idx: usize) {
        let mut bye: Option<Option<Json>> = None;
        {
            let Some(conn) = self.conns[idx].as_mut() else {
                return;
            };
            let load = conn.load();
            if let ConnPhase::Quitting { id, bye_queued } = &mut conn.phase {
                if !*bye_queued && load == 0 {
                    *bye_queued = true;
                    bye = Some(id.take());
                }
            }
        }
        if let Some(id) = bye {
            let response = with_id(quit_response(), id);
            self.send(idx, &response);
        }
        let close = match self.conns[idx].as_ref() {
            None => return,
            Some(conn) => {
                let idle = conn.load() == 0 && conn.outbox.is_empty();
                match &conn.phase {
                    // An Open connection only closes early under a
                    // server-wide drain; otherwise it is just idle.
                    ConnPhase::Open => self.draining && idle,
                    ConnPhase::Quitting { bye_queued, .. } => *bye_queued && idle,
                    ConnPhase::HalfClosed => idle,
                }
            }
        };
        if close {
            self.close_conn(idx);
        }
    }

    fn update_interest(&mut self, idx: usize) {
        let token = self.token(idx);
        let Some(conn) = self.conns[idx].as_mut() else {
            return;
        };
        let reading = matches!(conn.phase, ConnPhase::Open)
            && !self.draining
            && conn.outbox.len() < OUTBOX_HIGH_WATER
            && conn.load() < MAX_INFLIGHT_PER_CONN;
        let mut want = 0;
        if reading {
            want |= EPOLLIN | EPOLLRDHUP;
        }
        if !conn.outbox.is_empty() {
            want |= EPOLLOUT;
        }
        if want != conn.interest
            && self
                .epoll
                .modify(conn.stream.as_raw_fd(), want, token)
                .is_ok()
        {
            conn.interest = want;
        }
    }

    fn close_conn(&mut self, idx: usize) {
        let Some(conn) = self.conns[idx].take() else {
            return;
        };
        let _ = self.epoll.delete(conn.stream.as_raw_fd());
        self.generations[idx] = self.generations[idx].wrapping_add(1);
        self.free.push(idx);
        self.live -= 1;
        self.closed += 1;
        // Dropping `conn` closes the socket; any in-flight jobs finish
        // on the workers and their completions fail the generation
        // check.
    }

    fn begin_drain(&mut self) {
        self.draining = true;
        self.drain_deadline = Some(Instant::now() + DRAIN_DEADLINE);
        let _ = self.epoll.delete(self.listener.as_raw_fd());
        for idx in 0..self.conns.len() {
            if self.conns[idx].is_some() {
                self.update_interest(idx); // disarm reads
            }
        }
    }

    /// One drain sweep: flush, settle, close whatever has finished.
    fn reap_drained(&mut self) {
        for idx in 0..self.conns.len() {
            if self.conns[idx].is_some() {
                self.flush(idx);
            }
            if self.conns[idx].is_some() {
                self.settle(idx);
            }
        }
    }
}

/// Per-socket options for an accepted connection: nonblocking (the
/// reactor must never stall on one peer) and `TCP_NODELAY` (line-
/// delimited request/response over Nagle costs a delayed-ACK round
/// trip — up to ~40 ms — per small pipelined write).
pub(crate) fn configure_stream(stream: &TcpStream) -> std::io::Result<()> {
    stream.set_nonblocking(true)?;
    stream.set_nodelay(true)?;
    Ok(())
}

/// Accept-time rejection when `--max-conns` live connections exist:
/// answer with the typed error, then close. The socket is still
/// blocking here (fresh from `accept`, empty send buffer), so the one
/// small write cannot stall the reactor.
fn reject(mut stream: TcpStream, limit: usize) {
    let response = error_response(&ServiceError::ConnectionLimit { limit });
    let _ = stream.set_nodelay(true);
    let _ = stream.write_all(response.to_compact().as_bytes());
    let _ = stream.write_all(b"\n");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn configure_stream_sets_nodelay_and_nonblocking() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let _client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (accepted, _) = listener.accept().unwrap();
        assert!(
            !accepted.nodelay().unwrap(),
            "accept(2) default is Nagle on"
        );
        configure_stream(&accepted).unwrap();
        assert!(accepted.nodelay().unwrap(), "reactor disables Nagle");
        // Nonblocking: a read with no data must not hang.
        let mut buf = [0u8; 8];
        let err = (&accepted).read(&mut buf).unwrap_err();
        assert_eq!(err.kind(), ErrorKind::WouldBlock);
    }
}
