//! # birds-service
//!
//! The concurrent, batched-update service layer over
//! [`birds_engine::Engine`] — the step from "a library you call" to "a
//! process you talk to".
//!
//! The engine itself is single-writer: one strategy evaluation mutates
//! the database at a time. This crate adds the machinery a production
//! deployment needs around that core:
//!
//! * [`footprint`] / [`locks`] — **footprint-sharded concurrency
//!   control**. The engine is split along view dependency footprints
//!   into independently locked components; a commit write-locks only the
//!   shards its target views live in, always in global [`LockId`] order
//!   (deadlock-free by construction), so commits on disjoint views run
//!   in parallel. A global commit sequence still numbers every
//!   transaction: the concurrent history remains equivalent to its
//!   serial replay in commit order.
//! * [`group_commit`] — autocommit transactions queue per shard and the
//!   first submitter to win the shard lock applies the whole epoch as
//!   one *net* delta per view, giving batch-level throughput to clients
//!   that never call `begin`/`commit` (Obladi-style epochs; an optional
//!   window trades latency for epoch depth).
//! * [`snapshot`] — **MVCC snapshot reads**. Every commit publishes an
//!   immutable, `Arc`-shared image of each shard it touched (copy-on-
//!   write at the tuple-set level, so only touched relations are
//!   rebuilt), tagged with the shard's high-water commit seq. All reads
//!   — [`Service::query`], [`Service::read`], [`Service::snapshot`],
//!   stats — run lock-free against those images: readers never wait for
//!   writers, writers never wait for readers, and a pinned
//!   [`ServiceSnapshot`] stays commit-seq-consistent for as long as the
//!   reader holds it. Checkpoints serialize the published snapshots
//!   instead of stop-the-world locking every shard.
//! * [`Service`] — a cheap-to-clone, thread-safe handle over the shard
//!   set; [`Service::snapshot`] pins a consistent all-shard image,
//!   [`Service::query`] reads one relation, both without locks.
//! * [`Session`] — per-client state with two modes. In **autocommit**
//!   every executed script is its own transaction (routed through the
//!   shard's group committer). After `begin`, a **batch** buffers
//!   statements locally until `commit` coalesces them — per view — into
//!   one *net* delta (Algorithm 2 over the whole buffer) and applies
//!   each in a **single** incremental pass.
//! * [`Service::open`] — the **durable** construction: recover a data
//!   directory (latest snapshot + WAL replay in global commit-seq
//!   order, torn tails discarded by CRC), then write every committed
//!   epoch's net per-view deltas ahead — appended to the owning shard's
//!   `birds_wal` segment under the shard lock, synced per
//!   [`DurabilityConfig`]'s fsync policy *before* the commit is
//!   acknowledged — with size-based segment rotation and
//!   snapshot-then-truncate checkpointing ([`Service::checkpoint`],
//!   automatic every `checkpoint_every` commits). Group-commit epochs
//!   double as WAL batch boundaries (Obladi, arXiv:1809.10559).
//! * **Dynamic registration** ([`Service::register_view`] /
//!   [`Service::unregister_view`], PR 10) — views are registered and
//!   deregistered on the **live** service: the strategy is validated
//!   (Algorithm 1), only the shards its footprint touches quiesce while
//!   the topology re-shards (commits elsewhere proceed), the
//!   registration is WAL-logged in commit order and snapshotted into
//!   the checkpoint manifest, so runtime-registered views survive crash
//!   recovery. Exposed over the wire as the `register` / `unregister` /
//!   `validate` protocol ops.
//! * [`protocol`] / [`Server`] — a line-delimited JSON protocol over TCP
//!   (the `birds-serve` binary) with per-request `id` echo for
//!   pipelining and a hard request-size cap (oversized lines are
//!   drained, answered with a salvaged id when possible, and the
//!   connection stays usable), plus an in-process [`LocalClient`]
//!   speaking the identical protocol.
//! * `reactor` / `conn` / `sys` *(internal)* — the serving
//!   engine behind [`Server`]: a single epoll event-loop thread owning
//!   every nonblocking socket (raw `epoll`/`eventfd` via a minimal FFI
//!   shim — no `libc` dependency) plus a fixed worker pool executing
//!   decoded requests **out of order across shards within one
//!   connection** (same-session ops stay FIFO; see the ordering
//!   contract in [`protocol`]). Connection count is decoupled from
//!   thread count, outboxes are flushed on write readiness with
//!   bounded-queue backpressure, `--max-conns` is enforced live at
//!   accept time, and SIGTERM/[`Server::shutdown`] drain gracefully.
//! * [`json`] — the minimal JSON tree the protocol and the committed
//!   `BENCH_*.json` trajectory documents share (the offline `serde` stub
//!   has no serializer).
//!
//! Lock poisoning: shard locks are recovered (`into_inner`) because the
//! engine's mutation paths roll back on error; queue/result mutexes that
//! a panic *can* leave inconsistent surface [`ServiceError::Poisoned`]
//! instead of panicking the worker thread serving the request.
//!
//! [`LockId`]: locks::LockId

mod conn;
pub mod error;
pub mod footprint;
pub mod group_commit;
pub mod json;
pub mod locks;
pub mod protocol;
mod reactor;
pub mod server;
pub mod service;
pub mod snapshot;
mod sys;

pub use error::{ServiceError, ServiceResult};
pub use footprint::ShardMap;
pub use json::Json;
pub use locks::{LockId, LockManager};
pub use protocol::{dispatch, Envelope, Request, StrategySpec};
pub use server::{LocalClient, Server, ServerConfig};
pub use service::{
    CommitOutcome, DurabilityConfig, ExecOutcome, RelationStats, Service, ServiceConfig, Session,
};
pub use snapshot::{ServiceSnapshot, ShardSnapshot};
