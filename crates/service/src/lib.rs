//! # birds-service
//!
//! The concurrent, batched-update service layer over
//! [`birds_engine::Engine`] — the step from "a library you call" to "a
//! process you talk to".
//!
//! The engine itself is single-writer: one strategy evaluation mutates
//! the database at a time. This crate adds the machinery a production
//! deployment needs around that core:
//!
//! * [`Service`] — a cheap-to-clone, thread-safe handle sharing one
//!   engine behind an `RwLock`; reads run concurrently, writes are
//!   serialized and numbered by a global commit sequence.
//! * [`Session`] — per-client state with two modes. In **autocommit**
//!   every executed script is its own transaction. After `begin`, a
//!   **batch** buffers statements locally (without touching the lock)
//!   until `commit` coalesces them — per view — into one *net* delta
//!   (Algorithm 2 over the whole buffer: an insert later deleted never
//!   reaches the engine) and applies each net delta in a **single**
//!   incremental pass. At 10k-statement batches this beats per-statement
//!   application by well over the 3× the `throughput` benchmark gates
//!   on, because the per-update evaluation cost is paid once per batch.
//! * [`protocol`] / [`Server`] — a line-delimited JSON protocol over
//!   TCP (the `birds-serve` binary), plus an in-process [`LocalClient`]
//!   speaking the identical protocol for tests, benches, and examples.
//! * [`json`] — the minimal JSON tree the protocol and the committed
//!   `BENCH_*.json` trajectory documents share (the offline `serde` stub
//!   has no serializer).
//!
//! Design notes: the lock is a single engine-wide `RwLock` — sharding it
//! by relation requires untangling cascaded view updates that cross
//! shards and is left as an open item (see ROADMAP). Lock poisoning is
//! recovered from (`into_inner`): the engine's mutation paths roll back
//! on error, so a panicking request aborts only itself.

pub mod error;
pub mod json;
pub mod protocol;
pub mod server;
pub mod service;

pub use error::{ServiceError, ServiceResult};
pub use json::Json;
pub use protocol::{dispatch, Request};
pub use server::{LocalClient, Server};
pub use service::{CommitOutcome, ExecOutcome, Service, Session};
