//! The TCP transport: an epoll reactor thread owning every socket plus
//! a fixed worker pool — connection count decoupled from thread count
//! (10k mostly-idle connections run on `workers + 2` threads,
//! process-wide).
//!
//! The wire protocol is unchanged from the thread-per-connection
//! server: line-delimited JSON with per-request `id` echo (see
//! [`crate::protocol`]). What changed is scheduling — independent
//! requests on one connection may now answer **out of order** (the
//! ordering contract is documented in [`crate::protocol`]) — and the
//! serving limits: `--max-conns` is a *live* connection cap enforced at
//! accept time with a typed error response, and request lines are still
//! bounded by `--max-line` through the incremental framer (oversized
//! lines are discarded as they stream in, answered with a salvaged
//! `id`; see the internal `conn` module).
//!
//! [`Server::shutdown`] (or SIGTERM, once
//! [`Server::enable_signal_shutdown`] is called) drains gracefully:
//! accepted requests answer, outboxes flush, then connections close.

use crate::protocol::{dispatch, error_response, with_id, Envelope, Request};
use crate::reactor::{serve, Shared};
use crate::service::{Service, Session};
use std::net::TcpListener;
use std::os::fd::AsRawFd;
use std::sync::Arc;
use std::thread::JoinHandle;

/// Default cap on one request line: 1 MiB.
pub const DEFAULT_MAX_LINE_BYTES: usize = 1 << 20;

/// Serving configuration for [`Server::spawn_config`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Cap on one request line's payload bytes (default
    /// [`DEFAULT_MAX_LINE_BYTES`]); oversized lines are discarded as
    /// they stream in and answered with a typed error.
    pub max_line: usize,
    /// Worker threads executing decoded requests. `0` picks a default
    /// from the machine's parallelism (at least 2, so one slow request
    /// cannot serialize a connection's independent work).
    pub workers: usize,
    /// Live-connection cap: a connection accepted while this many are
    /// open is answered with [`crate::ServiceError::ConnectionLimit`]
    /// and closed. `None` = unlimited.
    pub max_conns: Option<usize>,
    /// Exit after this many connections have *closed* — the
    /// self-terminating mode CI smoke tests use (`--exit-after`).
    pub exit_after: Option<usize>,
    /// Listen-backlog override (re-issues `listen(2)`; the kernel
    /// clamps to `net.core.somaxconn`). `None` keeps std's default
    /// (128), which connection storms can overflow.
    pub backlog: Option<i32>,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            max_line: DEFAULT_MAX_LINE_BYTES,
            workers: 0,
            max_conns: None,
            exit_after: None,
            backlog: None,
        }
    }
}

impl ServerConfig {
    /// Resolve `workers == 0` to the machine default.
    pub fn resolved_workers(&self) -> usize {
        if self.workers > 0 {
            return self.workers;
        }
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .clamp(2, 8)
    }
}

/// A running server: the bound address plus the reactor thread and its
/// worker pool.
pub struct Server {
    addr: std::net::SocketAddr,
    reactor_thread: JoinHandle<std::io::Result<()>>,
    shared: Arc<Shared>,
    workers: usize,
}

impl Server {
    /// Bind `addr` (use port 0 for an OS-assigned port) and serve
    /// `service` with default limits. When `exit_after` is `Some(n)`,
    /// the server drains and exits after the n-th connection *closes* —
    /// the mode CI smoke tests use so the process terminates on its
    /// own.
    pub fn spawn(
        addr: &str,
        service: Service,
        exit_after: Option<usize>,
    ) -> std::io::Result<Server> {
        Server::spawn_with(addr, service, exit_after, DEFAULT_MAX_LINE_BYTES)
    }

    /// [`Server::spawn`] with an explicit request-line byte cap.
    pub fn spawn_with(
        addr: &str,
        service: Service,
        exit_after: Option<usize>,
        max_line: usize,
    ) -> std::io::Result<Server> {
        Server::spawn_config(
            addr,
            service,
            ServerConfig {
                max_line,
                exit_after,
                ..ServerConfig::default()
            },
        )
    }

    /// Bind and serve with full [`ServerConfig`] control.
    pub fn spawn_config(
        addr: &str,
        service: Service,
        config: ServerConfig,
    ) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        // The reactor owns the listener through epoll readiness — it
        // must never block in accept(2).
        listener.set_nonblocking(true)?;
        if let Some(backlog) = config.backlog {
            crate::sys::set_listen_backlog(listener.as_raw_fd(), backlog)?;
        }
        let workers = config.resolved_workers();
        let shared = Arc::new(Shared::new()?);
        let reactor_shared = Arc::clone(&shared);
        let reactor_thread = std::thread::Builder::new()
            .name("birds-reactor".into())
            .spawn(move || serve(listener, service, config, workers, reactor_shared))?;
        Ok(Server {
            addr: local,
            reactor_thread,
            shared,
            workers,
        })
    }

    /// The address the server actually bound (resolves port 0).
    pub fn addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// Worker threads executing requests. Total serving threads are
    /// `workers + 1` (the reactor) regardless of connection count —
    /// `workers + 2` process-wide counting a main thread parked in
    /// [`Server::join`].
    pub fn worker_threads(&self) -> usize {
        self.workers
    }

    /// Request a graceful drain: stop accepting and reading, answer
    /// every accepted request, flush outboxes, close, exit. Idempotent
    /// and thread-safe; pair with [`Server::join`] to wait for
    /// completion.
    pub fn shutdown(&self) {
        self.shared.request_shutdown();
    }

    /// Install a process-wide SIGTERM handler that triggers the same
    /// graceful drain as [`Server::shutdown`]. Intended for the
    /// `birds-serve` binary (one server per process).
    pub fn enable_signal_shutdown(&self) {
        self.shared.enable_signal_shutdown();
        crate::sys::install_sigterm_notify(self.shared.wakeup_fd());
    }

    /// Wait for the serve loop to finish (only returns after
    /// [`Server::shutdown`], SIGTERM with
    /// [`Server::enable_signal_shutdown`], the `exit_after` count, or a
    /// listener failure).
    pub fn join(self) -> std::io::Result<()> {
        match self.reactor_thread.join() {
            Ok(result) => result,
            Err(_) => Err(std::io::Error::other("reactor thread panicked")),
        }
    }
}

/// An in-process client speaking the same protocol without a socket —
/// what the unit tests, benches, and examples drive. One `LocalClient`
/// is one session; requests run synchronously in the caller's thread,
/// so responses are trivially in submission order.
pub struct LocalClient {
    session: Session,
}

impl LocalClient {
    /// Open an in-process session on `service`.
    pub fn connect(service: &Service) -> LocalClient {
        LocalClient {
            session: service.session(),
        }
    }

    /// Send one raw protocol line; returns the raw response line (with
    /// the request's `id` echoed, exactly like the TCP server).
    pub fn request_line(&mut self, line: &str) -> String {
        match Envelope::parse(line) {
            Ok(Envelope { id, request }) => with_id(dispatch(&mut self.session, &request), id),
            Err((id, e)) => with_id(error_response(&e), id),
        }
        .to_compact()
    }

    /// Send a decoded request; returns the response document.
    pub fn request(&mut self, request: &Request) -> crate::json::Json {
        dispatch(&mut self.session, request)
    }

    /// The underlying session (for direct API access in tests).
    pub fn session_mut(&mut self) -> &mut Session {
        &mut self.session
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::Json;
    use birds_core::UpdateStrategy;
    use birds_engine::{Engine, StrategyMode};
    use birds_store::{tuple, Database, DatabaseSchema, Relation, Schema, SortKind};
    use std::io::{BufRead, BufReader, Write};
    use std::net::TcpStream;

    fn union_service() -> Service {
        let mut db = Database::new();
        db.add_relation(Relation::with_tuples("r1", 1, vec![tuple![1]]).unwrap())
            .unwrap();
        db.add_relation(Relation::with_tuples("r2", 1, vec![tuple![2], tuple![4]]).unwrap())
            .unwrap();
        let strategy = UpdateStrategy::parse(
            DatabaseSchema::new()
                .with(Schema::new("r1", vec![("a", SortKind::Int)]))
                .with(Schema::new("r2", vec![("a", SortKind::Int)])),
            Schema::new("v", vec![("a", SortKind::Int)]),
            "
            -r1(X) :- r1(X), not v(X).
            -r2(X) :- r2(X), not v(X).
            +r1(X) :- v(X), not r1(X), not r2(X).
            ",
            None,
        )
        .unwrap();
        let mut engine = Engine::new(db);
        engine
            .register_view(strategy, StrategyMode::Incremental)
            .unwrap();
        Service::new(engine)
    }

    /// Extract the echoed `"id"` from a response line.
    fn response_id(line: &str) -> Json {
        Json::parse(line).unwrap().get("id").cloned().unwrap()
    }

    #[test]
    fn local_client_full_session() {
        let service = union_service();
        let mut client = LocalClient::connect(&service);
        let pong = client.request_line(r#"{"op":"ping"}"#);
        assert!(pong.contains("\"pong\": true"), "{pong}");

        client.request_line(r#"{"op":"begin"}"#);
        client.request_line(r#"{"op":"execute","sql":"INSERT INTO v VALUES (9);"}"#);
        let buffered =
            client.request_line(r#"{"op":"execute","sql":"DELETE FROM v WHERE a = 2;"}"#);
        assert!(buffered.contains("\"buffered\": 2"), "{buffered}");
        let commit = client.request_line(r#"{"op":"commit"}"#);
        assert!(commit.contains("\"ok\": true"), "{commit}");
        assert!(commit.contains("\"statements\": 2"), "{commit}");

        let query = client.request_line(r#"{"op":"query","relation":"v"}"#);
        let doc = Json::parse(&query).unwrap();
        let tuples = doc.get("tuples").unwrap().as_arr().unwrap();
        let flat: Vec<i64> = tuples
            .iter()
            .map(|t| t.as_arr().unwrap()[0].as_i64().unwrap())
            .collect();
        assert_eq!(flat, vec![1, 4, 9]);

        let err = client.request_line(r#"{"op":"execute","sql":"INSERT INTO nope VALUES (1);"}"#);
        assert!(err.contains("\"ok\": false"), "{err}");
    }

    #[test]
    fn tcp_round_trip() {
        let service = union_service();
        let server = Server::spawn("127.0.0.1:0", service.clone(), Some(1)).unwrap();
        let addr = server.addr();

        let stream = TcpStream::connect(addr).unwrap();
        let mut writer = stream.try_clone().unwrap();
        let mut reader = BufReader::new(stream);
        let mut send = |line: &str| {
            writer.write_all(line.as_bytes()).unwrap();
            writer.write_all(b"\n").unwrap();
            writer.flush().unwrap();
            let mut response = String::new();
            reader.read_line(&mut response).unwrap();
            response
        };

        assert!(send(r#"{"op":"ping"}"#).contains("\"pong\": true"));
        let applied = send(r#"{"op":"execute","sql":"INSERT INTO v VALUES (33);"}"#);
        assert!(applied.contains("\"applied\": true"), "{applied}");
        let stats = send(r#"{"op":"stats"}"#);
        assert!(stats.contains("\"commits\": 1"), "{stats}");
        assert!(
            stats.contains("\"index_hits\"") && stats.contains("\"index_misses\""),
            "per-relation probe counters missing: {stats}"
        );
        assert!(send("garbage").contains("\"ok\": false"));
        assert!(send(r#"{"op":"quit"}"#).contains("\"bye\": true"));

        server.join().unwrap();
        assert!(service.query("r1").unwrap().contains(&tuple![33]));
    }

    #[test]
    fn request_ids_are_echoed_for_pipelining() {
        let service = union_service();
        let mut client = LocalClient::connect(&service);
        let pong = client.request_line(r#"{"op":"ping","id":1}"#);
        assert!(pong.contains("\"id\": 1"), "{pong}");
        // Error responses still echo a salvageable id.
        let err = client.request_line(r#"{"op":"nope","id":"x9"}"#);
        assert!(
            err.contains("\"ok\": false") && err.contains("\"id\": \"x9\""),
            "{err}"
        );
    }

    #[test]
    fn pipelined_requests_are_answered_exactly_once_with_quit_last() {
        let service = union_service();
        let server = Server::spawn("127.0.0.1:0", service.clone(), Some(1)).unwrap();
        let stream = TcpStream::connect(server.addr()).unwrap();
        let mut writer = stream.try_clone().unwrap();
        let mut reader = BufReader::new(stream);
        // Fire five requests before reading any response. The batch ops
        // (a, b, c) are session-lane and stay FIFO; the query (d) is
        // stateless and may answer anywhere before the bye; the quit
        // (e) is a barrier, so its bye is always last.
        writer
            .write_all(
                b"{\"op\":\"begin\",\"id\":\"a\"}\n\
                  {\"op\":\"execute\",\"sql\":\"INSERT INTO v VALUES (70);\",\"id\":\"b\"}\n\
                  {\"op\":\"commit\",\"id\":\"c\"}\n\
                  {\"op\":\"query\",\"relation\":\"r2\",\"id\":\"d\"}\n\
                  {\"op\":\"quit\",\"id\":\"e\"}\n",
            )
            .unwrap();
        writer.flush().unwrap();
        let mut lines = Vec::new();
        for _ in 0..5 {
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            assert!(!line.is_empty(), "connection closed early");
            lines.push(line);
        }
        // Every id answered exactly once.
        let mut ids: Vec<String> = lines
            .iter()
            .map(|l| response_id(l).as_str().unwrap().to_owned())
            .collect();
        let order = ids.clone();
        ids.sort();
        assert_eq!(ids, ["a", "b", "c", "d", "e"], "{lines:?}");
        // Session-lane responses in submission order; bye last.
        let pos = |id: &str| order.iter().position(|x| x == id).unwrap();
        assert!(pos("a") < pos("b") && pos("b") < pos("c"), "{order:?}");
        assert_eq!(pos("e"), 4, "quit is a barrier: {order:?}");
        let by_id = |id: &str| &lines[pos(id)];
        assert!(by_id("a").contains("\"batch\": true"), "{lines:?}");
        assert!(by_id("b").contains("\"buffered\": 1"), "{lines:?}");
        assert!(by_id("c").contains("\"statements\": 1"), "{lines:?}");
        assert!(by_id("d").contains("[2]"), "{lines:?}");
        assert!(by_id("e").contains("\"bye\": true"), "{lines:?}");
        server.join().unwrap();
        assert!(service.query("v").unwrap().contains(&tuple![70]));
    }

    #[test]
    fn oversized_lines_are_rejected_and_drained() {
        let service = union_service();
        let server = Server::spawn_with("127.0.0.1:0", service.clone(), Some(1), 256).unwrap();
        let stream = TcpStream::connect(server.addr()).unwrap();
        let mut writer = stream.try_clone().unwrap();
        let mut reader = BufReader::new(stream);
        // One giant line (well over the 256-byte cap, and over the
        // reactor's read-chunk size so draining crosses reads), then a
        // normal request on the same connection.
        let mut giant = String::from("{\"op\":\"execute\",\"sql\":\"");
        giant.push_str(&"x".repeat(256 * 1024));
        giant.push_str("\"}\n");
        writer.write_all(giant.as_bytes()).unwrap();
        writer
            .write_all(b"{\"op\":\"ping\"}\n{\"op\":\"quit\"}\n")
            .unwrap();
        writer.flush().unwrap();
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert!(
            line.contains("\"ok\": false") && line.contains("256-byte line limit"),
            "{line}"
        );
        line.clear();
        reader.read_line(&mut line).unwrap();
        assert!(
            line.contains("\"pong\": true"),
            "connection survives: {line}"
        );
        line.clear();
        reader.read_line(&mut line).unwrap();
        assert!(line.contains("\"bye\": true"), "{line}");
        server.join().unwrap();
    }

    #[test]
    fn oversized_line_echoes_salvaged_id_and_pipelining_continues() {
        // The post-drain contract, end to end: an oversized request with
        // an id near the front gets a RequestTooLarge error carrying
        // that id, and pipelined follow-ups on the same connection are
        // all answered (correlated by id; the error precedes them since
        // it is written before the follow-ups are even decoded).
        let service = union_service();
        let server = Server::spawn_with("127.0.0.1:0", service.clone(), Some(1), 512).unwrap();
        let stream = TcpStream::connect(server.addr()).unwrap();
        let mut writer = stream.try_clone().unwrap();
        let mut reader = BufReader::new(stream);
        // All four requests in ONE write: the oversized one (id first,
        // giant sql spanning many reads), then three normal ones the
        // drain must leave intact.
        let mut burst = String::from("{\"op\":\"execute\",\"id\":\"big-1\",\"sql\":\"");
        burst.push_str(&"y".repeat(128 * 1024));
        burst.push_str("\"}\n");
        burst.push_str("{\"op\":\"execute\",\"sql\":\"INSERT INTO v VALUES (81);\",\"id\":2}\n");
        burst.push_str("{\"op\":\"query\",\"relation\":\"r2\",\"id\":3}\n");
        burst.push_str("{\"op\":\"quit\",\"id\":4}\n");
        writer.write_all(burst.as_bytes()).unwrap();
        writer.flush().unwrap();

        let mut lines = Vec::new();
        for _ in 0..4 {
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            assert!(!line.is_empty(), "connection closed early");
            lines.push(line);
        }
        assert!(
            lines[0].contains("\"ok\": false")
                && lines[0].contains("512-byte line limit")
                && lines[0].contains("\"id\": \"big-1\""),
            "{}",
            lines[0]
        );
        // The two independent follow-ups may answer in either order.
        let find = |id: i64| {
            lines[1..3]
                .iter()
                .find(|l| response_id(l) == Json::Int(id))
                .unwrap_or_else(|| panic!("id {id} unanswered: {lines:?}"))
        };
        assert!(find(2).contains("\"applied\": true"), "{lines:?}");
        assert!(find(3).contains("[2]"), "{lines:?}");
        assert!(
            lines[3].contains("\"bye\": true") && lines[3].contains("\"id\": 4"),
            "{}",
            lines[3]
        );
        server.join().unwrap();
        assert!(service.query("v").unwrap().contains(&tuple![81]));
    }

    #[test]
    fn eof_without_quit_still_answers_dangling_tail() {
        // A client that writes a final unterminated line and half-closes
        // still gets its answer before the server closes (the framer's
        // EOF tail rule + the HalfClosed drain).
        let service = union_service();
        let server = Server::spawn("127.0.0.1:0", service, Some(1)).unwrap();
        let stream = TcpStream::connect(server.addr()).unwrap();
        let mut writer = stream.try_clone().unwrap();
        let mut reader = BufReader::new(stream);
        writer.write_all(b"{\"op\":\"ping\",\"id\":9}").unwrap();
        writer.flush().unwrap();
        writer.shutdown(std::net::Shutdown::Write).unwrap();
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert!(
            line.contains("\"pong\": true") && line.contains("\"id\": 9"),
            "{line}"
        );
        server.join().unwrap();
    }
}
