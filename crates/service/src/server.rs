//! The TCP transport: one thread and one [`Session`] per connection,
//! line-delimited JSON framing (see [`crate::protocol`]).
//!
//! Protocol hardening: request lines are read through a bounded reader —
//! a line longer than the configured cap (default
//! [`DEFAULT_MAX_LINE_BYTES`]) is *discarded as it streams in*, never
//! buffered in full, and answered with a JSON error; the connection
//! stays usable. Every response echoes the request's `id` field when one
//! was present (see [`crate::protocol::Envelope`]), so clients may
//! pipeline requests and correlate replies.

use crate::error::ServiceError;
use crate::protocol::{dispatch, error_response, salvage_id, with_id, Envelope, Request};
use crate::service::{Service, Session};
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::thread::JoinHandle;

/// Default cap on one request line: 1 MiB.
pub const DEFAULT_MAX_LINE_BYTES: usize = 1 << 20;

/// A running server: the bound address plus the accept-loop thread.
pub struct Server {
    addr: std::net::SocketAddr,
    accept_thread: JoinHandle<std::io::Result<()>>,
}

impl Server {
    /// Bind `addr` (use port 0 for an OS-assigned port) and serve
    /// `service` on a background accept loop. When `max_connections` is
    /// `Some(n)`, the loop exits after the n-th connection *closes* —
    /// the mode CI smoke tests use so the process terminates on its own.
    pub fn spawn(
        addr: &str,
        service: Service,
        max_connections: Option<usize>,
    ) -> std::io::Result<Server> {
        Server::spawn_with(addr, service, max_connections, DEFAULT_MAX_LINE_BYTES)
    }

    /// [`Server::spawn`] with an explicit request-line byte cap.
    pub fn spawn_with(
        addr: &str,
        service: Service,
        max_connections: Option<usize>,
        max_line: usize,
    ) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let accept_thread =
            std::thread::spawn(move || serve(listener, service, max_connections, max_line));
        Ok(Server {
            addr: local,
            accept_thread,
        })
    }

    /// The address the server actually bound (resolves port 0).
    pub fn addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// Wait for the accept loop to finish (only returns when
    /// `max_connections` was set, or on listener failure).
    pub fn join(self) -> std::io::Result<()> {
        match self.accept_thread.join() {
            Ok(result) => result,
            Err(_) => Err(std::io::Error::other("accept loop panicked")),
        }
    }
}

/// Accept loop. Each connection gets its own session and thread; a
/// connection handler's IO errors terminate only that connection, and a
/// transient `accept` failure (client reset mid-handshake, fd pressure)
/// is skipped rather than killing the always-on server.
fn serve(
    listener: TcpListener,
    service: Service,
    max_connections: Option<usize>,
    max_line: usize,
) -> std::io::Result<()> {
    let mut handlers: Vec<JoinHandle<()>> = Vec::new();
    let mut accepted = 0usize;
    for stream in listener.incoming() {
        let stream = match stream {
            Ok(stream) => stream,
            Err(e) => {
                eprintln!("[birds-serve] accept failed (connection skipped): {e}");
                continue;
            }
        };
        // Reap finished handlers so a long-running server doesn't grow
        // its join list with every connection it has ever served.
        handlers.retain(|h| !h.is_finished());
        let session = service.session();
        handlers.push(std::thread::spawn(move || {
            // Transport errors (client vanished) are not server errors.
            let _ = handle_connection_with(stream, session, max_line);
        }));
        accepted += 1;
        if max_connections.is_some_and(|max| accepted >= max) {
            break;
        }
    }
    for h in handlers {
        let _ = h.join();
    }
    Ok(())
}

/// Serve one connection with the default line cap.
pub fn handle_connection(stream: TcpStream, session: Session) -> std::io::Result<()> {
    handle_connection_with(stream, session, DEFAULT_MAX_LINE_BYTES)
}

/// Serve one connection: read request lines (bounded at `max_line`
/// bytes), write response lines, until `quit`, EOF, or a transport
/// error.
pub fn handle_connection_with(
    stream: TcpStream,
    mut session: Session,
    max_line: usize,
) -> std::io::Result<()> {
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    loop {
        let line = match read_bounded_line(&mut reader, max_line)? {
            BoundedLine::Eof => break,
            BoundedLine::TooLong { prefix } => {
                // The tail was discarded unread, but the retained prefix
                // usually carries the request's id — salvage it so a
                // pipelining client can correlate the rejection.
                let id = salvage_id(&prefix);
                let response = with_id(
                    error_response(&ServiceError::RequestTooLarge { limit: max_line }),
                    id,
                );
                writer.write_all(response.to_compact().as_bytes())?;
                writer.write_all(b"\n")?;
                writer.flush()?;
                continue;
            }
            BoundedLine::Line(line) => line,
        };
        if line.trim().is_empty() {
            continue;
        }
        let (response, quit) = match Envelope::parse(&line) {
            Ok(Envelope { id, request }) => {
                let quit = request == Request::Quit;
                (with_id(dispatch(&mut session, &request), id), quit)
            }
            Err((id, e)) => (with_id(error_response(&e), id), false),
        };
        writer.write_all(response.to_compact().as_bytes())?;
        writer.write_all(b"\n")?;
        writer.flush()?;
        if quit {
            break;
        }
    }
    Ok(())
}

/// One bounded line read.
enum BoundedLine {
    /// A complete line (terminator stripped) within the cap.
    Line(String),
    /// The line exceeded the cap; it was drained from the stream without
    /// being buffered. `prefix` is the retained head (at most `cap + 1`
    /// bytes, lossily decoded) — enough to salvage a correlation id.
    TooLong { prefix: String },
    /// Clean end of stream.
    Eof,
}

/// Read one `\n`-terminated line whose *payload* (terminator and an
/// optional trailing `\r` excluded — CRLF clients get the same cap as
/// `\n` clients) is at most `cap` bytes. An over-long line is *streamed
/// to the trash* — consumed chunk by chunk up to its terminator while
/// only ever holding one `BufRead` buffer in memory — so a malicious
/// client cannot make the server buffer an unbounded request. At most
/// `cap + 1` bytes are ever buffered (the one byte of slack is where a
/// CRLF's `\r` sits until the terminator proves it part of the line
/// ending).
fn read_bounded_line(reader: &mut impl BufRead, cap: usize) -> std::io::Result<BoundedLine> {
    let too_long = |line: &[u8]| BoundedLine::TooLong {
        prefix: String::from_utf8_lossy(line).into_owned(),
    };
    let mut line: Vec<u8> = Vec::new();
    loop {
        let chunk = reader.fill_buf()?;
        if chunk.is_empty() {
            // EOF. A dangling unterminated tail still counts as a line.
            return Ok(if line.is_empty() {
                BoundedLine::Eof
            } else if line.len() > cap {
                too_long(&line)
            } else {
                BoundedLine::Line(String::from_utf8_lossy(&line).into_owned())
            });
        }
        let newline = chunk.iter().position(|&b| b == b'\n');
        let take = newline.unwrap_or(chunk.len());
        if line.len() + take > cap + 1 {
            // Even a trailing-\r allowance can't save this line: keep
            // only the salvage prefix (top up to the cap+1 bound from
            // this chunk), then drain up to the terminator (bounded
            // memory: one fill_buf chunk at a time).
            let top_up = (cap + 1).saturating_sub(line.len()).min(take);
            line.extend_from_slice(&chunk[..top_up]);
            let mut consumed_terminator = newline.is_some();
            let mut consume = take + usize::from(consumed_terminator);
            loop {
                reader.consume(consume);
                if consumed_terminator {
                    return Ok(too_long(&line));
                }
                let chunk = reader.fill_buf()?;
                if chunk.is_empty() {
                    return Ok(too_long(&line)); // EOF mid-line
                }
                match chunk.iter().position(|&b| b == b'\n') {
                    Some(pos) => {
                        consumed_terminator = true;
                        consume = pos + 1;
                    }
                    None => consume = chunk.len(),
                }
            }
        }
        line.extend_from_slice(&chunk[..take]);
        let consume = take + usize::from(newline.is_some());
        let done = newline.is_some();
        reader.consume(consume);
        if done {
            // Strip an optional \r for CRLF clients, then enforce the
            // cap on the actual payload.
            if line.last() == Some(&b'\r') {
                line.pop();
            }
            if line.len() > cap {
                return Ok(too_long(&line));
            }
            return Ok(BoundedLine::Line(
                String::from_utf8_lossy(&line).into_owned(),
            ));
        }
    }
}

/// An in-process client speaking the same protocol without a socket —
/// what the unit tests, benches, and examples drive. One `LocalClient`
/// is one session.
pub struct LocalClient {
    session: Session,
}

impl LocalClient {
    /// Open an in-process session on `service`.
    pub fn connect(service: &Service) -> LocalClient {
        LocalClient {
            session: service.session(),
        }
    }

    /// Send one raw protocol line; returns the raw response line (with
    /// the request's `id` echoed, exactly like the TCP server).
    pub fn request_line(&mut self, line: &str) -> String {
        match Envelope::parse(line) {
            Ok(Envelope { id, request }) => with_id(dispatch(&mut self.session, &request), id),
            Err((id, e)) => with_id(error_response(&e), id),
        }
        .to_compact()
    }

    /// Send a decoded request; returns the response document.
    pub fn request(&mut self, request: &Request) -> crate::json::Json {
        dispatch(&mut self.session, request)
    }

    /// The underlying session (for direct API access in tests).
    pub fn session_mut(&mut self) -> &mut Session {
        &mut self.session
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::Json;
    use birds_core::UpdateStrategy;
    use birds_engine::{Engine, StrategyMode};
    use birds_store::{tuple, Database, DatabaseSchema, Relation, Schema, SortKind};
    use std::io::{BufRead, BufReader, Write};

    fn union_service() -> Service {
        let mut db = Database::new();
        db.add_relation(Relation::with_tuples("r1", 1, vec![tuple![1]]).unwrap())
            .unwrap();
        db.add_relation(Relation::with_tuples("r2", 1, vec![tuple![2], tuple![4]]).unwrap())
            .unwrap();
        let strategy = UpdateStrategy::parse(
            DatabaseSchema::new()
                .with(Schema::new("r1", vec![("a", SortKind::Int)]))
                .with(Schema::new("r2", vec![("a", SortKind::Int)])),
            Schema::new("v", vec![("a", SortKind::Int)]),
            "
            -r1(X) :- r1(X), not v(X).
            -r2(X) :- r2(X), not v(X).
            +r1(X) :- v(X), not r1(X), not r2(X).
            ",
            None,
        )
        .unwrap();
        let mut engine = Engine::new(db);
        engine
            .register_view(strategy, StrategyMode::Incremental)
            .unwrap();
        Service::new(engine)
    }

    #[test]
    fn local_client_full_session() {
        let service = union_service();
        let mut client = LocalClient::connect(&service);
        let pong = client.request_line(r#"{"op":"ping"}"#);
        assert!(pong.contains("\"pong\": true"), "{pong}");

        client.request_line(r#"{"op":"begin"}"#);
        client.request_line(r#"{"op":"execute","sql":"INSERT INTO v VALUES (9);"}"#);
        let buffered =
            client.request_line(r#"{"op":"execute","sql":"DELETE FROM v WHERE a = 2;"}"#);
        assert!(buffered.contains("\"buffered\": 2"), "{buffered}");
        let commit = client.request_line(r#"{"op":"commit"}"#);
        assert!(commit.contains("\"ok\": true"), "{commit}");
        assert!(commit.contains("\"statements\": 2"), "{commit}");

        let query = client.request_line(r#"{"op":"query","relation":"v"}"#);
        let doc = Json::parse(&query).unwrap();
        let tuples = doc.get("tuples").unwrap().as_arr().unwrap();
        let flat: Vec<i64> = tuples
            .iter()
            .map(|t| t.as_arr().unwrap()[0].as_i64().unwrap())
            .collect();
        assert_eq!(flat, vec![1, 4, 9]);

        let err = client.request_line(r#"{"op":"execute","sql":"INSERT INTO nope VALUES (1);"}"#);
        assert!(err.contains("\"ok\": false"), "{err}");
    }

    #[test]
    fn tcp_round_trip() {
        let service = union_service();
        let server = Server::spawn("127.0.0.1:0", service.clone(), Some(1)).unwrap();
        let addr = server.addr();

        let stream = TcpStream::connect(addr).unwrap();
        let mut writer = stream.try_clone().unwrap();
        let mut reader = BufReader::new(stream);
        let mut send = |line: &str| {
            writer.write_all(line.as_bytes()).unwrap();
            writer.write_all(b"\n").unwrap();
            writer.flush().unwrap();
            let mut response = String::new();
            reader.read_line(&mut response).unwrap();
            response
        };

        assert!(send(r#"{"op":"ping"}"#).contains("\"pong\": true"));
        let applied = send(r#"{"op":"execute","sql":"INSERT INTO v VALUES (33);"}"#);
        assert!(applied.contains("\"applied\": true"), "{applied}");
        let stats = send(r#"{"op":"stats"}"#);
        assert!(stats.contains("\"commits\": 1"), "{stats}");
        assert!(send("garbage").contains("\"ok\": false"));
        assert!(send(r#"{"op":"quit"}"#).contains("\"bye\": true"));

        server.join().unwrap();
        assert!(service.query("r1").unwrap().contains(&tuple![33]));
    }

    #[test]
    fn request_ids_are_echoed_for_pipelining() {
        let service = union_service();
        let mut client = LocalClient::connect(&service);
        let pong = client.request_line(r#"{"op":"ping","id":1}"#);
        assert!(pong.contains("\"id\": 1"), "{pong}");
        // Error responses still echo a salvageable id.
        let err = client.request_line(r#"{"op":"nope","id":"x9"}"#);
        assert!(
            err.contains("\"ok\": false") && err.contains("\"id\": \"x9\""),
            "{err}"
        );
    }

    #[test]
    fn pipelined_requests_get_in_order_correlated_responses() {
        let service = union_service();
        let server = Server::spawn("127.0.0.1:0", service.clone(), Some(1)).unwrap();
        let stream = TcpStream::connect(server.addr()).unwrap();
        let mut writer = stream.try_clone().unwrap();
        let mut reader = BufReader::new(stream);
        // Fire three requests before reading any response.
        writer
            .write_all(
                b"{\"op\":\"execute\",\"sql\":\"INSERT INTO v VALUES (70);\",\"id\":\"a\"}\n\
                  {\"op\":\"query\",\"relation\":\"v\",\"id\":\"b\"}\n\
                  {\"op\":\"quit\",\"id\":\"c\"}\n",
            )
            .unwrap();
        writer.flush().unwrap();
        let mut lines = Vec::new();
        for _ in 0..3 {
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            lines.push(line);
        }
        assert!(lines[0].contains("\"id\": \"a\"") && lines[0].contains("\"applied\": true"));
        assert!(lines[1].contains("\"id\": \"b\"") && lines[1].contains("[70]"));
        assert!(lines[2].contains("\"id\": \"c\"") && lines[2].contains("\"bye\": true"));
        server.join().unwrap();
    }

    #[test]
    fn oversized_lines_are_rejected_and_drained() {
        let service = union_service();
        let server = Server::spawn_with("127.0.0.1:0", service.clone(), Some(1), 256).unwrap();
        let stream = TcpStream::connect(server.addr()).unwrap();
        let mut writer = stream.try_clone().unwrap();
        let mut reader = BufReader::new(stream);
        // One giant line (well over the 256-byte cap, and over the
        // BufReader chunk size so draining crosses fill_buf chunks),
        // then a normal request on the same connection.
        let mut giant = String::from("{\"op\":\"execute\",\"sql\":\"");
        giant.push_str(&"x".repeat(64 * 1024));
        giant.push_str("\"}\n");
        writer.write_all(giant.as_bytes()).unwrap();
        writer
            .write_all(b"{\"op\":\"ping\"}\n{\"op\":\"quit\"}\n")
            .unwrap();
        writer.flush().unwrap();
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert!(
            line.contains("\"ok\": false") && line.contains("256-byte line limit"),
            "{line}"
        );
        line.clear();
        reader.read_line(&mut line).unwrap();
        assert!(
            line.contains("\"pong\": true"),
            "connection survives: {line}"
        );
        line.clear();
        reader.read_line(&mut line).unwrap();
        assert!(line.contains("\"bye\": true"), "{line}");
        server.join().unwrap();
    }

    #[test]
    fn oversized_line_echoes_salvaged_id_and_pipelining_continues() {
        // The post-drain contract, end to end: an oversized request with
        // an id near the front gets a RequestTooLarge error carrying
        // that id, and pipelined follow-ups on the same connection are
        // answered in order as if nothing happened.
        let service = union_service();
        let server = Server::spawn_with("127.0.0.1:0", service.clone(), Some(1), 512).unwrap();
        let stream = TcpStream::connect(server.addr()).unwrap();
        let mut writer = stream.try_clone().unwrap();
        let mut reader = BufReader::new(stream);
        // All four requests in ONE write: the oversized one (id first,
        // giant sql spanning many fill_buf chunks), then three normal
        // ones the drain must leave intact.
        let mut burst = String::from("{\"op\":\"execute\",\"id\":\"big-1\",\"sql\":\"");
        burst.push_str(&"y".repeat(128 * 1024));
        burst.push_str("\"}\n");
        burst.push_str("{\"op\":\"execute\",\"sql\":\"INSERT INTO v VALUES (81);\",\"id\":2}\n");
        burst.push_str("{\"op\":\"query\",\"relation\":\"v\",\"id\":3}\n");
        burst.push_str("{\"op\":\"quit\",\"id\":4}\n");
        writer.write_all(burst.as_bytes()).unwrap();
        writer.flush().unwrap();

        let mut lines = Vec::new();
        for _ in 0..4 {
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            lines.push(line);
        }
        assert!(
            lines[0].contains("\"ok\": false")
                && lines[0].contains("512-byte line limit")
                && lines[0].contains("\"id\": \"big-1\""),
            "{}",
            lines[0]
        );
        assert!(
            lines[1].contains("\"applied\": true") && lines[1].contains("\"id\": 2"),
            "{}",
            lines[1]
        );
        assert!(
            lines[2].contains("[81]") && lines[2].contains("\"id\": 3"),
            "{}",
            lines[2]
        );
        assert!(
            lines[3].contains("\"bye\": true") && lines[3].contains("\"id\": 4"),
            "{}",
            lines[3]
        );
        server.join().unwrap();
    }

    #[test]
    fn bounded_reader_retains_salvage_prefix() {
        use std::io::Cursor;
        // Oversized line: the retained prefix is the first cap+1 bytes,
        // even when the overflow is detected mid-accumulation.
        let payload = format!("{}{}", "a".repeat(6), "b".repeat(20));
        let mut r = Cursor::new(format!("{payload}\nnext\n").into_bytes());
        let BoundedLine::TooLong { prefix } = read_bounded_line(&mut r, 8).unwrap() else {
            panic!("line over cap");
        };
        assert_eq!(prefix, payload[..9], "first cap+1 bytes retained");
        assert!(matches!(
            read_bounded_line(&mut r, 8).unwrap(),
            BoundedLine::Line(l) if l == "next"
        ));
        // Unterminated oversized tail at EOF keeps its prefix too.
        let mut r = Cursor::new(vec![b'z'; 40]);
        let BoundedLine::TooLong { prefix } = read_bounded_line(&mut r, 8).unwrap() else {
            panic!("tail over cap");
        };
        assert_eq!(prefix.len(), 9);
    }

    #[test]
    fn bounded_reader_handles_edges() {
        use std::io::Cursor;
        // Exactly at the cap passes; one over fails.
        let mut r = Cursor::new(b"abcd\nefghi\nok\n".to_vec());
        assert!(matches!(
            read_bounded_line(&mut r, 4).unwrap(),
            BoundedLine::Line(l) if l == "abcd"
        ));
        assert!(matches!(
            read_bounded_line(&mut r, 4).unwrap(),
            BoundedLine::TooLong { .. }
        ));
        assert!(matches!(
            read_bounded_line(&mut r, 4).unwrap(),
            BoundedLine::Line(l) if l == "ok"
        ));
        assert!(matches!(
            read_bounded_line(&mut r, 4).unwrap(),
            BoundedLine::Eof
        ));
        // Unterminated tail at EOF still yields the line; CR stripped.
        let mut r = Cursor::new(b"tail".to_vec());
        assert!(matches!(
            read_bounded_line(&mut r, 64).unwrap(),
            BoundedLine::Line(l) if l == "tail"
        ));
        let mut r = Cursor::new(b"crlf\r\n".to_vec());
        assert!(matches!(
            read_bounded_line(&mut r, 64).unwrap(),
            BoundedLine::Line(l) if l == "crlf"
        ));
        // A CRLF terminator does not count against the cap: an
        // exactly-at-cap payload passes with either line ending, and
        // one payload byte over fails with either.
        let mut r = Cursor::new(b"abcd\r\nefghi\r\n".to_vec());
        assert!(matches!(
            read_bounded_line(&mut r, 4).unwrap(),
            BoundedLine::Line(l) if l == "abcd"
        ));
        assert!(matches!(
            read_bounded_line(&mut r, 4).unwrap(),
            BoundedLine::TooLong { .. }
        ));
        // Oversized line that ends at EOF without a terminator.
        let mut r = Cursor::new(vec![b'z'; 100]);
        assert!(matches!(
            read_bounded_line(&mut r, 10).unwrap(),
            BoundedLine::TooLong { .. }
        ));
    }
}
