//! The TCP transport: one thread and one [`Session`] per connection,
//! line-delimited JSON framing (see [`crate::protocol`]).

use crate::protocol::{dispatch, error_response, Request};
use crate::service::{Service, Session};
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::thread::JoinHandle;

/// A running server: the bound address plus the accept-loop thread.
pub struct Server {
    addr: std::net::SocketAddr,
    accept_thread: JoinHandle<std::io::Result<()>>,
}

impl Server {
    /// Bind `addr` (use port 0 for an OS-assigned port) and serve
    /// `service` on a background accept loop. When `max_connections` is
    /// `Some(n)`, the loop exits after the n-th connection *closes* —
    /// the mode CI smoke tests use so the process terminates on its own.
    pub fn spawn(
        addr: &str,
        service: Service,
        max_connections: Option<usize>,
    ) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let accept_thread = std::thread::spawn(move || serve(listener, service, max_connections));
        Ok(Server {
            addr: local,
            accept_thread,
        })
    }

    /// The address the server actually bound (resolves port 0).
    pub fn addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// Wait for the accept loop to finish (only returns when
    /// `max_connections` was set, or on listener failure).
    pub fn join(self) -> std::io::Result<()> {
        match self.accept_thread.join() {
            Ok(result) => result,
            Err(_) => Err(std::io::Error::other("accept loop panicked")),
        }
    }
}

/// Accept loop. Each connection gets its own session and thread; a
/// connection handler's IO errors terminate only that connection, and a
/// transient `accept` failure (client reset mid-handshake, fd pressure)
/// is skipped rather than killing the always-on server.
fn serve(
    listener: TcpListener,
    service: Service,
    max_connections: Option<usize>,
) -> std::io::Result<()> {
    let mut handlers: Vec<JoinHandle<()>> = Vec::new();
    let mut accepted = 0usize;
    for stream in listener.incoming() {
        let stream = match stream {
            Ok(stream) => stream,
            Err(e) => {
                eprintln!("[birds-serve] accept failed (connection skipped): {e}");
                continue;
            }
        };
        // Reap finished handlers so a long-running server doesn't grow
        // its join list with every connection it has ever served.
        handlers.retain(|h| !h.is_finished());
        let session = service.session();
        handlers.push(std::thread::spawn(move || {
            // Transport errors (client vanished) are not server errors.
            let _ = handle_connection(stream, session);
        }));
        accepted += 1;
        if max_connections.is_some_and(|max| accepted >= max) {
            break;
        }
    }
    for h in handlers {
        let _ = h.join();
    }
    Ok(())
}

/// Serve one connection: read request lines, write response lines, until
/// `quit`, EOF, or a transport error.
pub fn handle_connection(stream: TcpStream, mut session: Session) -> std::io::Result<()> {
    let mut writer = stream.try_clone()?;
    let reader = BufReader::new(stream);
    for line in reader.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let (response, quit) = match Request::parse(&line) {
            Ok(request) => {
                let quit = request == Request::Quit;
                (dispatch(&mut session, &request), quit)
            }
            Err(e) => (error_response(&e), false),
        };
        writer.write_all(response.to_compact().as_bytes())?;
        writer.write_all(b"\n")?;
        writer.flush()?;
        if quit {
            break;
        }
    }
    Ok(())
}

/// An in-process client speaking the same protocol without a socket —
/// what the unit tests, benches, and examples drive. One `LocalClient`
/// is one session.
pub struct LocalClient {
    session: Session,
}

impl LocalClient {
    /// Open an in-process session on `service`.
    pub fn connect(service: &Service) -> LocalClient {
        LocalClient {
            session: service.session(),
        }
    }

    /// Send one raw protocol line; returns the raw response line.
    pub fn request_line(&mut self, line: &str) -> String {
        match Request::parse(line) {
            Ok(request) => dispatch(&mut self.session, &request),
            Err(e) => error_response(&e),
        }
        .to_compact()
    }

    /// Send a decoded request; returns the response document.
    pub fn request(&mut self, request: &Request) -> crate::json::Json {
        dispatch(&mut self.session, request)
    }

    /// The underlying session (for direct API access in tests).
    pub fn session_mut(&mut self) -> &mut Session {
        &mut self.session
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::Json;
    use birds_core::UpdateStrategy;
    use birds_engine::{Engine, StrategyMode};
    use birds_store::{tuple, Database, DatabaseSchema, Relation, Schema, SortKind};
    use std::io::{BufRead, BufReader, Write};

    fn union_service() -> Service {
        let mut db = Database::new();
        db.add_relation(Relation::with_tuples("r1", 1, vec![tuple![1]]).unwrap())
            .unwrap();
        db.add_relation(Relation::with_tuples("r2", 1, vec![tuple![2], tuple![4]]).unwrap())
            .unwrap();
        let strategy = UpdateStrategy::parse(
            DatabaseSchema::new()
                .with(Schema::new("r1", vec![("a", SortKind::Int)]))
                .with(Schema::new("r2", vec![("a", SortKind::Int)])),
            Schema::new("v", vec![("a", SortKind::Int)]),
            "
            -r1(X) :- r1(X), not v(X).
            -r2(X) :- r2(X), not v(X).
            +r1(X) :- v(X), not r1(X), not r2(X).
            ",
            None,
        )
        .unwrap();
        let mut engine = Engine::new(db);
        engine
            .register_view(strategy, StrategyMode::Incremental)
            .unwrap();
        Service::new(engine)
    }

    #[test]
    fn local_client_full_session() {
        let service = union_service();
        let mut client = LocalClient::connect(&service);
        let pong = client.request_line(r#"{"op":"ping"}"#);
        assert!(pong.contains("\"pong\": true"), "{pong}");

        client.request_line(r#"{"op":"begin"}"#);
        client.request_line(r#"{"op":"execute","sql":"INSERT INTO v VALUES (9);"}"#);
        let buffered =
            client.request_line(r#"{"op":"execute","sql":"DELETE FROM v WHERE a = 2;"}"#);
        assert!(buffered.contains("\"buffered\": 2"), "{buffered}");
        let commit = client.request_line(r#"{"op":"commit"}"#);
        assert!(commit.contains("\"ok\": true"), "{commit}");
        assert!(commit.contains("\"statements\": 2"), "{commit}");

        let query = client.request_line(r#"{"op":"query","relation":"v"}"#);
        let doc = Json::parse(&query).unwrap();
        let tuples = doc.get("tuples").unwrap().as_arr().unwrap();
        let flat: Vec<i64> = tuples
            .iter()
            .map(|t| t.as_arr().unwrap()[0].as_i64().unwrap())
            .collect();
        assert_eq!(flat, vec![1, 4, 9]);

        let err = client.request_line(r#"{"op":"execute","sql":"INSERT INTO nope VALUES (1);"}"#);
        assert!(err.contains("\"ok\": false"), "{err}");
    }

    #[test]
    fn tcp_round_trip() {
        let service = union_service();
        let server = Server::spawn("127.0.0.1:0", service.clone(), Some(1)).unwrap();
        let addr = server.addr();

        let stream = TcpStream::connect(addr).unwrap();
        let mut writer = stream.try_clone().unwrap();
        let mut reader = BufReader::new(stream);
        let mut send = |line: &str| {
            writer.write_all(line.as_bytes()).unwrap();
            writer.write_all(b"\n").unwrap();
            writer.flush().unwrap();
            let mut response = String::new();
            reader.read_line(&mut response).unwrap();
            response
        };

        assert!(send(r#"{"op":"ping"}"#).contains("\"pong\": true"));
        let applied = send(r#"{"op":"execute","sql":"INSERT INTO v VALUES (33);"}"#);
        assert!(applied.contains("\"applied\": true"), "{applied}");
        let stats = send(r#"{"op":"stats"}"#);
        assert!(stats.contains("\"commits\": 1"), "{stats}");
        assert!(send("garbage").contains("\"ok\": false"));
        assert!(send(r#"{"op":"quit"}"#).contains("\"bye\": true"));

        server.join().unwrap();
        assert!(service.query("r1").unwrap().contains(&tuple![33]));
    }
}
