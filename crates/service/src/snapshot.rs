//! MVCC snapshots: the lock-free read side of the service.
//!
//! Every shard owns a snapshot cell holding an `Arc` to the shard's
//! latest published [`ShardSnapshot`] — an immutable image of the
//! shard's relations ([`RelationVersion`]s, `Arc`-shared version
//! buffers) tagged with the shard's **high-water commit seq**.
//!
//! ## Visibility rule
//!
//! A shard snapshot tagged `commit_seq = s` contains the effects of
//! *exactly* the commits with seq ≤ `s` that touched this shard, and
//! nothing of any later commit. Publication happens while the shard's
//! write lock is still held, after deltas are applied (and after the
//! commit's WAL record is appended, on durable services): a reader can
//! never observe a commit's effects before that commit is logged.
//!
//! One deliberate exception, on **in-memory** services only: batch
//! atomicity is per view, so a multi-view batch that fails on its k-th
//! view keeps the first k−1 views applied. With no WAL to log that
//! prefix under a fresh seq (the durable path does exactly that), the
//! mutated shards republish at their *unchanged* high-water seq — the
//! lock-free read path must keep matching engine memory, so the failed
//! batch's applied prefix is visible seq-less. Its mutations carry no
//! commit seq of their own and the batch reported an error.
//!
//! ## Why readers never block writers (and vice versa)
//!
//! Readers load the cell pointer — a nanosecond-scale `RwLock` critical
//! section around an `Arc` clone, never the shard's engine lock — and
//! then work entirely against the immutable image. Writers publish by
//! swapping the pointer. The engine's left-right versioned tuple sets
//! ([`birds_store::Relation`]) make publication `O(delta)`, not
//! `O(tuples)`: an epoch that touched two relations replays its ops
//! into their shadow buffers and re-shares every untouched one.
//!
//! ## Cross-shard consistency
//!
//! A [`ServiceSnapshot`] assembles one `Arc` per shard. Commits that
//! touch a *single* shard publish independently — they commute with
//! every other single-shard commit, so any combination of cell pointers
//! is a consistent cut. Commits that touch *multiple* shards (a batch
//! spanning footprint components) are the only writes that can
//! establish a cross-shard invariant, so only they bracket their
//! publication with the service's publication seqlock; readers retry
//! the (cheap) pointer collection if such a publication was in flight.

use crate::footprint::ShardMap;
use birds_engine::Engine;
use birds_store::RelationVersion;
use std::sync::{Arc, RwLock};

/// An immutable image of one shard's relations at a commit boundary.
///
/// Produced under the shard's write lock, shared with readers through
/// the shard's snapshot cell. Once published it never changes;
/// holding the `Arc` pins the image for as long as the reader likes,
/// at the cost of keeping the (structurally shared) tuple sets alive.
#[derive(Debug)]
pub struct ShardSnapshot {
    /// High-water commit seq: the effects of every commit with seq ≤
    /// this that touched the shard are visible, and nothing newer.
    commit_seq: u64,
    /// Every relation in the shard, in name order (base tables and
    /// materialized views alike).
    relations: Vec<RelationVersion>,
    /// Names of the shard's registered updatable views, in name order.
    views: Vec<String>,
}

impl ShardSnapshot {
    /// Capture the current contents of `engine` as of commit
    /// `commit_seq`. Cost: `O(delta)` per touched relation plus an
    /// `O(1)` re-share per untouched one (left-right publication in
    /// `birds_store`); `&mut` because each relation's publication state
    /// advances. Call only while the shard's write lock is held (or
    /// before the service is shared), so the image is a commit
    /// boundary.
    pub(crate) fn capture(engine: &mut Engine, commit_seq: u64) -> ShardSnapshot {
        let relations = engine.relation_versions();
        ShardSnapshot {
            commit_seq,
            relations,
            views: engine.view_names().map(str::to_owned).collect(),
        }
    }

    /// An empty image — what a *retired* shard slot publishes after a
    /// live re-shard moved its relations elsewhere. No route entry ever
    /// points at a retired slot, so the image is unreachable through
    /// normal reads; it exists so whole-service assembly stays a plain
    /// per-slot pointer collection.
    pub(crate) fn empty(commit_seq: u64) -> ShardSnapshot {
        ShardSnapshot {
            commit_seq,
            relations: Vec::new(),
            views: Vec::new(),
        }
    }

    /// The shard's high-water commit seq (see the visibility rule in
    /// the module docs).
    pub fn commit_seq(&self) -> u64 {
        self.commit_seq
    }

    /// Look up a relation by name (`None` if the shard doesn't own it).
    pub fn relation(&self, name: &str) -> Option<&RelationVersion> {
        self.relations
            .binary_search_by(|rel| rel.name().cmp(name))
            .ok()
            .map(|i| &self.relations[i])
    }

    /// Is `name` one of this shard's registered updatable views?
    pub fn is_view(&self, name: &str) -> bool {
        self.views
            .binary_search_by(|v| v.as_str().cmp(name))
            .is_ok()
    }

    /// The shard's relations, in name order.
    pub fn relations(&self) -> impl Iterator<Item = &RelationVersion> {
        self.relations.iter()
    }

    /// The shard's view names, in name order.
    pub fn view_names(&self) -> impl Iterator<Item = &str> {
        self.views.iter().map(String::as_str)
    }
}

/// One shard's published-snapshot slot: a pointer-swap cell.
///
/// The `RwLock` here guards only the `Arc` pointer — critical sections
/// are a clone or a store, never engine work — so a reader loading the
/// cell cannot be blocked by a writer holding the shard's *engine*
/// lock, which is the whole point of the MVCC read path.
pub(crate) struct SnapshotCell {
    ptr: RwLock<Arc<ShardSnapshot>>,
}

impl SnapshotCell {
    pub(crate) fn new(snapshot: ShardSnapshot) -> SnapshotCell {
        SnapshotCell {
            ptr: RwLock::new(Arc::new(snapshot)),
        }
    }

    /// Swap in a freshly captured snapshot. Called with the shard's
    /// write lock held, so publications are ordered like commits.
    pub(crate) fn publish(&self, snapshot: ShardSnapshot) {
        let snapshot = Arc::new(snapshot);
        // A panic between a lock acquisition and release here is
        // impossible (the critical section is a pointer store), but
        // recover from poisoning anyway — the pointer is always valid.
        match self.ptr.write() {
            Ok(mut slot) => *slot = snapshot,
            Err(poisoned) => *poisoned.into_inner() = snapshot,
        }
    }

    /// Load the current snapshot pointer (an `Arc` clone).
    pub(crate) fn load(&self) -> Arc<ShardSnapshot> {
        match self.ptr.read() {
            Ok(slot) => Arc::clone(&slot),
            Err(poisoned) => Arc::clone(&poisoned.into_inner()),
        }
    }
}

/// A consistent, pinnable, lock-free view over every shard: what
/// [`crate::Service::snapshot`] returns and [`crate::Service::read`]
/// lends its closure.
///
/// Assembly takes no shard lock — it collects each shard's published
/// `Arc` and retries (via the service's publication seqlock) only if a
/// multi-shard commit was publishing concurrently. The result is an
/// owned value: keep it as long as you like; it observes none of the
/// commits that happen after assembly.
pub struct ServiceSnapshot {
    shards: Vec<Arc<ShardSnapshot>>,
    route: Arc<ShardMap>,
}

impl ServiceSnapshot {
    pub(crate) fn new(shards: Vec<Arc<ShardSnapshot>>, route: Arc<ShardMap>) -> ServiceSnapshot {
        ServiceSnapshot { shards, route }
    }

    /// Read access to any relation (base table or materialized view);
    /// `None` for names no shard owns.
    pub fn relation(&self, name: &str) -> Option<&RelationVersion> {
        let shard = self.route.shard_of(name)?;
        self.shards[shard.index()].relation(name)
    }

    /// Is `name` a registered updatable view?
    pub fn is_view(&self, name: &str) -> bool {
        self.route
            .shard_of(name)
            .is_some_and(|shard| self.shards[shard.index()].is_view(name))
    }

    /// Names of all registered views, in name order.
    pub fn view_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .shards
            .iter()
            .flat_map(|shard| shard.view_names().map(str::to_owned))
            .collect();
        names.sort();
        names
    }

    /// Iterate every relation across all shards (shard-internal name
    /// order; not globally sorted).
    pub fn relations(&self) -> impl Iterator<Item = &RelationVersion> {
        self.shards.iter().flat_map(|shard| shard.relations())
    }

    /// The snapshot's overall high-water commit seq (the max over its
    /// shards): every commit with seq ≤ the *per-shard* seq is visible
    /// on that shard.
    pub fn commit_seq(&self) -> u64 {
        self.shards
            .iter()
            .map(|shard| shard.commit_seq())
            .max()
            .unwrap_or(0)
    }

    /// Per-shard high-water commit seqs, in shard (lock-id) order.
    pub fn shard_seqs(&self) -> Vec<u64> {
        self.shards.iter().map(|shard| shard.commit_seq()).collect()
    }

    /// Number of shards covered.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }
}
