//! A minimal JSON value with a recursive-descent parser and two writers.
//!
//! The build environment's `serde` is an offline stub with no
//! serializer/deserializer, and the service protocol plus the benchmark
//! trajectory files only need plain JSON trees — so this module carries
//! the ~300 lines of JSON the workspace actually uses. Objects preserve
//! insertion order (they are association lists), which keeps re-written
//! benchmark documents diffable; numbers distinguish integers from
//! floats so `"base_size": 1000000` survives a parse → serialize round
//! trip without turning into `1000000.0`.

use std::fmt;

/// A parsed JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A number without fraction or exponent.
    Int(i64),
    /// A number with a fraction or exponent (or outside `i64` range).
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, as an insertion-ordered association list. Duplicate
    /// keys are kept as parsed; `get` returns the first.
    Obj(Vec<(String, Json)>),
}

/// Parse error: message plus byte offset into the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub message: String,
    /// Byte offset where it went wrong.
    pub offset: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Parse a complete JSON document (trailing whitespace allowed,
    /// trailing garbage rejected).
    pub fn parse(src: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: src.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(v)
    }

    /// Build a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Object field lookup (first match); `None` on non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Mutable object field lookup (first match).
    pub fn get_mut(&mut self, key: &str) -> Option<&mut Json> {
        match self {
            Json::Obj(fields) => fields.iter_mut().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string content, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The integer content, if this is an integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Numeric content as `f64` (integers coerce).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(i) => Some(*i as f64),
            Json::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// The boolean content, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Mutable elements, if this is an array.
    pub fn as_arr_mut(&mut self) -> Option<&mut Vec<Json>> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Single-line rendering (the wire format of the service protocol).
    pub fn to_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Multi-line rendering with two-space indentation (the format of the
    /// committed `BENCH_*.json` trajectory files), ending in a newline.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => out.push_str(&i.to_string()),
            Json::Float(f) => {
                // `{}` prints the shortest round-tripping form; make sure
                // it still reads back as a float.
                let s = f.to_string();
                out.push_str(&s);
                if !s.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                        if indent.is_none() {
                            out.push(' ');
                        }
                    }
                    newline_indent(out, indent, depth + 1);
                    item.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                        if indent.is_none() {
                            out.push(' ');
                        }
                    }
                    newline_indent(out, indent, depth + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push('}');
            }
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..depth * width {
            out.push(' ');
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            message: message.into(),
            offset: self.pos,
        }
    }

    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(self.err(format!("unexpected character '{}'", other as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: require a \uXXXX low
                                // half in 0xDC00..0xE000 — anything else
                                // is malformed JSON, not data.
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    if (0xDC00..0xE000).contains(&lo) {
                                        let combined =
                                            0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                        char::from_u32(combined)
                                    } else {
                                        None
                                    }
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(hi)
                            };
                            out.push(c.ok_or_else(|| self.err("invalid \\u escape"))?);
                            // hex4 advanced past the digits; compensate
                            // for the unconditional advance below.
                            self.pos -= 1;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so the
                    // byte stream is valid UTF-8).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).expect("input was a &str");
                    let c = s.chars().next().expect("peeked non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Json::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Json::Float)
            .map_err(|_| self.err(format!("invalid number '{text}'")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse("true").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("  false ").unwrap(), Json::Bool(false));
        assert_eq!(Json::parse("42").unwrap(), Json::Int(42));
        assert_eq!(Json::parse("-7").unwrap(), Json::Int(-7));
        assert_eq!(Json::parse("2.5").unwrap(), Json::Float(2.5));
        assert_eq!(Json::parse("1e3").unwrap(), Json::Float(1000.0));
        assert_eq!(Json::parse("\"hi\"").unwrap(), Json::str("hi"));
    }

    #[test]
    fn parses_nested_structure() {
        let doc = Json::parse(r#"{"a": [1, {"b": "x"}, null], "c": true}"#).unwrap();
        assert_eq!(doc.get("c"), Some(&Json::Bool(true)));
        let arr = doc.get("a").unwrap().as_arr().unwrap();
        assert_eq!(arr[0], Json::Int(1));
        assert_eq!(arr[1].get("b").unwrap().as_str(), Some("x"));
        assert_eq!(arr[2], Json::Null);
    }

    #[test]
    fn string_escapes_round_trip() {
        let original = Json::str("line1\nline2\t\"quoted\" \\ slash");
        let rendered = original.to_compact();
        assert_eq!(Json::parse(&rendered).unwrap(), original);
    }

    #[test]
    fn unicode_escapes_parse() {
        assert_eq!(Json::parse(r#""é""#).unwrap(), Json::str("é"));
        // Surrogate pair: U+1F600.
        assert_eq!(Json::parse(r#""😀""#).unwrap(), Json::str("😀"));
        assert_eq!(
            Json::parse(r#""\uD83D\uDE00""#).unwrap(),
            Json::str("😀"),
            "escaped surrogate pair decodes"
        );
        // A high surrogate must be followed by a low surrogate escape —
        // rejecting, not silently mis-decoding, malformed pairs.
        assert!(Json::parse(r#""\uD834A""#).is_err());
        assert!(Json::parse(r#""\uD834x""#).is_err());
        assert!(Json::parse(r#""\uDC00""#).is_err(), "lone low surrogate");
    }

    #[test]
    fn int_float_distinction_survives_round_trip() {
        let doc = Json::parse(r#"{"n": 1000000, "ms": 2105.04}"#).unwrap();
        let rendered = doc.to_compact();
        assert!(rendered.contains("1000000"), "{rendered}");
        assert!(!rendered.contains("1000000.0"), "{rendered}");
        assert!(rendered.contains("2105.04"), "{rendered}");
        assert_eq!(Json::parse(&rendered).unwrap(), doc);
    }

    #[test]
    fn whole_float_keeps_float_syntax() {
        assert_eq!(Json::Float(3.0).to_compact(), "3.0");
        assert_eq!(Json::parse("3.0").unwrap(), Json::Float(3.0));
    }

    #[test]
    fn pretty_output_reparses() {
        let doc =
            Json::parse(r#"{"runs": [{"label": "a", "points": [1, 2]}], "empty": []}"#).unwrap();
        let pretty = doc.to_pretty();
        assert!(pretty.ends_with('\n'));
        assert_eq!(Json::parse(&pretty).unwrap(), doc);
        // Objects keep insertion order.
        assert!(pretty.find("runs").unwrap() < pretty.find("empty").unwrap());
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("nul").is_err());
        assert!(Json::parse("1 2").is_err());
        assert!(Json::parse("\"unterminated").is_err());
        let err = Json::parse("[true, xyz]").unwrap_err();
        assert!(err.offset > 0);
    }

    #[test]
    fn duplicate_keys_first_wins_on_get() {
        let doc = Json::parse(r#"{"k": 1, "k": 2}"#).unwrap();
        assert_eq!(doc.get("k"), Some(&Json::Int(1)));
    }
}
