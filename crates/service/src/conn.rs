//! Per-connection state for the epoll reactor: the incremental line
//! framer and the connection record (outbox, request lanes, lifecycle
//! phase).
//!
//! The framer is the push-based port of the old blocking server's
//! bounded line reader, with byte-identical semantics: a line's
//! *payload* (terminator and an optional trailing `\r` excluded) may be
//! at most `cap` bytes; an over-long line is discarded as it streams in
//! — never buffered in full — retaining only a `cap + 1`-byte salvage
//! prefix so the `RequestTooLarge` error can still echo the request's
//! `id` (see [`crate::protocol::salvage_id`]). The difference is the
//! control flow: instead of pulling chunks from a blocking `BufRead`,
//! the reactor *pushes* whatever a nonblocking `read` returned and the
//! framer carries its accumulation/drain state across calls.

use crate::json::Json;
use crate::protocol::Request;
use crate::service::Session;
use std::collections::VecDeque;
use std::net::TcpStream;
use std::sync::atomic::AtomicUsize;
use std::sync::{Arc, Mutex};

/// One framed unit from the byte stream.
#[derive(Debug, PartialEq)]
pub(crate) enum Frame {
    /// A complete line (terminator stripped) within the cap.
    Line(String),
    /// The line exceeded the cap; its tail was discarded unread.
    /// `prefix` is the retained head (at most `cap + 1` bytes, lossily
    /// decoded) — enough to salvage a correlation id.
    TooLong {
        /// Retained head of the discarded line.
        prefix: String,
    },
}

/// Incremental `\n`-delimited framing with a payload byte cap.
///
/// Feed it raw chunks as they arrive; it emits zero or more [`Frame`]s
/// per chunk. At most `cap + 1` bytes of an unterminated line are ever
/// held (the one byte of slack is where a CRLF's `\r` sits until the
/// terminator proves it part of the line ending).
pub(crate) struct LineFramer {
    cap: usize,
    line: Vec<u8>,
    /// Inside an over-long line: discard until the terminator.
    draining: bool,
}

impl LineFramer {
    pub fn new(cap: usize) -> LineFramer {
        LineFramer {
            cap,
            line: Vec::new(),
            draining: false,
        }
    }

    fn too_long(&mut self) -> Frame {
        Frame::TooLong {
            prefix: String::from_utf8_lossy(&std::mem::take(&mut self.line)).into_owned(),
        }
    }

    /// Consume one chunk of bytes, appending completed frames to `out`.
    pub fn feed(&mut self, mut chunk: &[u8], out: &mut Vec<Frame>) {
        while !chunk.is_empty() {
            let newline = chunk.iter().position(|&b| b == b'\n');
            let take = newline.unwrap_or(chunk.len());
            if self.draining {
                // Over-long line: discard up to the terminator. The
                // salvage prefix was already captured when the overflow
                // was detected.
                if newline.is_some() {
                    self.draining = false;
                    out.push(self.too_long());
                    chunk = &chunk[take + 1..];
                } else {
                    chunk = &[];
                }
                continue;
            }
            if self.line.len() + take > self.cap + 1 {
                // Even a trailing-\r allowance can't save this line:
                // keep only the salvage prefix (topped up to the cap+1
                // bound from this chunk), then switch to drain mode —
                // the loop re-examines the rest of the chunk there.
                let top_up = (self.cap + 1).saturating_sub(self.line.len()).min(take);
                self.line.extend_from_slice(&chunk[..top_up]);
                self.draining = true;
                chunk = &chunk[top_up..];
                continue;
            }
            self.line.extend_from_slice(&chunk[..take]);
            match newline {
                Some(_) => {
                    // Strip an optional \r for CRLF clients, then
                    // enforce the cap on the actual payload.
                    if self.line.last() == Some(&b'\r') {
                        self.line.pop();
                    }
                    if self.line.len() > self.cap {
                        out.push(self.too_long());
                    } else {
                        out.push(Frame::Line(
                            String::from_utf8_lossy(&std::mem::take(&mut self.line)).into_owned(),
                        ));
                    }
                    chunk = &chunk[take + 1..];
                }
                None => chunk = &[],
            }
        }
    }

    /// End of stream: a dangling unterminated tail still counts as a
    /// line (over-cap tails, including an interrupted drain, report as
    /// [`Frame::TooLong`]).
    pub fn finish(&mut self) -> Option<Frame> {
        if self.draining {
            self.draining = false;
            return Some(self.too_long());
        }
        if self.line.is_empty() {
            return None;
        }
        if self.line.len() > self.cap {
            return Some(self.too_long());
        }
        Some(Frame::Line(
            String::from_utf8_lossy(&std::mem::take(&mut self.line)).into_owned(),
        ))
    }
}

/// Where a connection is in its lifecycle.
pub(crate) enum ConnPhase {
    /// Reading and serving requests.
    Open,
    /// A `quit` arrived: no further reads; once all in-flight work has
    /// answered, the bye response is queued (`bye_queued`), the outbox
    /// flushed, and the connection closed. `quit` is thereby a
    /// *barrier*: its bye is always the connection's last response.
    Quitting {
        /// The quit request's correlation id, echoed on the bye.
        id: Option<Json>,
        /// Whether the bye response has been appended to the outbox.
        bye_queued: bool,
    },
    /// Peer half-closed (EOF): no bye owed, but in-flight responses are
    /// still completed and flushed before the connection closes.
    HalfClosed,
}

/// One live connection owned by the reactor.
pub(crate) struct Conn {
    pub stream: TcpStream,
    pub framer: LineFramer,
    /// Bytes queued for the peer, flushed on write readiness.
    pub outbox: VecDeque<u8>,
    /// The connection's session, shared with worker threads. Only the
    /// session lane locks it, and only one session-lane job per
    /// connection is ever in flight, so workers never contend on it.
    pub session: Arc<Mutex<Session>>,
    /// Mirror of `session.pending()` maintained by session-lane workers,
    /// so the stateless `stats` op reports batch depth without locking
    /// the session (a slow commit must not delay stats).
    pub pending_hint: Arc<AtomicUsize>,
    /// Parse-time batch tracking: `begin` opens, `commit`/`rollback`
    /// close — maintained exactly (a failed `begin` inside a batch
    /// leaves it open; a failed `commit` outside one leaves none), so
    /// autocommit `execute`s can be classified onto the stateless lane
    /// without consulting the session.
    pub in_batch_parsed: bool,
    /// Session-lane requests not yet submitted (FIFO, one in flight).
    pub session_queue: VecDeque<(Request, Option<Json>)>,
    pub session_in_flight: bool,
    /// Stateless-lane jobs currently on the worker pool.
    pub stateless_in_flight: usize,
    pub phase: ConnPhase,
    /// The epoll interest bits currently registered for this socket.
    pub interest: u32,
}

impl Conn {
    pub fn new(stream: TcpStream, session: Session, max_line: usize) -> Conn {
        Conn {
            stream,
            framer: LineFramer::new(max_line),
            outbox: VecDeque::new(),
            session: Arc::new(Mutex::new(session)),
            pending_hint: Arc::new(AtomicUsize::new(0)),
            in_batch_parsed: false,
            session_queue: VecDeque::new(),
            session_in_flight: false,
            stateless_in_flight: 0,
            phase: ConnPhase::Open,
            interest: 0,
        }
    }

    /// Requests accepted but not yet answered (queued or on a worker).
    pub fn load(&self) -> usize {
        self.session_queue.len() + usize::from(self.session_in_flight) + self.stateless_in_flight
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drive a framer over `input` split into `chunk`-byte pieces,
    /// returning all frames including the EOF tail.
    fn frames(input: &[u8], cap: usize, chunk: usize) -> Vec<Frame> {
        let mut framer = LineFramer::new(cap);
        let mut out = Vec::new();
        for piece in input.chunks(chunk.max(1)) {
            framer.feed(piece, &mut out);
        }
        if let Some(tail) = framer.finish() {
            out.push(tail);
        }
        out
    }

    fn line(s: &str) -> Frame {
        Frame::Line(s.to_owned())
    }

    #[test]
    fn framer_handles_edges_at_every_chunking() {
        // Exactly at the cap passes; one over fails; chunk boundaries
        // (1 byte up to whole-input) must never change the result.
        for chunk in [1, 2, 3, 5, 64] {
            let got = frames(b"abcd\nefghi\nok\n", 4, chunk);
            assert_eq!(got.len(), 3, "chunk={chunk}: {got:?}");
            assert_eq!(got[0], line("abcd"), "chunk={chunk}");
            assert!(matches!(got[1], Frame::TooLong { .. }), "chunk={chunk}");
            assert_eq!(got[2], line("ok"), "chunk={chunk}");

            // Unterminated tail at EOF still yields the line.
            assert_eq!(frames(b"tail", 64, chunk), vec![line("tail")]);
            // CR stripped before a terminator.
            assert_eq!(frames(b"crlf\r\n", 64, chunk), vec![line("crlf")]);
            // A CRLF terminator does not count against the cap: an
            // exactly-at-cap payload passes with either line ending,
            // and one payload byte over fails with either.
            let got = frames(b"abcd\r\nefghi\r\n", 4, chunk);
            assert_eq!(got[0], line("abcd"), "chunk={chunk}");
            assert!(matches!(got[1], Frame::TooLong { .. }), "chunk={chunk}");
            // Oversized line that ends at EOF without a terminator.
            let got = frames(&[b'z'; 100], 10, chunk);
            assert_eq!(got.len(), 1);
            assert!(matches!(got[0], Frame::TooLong { .. }));
        }
    }

    #[test]
    fn framer_retains_salvage_prefix() {
        let payload = format!("{}{}", "a".repeat(6), "b".repeat(20));
        let input = format!("{payload}\nnext\n").into_bytes();
        for chunk in [1, 4, 7, 256] {
            let got = frames(&input, 8, chunk);
            let Frame::TooLong { prefix } = &got[0] else {
                panic!("line over cap (chunk={chunk}): {got:?}");
            };
            assert_eq!(prefix, &payload[..9], "first cap+1 bytes (chunk={chunk})");
            assert_eq!(got[1], line("next"), "drain resynchronizes");
        }
        // Unterminated oversized tail at EOF keeps its prefix too.
        let got = frames(&[b'z'; 40], 8, 3);
        let Frame::TooLong { prefix } = &got[0] else {
            panic!("tail over cap: {got:?}");
        };
        assert_eq!(prefix.len(), 9);
    }

    #[test]
    fn framer_emits_multiple_frames_from_one_chunk() {
        let mut framer = LineFramer::new(64);
        let mut out = Vec::new();
        framer.feed(b"one\ntwo\nthree", &mut out);
        assert_eq!(out, vec![line("one"), line("two")]);
        out.clear();
        framer.feed(b"!\n", &mut out);
        assert_eq!(out, vec![line("three!")]);
        assert_eq!(framer.finish(), None);
    }

    #[test]
    fn framer_never_buffers_more_than_cap_plus_one() {
        let mut framer = LineFramer::new(16);
        let mut out = Vec::new();
        for _ in 0..1000 {
            framer.feed(&[b'x'; 1024], &mut out);
            assert!(framer.line.len() <= 17, "bounded memory under flood");
        }
        assert!(out.is_empty(), "no terminator yet");
        framer.feed(b"\n", &mut out);
        assert_eq!(out.len(), 1);
        assert!(matches!(&out[0], Frame::TooLong { prefix } if prefix.len() == 17));
    }
}
