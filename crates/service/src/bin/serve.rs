//! `birds-serve` — the updatable-view database as an always-on process.
//!
//! Server mode (default) binds a TCP listener and speaks the
//! line-delimited JSON protocol of `birds_service::protocol`, served by
//! the epoll reactor (`--workers` threads regardless of connection
//! count):
//!
//! ```text
//! birds-serve --listen 127.0.0.1:7878             # Example 3.1 demo views
//! birds-serve --listen 127.0.0.1:0 --exit-after 1 # exit after one session
//! birds-serve --listen 0.0.0.0:7878 --workers 8 --max-conns 10000
//! ```
//!
//! `--max-conns N` is a **live** connection cap: a connection accepted
//! while N are open is answered with a typed
//! `server at its N-connection limit` error and closed. (The old
//! exit-after-N-sessions behavior this flag once had lives on as
//! `--exit-after N`.) SIGTERM drains gracefully: accepted requests are
//! answered and outboxes flushed before the process exits.
//!
//! Client mode connects to a running server, forwards each line of
//! stdin as a request, and prints each response line to stdout —
//! enough to script a session from CI or a shell:
//!
//! ```text
//! echo '{"op":"query","relation":"v"}' | birds-serve --connect 127.0.0.1:7878
//! ```
//!
//! Durability: `--data-dir DIR` makes the database survive restarts —
//! every commit is written ahead to a per-shard WAL under `DIR/wal/`
//! before it is acknowledged, `--fsync always|epoch|off` picks the
//! flush policy (default `epoch`: one fdatasync per group-commit
//! epoch), and `--checkpoint-every N` snapshots-then-truncates the log
//! every N commits (default 1024; 0 disables automatic checkpoints).
//! On startup the server recovers the latest snapshot and replays the
//! WAL in global commit-seq order, discarding torn tails by CRC.
//!
//! Schema: `--strategy FILE` loads a JSON catalogue instead of the
//! built-in demo — base tables plus update strategies:
//!
//! ```json
//! {"tables": [{"name":"r1","columns":[["a","int"]]},
//!             {"name":"r2","columns":[["a","int"]]}],
//!  "views":  [{"view":{"name":"v","columns":[["a","int"]]},
//!              "sources":[{"name":"r1","columns":[["a","int"]]},
//!                         {"name":"r2","columns":[["a","int"]]}],
//!              "putdelta":"-r1(X) :- r1(X), not v(X). …",
//!              "mode":"incremental"}]}
//! ```
//!
//! The views go through the **live** registration path
//! (`Service::register_view` — validation, quiesce, WAL logging) after
//! the service is up, exactly like a runtime `register` request; on a
//! recovered data directory a view that already exists (replayed from
//! the WAL or the checkpoint manifest) is tolerated and skipped. More
//! views can be added at runtime with the protocol's `register` op.
//!
//! Without `--strategy`, the demo database is the paper's Example 3.1:
//! `v = r1 ∪ r2` with the programmed strategy (deletions remove from
//! whichever table held the tuple; insertions go to `r1`), registered
//! in incremental mode.

use birds_core::UpdateStrategy;
use birds_engine::{Engine, StrategyMode};
use birds_service::protocol::{schema_from_json, spec_from_json};
use birds_service::{
    DurabilityConfig, Json, Server, ServerConfig, Service, ServiceConfig, ServiceError,
};
use birds_store::{tuple, Database, DatabaseSchema, Relation, Schema, SortKind};
use birds_wal::FsyncPolicy;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

fn main() {
    let mut listen = String::from("127.0.0.1:7878");
    let mut connect: Option<String> = None;
    let mut config = ServerConfig::default();
    let mut data_dir: Option<String> = None;
    let mut fsync = FsyncPolicy::default();
    let mut checkpoint_every: Option<u64> = None;
    let mut strategy_file: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--listen" => listen = require_value(args.next(), "--listen"),
            "--strategy" => strategy_file = Some(require_value(args.next(), "--strategy")),
            "--connect" => connect = Some(require_value(args.next(), "--connect")),
            "--max-conns" => {
                config.max_conns = Some(parse_flag(args.next(), "--max-conns", "an integer"))
            }
            "--exit-after" => {
                config.exit_after = Some(parse_flag(args.next(), "--exit-after", "an integer"))
            }
            "--workers" => config.workers = parse_flag(args.next(), "--workers", "a thread count"),
            "--backlog" => {
                config.backlog = Some(parse_flag(args.next(), "--backlog", "an integer"))
            }
            "--max-line" => config.max_line = parse_flag(args.next(), "--max-line", "a byte count"),
            "--data-dir" => data_dir = Some(require_value(args.next(), "--data-dir")),
            "--fsync" => {
                fsync = require_value(args.next(), "--fsync")
                    .parse()
                    .unwrap_or_else(|e| {
                        eprintln!("{e}");
                        std::process::exit(2);
                    })
            }
            "--checkpoint-every" => {
                checkpoint_every = Some(parse_flag(args.next(), "--checkpoint-every", "an integer"))
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: birds-serve [--listen ADDR] [--workers N] [--max-conns N]\n\
                     \x20                 [--exit-after N] [--backlog N] [--max-line BYTES]\n\
                     \x20                 [--data-dir DIR] [--fsync always|epoch|off]\n\
                     \x20                 [--checkpoint-every N] [--strategy FILE]\n\
                     \x20      birds-serve --connect ADDR   (client mode, script on stdin)"
                );
                return;
            }
            flag => {
                eprintln!("unknown flag '{flag}' (try --help)");
                std::process::exit(2);
            }
        }
    }

    if let Some(addr) = connect {
        run_client(&addr);
    } else {
        run_server(
            &listen,
            config,
            data_dir,
            fsync,
            checkpoint_every,
            strategy_file,
        );
    }
}

fn run_server(
    listen: &str,
    config: ServerConfig,
    data_dir: Option<String>,
    fsync: FsyncPolicy,
    checkpoint_every: Option<u64>,
    strategy_file: Option<String>,
) {
    // With `--strategy`, the seed engine is just the catalogue's base
    // tables; the views register through the live path below (same code
    // as a runtime `register` request). Without it, the built-in demo.
    let catalogue = strategy_file.map(|path| load_catalogue(&path));
    let seed = match &catalogue {
        Some(catalogue) => catalogue_engine(catalogue),
        None => demo_engine(),
    };
    let service = match data_dir {
        None => Service::new(seed),
        Some(dir) => {
            let mut durability = DurabilityConfig::new(&dir);
            durability.fsync = fsync;
            if let Some(every) = checkpoint_every {
                durability.checkpoint_every = (every > 0).then_some(every);
            }
            match Service::open(seed, ServiceConfig::default(), durability) {
                Ok(service) => {
                    println!(
                        "recovered {} committed transactions from {dir} (fsync {fsync})",
                        service.commits()
                    );
                    service
                }
                Err(e) => {
                    eprintln!("cannot recover data dir {dir}: {e}");
                    std::process::exit(1);
                }
            }
        }
    };
    if let Some(catalogue) = catalogue {
        register_catalogue_views(&service, &catalogue);
    }
    let server = Server::spawn_config(listen, service, config).unwrap_or_else(|e| {
        eprintln!("cannot listen on {listen}: {e}");
        std::process::exit(1);
    });
    // SIGTERM drains in-flight requests and flushes outboxes before
    // exit (crash-path coverage keeps using SIGKILL).
    server.enable_signal_shutdown();
    // Parseable by scripts that need the resolved port (`--listen :0`).
    println!("listening on {}", server.addr());
    if let Err(e) = server.join() {
        eprintln!("server error: {e}");
        std::process::exit(1);
    }
}

fn run_client(addr: &str) {
    let stream = TcpStream::connect(addr).unwrap_or_else(|e| {
        eprintln!("cannot connect to {addr}: {e}");
        std::process::exit(1);
    });
    // Lockstep request/response over small writes is the worst case for
    // Nagle + delayed ACK; disable it like the server does.
    let _ = stream.set_nodelay(true);
    let mut writer = stream.try_clone().expect("clone stream");
    let mut responses = BufReader::new(stream);
    let stdin = std::io::stdin();
    for line in stdin.lock().lines() {
        let line = line.expect("read stdin");
        if line.trim().is_empty() {
            continue;
        }
        writer.write_all(line.as_bytes()).expect("send request");
        writer.write_all(b"\n").expect("send request");
        writer.flush().expect("send request");
        let mut response = String::new();
        if responses.read_line(&mut response).expect("read response") == 0 {
            eprintln!("server closed the connection");
            std::process::exit(1);
        }
        print!("{response}");
    }
    // Close the session so `--exit-after` servers can wind down.
    let _ = writer.write_all(b"{\"op\":\"quit\"}\n");
    let _ = writer.flush();
    let mut bye = String::new();
    let _ = responses.read_line(&mut bye);
}

/// Load and parse a `--strategy` catalogue file (exits on failure —
/// a misdeclared catalogue must not silently serve the demo schema).
fn load_catalogue(path: &str) -> Json {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("cannot read strategy file {path}: {e}");
        std::process::exit(1);
    });
    Json::parse(&text).unwrap_or_else(|e| {
        eprintln!("strategy file {path} is not valid JSON: {e}");
        std::process::exit(1);
    })
}

/// Build the seed engine from the catalogue's `"tables"`: every base
/// relation declared empty (contents come from recovery or from
/// runtime inserts). Views are *not* registered here — they go through
/// the live path once the service is up.
fn catalogue_engine(catalogue: &Json) -> Engine {
    let mut db = Database::new();
    let tables = catalogue
        .get("tables")
        .and_then(Json::as_arr)
        .unwrap_or_else(|| {
            eprintln!("strategy file needs an array field 'tables'");
            std::process::exit(1);
        });
    for table in tables {
        let schema = schema_from_json(table).unwrap_or_else(|e| {
            eprintln!("bad table declaration: {e}");
            std::process::exit(1);
        });
        db.add_relation(
            Relation::with_tuples(&schema.name, schema.arity(), vec![])
                .expect("empty relation is well-formed"),
        )
        .unwrap_or_else(|e| {
            eprintln!("cannot declare table '{}': {e}", schema.name);
            std::process::exit(1);
        });
    }
    Engine::new(db)
}

/// Register the catalogue's `"views"` through the live registration
/// path — validation, quiesce barrier, WAL logging — exactly like a
/// runtime `register` request. `ViewExists` is tolerated: on a
/// recovered data directory the WAL replay or the checkpoint manifest
/// may have re-created the view already.
fn register_catalogue_views(service: &Service, catalogue: &Json) {
    let Some(views) = catalogue.get("views").and_then(Json::as_arr) else {
        return;
    };
    for view in views {
        let spec = spec_from_json(view).unwrap_or_else(|e| {
            eprintln!("bad view declaration: {e}");
            std::process::exit(1);
        });
        let mode = match view.get("mode").and_then(Json::as_str) {
            None | Some("incremental") => StrategyMode::Incremental,
            Some("original") => StrategyMode::Original,
            Some(other) => {
                eprintln!("view '{}': unknown mode '{other}'", spec.view.name);
                std::process::exit(1);
            }
        };
        let strategy = match spec.to_strategy() {
            Ok(strategy) => strategy,
            Err(e) => {
                eprintln!("view '{}': {e}", spec.view.name);
                std::process::exit(1);
            }
        };
        match service.register_view(strategy, mode) {
            Ok(seq) => println!("registered view '{}' (commit seq {seq})", spec.view.name),
            Err(ServiceError::ViewExists(name)) => {
                println!("view '{name}' already registered (recovered)")
            }
            Err(e) => {
                eprintln!("cannot register view '{}': {e}", spec.view.name);
                std::process::exit(1);
            }
        }
    }
}

/// Example 3.1: `v = r1 ∪ r2`, seeded with r1 = {1}, r2 = {2, 4}.
fn demo_engine() -> Engine {
    let mut db = Database::new();
    db.add_relation(Relation::with_tuples("r1", 1, vec![tuple![1]]).expect("seed r1"))
        .expect("add r1");
    db.add_relation(Relation::with_tuples("r2", 1, vec![tuple![2], tuple![4]]).expect("seed r2"))
        .expect("add r2");
    let strategy = UpdateStrategy::parse(
        DatabaseSchema::new()
            .with(Schema::new("r1", vec![("a", SortKind::Int)]))
            .with(Schema::new("r2", vec![("a", SortKind::Int)])),
        Schema::new("v", vec![("a", SortKind::Int)]),
        "
        -r1(X) :- r1(X), not v(X).
        -r2(X) :- r2(X), not v(X).
        +r1(X) :- v(X), not r1(X), not r2(X).
        ",
        None,
    )
    .expect("demo strategy parses");
    let mut engine = Engine::new(db);
    engine
        .register_view(strategy, StrategyMode::Incremental)
        .expect("demo view registers");
    engine
}

fn require_value(v: Option<String>, flag: &str) -> String {
    v.unwrap_or_else(|| {
        eprintln!("{flag} needs a value");
        std::process::exit(2);
    })
}

fn parse_flag<T: std::str::FromStr>(v: Option<String>, flag: &str, what: &str) -> T {
    require_value(v, flag).parse().unwrap_or_else(|_| {
        eprintln!("{flag} needs {what}");
        std::process::exit(2);
    })
}
