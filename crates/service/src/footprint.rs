//! Footprint sharding: partition an engine into independently lockable
//! components and route relation names to their shard.
//!
//! At registration time the engine computes each view's **dependency
//! footprint** — the base relations its strategy, derived get and
//! incremental program read, the delta targets it writes, closed over
//! cascades into sub-views ([`birds_engine::ViewFootprint`]). Two
//! commits conflict exactly when their footprint closures intersect, so
//! the service partitions the engine along footprint-connected
//! components ([`birds_engine::Engine::split_components`]): views whose
//! closures intersect share a shard (and a lock); views with disjoint
//! footprints land in different shards and commit in parallel. A free
//! base relation no view depends on becomes a singleton shard, so
//! direct reads of it never contend with view traffic.
//!
//! The [`ShardMap`] is the routing half: an immutable relation-name →
//! [`LockId`] table built once at service construction (the view
//! catalogue is fixed for the service's lifetime), consulted without any
//! lock.

use crate::error::{ServiceError, ServiceResult};
use crate::locks::{LockId, LockManager};
use birds_engine::{Engine, EngineError};
use std::collections::HashMap;

/// Immutable relation-name → shard routing table.
pub struct ShardMap {
    route: HashMap<String, LockId>,
}

impl ShardMap {
    /// The shard that owns `relation` (a base table or view name).
    pub fn shard_of(&self, relation: &str) -> Option<LockId> {
        self.route.get(relation).copied()
    }

    /// The lock set of a commit touching `views`: the owning shard of
    /// each name, deduplicated (sorted by [`LockManager::write_set`]).
    /// Unknown names are a typed error — the engine would reject them as
    /// `NotAView` anyway, so the commit fails before taking any lock.
    pub fn lock_set<'a>(
        &self,
        names: impl IntoIterator<Item = &'a str>,
    ) -> ServiceResult<Vec<LockId>> {
        names
            .into_iter()
            .map(|name| {
                self.shard_of(name)
                    .ok_or_else(|| ServiceError::Engine(EngineError::NotAView(name.to_owned())))
            })
            .collect()
    }

    /// Number of routed relation names.
    pub fn len(&self) -> usize {
        self.route.len()
    }

    /// `true` when nothing is routed.
    pub fn is_empty(&self) -> bool {
        self.route.is_empty()
    }
}

/// Split `engine` into its footprint components and build the shard
/// routing table: component `i` becomes lock slot `i`.
pub fn partition(engine: Engine) -> (LockManager<Engine>, ShardMap) {
    let components = engine.split_components();
    let mut route = HashMap::new();
    for (index, component) in components.iter().enumerate() {
        for name in component.database().names() {
            route.insert(name.to_owned(), LockId::new(index));
        }
    }
    (LockManager::new(components), ShardMap { route })
}
