//! Footprint sharding: partition an engine into independently lockable
//! components and route relation names to their shard.
//!
//! At registration time the engine computes each view's **dependency
//! footprint** — the base relations its strategy, derived get and
//! incremental program read, the delta targets it writes, closed over
//! cascades into sub-views ([`birds_engine::ViewFootprint`]). Two
//! commits conflict exactly when their footprint closures intersect, so
//! the service partitions the engine along footprint-connected
//! components ([`birds_engine::Engine::split_components`]): views whose
//! closures intersect share a shard (and a lock); views with disjoint
//! footprints land in different shards and commit in parallel. A free
//! base relation no view depends on becomes a singleton shard, so
//! direct reads of it never contend with view traffic.
//!
//! The [`ShardMap`] is the routing half: an immutable relation-name →
//! [`LockId`] table, consulted without any lock. Immutable does not
//! mean frozen: live view registration builds a *successor* map
//! (`ShardMap::successor`) with the affected names re-routed and
//! atomically swaps the `Arc` holding it — every request loads the
//! current map once and routes against a consistent generation.

use crate::error::{ServiceError, ServiceResult};
use crate::locks::LockId;
use birds_engine::{Engine, EngineError};
use std::collections::HashMap;

/// Immutable relation-name → shard routing table.
pub struct ShardMap {
    route: HashMap<String, LockId>,
}

impl ShardMap {
    /// The shard that owns `relation` (a base table or view name).
    pub fn shard_of(&self, relation: &str) -> Option<LockId> {
        self.route.get(relation).copied()
    }

    /// The lock set of a commit touching `views`: the owning shard of
    /// each name, deduplicated (sorted by `LockManager::write_set`).
    /// Unknown names are a typed error — the engine would reject them as
    /// `NotAView` anyway, so the commit fails before taking any lock.
    pub fn lock_set<'a>(
        &self,
        names: impl IntoIterator<Item = &'a str>,
    ) -> ServiceResult<Vec<LockId>> {
        names
            .into_iter()
            .map(|name| {
                self.shard_of(name)
                    .ok_or_else(|| ServiceError::Engine(EngineError::NotAView(name.to_owned())))
            })
            .collect()
    }

    /// Number of routed relation names.
    pub fn len(&self) -> usize {
        self.route.len()
    }

    /// `true` when nothing is routed.
    pub fn is_empty(&self) -> bool {
        self.route.is_empty()
    }

    /// All routed names and their shards (unordered).
    pub fn entries(&self) -> impl Iterator<Item = (&str, LockId)> {
        self.route.iter().map(|(name, id)| (name.as_str(), *id))
    }

    /// The distinct shard ids this map routes to, ascending.
    pub fn shard_ids(&self) -> Vec<LockId> {
        let mut ids: Vec<LockId> = self.route.values().copied().collect();
        ids.sort_unstable();
        ids.dedup();
        ids
    }

    /// Build the successor map of a live re-shard: every name currently
    /// routed to one of the `retired` shards is dropped, then each
    /// replacement component's names are routed to its new id. Names on
    /// surviving shards keep their routes (and their slot `Arc`s).
    pub(crate) fn successor<'a>(
        &self,
        retired: &[LockId],
        replacements: impl IntoIterator<Item = (&'a Engine, LockId)>,
    ) -> ShardMap {
        let mut route: HashMap<String, LockId> = self
            .route
            .iter()
            .filter(|(_, id)| !retired.contains(id))
            .map(|(name, id)| (name.clone(), *id))
            .collect();
        for (component, id) in replacements {
            for name in component.database().names() {
                route.insert(name.to_owned(), id);
            }
        }
        ShardMap { route }
    }
}

/// Split `engine` into its footprint components and build the shard
/// routing table: component `i` becomes lock slot `i`.
pub fn partition(engine: Engine) -> (Vec<Engine>, ShardMap) {
    let components = engine.split_components();
    let mut route = HashMap::new();
    for (index, component) in components.iter().enumerate() {
        for name in component.database().names() {
            route.insert(name.to_owned(), LockId::new(index));
        }
    }
    (components, ShardMap { route })
}
