//! Figure 6(b) — `officeinfo` (projection): view-update latency vs
//! base-table size, original vs incremental strategy.

use birds::benchmarks::figure6::Figure6View;
use birds::engine::StrategyMode;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let view = Figure6View::Officeinfo;
    let mut group = c.benchmark_group("figure6/projection");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(3));
    for &n in &[1_000usize, 10_000, 100_000] {
        for (label, mode) in [
            ("original", StrategyMode::Original),
            ("incremental", StrategyMode::Incremental),
        ] {
            group.bench_with_input(BenchmarkId::new(label, n), &n, |b, &n| {
                b.iter_batched(
                    || (view.engine(n, mode), view.update_script(n)),
                    |(mut engine, script)| engine.execute(&script).expect("update runs"),
                    criterion::BatchSize::LargeInput,
                )
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
