//! Table 1: validation time per corpus view (the paper's "Validation
//! Time (s)" column).
//!
//! One criterion group with a bench per corpus row. Joins and heavily
//! constrained strategies are the slow rows, exactly as in the paper.
//!
//! Run a quick subset with
//! `cargo bench -p birds-bench --bench table1_validation -- luxuryitems`.

use birds::benchmarks::corpus;
use birds::validate;
use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

/// Rows benchmarked by default: representatives across operator classes
/// whose single validation stays well below a second, so criterion can
/// sample meaningfully. The full table (including the multi-second join
/// rows) is produced by the `table1` binary instead.
const FAST_ROWS: &[&str] = &[
    "car_master",
    "goodstudents",
    "luxuryitems",
    "usa_city",
    "ced",
    "residents1962",
    "employees",
    "researchers",
    "paramountmovies",
    "officeinfo",
    "vw_brands",
    "tracks2",
    "ukaz_lok",
    "message",
    "phonelist",
];

fn bench_validation(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1/validation");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    for e in corpus::entries() {
        if !FAST_ROWS.contains(&e.name) {
            continue;
        }
        let strategy = e.strategy().expect("fast rows are expressible");
        group.bench_function(e.name, |b| {
            b.iter(|| {
                let report = validate(&strategy).expect("validation runs");
                assert!(report.valid, "{}: {:?}", e.name, report.reason);
                report
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_validation);
criterion_main!(benches);
