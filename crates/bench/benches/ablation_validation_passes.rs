//! Ablation (ours): where does Algorithm 1 spend its time?
//!
//! The validator runs three passes — well-definedness, GetPut
//! (steady-state existence / expected-get check), and PutGet. This bench
//! isolates each pass's cost by comparing the full validation against a
//! well-definedness-only run and a validation with the expected get
//! supplied (which skips the derivation work).

use birds::prelude::*;
use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

fn union_strategy(expected: bool) -> UpdateStrategy {
    UpdateStrategy::parse(
        DatabaseSchema::new()
            .with(Schema::new("r1", vec![("a", SortKind::Int)]))
            .with(Schema::new("r2", vec![("a", SortKind::Int)])),
        Schema::new("v", vec![("a", SortKind::Int)]),
        "
        -r1(X) :- r1(X), not v(X).
        -r2(X) :- r2(X), not v(X).
        +r1(X) :- v(X), not r1(X), not r2(X).
        ",
        expected.then_some("v(X) :- r1(X). v(X) :- r2(X)."),
    )
    .unwrap()
}

fn selection_strategy() -> UpdateStrategy {
    UpdateStrategy::parse(
        DatabaseSchema::new().with(Schema::new(
            "r",
            vec![("x", SortKind::Int), ("y", SortKind::Int)],
        )),
        Schema::new("v", vec![("x", SortKind::Int), ("y", SortKind::Int)]),
        "
        false :- v(X, Y), not Y > 2.
        +r(X, Y) :- v(X, Y), not r(X, Y).
        m(X, Y) :- r(X, Y), Y > 2.
        -r(X, Y) :- m(X, Y), not v(X, Y).
        ",
        Some("v(X, Y) :- r(X, Y), Y > 2."),
    )
    .unwrap()
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/passes");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));

    // Derive-get path (no expected get): pass 2 does the full Lemma 4.2
    // construction.
    group.bench_function("union/derive_get", |b| {
        let s = union_strategy(false);
        b.iter(|| validate(&s).unwrap())
    });
    // Expected-get path: pass 2 reduces to per-delta no-op checks.
    group.bench_function("union/expected_get", |b| {
        let s = union_strategy(true);
        b.iter(|| validate(&s).unwrap())
    });
    // Per-pass wall-clock shares, via the report's own timings.
    group.bench_function("selection/with_constraint", |b| {
        let s = selection_strategy();
        b.iter(|| {
            let r = validate(&s).unwrap();
            assert!(r.valid);
            // The per-pass breakdown the table prints:
            (
                r.timings.well_definedness,
                r.timings.getput,
                r.timings.putget,
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
