//! Ablation (ours): cost of the bounded model finder versus its
//! fresh-element bound.
//!
//! Our Z3 substitute iterates finite domains with 0..=k fresh elements.
//! Unsatisfiable sentences pay for every domain size up to the bound;
//! satisfiable ones stop at the first witness. This bench quantifies that
//! asymmetry and the growth in k — the knob DESIGN.md calls out.

use birds::datalog::{CmpOp, PredRef, Term};
use birds::fol::Formula;
use birds::solver::BoundedSolver;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

fn rel(name: &str, vars: &[&str]) -> Formula {
    Formula::Rel(
        PredRef::plain(name),
        vars.iter().map(|v| Term::var(*v)).collect(),
    )
}

/// UNSAT: the union steady-state check of Example 4.1.
fn unsat_sentence() -> Formula {
    Formula::exists(
        vec!["Y".into()],
        Formula::and(vec![
            Formula::or(vec![rel("r1", &["Y"]), rel("r2", &["Y"])]),
            Formula::not(rel("r1", &["Y"])),
            Formula::not(rel("r2", &["Y"])),
        ]),
    )
}

/// SAT: a two-relation sentence with a comparison witness.
fn sat_sentence() -> Formula {
    Formula::exists(
        vec!["X".into(), "Y".into()],
        Formula::and(vec![
            rel("r", &["X", "Y"]),
            Formula::not(rel("s", &["X", "Y"])),
            Formula::Cmp(CmpOp::Gt, Term::var("Y"), Term::constant(2)),
        ]),
    )
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/solver_bound");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(2));
    for k in [1usize, 2, 3, 4, 5] {
        group.bench_with_input(BenchmarkId::new("unsat", k), &k, |b, &k| {
            let f = unsat_sentence();
            let solver = BoundedSolver::with_max_fresh(k);
            b.iter(|| {
                let out = solver.check(&f).unwrap();
                assert!(!out.is_sat());
                out
            })
        });
        group.bench_with_input(BenchmarkId::new("sat", k), &k, |b, &k| {
            let f = sat_sentence();
            let solver = BoundedSolver::with_max_fresh(k);
            b.iter(|| {
                let out = solver.check(&f).unwrap();
                assert!(out.is_sat());
                out
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
