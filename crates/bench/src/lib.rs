//! Criterion benchmark harness for the paper's evaluation (§6.2).
//!
//! This crate has no library API of its own; see the `benches/` targets:
//!
//! * `table1_validation` — validation time over the Table 1 corpus.
//! * `figure6_{selection,projection,join,union}` — view-update latency
//!   versus base-table size, original vs incremental strategy.
//! * `ablation_validation_passes` — per-pass cost of Algorithm 1.
//! * `ablation_solver_bound` — bounded-solver cost versus domain bound.
