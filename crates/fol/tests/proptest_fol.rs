//! Property-based semantic tests for the FO substrate: Datalog → FO
//! unfolding and FO → Datalog translation must preserve meaning on random
//! databases.
//!
//! The oracle chain: evaluate a Datalog program bottom-up with
//! `birds-eval`; independently evaluate the unfolded FO formula with a
//! direct recursive interpreter over the same database (quantifiers range
//! over the active domain plus probe values); both must produce the same
//! relation. Then translate the formula *back* to Datalog (Appendix B)
//! and evaluate again — still the same relation.

use birds_datalog::{parse_program, PredRef, Term};
use birds_eval::{evaluate_query, EvalContext};
use birds_fol::{formula_to_datalog, unfold_query, Formula};
use birds_store::{tuple, Database, Relation, Tuple, Value};
use proptest::prelude::*;
use std::collections::{BTreeSet, HashSet};

/// A variable binding environment (a stack of name → value pairs).
type Env = Vec<(String, Value)>;

/// Direct FO evaluation over a database, quantifiers ranging over
/// `domain`.
fn eval_formula(f: &Formula, db: &Database, domain: &[Value], env: &mut Env) -> bool {
    fn lookup(env: &[(String, Value)], v: &str) -> Value {
        env.iter()
            .rev()
            .find(|(n, _)| n == v)
            .map(|(_, val)| *val)
            .unwrap_or_else(|| panic!("unbound {v}"))
    }
    fn term(env: &[(String, Value)], t: &Term) -> Value {
        match t {
            Term::Var(v) => lookup(env, v),
            Term::Const(c) => *c,
        }
    }
    match f {
        Formula::Rel(p, terms) => {
            let vals: Vec<Value> = terms.iter().map(|t| term(env, t)).collect();
            db.relation(&p.flat_name())
                .map(|r| r.contains(&Tuple::new(vals)))
                .unwrap_or(false)
        }
        Formula::Cmp(op, a, b) => op.eval(&term(env, a), &term(env, b)).unwrap_or(false),
        Formula::Not(g) => !eval_formula(g, db, domain, env),
        Formula::And(fs) => fs.iter().all(|g| eval_formula(g, db, domain, env)),
        Formula::Or(fs) => fs.iter().any(|g| eval_formula(g, db, domain, env)),
        Formula::True => true,
        Formula::False => false,
        Formula::Exists(vars, g) => assign_all(vars, domain, env, &mut |env| {
            eval_formula(g, db, domain, env)
        })
        .into_iter()
        .any(|b| b),
        Formula::Forall(vars, g) => assign_all(vars, domain, env, &mut |env| {
            eval_formula(g, db, domain, env)
        })
        .into_iter()
        .all(|b| b),
    }
}

/// Evaluate `body` under every assignment of `vars` over `domain`.
fn assign_all(
    vars: &[String],
    domain: &[Value],
    env: &mut Env,
    body: &mut dyn FnMut(&mut Env) -> bool,
) -> Vec<bool> {
    if vars.is_empty() {
        return vec![body(env)];
    }
    let mut out = Vec::new();
    let (first, rest) = vars.split_first().unwrap();
    for d in domain {
        env.push((first.clone(), *d));
        out.extend(assign_all(rest, domain, env, body));
        env.pop();
    }
    out
}

/// Build a database with unary r1, r2 and binary s.
fn build_db(r1: &[i64], r2: &[i64], s: &[(i64, i64)]) -> Database {
    let mut db = Database::new();
    db.add_relation(Relation::with_tuples("r1", 1, r1.iter().map(|&x| tuple![x])).unwrap())
        .unwrap();
    db.add_relation(Relation::with_tuples("r2", 1, r2.iter().map(|&x| tuple![x])).unwrap())
        .unwrap();
    db.add_relation(Relation::with_tuples("s", 2, s.iter().map(|&(a, b)| tuple![a, b])).unwrap())
        .unwrap();
    db
}

/// The active domain of the test databases: all values 0..6 (superset of
/// what the generators produce, so quantifiers see every probe value).
fn domain() -> Vec<Value> {
    (0..6).map(Value::int).collect()
}

/// The Datalog programs under test: a fixed family covering projection,
/// join, union, difference, comparisons and nested intermediates.
fn test_programs() -> Vec<(&'static str, usize)> {
    vec![
        ("v(X) :- r1(X). v(X) :- r2(X).", 1),
        ("v(X) :- r1(X), not r2(X).", 1),
        ("v(X) :- s(X, _).", 1),
        ("v(X, Y) :- s(X, Y), X > 1.", 2),
        ("v(X, Y) :- s(X, Y), not r1(Y).", 2),
        ("m(X) :- r1(X), r2(X). v(X) :- m(X), not s(X, X).", 1),
        ("v(X) :- r1(X), X = 3.", 1),
        (
            "big(X, Y) :- s(X, Y), Y > 2. v(X) :- big(X, _), not r2(X).",
            1,
        ),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// unfold_query agrees with bottom-up evaluation.
    #[test]
    fn unfolding_preserves_semantics(
        r1 in proptest::collection::vec(0i64..6, 0..5),
        r2 in proptest::collection::vec(0i64..6, 0..5),
        s in proptest::collection::vec((0i64..6, 0i64..6), 0..6),
    ) {
        let mut db = build_db(&r1, &r2, &s);
        let dom = domain();
        for (src, arity) in test_programs() {
            let program = parse_program(src).unwrap();
            let vpred = PredRef::plain("v");
            // Bottom-up evaluation.
            let bottom_up: HashSet<Tuple> = {
                let mut ctx = EvalContext::new(&mut db);
                evaluate_query(&program, &vpred, &mut ctx)
                    .unwrap()
                    .tuples()
                    .iter()
                    .cloned()
                    .collect()
            };
            // FO evaluation of the unfolded formula at every domain point.
            let (vars, phi) = unfold_query(&program, &vpred).unwrap();
            prop_assert_eq!(vars.len(), arity, "{}", src);
            let mut fo: HashSet<Tuple> = HashSet::new();
            let points = tuples_over(&dom, arity);
            for point in points {
                let mut env: Vec<(String, Value)> = vars
                    .iter()
                    .cloned()
                    .zip(point.iter().cloned())
                    .collect();
                if eval_formula(&phi, &db, &dom, &mut env) {
                    fo.insert(Tuple::new(point.clone()));
                }
            }
            prop_assert_eq!(&bottom_up, &fo, "unfold drift on {}", src);
        }
    }

    /// FO → Datalog (Appendix B) composed with unfolding is the
    /// semantic identity.
    #[test]
    fn fo_to_datalog_roundtrip(
        r1 in proptest::collection::vec(0i64..6, 0..5),
        r2 in proptest::collection::vec(0i64..6, 0..5),
        s in proptest::collection::vec((0i64..6, 0i64..6), 0..6),
    ) {
        let mut db = build_db(&r1, &r2, &s);
        for (src, _arity) in test_programs() {
            let program = parse_program(src).unwrap();
            let vpred = PredRef::plain("v");
            let before: HashSet<Tuple> = {
                let mut ctx = EvalContext::new(&mut db);
                evaluate_query(&program, &vpred, &mut ctx)
                    .unwrap()
                    .tuples()
                    .iter()
                    .cloned()
                    .collect()
            };
            let (vars, phi) = unfold_query(&program, &vpred).unwrap();
            let translated = match formula_to_datalog(&phi, &vars, "v") {
                Ok(p) => p,
                Err(e) => {
                    // Trivially-empty queries have no Datalog form.
                    prop_assert!(before.is_empty(), "{src}: {e}");
                    continue;
                }
            };
            let after: HashSet<Tuple> = {
                let mut ctx = EvalContext::new(&mut db);
                evaluate_query(&translated, &vpred, &mut ctx)
                    .unwrap()
                    .tuples()
                    .iter()
                    .cloned()
                    .collect()
            };
            prop_assert_eq!(&before, &after,
                "roundtrip drift on {}; translated:\n{}", src, translated);
        }
    }
}

/// All arity-k tuples over a domain.
fn tuples_over(domain: &[Value], arity: usize) -> Vec<Vec<Value>> {
    let mut out: Vec<Vec<Value>> = vec![vec![]];
    for _ in 0..arity {
        out = out
            .into_iter()
            .flat_map(|prefix| {
                domain.iter().map(move |d| {
                    let mut p = prefix.clone();
                    p.push(*d);
                    p
                })
            })
            .collect();
    }
    out
}

/// Comparisons inside negation and nested quantifier alternation also
/// survive the roundtrip (fixed regression cases).
#[test]
fn fixed_regression_programs() {
    let mut db = build_db(&[1, 3], &[3, 5], &[(1, 4), (3, 3), (2, 0)]);
    let cases = [
        "v(X) :- r1(X), not X > 2.",
        "v(X, Y) :- s(X, Y), not Y = 0, not r2(X).",
        "w(Y) :- s(_, Y). v(X) :- r1(X), not w(X).",
    ];
    for src in cases {
        let program = parse_program(src).unwrap();
        let vpred = PredRef::plain("v");
        let before: BTreeSet<Tuple> = {
            let mut ctx = EvalContext::new(&mut db);
            evaluate_query(&program, &vpred, &mut ctx)
                .unwrap()
                .tuples()
                .iter()
                .cloned()
                .collect()
        };
        let (vars, phi) = unfold_query(&program, &vpred).unwrap();
        let translated = formula_to_datalog(&phi, &vars, "v").unwrap();
        let after: BTreeSet<Tuple> = {
            let mut ctx = EvalContext::new(&mut db);
            evaluate_query(&translated, &vpred, &mut ctx)
                .unwrap()
                .tuples()
                .iter()
                .cloned()
                .collect()
        };
        assert_eq!(before, after, "{src}");
    }
}
