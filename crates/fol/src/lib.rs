//! # birds-fol
//!
//! First-order logic substrate for the BIRDS reproduction. The paper's
//! validation algorithm (§4) works by translating Datalog programs to
//! first-order formulas and back:
//!
//! * **Datalog → FO** unfolding (the construction in the proof of
//!   Lemma 3.1, Appendix A.2): every non-recursive Datalog query is
//!   equivalent to an FO formula obtained by inlining IDB definitions;
//! * **safe-range analysis** (`rr(φ)`, Appendix B) and **SRNF / RANF**
//!   normal forms, following Abiteboul–Hull–Vianu as the paper does;
//! * **FO → Datalog** translation of safe-range formulas (Appendix B),
//!   used to express the derived view definition `get` as a Datalog
//!   query.
//!
//! The bounded satisfiability solver (`birds-solver`) consumes the
//! [`Formula`] type defined here.

pub mod formula;
pub mod miniscope;
pub mod ranf;
pub mod range;
pub mod srnf;
pub mod to_datalog;
pub mod unfold;

pub use formula::Formula;
pub use miniscope::miniscope;
pub use ranf::{to_ranf, RanfError};
pub use range::{is_safe_range, range_restricted};
pub use srnf::to_srnf;
pub use to_datalog::{formula_to_datalog, ToDatalogError};
pub use unfold::{unfold_constraint, unfold_query, UnfoldError};
