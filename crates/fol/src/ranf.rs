//! Relational algebra normal form (RANF), per Appendix B.
//!
//! A safe-range SRNF formula is in RANF when every subformula is
//! *self-contained* (`rr(ψ) = free(ψ)` for disjunctions and quantified
//! subformulas). The transformation applies the appendix's three rewrite
//! rules — *push-into-or*, *push-into-quantifier* and
//! *push-into-negated-quantifier* — choosing, deterministically, to push
//! **all** sibling conjuncts (the appendix allows any subset that makes the
//! result self-contained; pushing everything always succeeds when the
//! formula is safe-range, at the cost of some duplication, which is fine
//! for the program sizes the validation pipeline handles).

use crate::formula::{Formula, FreshVars};
use crate::range::{is_safe_range, range_restricted};
use crate::srnf::{is_srnf, to_srnf};
use std::fmt;

/// RANF conversion failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RanfError {
    /// The input formula is not safe-range, so no RANF equivalent exists.
    NotSafeRange(String),
    /// The rewrite did not converge within the step budget (defensive
    /// bound; not expected for safe-range inputs).
    Diverged,
}

impl fmt::Display for RanfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RanfError::NotSafeRange(s) => write!(f, "formula is not safe-range: {s}"),
            RanfError::Diverged => write!(f, "RANF rewriting exceeded its step budget"),
        }
    }
}

impl std::error::Error for RanfError {}

/// Is every subformula self-contained (Definition B.1)?
pub fn is_ranf(f: &Formula) -> bool {
    fn self_contained(f: &Formula) -> bool {
        match f {
            Formula::Or(fs) => {
                let free = f.free_vars();
                fs.iter().all(|g| {
                    range_restricted(g).is_some_and(|rr| rr == g.free_vars())
                        && g.free_vars() == free
                }) && range_restricted(f).is_some_and(|rr| rr == free)
            }
            Formula::Exists(_, inner) => {
                range_restricted(inner).is_some_and(|rr| rr == inner.free_vars())
            }
            _ => true,
        }
    }
    fn go(f: &Formula) -> bool {
        if !self_contained(f) {
            return false;
        }
        match f {
            Formula::And(fs) | Formula::Or(fs) => fs.iter().all(go),
            Formula::Not(inner) | Formula::Exists(_, inner) => go(inner),
            _ => true,
        }
    }
    is_srnf(f) && go(f)
}

/// Convert a safe-range formula (any shape) to RANF.
pub fn to_ranf(f: &Formula) -> Result<Formula, RanfError> {
    let mut fresh = FreshVars::new();
    let srnf = to_srnf(f);
    if !is_safe_range(&srnf) {
        return Err(RanfError::NotSafeRange(srnf.to_string()));
    }
    // Rename bound variables apart so sibling conjuncts can be pushed under
    // quantifiers without capture.
    let srnf = srnf.alpha_rename(&mut fresh);
    let mut budget = 100_000usize;
    ranf(&srnf, &mut budget)
}

fn spend(budget: &mut usize) -> Result<(), RanfError> {
    if *budget == 0 {
        return Err(RanfError::Diverged);
    }
    *budget -= 1;
    Ok(())
}

fn ranf(f: &Formula, budget: &mut usize) -> Result<Formula, RanfError> {
    spend(budget)?;
    match f {
        Formula::Rel(..) | Formula::Cmp(..) | Formula::True | Formula::False => Ok(f.clone()),
        Formula::Not(inner) => Ok(Formula::not(ranf(inner, budget)?)),
        Formula::Or(fs) => Ok(Formula::or(
            fs.iter()
                .map(|g| ranf(g, budget))
                .collect::<Result<Vec<_>, _>>()?,
        )),
        Formula::Exists(vars, inner) => Ok(Formula::exists(vars.clone(), ranf(inner, budget)?)),
        Formula::Forall(..) => unreachable!("SRNF input has no universal quantifiers"),
        Formula::And(fs) => ranf_conjunction(fs, budget),
    }
}

/// Is this conjunct self-contained in isolation (safe to leave in place)?
fn conjunct_ok(g: &Formula) -> bool {
    match g {
        Formula::Or(_) => range_restricted(g).is_some_and(|rr| rr == g.free_vars()),
        Formula::Exists(_, inner) => {
            range_restricted(g).is_some()
                && range_restricted(inner).is_some_and(|rr| rr == inner.free_vars())
        }
        Formula::Not(inner) => match &**inner {
            Formula::Exists(_, gg) => range_restricted(gg).is_some_and(|rr| rr == gg.free_vars()),
            _ => true,
        },
        _ => true,
    }
}

fn ranf_conjunction(fs: &[Formula], budget: &mut usize) -> Result<Formula, RanfError> {
    spend(budget)?;
    let conjuncts: Vec<Formula> = fs.to_vec();
    // Find a problematic conjunct.
    let bad = conjuncts.iter().position(|g| !conjunct_ok(g));
    let Some(i) = bad else {
        // All conjuncts self-contained: recurse inside each.
        return Ok(Formula::and(
            conjuncts
                .iter()
                .map(|g| ranf(g, budget))
                .collect::<Result<Vec<_>, _>>()?,
        ));
    };
    let xi = conjuncts[i].clone();
    let others: Vec<Formula> = conjuncts
        .iter()
        .enumerate()
        .filter(|(j, _)| *j != i)
        .map(|(_, g)| g.clone())
        .collect();
    match xi {
        // Push-into-or: (ψ1 ∧ … ∧ (ξ1 ∨ … ∨ ξm)) →
        //   (ξ1 ∧ ψ1 ∧ …) ∨ … ∨ (ξm ∧ ψ1 ∧ …)
        Formula::Or(disjuncts) => {
            let pushed: Vec<Formula> = disjuncts
                .into_iter()
                .map(|d| Formula::and([vec![d], others.clone()].concat()))
                .collect();
            ranf(&Formula::or(pushed), budget)
        }
        // Push-into-quantifier: ψ1 ∧ … ∧ ∃x ξ → ∃x (ψ1 ∧ … ∧ ξ)
        // (bound variables were renamed apart up front).
        Formula::Exists(vars, inner) => {
            let pushed = Formula::exists(vars, Formula::and([others, vec![*inner]].concat()));
            ranf(&pushed, budget)
        }
        // Push-into-negated-quantifier:
        // ψ1 ∧ … ∧ ¬∃x ξ → ψ1 ∧ … ∧ ¬∃x (ψ1 ∧ … ∧ ξ)
        Formula::Not(inner) => {
            if let Formula::Exists(vars, g) = *inner {
                let pushed_inner =
                    Formula::exists(vars, Formula::and([others.clone(), vec![*g]].concat()));
                let new_conj = Formula::and([others, vec![Formula::not(pushed_inner)]].concat());
                ranf(&new_conj, budget)
            } else {
                // ¬atom etc. — already fine; shouldn't be flagged.
                ranf(
                    &Formula::and([others, vec![Formula::Not(inner)]].concat()),
                    budget,
                )
            }
        }
        other => ranf(&Formula::and([others, vec![other]].concat()), budget),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use birds_datalog::{PredRef, Term};

    fn rel(name: &str, vars: &[&str]) -> Formula {
        Formula::Rel(
            PredRef::plain(name),
            vars.iter().map(|v| Term::var(*v)).collect(),
        )
    }

    #[test]
    fn already_ranf_formulas_pass_through() {
        let f = Formula::and(vec![rel("r", &["X"]), Formula::not(rel("s", &["X"]))]);
        let g = to_ranf(&f).unwrap();
        assert!(is_ranf(&g), "{g}");
        assert_eq!(g.free_vars(), f.free_vars());
    }

    #[test]
    fn push_into_or() {
        // r(X) ∧ (s(X,Y) ∨ t(X,Y)) is RANF already (each disjunct
        // self-contained); but r(X) ∧ (¬s(X) ∨ t(X)) needs pushing.
        let f = Formula::and(vec![
            rel("r", &["X"]),
            Formula::or(vec![Formula::not(rel("s", &["X"])), rel("t", &["X"])]),
        ]);
        let g = to_ranf(&f).unwrap();
        assert!(is_ranf(&g), "{g}");
        assert_eq!(g.free_vars(), f.free_vars());
    }

    #[test]
    fn push_into_quantifier() {
        // r(X,Y) ∧ ∃Z (¬s(Y,Z)) — inner not self-contained (Z unrestricted)
        // ... that formula is not safe-range at all. Use a restricted one:
        // r(X) ∧ ∃Z (t(Z) ∧ ¬s(X,Z)): inner rr = {Z}, free = {X,Z} — needs
        // the guard r(X) pushed inside.
        let f = Formula::and(vec![
            rel("r", &["X"]),
            Formula::exists(
                vec!["Z".into()],
                Formula::and(vec![rel("t", &["Z"]), Formula::not(rel("s", &["X", "Z"]))]),
            ),
        ]);
        let g = to_ranf(&f).unwrap();
        assert!(is_ranf(&g), "{g}");
        assert_eq!(g.free_vars(), f.free_vars());
    }

    #[test]
    fn push_into_negated_quantifier() {
        // r(X) ∧ ¬∃Z (t(Z) ∧ s(X,Z)) is fine; but
        // r(X) ∧ ¬∃Z (s(X,Z) ∧ ¬t(Z))? inner rr={Z} (from s) ... use:
        // r(X) ∧ ¬∃Z (¬t(Z) ∧ s(X,Z)) — inner is self-contained (rr from s).
        // A genuinely problematic case: r(X) ∧ ¬∃Z (u(X) ∧ X > 3) has no Z
        // restriction -> not safe-range. Use comparison case:
        // r(X) ∧ ¬(X > 3 ∧ ∃Z s(Z))? Simpler canonical case from the
        // appendix: universal quantification.
        let f = Formula::and(vec![
            rel("r", &["X"]),
            Formula::Forall(
                vec!["Z".into()],
                Box::new(Formula::or(vec![
                    Formula::not(rel("s", &["X", "Z"])),
                    rel("t", &["Z"]),
                ])),
            ),
        ]);
        let g = to_ranf(&f).unwrap();
        assert!(is_ranf(&g), "{g}");
        assert_eq!(g.free_vars(), f.free_vars());
    }

    #[test]
    fn non_safe_range_rejected() {
        let f = Formula::not(rel("r", &["X"]));
        assert!(matches!(to_ranf(&f), Err(RanfError::NotSafeRange(_))));
    }

    #[test]
    fn union_of_selections() {
        // (r1(X) ∧ X > 2) ∨ r2(X)
        let f = Formula::or(vec![
            Formula::and(vec![
                rel("r1", &["X"]),
                Formula::Cmp(birds_datalog::CmpOp::Gt, Term::var("X"), Term::constant(2)),
            ]),
            rel("r2", &["X"]),
        ]);
        let g = to_ranf(&f).unwrap();
        assert!(is_ranf(&g), "{g}");
    }
}
