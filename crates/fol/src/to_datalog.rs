//! Safe-range FO → Datalog translation (Appendix B).
//!
//! Pipeline: SRNF → safe-range check → RANF → syntax-directed translation
//! into a non-recursive Datalog program with a designated goal predicate.
//! The raw translation introduces auxiliary predicates for negated complex
//! subformulas; a final simplification pass inlines trivial auxiliaries so
//! that, e.g., the derived view definition for the paper's union example
//! comes out as the expected `v(X) :- r1(X). v(X) :- r2(X).`

use crate::formula::Formula;
use crate::ranf::{to_ranf, RanfError};
use birds_datalog::{check_safety, Atom, Head, Literal, PredRef, Program, Rule, Term};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Translation failure.
#[derive(Debug, Clone, PartialEq)]
pub enum ToDatalogError {
    /// RANF conversion failed (not safe-range).
    Ranf(RanfError),
    /// The translated program failed the Datalog safety check — indicates
    /// a formula outside the translatable fragment.
    UnsafeResult(String),
    /// Trivially true/false formulas have no (nonempty-schema) Datalog
    /// equivalent here.
    Trivial,
}

impl fmt::Display for ToDatalogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ToDatalogError::Ranf(e) => write!(f, "{e}"),
            ToDatalogError::UnsafeResult(s) => {
                write!(f, "translated program is not safe: {s}")
            }
            ToDatalogError::Trivial => write!(f, "formula is trivially true/false"),
        }
    }
}

impl std::error::Error for ToDatalogError {}

impl From<RanfError> for ToDatalogError {
    fn from(e: RanfError) -> Self {
        ToDatalogError::Ranf(e)
    }
}

/// Translate a safe-range formula into a Datalog program defining
/// `goal(free_order…)`.
pub fn formula_to_datalog(
    f: &Formula,
    free_order: &[String],
    goal: &str,
) -> Result<Program, ToDatalogError> {
    let ranf = to_ranf(f)?;
    if matches!(ranf, Formula::True | Formula::False) {
        return Err(ToDatalogError::Trivial);
    }
    let mut tr = Translator {
        rules: Vec::new(),
        counter: 0,
    };
    let bodies = tr.rule_bodies(&ranf);
    let goal_pred = PredRef::plain(goal);
    for body in bodies {
        tr.rules.push(Rule {
            head: Head::Atom(Atom::new(
                goal_pred.clone(),
                free_order.iter().map(|v| Term::var(v.clone())).collect(),
            )),
            body,
        });
    }
    let program = simplify_program(Program::new(tr.rules), &goal_pred);
    if let Err(errs) = check_safety(&program) {
        return Err(ToDatalogError::UnsafeResult(format!(
            "{} (program: {program})",
            errs.first().map(|e| e.to_string()).unwrap_or_default()
        )));
    }
    Ok(program)
}

struct Translator {
    rules: Vec<Rule>,
    counter: usize,
}

impl Translator {
    fn fresh_pred(&mut self) -> PredRef {
        let p = PredRef::plain(format!("aux_{}", self.counter));
        self.counter += 1;
        p
    }

    /// Alternative bodies whose union-of-conjunctions equals `f`.
    /// Auxiliary rules are appended to `self.rules` as needed.
    fn rule_bodies(&mut self, f: &Formula) -> Vec<Vec<Literal>> {
        match f {
            Formula::Rel(p, terms) => vec![vec![Literal::Atom {
                atom: Atom::new(p.clone(), terms.clone()),
                negated: false,
            }]],
            Formula::Cmp(op, a, b) => vec![vec![Literal::Builtin {
                op: *op,
                left: a.clone(),
                right: b.clone(),
                negated: false,
            }]],
            Formula::True => vec![vec![]],
            Formula::False => vec![],
            Formula::Exists(_, inner) => self.rule_bodies(inner),
            Formula::Or(fs) => fs.iter().flat_map(|g| self.rule_bodies(g)).collect(),
            Formula::And(fs) => {
                // Cartesian product of children's alternatives.
                let mut acc: Vec<Vec<Literal>> = vec![vec![]];
                for g in fs {
                    let alts = self.rule_bodies(g);
                    let mut next = Vec::with_capacity(acc.len() * alts.len());
                    for base in &acc {
                        for alt in &alts {
                            let mut b = base.clone();
                            b.extend(alt.iter().cloned());
                            next.push(b);
                        }
                    }
                    acc = next;
                }
                acc
            }
            Formula::Not(inner) => vec![vec![self.negated_literal(inner)]],
            Formula::Forall(..) => unreachable!("RANF input has no universal quantifiers"),
        }
    }

    /// A single negated literal equivalent to `¬inner`.
    fn negated_literal(&mut self, inner: &Formula) -> Literal {
        match inner {
            Formula::Rel(p, terms) => Literal::Atom {
                atom: Atom::new(p.clone(), terms.clone()),
                negated: true,
            },
            Formula::Cmp(op, a, b) => Literal::Builtin {
                op: *op,
                left: a.clone(),
                right: b.clone(),
                negated: true,
            },
            // ¬∃ / ¬∧ / ¬∨: introduce an auxiliary predicate over the free
            // variables (safe-range inside by RANF) and negate it.
            complex => {
                let free: Vec<String> = complex.free_vars().into_iter().collect();
                let aux = self.fresh_pred();
                let bodies = self.rule_bodies(complex);
                for body in bodies {
                    self.rules.push(Rule {
                        head: Head::Atom(Atom::new(
                            aux.clone(),
                            free.iter().map(|v| Term::var(v.clone())).collect(),
                        )),
                        body,
                    });
                }
                Literal::Atom {
                    atom: Atom::new(aux, free.iter().map(|v| Term::var(v.clone())).collect()),
                    negated: true,
                }
            }
        }
    }
}

/// Inline trivial auxiliary predicates and drop unreachable rules.
///
/// Two rewrites, applied to fixpoint:
/// 1. an IDB predicate with a single rule is inlined at its *positive*
///    occurrences (negated occurrences only when its body is one literal);
/// 2. a rule whose body is a single positive atom of a multi-rule IDB
///    predicate is replaced by one rule per definition (union flattening).
pub fn simplify_program(mut program: Program, goal: &PredRef) -> Program {
    for _round in 0..10 {
        let mut changed = false;
        let idb = program.idb_predicates();
        for p in idb.iter().filter(|p| *p != goal) {
            let defs: Vec<Rule> = program.rules_for(p).cloned().collect();
            if defs.len() == 1 {
                let def = &defs[0];
                if inline_everywhere(&mut program, p, def) {
                    changed = true;
                }
            } else if defs.len() > 1 && flatten_union(&mut program, p, &defs, goal) {
                changed = true;
            }
        }
        program = drop_unreachable(program, goal);
        if !changed {
            break;
        }
    }
    dedup_literals_and_rules(&mut program);
    program
}

/// Remove duplicate literals within each rule body (`r1(X), r1(X)` arises
/// from guard duplication in the linear-view normal form) and duplicate
/// rules within the program (set semantics make both no-ops).
fn dedup_literals_and_rules(program: &mut Program) {
    for rule in &mut program.rules {
        let mut seen: Vec<Literal> = Vec::with_capacity(rule.body.len());
        rule.body.retain(|lit| {
            if seen.contains(lit) {
                false
            } else {
                seen.push(lit.clone());
                true
            }
        });
    }
    let mut seen_rules: Vec<Rule> = Vec::with_capacity(program.rules.len());
    program.rules.retain(|r| {
        if seen_rules.contains(r) {
            false
        } else {
            seen_rules.push(r.clone());
            true
        }
    });
}

/// Try to inline single-rule predicate `p` (definition `def`) at all its
/// occurrences. Returns true if anything changed.
fn inline_everywhere(program: &mut Program, p: &PredRef, def: &Rule) -> bool {
    let Some(def_head) = def.head.atom() else {
        return false;
    };
    // Only inline definitions with variable-only, distinct head terms.
    let head_vars: Vec<&str> = def_head.terms.iter().filter_map(Term::as_var).collect();
    if head_vars.len() != def_head.terms.len()
        || head_vars.iter().collect::<BTreeSet<_>>().len() != head_vars.len()
    {
        return false;
    }
    let single_literal_body = def.body.len() == 1;
    let mut changed = false;
    let mut counter = 0usize;
    let mut new_rules = Vec::with_capacity(program.rules.len());
    for rule in &program.rules {
        if rule.head.atom().is_some_and(|a| &a.pred == p) {
            new_rules.push(rule.clone());
            continue;
        }
        let mut body = Vec::with_capacity(rule.body.len());
        let mut rule_changed = false;
        for lit in &rule.body {
            match lit {
                Literal::Atom { atom, negated } if atom.pred == *p => {
                    if !*negated || single_literal_body {
                        let outer_vars: BTreeSet<&str> = rule.variables().into_iter().collect();
                        let inlined = instantiate_body(
                            def,
                            &head_vars,
                            &atom.terms,
                            &outer_vars,
                            &mut counter,
                        );
                        match inlined {
                            Some(mut lits) if !*negated => {
                                body.append(&mut lits);
                                rule_changed = true;
                            }
                            Some(mut lits)
                                if lits.len() == 1 && negated_inline_ok(&lits[0], &atom.terms) =>
                            {
                                // Negated single-literal inline: body-only
                                // variables become anonymous so they stay
                                // existential *inside* the negation
                                // (¬∃Y s(X,Y) ⇒ not s(X, _)).
                                let arg_vars: BTreeSet<&str> =
                                    atom.terms.iter().filter_map(Term::as_var).collect();
                                let lit0 = lits.pop().unwrap();
                                let lit0 = match lit0 {
                                    Literal::Atom { atom: a, negated } => {
                                        let mut anon: BTreeMap<String, Term> = BTreeMap::new();
                                        let terms = a
                                            .terms
                                            .into_iter()
                                            .map(|t| match &t {
                                                Term::Var(v) if !arg_vars.contains(v.as_str()) => {
                                                    anon.entry(v.clone())
                                                        .or_insert_with(|| {
                                                            counter += 1;
                                                            Term::Var(format!("_#inl{counter}"))
                                                        })
                                                        .clone()
                                                }
                                                _ => t,
                                            })
                                            .collect();
                                        Literal::Atom {
                                            atom: Atom::new(a.pred, terms),
                                            negated,
                                        }
                                    }
                                    other => other,
                                };
                                let mut lits = vec![lit0];
                                // Negated single-literal inline: flip it.
                                let flipped = match lits.pop().unwrap() {
                                    Literal::Atom { atom, negated } => Literal::Atom {
                                        atom,
                                        negated: !negated,
                                    },
                                    Literal::Builtin {
                                        op,
                                        left,
                                        right,
                                        negated,
                                    } => Literal::Builtin {
                                        op,
                                        left,
                                        right,
                                        negated: !negated,
                                    },
                                };
                                body.push(flipped);
                                rule_changed = true;
                            }
                            _ => body.push(lit.clone()),
                        }
                    } else {
                        body.push(lit.clone());
                    }
                }
                other => body.push(other.clone()),
            }
        }
        if rule_changed {
            changed = true;
        }
        new_rules.push(Rule {
            head: rule.head.clone(),
            body,
        });
    }
    if changed {
        program.rules = new_rules;
    }
    changed
}

/// May a single-literal definition be inlined into a *negated* occurrence
/// with arguments `args`? Body-only variables become anonymous (inner
/// existentials), which is only sound when each occurs exactly once in the
/// literal (our evaluator treats anonymous positions as independent
/// wildcards).
fn negated_inline_ok(lit: &Literal, args: &[Term]) -> bool {
    let arg_vars: BTreeSet<&str> = args.iter().filter_map(Term::as_var).collect();
    match lit {
        Literal::Atom { atom, .. } => {
            let mut seen: BTreeSet<&str> = BTreeSet::new();
            for t in &atom.terms {
                if let Term::Var(v) = t {
                    if !arg_vars.contains(v.as_str()) && !seen.insert(v) {
                        return false; // repeated body-only variable
                    }
                }
            }
            true
        }
        Literal::Builtin { left, right, .. } => [left, right]
            .into_iter()
            .filter_map(Term::as_var)
            .all(|v| arg_vars.contains(v)),
    }
}

/// Instantiate `def`'s body with `args` substituted for its head variables;
/// body-only variables are renamed fresh w.r.t. `outer_vars`.
fn instantiate_body(
    def: &Rule,
    head_vars: &[&str],
    args: &[Term],
    outer_vars: &BTreeSet<&str>,
    counter: &mut usize,
) -> Option<Vec<Literal>> {
    let mut map: BTreeMap<String, Term> = head_vars
        .iter()
        .zip(args.iter())
        .map(|(v, t)| ((*v).to_string(), t.clone()))
        .collect();
    for v in def.variables() {
        if !map.contains_key(v) {
            let mut name = format!("IL{counter}_{v}");
            name.retain(|c| c.is_alphanumeric() || c == '_');
            while outer_vars.contains(name.as_str()) {
                *counter += 1;
                name = format!("IL{counter}_{v}");
            }
            *counter += 1;
            map.insert(v.to_owned(), Term::Var(name));
        }
    }
    let subst_term = |t: &Term| match t {
        Term::Var(v) => map.get(v).cloned().unwrap_or_else(|| t.clone()),
        Term::Const(_) => t.clone(),
    };
    Some(
        def.body
            .iter()
            .map(|lit| match lit {
                Literal::Atom { atom, negated } => Literal::Atom {
                    atom: Atom::new(
                        atom.pred.clone(),
                        atom.terms.iter().map(subst_term).collect(),
                    ),
                    negated: *negated,
                },
                Literal::Builtin {
                    op,
                    left,
                    right,
                    negated,
                } => Literal::Builtin {
                    op: *op,
                    left: subst_term(left),
                    right: subst_term(right),
                    negated: *negated,
                },
            })
            .collect(),
    )
}

/// Replace rules of the shape `h(~X) :- p(~t).` (single positive atom of a
/// multi-rule predicate) by one rule per definition of `p`.
fn flatten_union(program: &mut Program, p: &PredRef, defs: &[Rule], goal: &PredRef) -> bool {
    let mut changed = false;
    let mut new_rules = Vec::with_capacity(program.rules.len());
    let mut counter = 0usize;
    for rule in &program.rules {
        let is_target = rule.head.atom().is_none_or(|a| &a.pred != p)
            && rule.body.len() == 1
            && matches!(&rule.body[0], Literal::Atom { atom, negated: false } if atom.pred == *p);
        // Only flatten into the goal or other small wrappers; always safe.
        let _ = goal;
        if !is_target {
            new_rules.push(rule.clone());
            continue;
        }
        let Literal::Atom { atom, .. } = &rule.body[0] else {
            unreachable!()
        };
        let mut ok = true;
        let mut expanded = Vec::new();
        for def in defs {
            let Some(def_head) = def.head.atom() else {
                ok = false;
                break;
            };
            let head_vars: Vec<&str> = def_head.terms.iter().filter_map(Term::as_var).collect();
            if head_vars.len() != def_head.terms.len()
                || head_vars.iter().collect::<BTreeSet<_>>().len() != head_vars.len()
            {
                ok = false;
                break;
            }
            let outer_vars: BTreeSet<&str> = rule.variables().into_iter().collect();
            match instantiate_body(def, &head_vars, &atom.terms, &outer_vars, &mut counter) {
                Some(body) => expanded.push(Rule {
                    head: rule.head.clone(),
                    body,
                }),
                None => {
                    ok = false;
                    break;
                }
            }
        }
        if ok {
            changed = true;
            new_rules.extend(expanded);
        } else {
            new_rules.push(rule.clone());
        }
    }
    if changed {
        program.rules = new_rules;
    }
    changed
}

/// Drop rules for predicates unreachable from the goal.
fn drop_unreachable(program: Program, goal: &PredRef) -> Program {
    let mut reachable: BTreeSet<PredRef> = BTreeSet::new();
    let mut stack = vec![goal.clone()];
    while let Some(p) = stack.pop() {
        if !reachable.insert(p.clone()) {
            continue;
        }
        for rule in program.rules_for(&p) {
            for lit in &rule.body {
                if let Some(a) = lit.atom() {
                    stack.push(a.pred.clone());
                }
            }
        }
    }
    Program::new(
        program
            .rules
            .into_iter()
            .filter(|r| match r.head.atom() {
                Some(a) => reachable.contains(&a.pred),
                None => true, // keep constraints
            })
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use birds_datalog::{parse_program, PredRef, Term};
    use birds_eval::{evaluate_query, EvalContext};
    use birds_store::{tuple, Database, Relation};

    fn rel(name: &str, vars: &[&str]) -> Formula {
        Formula::Rel(
            PredRef::plain(name),
            vars.iter().map(|v| Term::var(*v)).collect(),
        )
    }

    #[test]
    fn union_formula_produces_expected_get() {
        // φ = r1(X) ∨ r2(X), the paper's Example 4.1 result.
        let f = Formula::or(vec![rel("r1", &["X"]), rel("r2", &["X"])]);
        let p = formula_to_datalog(&f, &["X".into()], "v").unwrap();
        let expected = parse_program("v(X) :- r1(X). v(X) :- r2(X).").unwrap();
        assert_eq!(p, expected, "got: {p}");
    }

    #[test]
    fn conjunction_with_negation() {
        let f = Formula::and(vec![rel("r", &["X"]), Formula::not(rel("s", &["X"]))]);
        let p = formula_to_datalog(&f, &["X".into()], "g").unwrap();
        let expected = parse_program("g(X) :- r(X), not s(X).").unwrap();
        assert_eq!(p, expected, "got: {p}");
    }

    #[test]
    fn selection_with_comparison() {
        use birds_datalog::CmpOp;
        let f = Formula::and(vec![
            rel("r", &["X", "Y"]),
            Formula::Cmp(CmpOp::Gt, Term::var("Y"), Term::constant(2)),
        ]);
        let p = formula_to_datalog(&f, &["X".into(), "Y".into()], "g").unwrap();
        let expected = parse_program("g(X, Y) :- r(X, Y), Y > 2.").unwrap();
        assert_eq!(p, expected, "got: {p}");
    }

    #[test]
    fn existential_projection() {
        let f = Formula::exists(vec!["Y".into()], rel("r", &["X", "Y"]));
        let p = formula_to_datalog(&f, &["X".into()], "g").unwrap();
        // g(X) :- r(X, Y).
        assert_eq!(p.len(), 1);
        assert_eq!(p.rules[0].body.len(), 1);
    }

    #[test]
    fn negated_existential_via_aux_or_direct() {
        // r(X) ∧ ¬∃Y s(X,Y)
        let f = Formula::and(vec![
            rel("r", &["X"]),
            Formula::not(Formula::exists(vec!["Y".into()], rel("s", &["X", "Y"]))),
        ]);
        let p = formula_to_datalog(&f, &["X".into()], "g").unwrap();
        // single-literal aux gets inlined: g(X) :- r(X), not s(X, Y)?? —
        // no: negating s(X,Y) directly would change semantics (Y must be
        // inner-existential). The translation must keep an aux predicate
        // OR use an anonymous-style variable. Verify semantics by
        // evaluation instead of shape:
        let mut db = Database::new();
        db.add_relation(Relation::with_tuples("r", 1, vec![tuple![1], tuple![2]]).unwrap())
            .unwrap();
        db.add_relation(Relation::with_tuples("s", 2, vec![tuple![1, 9]]).unwrap())
            .unwrap();
        let mut ctx = EvalContext::new(&mut db);
        let out = evaluate_query(&p, &PredRef::plain("g"), &mut ctx).unwrap();
        assert_eq!(out.len(), 1);
        assert!(out.contains(&tuple![2]));
    }

    #[test]
    fn constant_equality_translates() {
        let f = Formula::and(vec![
            rel("r", &["X", "G"]),
            Formula::eq(Term::var("G"), Term::constant("F")),
        ]);
        let p = formula_to_datalog(&f, &["X".into(), "G".into()], "g").unwrap();
        let mut db = Database::new();
        db.add_relation(
            Relation::with_tuples("r", 2, vec![tuple![1, "F"], tuple![2, "M"]]).unwrap(),
        )
        .unwrap();
        let mut ctx = EvalContext::new(&mut db);
        let out = evaluate_query(&p, &PredRef::plain("g"), &mut ctx).unwrap();
        assert_eq!(out.len(), 1);
        assert!(out.contains(&tuple![1, "F"]));
    }

    #[test]
    fn distributed_disjunction_in_conjunction() {
        // r(X) ∧ (s(X) ∨ ¬t(X)) — needs push-into-or then two rules.
        let f = Formula::and(vec![
            rel("r", &["X"]),
            Formula::or(vec![rel("s", &["X"]), Formula::not(rel("t", &["X"]))]),
        ]);
        let p = formula_to_datalog(&f, &["X".into()], "g").unwrap();
        assert_eq!(p.len(), 2, "{p}");
        // semantics check
        let mut db = Database::new();
        db.add_relation(
            Relation::with_tuples("r", 1, vec![tuple![1], tuple![2], tuple![3]]).unwrap(),
        )
        .unwrap();
        db.add_relation(Relation::with_tuples("s", 1, vec![tuple![1]]).unwrap())
            .unwrap();
        db.add_relation(Relation::with_tuples("t", 1, vec![tuple![2]]).unwrap())
            .unwrap();
        let mut ctx = EvalContext::new(&mut db);
        let out = evaluate_query(&p, &PredRef::plain("g"), &mut ctx).unwrap();
        // 1 (via s), 3 (via ¬t); 2 excluded
        assert_eq!(out.len(), 2);
        assert!(out.contains(&tuple![1]) && out.contains(&tuple![3]));
    }

    #[test]
    fn not_safe_range_is_rejected() {
        let f = Formula::not(rel("r", &["X"]));
        assert!(matches!(
            formula_to_datalog(&f, &["X".into()], "g"),
            Err(ToDatalogError::Ranf(_))
        ));
    }

    #[test]
    fn roundtrip_through_unfold() {
        // Datalog → FO → Datalog preserves semantics on a sample database.
        let src = "
            m(X) :- r(X, _).
            goal(X) :- m(X), not s(X).
        ";
        let program = parse_program(src).unwrap();
        let (vars, f) = crate::unfold::unfold_query(&program, &PredRef::plain("goal")).unwrap();
        let back = formula_to_datalog(&f, &vars, "goal2").unwrap();

        let mut db = Database::new();
        db.add_relation(
            Relation::with_tuples("r", 2, vec![tuple![1, 10], tuple![2, 20], tuple![3, 30]])
                .unwrap(),
        )
        .unwrap();
        db.add_relation(Relation::with_tuples("s", 1, vec![tuple![2]]).unwrap())
            .unwrap();

        let mut ctx = EvalContext::new(&mut db);
        let orig = evaluate_query(&program, &PredRef::plain("goal"), &mut ctx).unwrap();
        let mut ctx2 = EvalContext::new(&mut db);
        let round = evaluate_query(&back, &PredRef::plain("goal2"), &mut ctx2).unwrap();
        assert_eq!(orig.tuples(), round.tuples());
    }
}
