//! First-order formulas over the Datalog vocabulary.

use birds_datalog::{CmpOp, PredRef, Term};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// A first-order formula. Terms and predicate references are shared with
/// the Datalog AST, so conversions in both directions are loss-free.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Formula {
    /// Relational atom `r(t1, …, tk)`.
    Rel(PredRef, Vec<Term>),
    /// Comparison / equality `t1 op t2`.
    Cmp(CmpOp, Term, Term),
    /// Negation.
    Not(Box<Formula>),
    /// N-ary conjunction (empty = `⊤`).
    And(Vec<Formula>),
    /// N-ary disjunction (empty = `⊥`).
    Or(Vec<Formula>),
    /// Existential quantification over the listed variables.
    Exists(Vec<String>, Box<Formula>),
    /// Universal quantification over the listed variables.
    Forall(Vec<String>, Box<Formula>),
    /// Truth.
    True,
    /// Falsity.
    False,
}

impl Formula {
    /// Convenience: `¬f` with double-negation collapse.
    // Not `std::ops::Not`: this is a static constructor taking the operand
    // by value, not a method on `self`.
    #[allow(clippy::should_implement_trait)]
    pub fn not(f: Formula) -> Formula {
        match f {
            Formula::Not(inner) => *inner,
            Formula::True => Formula::False,
            Formula::False => Formula::True,
            other => Formula::Not(Box::new(other)),
        }
    }

    /// Convenience: conjunction with unit / absorbing simplification.
    pub fn and(fs: Vec<Formula>) -> Formula {
        let mut out = Vec::new();
        for f in fs {
            match f {
                Formula::True => {}
                Formula::False => return Formula::False,
                Formula::And(inner) => out.extend(inner),
                other => out.push(other),
            }
        }
        match out.len() {
            0 => Formula::True,
            1 => out.pop().unwrap(),
            _ => Formula::And(out),
        }
    }

    /// Convenience: disjunction with unit / absorbing simplification.
    pub fn or(fs: Vec<Formula>) -> Formula {
        let mut out = Vec::new();
        for f in fs {
            match f {
                Formula::False => {}
                Formula::True => return Formula::True,
                Formula::Or(inner) => out.extend(inner),
                other => out.push(other),
            }
        }
        match out.len() {
            0 => Formula::False,
            1 => out.pop().unwrap(),
            _ => Formula::Or(out),
        }
    }

    /// Convenience: `∃vars. f`, dropping empty quantifiers and merging
    /// nested existentials.
    pub fn exists(vars: Vec<String>, f: Formula) -> Formula {
        if vars.is_empty() {
            return f;
        }
        match f {
            Formula::Exists(mut inner_vars, inner) => {
                let mut all = vars;
                all.append(&mut inner_vars);
                Formula::Exists(all, inner)
            }
            other => Formula::Exists(vars, Box::new(other)),
        }
    }

    /// Equality shorthand.
    pub fn eq(a: Term, b: Term) -> Formula {
        Formula::Cmp(CmpOp::Eq, a, b)
    }

    /// Number of nodes in the formula tree (a cost estimate for grounding).
    pub fn size(&self) -> usize {
        1 + match self {
            Formula::Not(f) => f.size(),
            Formula::And(fs) | Formula::Or(fs) => fs.iter().map(Formula::size).sum(),
            Formula::Exists(_, f) | Formula::Forall(_, f) => f.size(),
            _ => 0,
        }
    }

    /// Free variables of the formula.
    pub fn free_vars(&self) -> BTreeSet<String> {
        fn go(f: &Formula, bound: &mut Vec<String>, out: &mut BTreeSet<String>) {
            match f {
                Formula::Rel(_, terms) => {
                    for t in terms {
                        if let Term::Var(v) = t {
                            if !bound.iter().any(|b| b == v) {
                                out.insert(v.clone());
                            }
                        }
                    }
                }
                Formula::Cmp(_, a, b) => {
                    for t in [a, b] {
                        if let Term::Var(v) = t {
                            if !bound.iter().any(|x| x == v) {
                                out.insert(v.clone());
                            }
                        }
                    }
                }
                Formula::Not(inner) => go(inner, bound, out),
                Formula::And(fs) | Formula::Or(fs) => {
                    for f in fs {
                        go(f, bound, out);
                    }
                }
                Formula::Exists(vars, inner) | Formula::Forall(vars, inner) => {
                    let n = bound.len();
                    bound.extend(vars.iter().cloned());
                    go(inner, bound, out);
                    bound.truncate(n);
                }
                Formula::True | Formula::False => {}
            }
        }
        let mut out = BTreeSet::new();
        go(self, &mut Vec::new(), &mut out);
        out
    }

    /// All predicates mentioned (with the arity of first occurrence).
    pub fn predicates(&self) -> BTreeMap<PredRef, usize> {
        fn go(f: &Formula, out: &mut BTreeMap<PredRef, usize>) {
            match f {
                Formula::Rel(p, terms) => {
                    out.entry(p.clone()).or_insert(terms.len());
                }
                Formula::Cmp(..) | Formula::True | Formula::False => {}
                Formula::Not(inner) => go(inner, out),
                Formula::And(fs) | Formula::Or(fs) => fs.iter().for_each(|f| go(f, out)),
                Formula::Exists(_, inner) | Formula::Forall(_, inner) => go(inner, out),
            }
        }
        let mut out = BTreeMap::new();
        go(self, &mut out);
        out
    }

    /// All constants mentioned.
    pub fn constants(&self) -> BTreeSet<birds_store::Value> {
        fn term(t: &Term, out: &mut BTreeSet<birds_store::Value>) {
            if let Term::Const(v) = t {
                out.insert(*v);
            }
        }
        fn go(f: &Formula, out: &mut BTreeSet<birds_store::Value>) {
            match f {
                Formula::Rel(_, terms) => terms.iter().for_each(|t| term(t, out)),
                Formula::Cmp(_, a, b) => {
                    term(a, out);
                    term(b, out);
                }
                Formula::Not(inner) => go(inner, out),
                Formula::And(fs) | Formula::Or(fs) => fs.iter().for_each(|f| go(f, out)),
                Formula::Exists(_, inner) | Formula::Forall(_, inner) => go(inner, out),
                Formula::True | Formula::False => {}
            }
        }
        let mut out = BTreeSet::new();
        go(self, &mut out);
        out
    }

    /// Capture-avoiding substitution of free variables by terms.
    ///
    /// Bound variables that would capture a substituted term's variable are
    /// renamed using `fresh`.
    pub fn substitute(&self, map: &BTreeMap<String, Term>, fresh: &mut FreshVars) -> Formula {
        match self {
            Formula::Rel(p, terms) => Formula::Rel(
                p.clone(),
                terms.iter().map(|t| subst_term(t, map)).collect(),
            ),
            Formula::Cmp(op, a, b) => Formula::Cmp(*op, subst_term(a, map), subst_term(b, map)),
            Formula::Not(inner) => Formula::Not(Box::new(inner.substitute(map, fresh))),
            Formula::And(fs) => Formula::And(fs.iter().map(|f| f.substitute(map, fresh)).collect()),
            Formula::Or(fs) => Formula::Or(fs.iter().map(|f| f.substitute(map, fresh)).collect()),
            Formula::Exists(vars, inner) | Formula::Forall(vars, inner) => {
                // Variables being substituted *into* the formula:
                let incoming: BTreeSet<&str> = map.values().filter_map(Term::as_var).collect();
                let mut new_vars = Vec::with_capacity(vars.len());
                let mut inner_map = map.clone();
                for v in vars {
                    // A bound variable shadows any outer substitution.
                    inner_map.remove(v);
                    if incoming.contains(v.as_str()) {
                        let nv = fresh.next_var();
                        inner_map.insert(v.clone(), Term::Var(nv.clone()));
                        new_vars.push(nv);
                    } else {
                        new_vars.push(v.clone());
                    }
                }
                let new_inner = inner.substitute(&inner_map, fresh);
                match self {
                    Formula::Exists(..) => Formula::Exists(new_vars, Box::new(new_inner)),
                    _ => Formula::Forall(new_vars, Box::new(new_inner)),
                }
            }
            Formula::True => Formula::True,
            Formula::False => Formula::False,
        }
    }

    /// Rename every bound variable to a globally fresh name. Useful before
    /// transformations that move subformulas across quantifiers.
    pub fn alpha_rename(&self, fresh: &mut FreshVars) -> Formula {
        fn go(f: &Formula, map: &BTreeMap<String, Term>, fresh: &mut FreshVars) -> Formula {
            match f {
                Formula::Rel(p, terms) => Formula::Rel(
                    p.clone(),
                    terms.iter().map(|t| subst_term(t, map)).collect(),
                ),
                Formula::Cmp(op, a, b) => Formula::Cmp(*op, subst_term(a, map), subst_term(b, map)),
                Formula::Not(inner) => Formula::Not(Box::new(go(inner, map, fresh))),
                Formula::And(fs) => Formula::And(fs.iter().map(|f| go(f, map, fresh)).collect()),
                Formula::Or(fs) => Formula::Or(fs.iter().map(|f| go(f, map, fresh)).collect()),
                Formula::Exists(vars, inner) | Formula::Forall(vars, inner) => {
                    let mut inner_map = map.clone();
                    let mut new_vars = Vec::with_capacity(vars.len());
                    for v in vars {
                        let nv = fresh.next_var();
                        inner_map.insert(v.clone(), Term::Var(nv.clone()));
                        new_vars.push(nv);
                    }
                    let new_inner = go(inner, &inner_map, fresh);
                    match f {
                        Formula::Exists(..) => Formula::Exists(new_vars, Box::new(new_inner)),
                        _ => Formula::Forall(new_vars, Box::new(new_inner)),
                    }
                }
                Formula::True => Formula::True,
                Formula::False => Formula::False,
            }
        }
        go(self, &BTreeMap::new(), fresh)
    }
}

fn subst_term(t: &Term, map: &BTreeMap<String, Term>) -> Term {
    match t {
        Term::Var(v) => map.get(v).cloned().unwrap_or_else(|| t.clone()),
        Term::Const(_) => t.clone(),
    }
}

/// Fresh variable name generator shared across transformations.
#[derive(Debug, Default)]
pub struct FreshVars {
    counter: usize,
}

impl FreshVars {
    /// New generator starting at 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Next fresh variable name (`V!0`, `V!1`, …; the `!` cannot appear in
    /// parsed variable names, so freshness is global).
    pub fn next_var(&mut self) -> String {
        let v = format!("V!{}", self.counter);
        self.counter += 1;
        v
    }
}

impl fmt::Display for Formula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Formula::Rel(p, terms) => {
                write!(f, "{p}(")?;
                for (i, t) in terms.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{t}")?;
                }
                write!(f, ")")
            }
            Formula::Cmp(op, a, b) => write!(f, "{a} {} {b}", op.symbol()),
            Formula::Not(inner) => write!(f, "¬({inner})"),
            Formula::And(fs) => {
                write!(f, "(")?;
                for (i, x) in fs.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ∧ ")?;
                    }
                    write!(f, "{x}")?;
                }
                write!(f, ")")
            }
            Formula::Or(fs) => {
                write!(f, "(")?;
                for (i, x) in fs.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ∨ ")?;
                    }
                    write!(f, "{x}")?;
                }
                write!(f, ")")
            }
            Formula::Exists(vars, inner) => write!(f, "∃{}.({inner})", vars.join(",")),
            Formula::Forall(vars, inner) => write!(f, "∀{}.({inner})", vars.join(",")),
            Formula::True => write!(f, "⊤"),
            Formula::False => write!(f, "⊥"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use birds_datalog::Term;

    fn rel(name: &str, vars: &[&str]) -> Formula {
        Formula::Rel(
            PredRef::plain(name),
            vars.iter().map(|v| Term::var(*v)).collect(),
        )
    }

    #[test]
    fn free_vars_respect_binding() {
        let f = Formula::exists(
            vec!["Y".into()],
            Formula::and(vec![rel("r", &["X", "Y"]), rel("s", &["Y", "Z"])]),
        );
        let fv = f.free_vars();
        assert!(fv.contains("X") && fv.contains("Z") && !fv.contains("Y"));
    }

    #[test]
    fn smart_constructors_simplify() {
        assert_eq!(Formula::and(vec![]), Formula::True);
        assert_eq!(Formula::or(vec![]), Formula::False);
        assert_eq!(
            Formula::and(vec![Formula::True, rel("r", &["X"])]),
            rel("r", &["X"])
        );
        assert_eq!(
            Formula::and(vec![Formula::False, rel("r", &["X"])]),
            Formula::False
        );
        assert_eq!(
            Formula::not(Formula::not(rel("r", &["X"]))),
            rel("r", &["X"])
        );
        // nested exists merge
        let f = Formula::exists(
            vec!["X".into()],
            Formula::exists(vec!["Y".into()], rel("r", &["X", "Y"])),
        );
        match f {
            Formula::Exists(vars, _) => assert_eq!(vars, vec!["X".to_string(), "Y".to_string()]),
            _ => panic!(),
        }
    }

    #[test]
    fn substitution_is_capture_avoiding() {
        // ∃Y r(X, Y) with X := Y must not capture.
        let f = Formula::exists(vec!["Y".into()], rel("r", &["X", "Y"]));
        let mut map = BTreeMap::new();
        map.insert("X".to_string(), Term::var("Y"));
        let mut fresh = FreshVars::new();
        let g = f.substitute(&map, &mut fresh);
        match g {
            Formula::Exists(vars, inner) => {
                assert_ne!(vars[0], "Y", "bound var must be renamed");
                let fv = inner.free_vars();
                assert!(fv.contains("Y"), "substituted Y must be free inside");
            }
            _ => panic!(),
        }
    }

    #[test]
    fn substitution_shadowing() {
        // ∃X r(X) with X := c is a no-op (X is bound).
        let f = Formula::exists(vec!["X".into()], rel("r", &["X"]));
        let mut map = BTreeMap::new();
        map.insert("X".to_string(), Term::constant(1));
        let mut fresh = FreshVars::new();
        assert_eq!(f.substitute(&map, &mut fresh), f);
    }

    #[test]
    fn predicates_and_constants_collection() {
        let f = Formula::and(vec![
            rel("r", &["X"]),
            Formula::eq(Term::var("X"), Term::constant("M")),
            Formula::not(Formula::Rel(PredRef::ins("s"), vec![Term::constant(3)])),
        ]);
        let preds = f.predicates();
        assert_eq!(preds.len(), 2);
        assert_eq!(preds[&PredRef::ins("s")], 1);
        let consts = f.constants();
        assert!(consts.contains(&birds_store::Value::str("M")));
        assert!(consts.contains(&birds_store::Value::int(3)));
    }

    #[test]
    fn alpha_rename_preserves_free_vars() {
        let f = Formula::exists(
            vec!["Y".into()],
            Formula::and(vec![rel("r", &["X", "Y"]), rel("s", &["Y", "Y"])]),
        );
        let mut fresh = FreshVars::new();
        let g = f.alpha_rename(&mut fresh);
        assert_eq!(g.free_vars(), f.free_vars());
        match g {
            Formula::Exists(vars, _) => assert!(vars[0].starts_with("V!")),
            _ => panic!(),
        }
    }
}
