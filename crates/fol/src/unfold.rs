//! Datalog → first-order unfolding.
//!
//! Follows the construction in the paper's proof of Lemma 3.1 (Appendix
//! A.2): for an IDB predicate `r` with rules `r(~X) :- α1, …, αn`, the
//! formula `ϕ_r(~X)` is the disjunction over rules of `∃~E ⋀ β_j`, where
//! each `β_j` inlines IDB atoms recursively (negated for negated atoms) and
//! keeps EDB atoms / builtins as-is. Unlike the paper's presentation we do
//! not hoist constants out of atoms into equalities — the downstream
//! consumers (the solver and the RANF pipeline) handle constants in place.
//!
//! Anonymous variables inside *negated* atoms become existentials under
//! the negation: `¬ced(E, _)` unfolds to `¬∃A. ced(E, A)`.

use crate::formula::{Formula, FreshVars};
use birds_datalog::{check_nonrecursive, Head, Literal, PredRef, Program, Rule, Term};
use std::collections::BTreeMap;
use std::fmt;

/// Errors during unfolding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UnfoldError {
    /// The program is recursive.
    Recursive(String),
    /// A queried predicate has no arity (never occurs in the program).
    UnknownPredicate(String),
}

impl fmt::Display for UnfoldError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UnfoldError::Recursive(p) => write!(f, "cannot unfold recursive program ({p})"),
            UnfoldError::UnknownPredicate(p) => write!(f, "unknown predicate '{p}'"),
        }
    }
}

impl std::error::Error for UnfoldError {}

/// Unfold the Datalog query `(program, pred)` into an equivalent FO
/// formula. Returns the canonical free variables (one per head position)
/// and the formula.
///
/// Predicates without defining rules are EDB and stay as relational atoms.
pub fn unfold_query(
    program: &Program,
    pred: &PredRef,
) -> Result<(Vec<String>, Formula), UnfoldError> {
    check_nonrecursive(program).map_err(|e| UnfoldError::Recursive(e.to_string()))?;
    let arity = program
        .arity_of(pred)
        .ok_or_else(|| UnfoldError::UnknownPredicate(pred.to_string()))?;
    let mut ctx = Unfolder {
        program,
        fresh: FreshVars::new(),
        cache: BTreeMap::new(),
    };
    let vars: Vec<String> = (0..arity).map(|i| format!("X{i}")).collect();
    let f = ctx.pred_formula(
        pred,
        &vars
            .iter()
            .map(|v| Term::var(v.clone()))
            .collect::<Vec<_>>(),
    );
    Ok((vars, f))
}

/// Unfold an integrity-constraint rule (`⊥ :- Φ(~X)`) into the closed
/// sentence `∃~X. Φ(~X)` with all IDB atoms inlined. The constraint is
/// *violated* on databases satisfying this sentence.
pub fn unfold_constraint(program: &Program, rule: &Rule) -> Result<Formula, UnfoldError> {
    check_nonrecursive(program).map_err(|e| UnfoldError::Recursive(e.to_string()))?;
    let mut ctx = Unfolder {
        program,
        fresh: FreshVars::new(),
        cache: BTreeMap::new(),
    };
    let constraint = Rule {
        head: Head::Bottom,
        body: rule.body.clone(),
    };
    Ok(ctx.rule_formula(&constraint))
}

struct Unfolder<'a> {
    program: &'a Program,
    fresh: FreshVars,
    /// Canonical unfolded formula per IDB predicate, over variables
    /// `C0, …, Ck-1`.
    cache: BTreeMap<PredRef, Formula>,
}

impl Unfolder<'_> {
    /// Formula for `pred(terms)`.
    fn pred_formula(&mut self, pred: &PredRef, terms: &[Term]) -> Formula {
        let is_idb = self.program.rules_for(pred).next().is_some();
        if !is_idb {
            return Formula::Rel(pred.clone(), terms.to_vec());
        }
        let canonical = self.canonical(pred);
        // Substitute the canonical parameters by the actual terms, renaming
        // the formula's bound variables apart first.
        let renamed = canonical.alpha_rename(&mut self.fresh);
        let map: BTreeMap<String, Term> = (0..terms.len())
            .map(|i| (format!("C{i}"), terms[i].clone()))
            .collect();
        renamed.substitute(&map, &mut self.fresh)
    }

    /// Canonical formula of an IDB predicate over parameters `C0..Ck-1`.
    fn canonical(&mut self, pred: &PredRef) -> Formula {
        if let Some(f) = self.cache.get(pred) {
            return f.clone();
        }
        let rules: Vec<&Rule> = self.program.rules_for(pred).collect();
        let disjuncts: Vec<Formula> = rules.iter().map(|r| self.rule_formula(r)).collect();
        let f = Formula::or(disjuncts);
        self.cache.insert(pred.clone(), f.clone());
        f
    }

    /// Formula of one rule, over head parameters `C0..Ck-1`.
    fn rule_formula(&mut self, rule: &Rule) -> Formula {
        let head = match &rule.head {
            Head::Atom(a) => a,
            Head::Bottom => {
                // Constraint rules: the formula is the existential closure
                // of the body conjunction.
                let mut map: BTreeMap<String, Term> = BTreeMap::new();
                let mut evars: Vec<String> = Vec::new();
                for v in rule.variables() {
                    if v.starts_with("_#") {
                        continue; // handled per-literal
                    }
                    let nv = self.fresh.next_var();
                    map.insert(v.to_owned(), Term::var(nv.clone()));
                    evars.push(nv);
                }
                let body = self.body_formula(rule, &map);
                return Formula::exists(evars, body);
            }
        };
        // Map rule head variables to canonical parameters; repeated
        // variables and constants become equalities.
        let mut map: BTreeMap<String, Term> = BTreeMap::new();
        let mut eqs: Vec<Formula> = Vec::new();
        for (i, t) in head.terms.iter().enumerate() {
            let ci = Term::var(format!("C{i}"));
            match t {
                Term::Var(v) => {
                    if let Some(first) = map.get(v) {
                        eqs.push(Formula::eq(ci, first.clone()));
                    } else {
                        map.insert(v.clone(), ci);
                    }
                }
                Term::Const(c) => {
                    eqs.push(Formula::eq(ci, Term::Const(*c)));
                }
            }
        }
        // Remaining body variables are existential: rename them fresh.
        // Anonymous variables are handled per-literal (they may need to be
        // quantified inside a negation), so they are skipped here.
        let mut evars: Vec<String> = Vec::new();
        for v in rule.variables() {
            if !map.contains_key(v) && !v.starts_with("_#") {
                let nv = self.fresh.next_var();
                map.insert(v.to_owned(), Term::var(nv.clone()));
                evars.push(nv);
            }
        }
        let body = self.body_formula(rule, &map);
        Formula::exists(evars, Formula::and([eqs, vec![body]].concat()))
    }

    /// Conjunction of a rule's body literals under a variable mapping.
    fn body_formula(&mut self, rule: &Rule, map: &BTreeMap<String, Term>) -> Formula {
        let mut conj = Vec::new();
        for lit in &rule.body {
            conj.push(self.literal_formula(lit, map));
        }
        Formula::and(conj)
    }

    fn literal_formula(&mut self, lit: &Literal, map: &BTreeMap<String, Term>) -> Formula {
        let subst = |t: &Term, me: &mut Self| -> Term {
            match t {
                Term::Var(v) => map
                    .get(v)
                    .cloned()
                    .unwrap_or_else(|| Term::var(me.fresh.next_var())),
                Term::Const(_) => t.clone(),
            }
        };
        match lit {
            Literal::Atom { atom, negated } => {
                // Anonymous variables: fresh names; inside a negation they
                // are quantified under the ¬.
                let mut anon_vars: Vec<String> = Vec::new();
                let terms: Vec<Term> = atom
                    .terms
                    .iter()
                    .map(|t| {
                        if t.is_anonymous() {
                            let nv = self.fresh.next_var();
                            anon_vars.push(nv.clone());
                            Term::var(nv)
                        } else {
                            subst(t, self)
                        }
                    })
                    .collect();
                let inner = self.pred_formula(&atom.pred, &terms);
                if *negated {
                    Formula::not(Formula::exists(anon_vars, inner))
                } else {
                    // Positive anonymous variables are existential at the
                    // atom level (equivalently at the rule level).
                    Formula::exists(anon_vars, inner)
                }
            }
            Literal::Builtin {
                op,
                left,
                right,
                negated,
            } => {
                let f = Formula::Cmp(*op, subst(left, self), subst(right, self));
                if *negated {
                    Formula::not(f)
                } else {
                    f
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use birds_datalog::parse_program;

    /// Evaluate an unfolded formula on tiny explicit databases to check it
    /// against direct Datalog evaluation.
    fn assert_unfold_ok(src: &str, pred: PredRef) {
        let program = parse_program(src).unwrap();
        let (vars, f) = unfold_query(&program, &pred).unwrap();
        assert_eq!(
            f.free_vars(),
            vars.iter().cloned().collect(),
            "free vars of {f} must be exactly the canonical parameters"
        );
    }

    #[test]
    fn unfold_edb_is_atom() {
        let program = parse_program("h(X) :- r(X).").unwrap();
        let (_, f) = unfold_query(&program, &PredRef::plain("r")).unwrap();
        assert!(matches!(f, Formula::Rel(..)));
    }

    #[test]
    fn unfold_union() {
        let src = "v(X) :- r1(X). v(X) :- r2(X).";
        let program = parse_program(src).unwrap();
        let (vars, f) = unfold_query(&program, &PredRef::plain("v")).unwrap();
        assert_eq!(vars, vec!["X0"]);
        match &f {
            Formula::Or(fs) => assert_eq!(fs.len(), 2),
            other => panic!("expected Or, got {other}"),
        }
    }

    #[test]
    fn unfold_handles_negation_and_nesting() {
        assert_unfold_ok(
            "
            m(X) :- r(X), X > 2.
            h(X) :- m(X), not s(X).
            ",
            PredRef::plain("h"),
        );
    }

    #[test]
    fn unfold_head_constants_become_equalities() {
        let program = parse_program("res(E, B, 'F') :- female(E, B).").unwrap();
        let (vars, f) = unfold_query(&program, &PredRef::plain("res")).unwrap();
        assert_eq!(vars.len(), 3);
        // Must contain an equality X2 = 'F'.
        let printed = f.to_string();
        assert!(printed.contains("X2 = 'F'"), "{printed}");
    }

    #[test]
    fn unfold_repeated_head_variables() {
        let program = parse_program("diag(X, X) :- r(X).").unwrap();
        let (_, f) = unfold_query(&program, &PredRef::plain("diag")).unwrap();
        let printed = f.to_string();
        assert!(printed.contains("X1 = X0"), "{printed}");
    }

    #[test]
    fn unfold_anonymous_in_negated_atom() {
        let program = parse_program("retired(E) :- residents(E, _, _), not ced(E, _).").unwrap();
        let (_, f) = unfold_query(&program, &PredRef::plain("retired")).unwrap();
        // The ¬ced must contain an ∃ inside the negation.
        let printed = f.to_string();
        assert!(
            printed.contains("¬(∃"),
            "negated atom with anonymous variable must quantify inside: {printed}"
        );
        assert_eq!(f.free_vars().len(), 1);
    }

    #[test]
    fn unfold_idb_inlining_is_deep() {
        let src = "
            a(X) :- b(X), not c(X).
            b(X) :- r(X), X > 1.
            c(X) :- s(X, _).
        ";
        let program = parse_program(src).unwrap();
        let (_, f) = unfold_query(&program, &PredRef::plain("a")).unwrap();
        let preds = f.predicates();
        assert!(preds.contains_key(&PredRef::plain("r")));
        assert!(preds.contains_key(&PredRef::plain("s")));
        assert!(
            !preds.contains_key(&PredRef::plain("b")),
            "b must be inlined"
        );
        assert!(
            !preds.contains_key(&PredRef::plain("c")),
            "c must be inlined"
        );
    }

    #[test]
    fn unfold_delta_predicates() {
        let src = "
            -r1(X) :- r1(X), not v(X).
            +r1(X) :- v(X), not r1(X), not r2(X).
        ";
        let program = parse_program(src).unwrap();
        let (_, f) = unfold_query(&program, &PredRef::del("r1")).unwrap();
        let printed = f.to_string();
        assert!(
            printed.contains("r1(X0)") && printed.contains("¬(v(X0))"),
            "{printed}"
        );
    }

    #[test]
    fn recursive_program_rejected() {
        let program = parse_program("p(X) :- q(X). q(X) :- p(X).").unwrap();
        assert!(matches!(
            unfold_query(&program, &PredRef::plain("p")),
            Err(UnfoldError::Recursive(_))
        ));
    }

    #[test]
    fn unknown_predicate_rejected() {
        let program = parse_program("p(X) :- q(X).").unwrap();
        assert!(matches!(
            unfold_query(&program, &PredRef::plain("zzz")),
            Err(UnfoldError::UnknownPredicate(_))
        ));
    }

    #[test]
    fn shared_idb_used_twice_gets_distinct_bound_vars() {
        let src = "
            m(X) :- r(X, _).
            h(X, Y) :- m(X), m(Y).
        ";
        let program = parse_program(src).unwrap();
        let (_, f) = unfold_query(&program, &PredRef::plain("h")).unwrap();
        // Both m-expansions introduce a bound variable; they must differ.
        assert_eq!(f.free_vars().len(), 2);
    }
}
