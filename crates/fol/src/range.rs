//! Range restriction analysis (`rr(φ)`), per Appendix B.
//!
//! `rr` is defined on SRNF formulas. `⊥` (represented as `None`) signals
//! that some quantified variable is not range-restricted; `⊥` is
//! contagious through all set operations.

use crate::formula::Formula;
use crate::srnf::is_srnf;
use birds_datalog::{CmpOp, Term};
use std::collections::BTreeSet;

/// Range-restricted variables of an SRNF formula. `None` encodes the
/// appendix's `⊥` marker.
pub fn range_restricted(f: &Formula) -> Option<BTreeSet<String>> {
    debug_assert!(is_srnf(f), "rr is defined on SRNF formulas: {f}");
    match f {
        Formula::Rel(_, terms) => Some(
            terms
                .iter()
                .filter_map(Term::as_var)
                .map(str::to_owned)
                .collect(),
        ),
        Formula::Cmp(CmpOp::Eq, a, b) => match (a, b) {
            (Term::Var(x), Term::Const(_)) | (Term::Const(_), Term::Var(x)) => {
                Some([x.clone()].into())
            }
            _ => Some(BTreeSet::new()),
        },
        // Comparisons restrict nothing.
        Formula::Cmp(..) => Some(BTreeSet::new()),
        Formula::Not(_) | Formula::True | Formula::False => Some(BTreeSet::new()),
        Formula::And(fs) => {
            // Union of conjunct rr's, then propagate variable-variable
            // equalities (φ1 ∧ x = y case of the appendix).
            let mut set = BTreeSet::new();
            for g in fs {
                set.extend(range_restricted(g)?);
            }
            loop {
                let mut changed = false;
                for g in fs {
                    if let Formula::Cmp(CmpOp::Eq, Term::Var(x), Term::Var(y)) = g {
                        if set.contains(x) && set.insert(y.clone()) {
                            changed = true;
                        }
                        if set.contains(y) && set.insert(x.clone()) {
                            changed = true;
                        }
                    }
                }
                if !changed {
                    break;
                }
            }
            Some(set)
        }
        Formula::Or(fs) => {
            let mut iter = fs.iter();
            let mut set = range_restricted(iter.next()?)?;
            for g in iter {
                let other = range_restricted(g)?;
                set = set.intersection(&other).cloned().collect();
            }
            Some(set)
        }
        Formula::Exists(vars, inner) => {
            let inner_rr = range_restricted(inner)?;
            if vars.iter().all(|v| inner_rr.contains(v)) {
                Some(inner_rr.into_iter().filter(|v| !vars.contains(v)).collect())
            } else {
                None // ⊥: a quantified variable is not restricted
            }
        }
        Formula::Forall(..) => unreachable!("SRNF has no universal quantifiers"),
    }
}

/// Is the SRNF formula safe-range, i.e. `rr(φ) = free(φ)`?
pub fn is_safe_range(f: &Formula) -> bool {
    match range_restricted(f) {
        Some(rr) => rr == f.free_vars(),
        None => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use birds_datalog::PredRef;

    fn rel(name: &str, vars: &[&str]) -> Formula {
        Formula::Rel(
            PredRef::plain(name),
            vars.iter().map(|v| Term::var(*v)).collect(),
        )
    }

    #[test]
    fn atoms_restrict_their_variables() {
        let f = rel("r", &["X", "Y"]);
        assert!(is_safe_range(&f));
    }

    #[test]
    fn negation_restricts_nothing() {
        let f = Formula::not(rel("r", &["X"]));
        assert!(!is_safe_range(&f));
        // but conjoined with a positive atom it is fine
        let g = Formula::and(vec![rel("s", &["X"]), Formula::not(rel("r", &["X"]))]);
        assert!(is_safe_range(&g));
    }

    #[test]
    fn constant_equality_restricts() {
        let f = Formula::eq(Term::var("X"), Term::constant(1));
        assert!(is_safe_range(&f));
    }

    #[test]
    fn variable_equality_propagates_in_conjunction() {
        let f = Formula::and(vec![
            rel("r", &["X"]),
            Formula::eq(Term::var("X"), Term::var("Y")),
        ]);
        assert!(is_safe_range(&f));
    }

    #[test]
    fn disjunction_intersects() {
        // r(X) ∨ s(X,Y) restricts only X.
        let f = Formula::or(vec![rel("r", &["X"]), rel("s", &["X", "Y"])]);
        let rr = range_restricted(&f).unwrap();
        assert!(rr.contains("X") && !rr.contains("Y"));
        assert!(!is_safe_range(&f));
    }

    #[test]
    fn unrestricted_quantified_variable_is_bottom() {
        // ∃Y ¬r(X,Y): Y not restricted -> ⊥
        let f = Formula::exists(vec!["Y".into()], Formula::not(rel("r", &["X", "Y"])));
        assert_eq!(range_restricted(&f), None);
        // ⊥ is contagious through conjunction.
        let g = Formula::and(vec![rel("s", &["X"]), f]);
        assert_eq!(range_restricted(&g), None);
    }

    #[test]
    fn well_restricted_existential() {
        let f = Formula::exists(
            vec!["Y".into()],
            Formula::and(vec![rel("r", &["X", "Y"]), Formula::not(rel("s", &["Y"]))]),
        );
        assert!(is_safe_range(&f));
    }

    #[test]
    fn comparisons_restrict_nothing() {
        let f = Formula::Cmp(CmpOp::Lt, Term::var("X"), Term::constant(5));
        assert!(!is_safe_range(&f));
        let g = Formula::and(vec![rel("r", &["X"]), f]);
        assert!(is_safe_range(&g));
    }
}
