//! Quantifier miniscoping: push quantifiers to their smallest scope.
//!
//! The bounded solver grounds `∃x1…xk φ` by enumerating the full domain
//! product over `x1…xk`, which is exponential in `k`. Miniscoping splits
//! conjunctions under an existential into *variable-connected components*
//! and distributes existentials over disjunctions, so the expansion cost
//! becomes the product over each small component instead of the whole
//! prefix:
//!
//! * `∃x (A(x) ∧ B)        ≡ (∃x A(x)) ∧ B`
//! * `∃x,y (A(x) ∧ B(y))   ≡ (∃x A(x)) ∧ (∃y B(y))`
//! * `∃x (A ∨ B)           ≡ (∃x A) ∨ (∃x B)`
//! * dually for `∀` (which distributes over `∧`, and splits out of `∨`
//!   for disjuncts not using the variable).

use crate::formula::Formula;
use std::collections::BTreeSet;

/// Push quantifiers inward as far as possible.
pub fn miniscope(f: &Formula) -> Formula {
    match f {
        Formula::Rel(..) | Formula::Cmp(..) | Formula::True | Formula::False => f.clone(),
        Formula::Not(inner) => Formula::not(miniscope(inner)),
        Formula::And(fs) => Formula::and(fs.iter().map(miniscope).collect()),
        Formula::Or(fs) => Formula::or(fs.iter().map(miniscope).collect()),
        Formula::Exists(vars, inner) => scope_exists(vars, &miniscope(inner)),
        Formula::Forall(vars, inner) => scope_forall(vars, &miniscope(inner)),
    }
}

/// Distribute `∃vars` over an already-miniscoped body.
fn scope_exists(vars: &[String], inner: &Formula) -> Formula {
    // Drop unused variables.
    let free = inner.free_vars();
    let vars: Vec<String> = vars.iter().filter(|v| free.contains(*v)).cloned().collect();
    if vars.is_empty() {
        return inner.clone();
    }
    match inner {
        // ∃x (A ∨ B) ≡ ∃x A ∨ ∃x B
        Formula::Or(ds) => Formula::or(ds.iter().map(|d| scope_exists(&vars, d)).collect()),
        Formula::And(parts) => {
            // Split into components connected through the quantified vars.
            let groups = connected_components(parts, &vars);
            let mut out = Vec::with_capacity(groups.len());
            for (group_vars, group_parts) in groups {
                let conj = Formula::and(group_parts);
                if group_vars.is_empty() {
                    out.push(conj);
                } else if group_parts_len_one_or(&conj) {
                    // Try pushing further into a single part (e.g. an Or).
                    out.push(scope_exists(
                        &group_vars.into_iter().collect::<Vec<_>>(),
                        &conj,
                    ));
                } else {
                    out.push(Formula::exists(group_vars.into_iter().collect(), conj));
                }
            }
            Formula::and(out)
        }
        // Nested exists: merge and retry.
        Formula::Exists(inner_vars, g) => {
            let mut all = vars.clone();
            all.extend(inner_vars.iter().cloned());
            scope_exists(&all, g)
        }
        _ => Formula::exists(vars, inner.clone()),
    }
}

fn group_parts_len_one_or(f: &Formula) -> bool {
    matches!(f, Formula::Or(_))
}

/// Distribute `∀vars` over an already-miniscoped body.
fn scope_forall(vars: &[String], inner: &Formula) -> Formula {
    let free = inner.free_vars();
    let vars: Vec<String> = vars.iter().filter(|v| free.contains(*v)).cloned().collect();
    if vars.is_empty() {
        return inner.clone();
    }
    match inner {
        // ∀x (A ∧ B) ≡ ∀x A ∧ ∀x B
        Formula::And(cs) => Formula::and(cs.iter().map(|c| scope_forall(&vars, c)).collect()),
        Formula::Or(parts) => {
            // ∀x (A(x) ∨ B) ≡ (∀x A(x)) ∨ B when x ∉ B: group disjuncts
            // by connectivity through the quantified variables.
            let groups = connected_components(parts, &vars);
            let mut out = Vec::with_capacity(groups.len());
            for (group_vars, group_parts) in groups {
                let disj = Formula::or(group_parts);
                if group_vars.is_empty() {
                    out.push(disj);
                } else {
                    out.push(Formula::Forall(
                        group_vars.into_iter().collect(),
                        Box::new(disj),
                    ));
                }
            }
            Formula::or(out)
        }
        Formula::Forall(inner_vars, g) => {
            let mut all = vars.clone();
            all.extend(inner_vars.iter().cloned());
            scope_forall(&all, g)
        }
        _ => Formula::Forall(vars, Box::new(inner.clone())),
    }
}

/// Partition `parts` into groups connected through shared quantified
/// variables; returns each group with the variables it owns. Parts using
/// no quantified variable form a single var-free group.
fn connected_components(
    parts: &[Formula],
    vars: &[String],
) -> Vec<(BTreeSet<String>, Vec<Formula>)> {
    let var_set: BTreeSet<&str> = vars.iter().map(String::as_str).collect();
    let part_vars: Vec<BTreeSet<String>> = parts
        .iter()
        .map(|p| {
            p.free_vars()
                .into_iter()
                .filter(|v| var_set.contains(v.as_str()))
                .collect()
        })
        .collect();

    // Union-find over parts.
    let n = parts.len();
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut Vec<usize>, i: usize) -> usize {
        if parent[i] != i {
            let root = find(parent, parent[i]);
            parent[i] = root;
        }
        parent[i]
    }
    for i in 0..n {
        for j in (i + 1)..n {
            if !part_vars[i].is_disjoint(&part_vars[j]) {
                let (a, b) = (find(&mut parent, i), find(&mut parent, j));
                if a != b {
                    parent[a] = b;
                }
            }
        }
    }

    let mut groups: Vec<(BTreeSet<String>, Vec<Formula>)> = Vec::new();
    let mut root_index: std::collections::BTreeMap<usize, usize> = Default::default();
    let mut var_free: Vec<Formula> = Vec::new();
    for i in 0..n {
        if part_vars[i].is_empty() {
            var_free.push(parts[i].clone());
            continue;
        }
        let root = find(&mut parent, i);
        let gi = *root_index.entry(root).or_insert_with(|| {
            groups.push((BTreeSet::new(), Vec::new()));
            groups.len() - 1
        });
        groups[gi].0.extend(part_vars[i].iter().cloned());
        groups[gi].1.push(parts[i].clone());
    }
    if !var_free.is_empty() {
        groups.push((BTreeSet::new(), var_free));
    }
    groups
}

#[cfg(test)]
mod tests {
    use super::*;
    use birds_datalog::{PredRef, Term};

    fn rel(name: &str, vars: &[&str]) -> Formula {
        Formula::Rel(
            PredRef::plain(name),
            vars.iter().map(|v| Term::var(*v)).collect(),
        )
    }

    #[test]
    fn independent_conjuncts_split() {
        // ∃x,y (A(x) ∧ B(y)) → (∃x A) ∧ (∃y B)
        let f = Formula::Exists(
            vec!["X".into(), "Y".into()],
            Box::new(Formula::And(vec![rel("a", &["X"]), rel("b", &["Y"])])),
        );
        let g = miniscope(&f);
        match &g {
            Formula::And(cs) => {
                assert_eq!(cs.len(), 2);
                assert!(cs
                    .iter()
                    .all(|c| matches!(c, Formula::Exists(vs, _) if vs.len() == 1)));
            }
            other => panic!("expected And, got {other}"),
        }
        assert_eq!(g.free_vars(), f.free_vars());
    }

    #[test]
    fn var_free_conjunct_escapes() {
        // ∃x (A(x) ∧ B(z)) → (∃x A(x)) ∧ B(z)
        let f = Formula::Exists(
            vec!["X".into()],
            Box::new(Formula::And(vec![rel("a", &["X"]), rel("b", &["Z"])])),
        );
        let g = miniscope(&f);
        match &g {
            Formula::And(cs) => {
                assert!(cs.iter().any(|c| matches!(c, Formula::Rel(..))));
            }
            other => panic!("expected And, got {other}"),
        }
    }

    #[test]
    fn exists_distributes_over_or() {
        let f = Formula::Exists(
            vec!["X".into()],
            Box::new(Formula::Or(vec![rel("a", &["X"]), rel("b", &["X"])])),
        );
        let g = miniscope(&f);
        assert!(matches!(g, Formula::Or(_)), "{g}");
    }

    #[test]
    fn connected_parts_stay_together() {
        // ∃x,y (A(x,y) ∧ B(y)) cannot be split.
        let f = Formula::Exists(
            vec!["X".into(), "Y".into()],
            Box::new(Formula::And(vec![rel("a", &["X", "Y"]), rel("b", &["Y"])])),
        );
        let g = miniscope(&f);
        match &g {
            Formula::Exists(vs, _) => assert_eq!(vs.len(), 2),
            other => panic!("expected Exists, got {other}"),
        }
    }

    #[test]
    fn forall_distributes_over_and_and_splits_or() {
        // ∀x (A(x) ∨ B(z)) → (∀x A(x)) ∨ B(z)
        let f = Formula::Forall(
            vec!["X".into()],
            Box::new(Formula::Or(vec![rel("a", &["X"]), rel("b", &["Z"])])),
        );
        let g = miniscope(&f);
        match &g {
            Formula::Or(ds) => {
                assert!(ds.iter().any(|d| matches!(d, Formula::Forall(..))));
                assert!(ds.iter().any(|d| matches!(d, Formula::Rel(..))));
            }
            other => panic!("expected Or, got {other}"),
        }
    }

    #[test]
    fn unused_quantified_vars_are_dropped() {
        let f = Formula::Exists(vec!["X".into(), "Z".into()], Box::new(rel("a", &["X"])));
        let g = miniscope(&f);
        match &g {
            Formula::Exists(vs, _) => assert_eq!(vs, &vec!["X".to_string()]),
            other => panic!("{other}"),
        }
    }

    #[test]
    fn miniscope_preserves_free_vars() {
        let f = Formula::Exists(
            vec!["X".into()],
            Box::new(Formula::And(vec![
                rel("a", &["X", "W"]),
                Formula::not(rel("b", &["X"])),
                rel("c", &["W"]),
            ])),
        );
        let g = miniscope(&f);
        assert_eq!(g.free_vars(), f.free_vars());
    }
}
