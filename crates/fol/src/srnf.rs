//! Safe-range normal form (SRNF), per Appendix B.
//!
//! SRNF formulas have no universal quantifiers, no implications, and no
//! conjunction or disjunction directly below a negation sign. The
//! transformation applies the standard equivalences:
//!
//! * `∀x ψ ≡ ¬∃x ¬ψ`
//! * `¬¬ψ ≡ ψ`
//! * `¬(ψ1 ∨ … ∨ ψn) ≡ ¬ψ1 ∧ … ∧ ¬ψn`
//! * `¬(ψ1 ∧ … ∧ ψn) ≡ ¬ψ1 ∨ … ∨ ¬ψn`

use crate::formula::Formula;

/// Convert a formula to SRNF.
pub fn to_srnf(f: &Formula) -> Formula {
    match f {
        Formula::Rel(..) | Formula::Cmp(..) | Formula::True | Formula::False => f.clone(),
        Formula::And(fs) => Formula::and(fs.iter().map(to_srnf).collect()),
        Formula::Or(fs) => Formula::or(fs.iter().map(to_srnf).collect()),
        Formula::Exists(vars, inner) => Formula::exists(vars.clone(), to_srnf(inner)),
        Formula::Forall(vars, inner) => {
            // ∀x ψ ≡ ¬∃x ¬ψ
            to_srnf(&Formula::not(Formula::exists(
                vars.clone(),
                Formula::not((**inner).clone()),
            )))
        }
        Formula::Not(inner) => match &**inner {
            Formula::Not(g) => to_srnf(g),
            Formula::And(fs) => Formula::or(
                fs.iter()
                    .map(|g| to_srnf(&Formula::not(g.clone())))
                    .collect(),
            ),
            Formula::Or(fs) => Formula::and(
                fs.iter()
                    .map(|g| to_srnf(&Formula::not(g.clone())))
                    .collect(),
            ),
            Formula::Forall(vars, g) => {
                // ¬∀x ψ ≡ ∃x ¬ψ
                to_srnf(&Formula::exists(vars.clone(), Formula::not((**g).clone())))
            }
            Formula::True => Formula::False,
            Formula::False => Formula::True,
            _ => {
                let inner_srnf = to_srnf(inner);
                // The inner transformation may expose a new ∧/∨ at the top.
                match inner_srnf {
                    Formula::And(_) | Formula::Or(_) | Formula::Not(_) => {
                        to_srnf(&Formula::not(inner_srnf))
                    }
                    other => Formula::not(other),
                }
            }
        },
    }
}

/// Is the formula already in SRNF?
pub fn is_srnf(f: &Formula) -> bool {
    match f {
        Formula::Rel(..) | Formula::Cmp(..) | Formula::True | Formula::False => true,
        Formula::And(fs) | Formula::Or(fs) => fs.iter().all(is_srnf),
        Formula::Exists(_, inner) => is_srnf(inner),
        Formula::Forall(..) => false,
        Formula::Not(inner) => match &**inner {
            Formula::And(_) | Formula::Or(_) | Formula::Not(_) | Formula::Forall(..) => false,
            g => is_srnf(g),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use birds_datalog::{PredRef, Term};

    fn rel(name: &str, vars: &[&str]) -> Formula {
        Formula::Rel(
            PredRef::plain(name),
            vars.iter().map(|v| Term::var(*v)).collect(),
        )
    }

    #[test]
    fn forall_is_eliminated() {
        let f = Formula::Forall(vec!["X".into()], Box::new(rel("r", &["X"])));
        let g = to_srnf(&f);
        assert!(is_srnf(&g), "{g}");
        assert!(g.to_string().contains("¬(∃"));
    }

    #[test]
    fn de_morgan_under_negation() {
        let f = Formula::not(Formula::And(vec![rel("r", &["X"]), rel("s", &["X"])]));
        let g = to_srnf(&f);
        assert!(is_srnf(&g), "{g}");
        match g {
            Formula::Or(fs) => assert_eq!(fs.len(), 2),
            other => panic!("expected Or, got {other}"),
        }
    }

    #[test]
    fn double_negation_collapses() {
        let f = Formula::Not(Box::new(Formula::Not(Box::new(rel("r", &["X"])))));
        assert_eq!(to_srnf(&f), rel("r", &["X"]));
    }

    #[test]
    fn negated_exists_is_allowed() {
        let f = Formula::not(Formula::exists(vec!["Y".into()], rel("r", &["X", "Y"])));
        let g = to_srnf(&f);
        assert!(is_srnf(&g));
        assert_eq!(g, f);
    }

    #[test]
    fn nested_universal_in_conjunction() {
        let f = Formula::and(vec![
            rel("r", &["X"]),
            Formula::Forall(
                vec!["Y".into()],
                Box::new(Formula::or(vec![
                    Formula::not(rel("s", &["X", "Y"])),
                    rel("t", &["Y"]),
                ])),
            ),
        ]);
        let g = to_srnf(&f);
        assert!(is_srnf(&g), "{g}");
        assert_eq!(g.free_vars(), f.free_vars());
    }

    #[test]
    fn srnf_preserves_free_variables() {
        let f = Formula::not(Formula::And(vec![
            rel("r", &["X", "Y"]),
            Formula::not(rel("s", &["Y"])),
        ]));
        let g = to_srnf(&f);
        assert!(is_srnf(&g), "{g}");
        assert_eq!(g.free_vars(), f.free_vars());
    }
}
