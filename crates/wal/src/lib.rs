//! # birds-wal
//!
//! The durability subsystem: a write-ahead log plus snapshots, designed
//! around the service layer's commit structure.
//!
//! The service's group-commit epochs are natural WAL batch boundaries
//! (the durability/epoch coupling of Obladi, arXiv:1809.10559): every
//! committed epoch is one [`WalRecord`] — the member transactions'
//! commit sequence numbers plus the *net* per-view deltas the epoch
//! applied — appended to the owning shard's segment file **before** the
//! shard lock is released and the members' results are filled. Because
//! appends happen under the shard's write lock, each shard's log is in
//! application order by construction; because commit seqs are assigned
//! under the same locks, sorting all shards' records by first member
//! seq reproduces the global commit order exactly ([`recover`]).
//!
//! On disk, a data directory looks like:
//!
//! ```text
//! <data-dir>/
//!   snapshot.bin            # latest checkpoint: watermark + relation contents
//!   wal/
//!     shard-0000.000000.wal # CRC-framed records, rotated by size
//!     shard-0000.000001.wal
//!     shard-0001.000000.wal
//! ```
//!
//! * **Torn tails** — every record is length-prefixed and CRC32-checked
//!   (`birds_store::codec`); a crash mid-append leaves a tail that
//!   recovery detects, truncates, and never replays.
//! * **Fsync policy** ([`FsyncPolicy`]) — `always` syncs after every
//!   record, `epoch` once per commit epoch (one sync amortized over
//!   every transaction the epoch coalesced), `off` leaves flushing to
//!   the OS page cache (survives SIGKILL, not power loss).
//! * **Rotation** — a segment that crosses the configured size is
//!   closed and a numbered successor opened, so checkpoint truncation
//!   and future segment GC work at file granularity.
//! * **Checkpoints** — [`write_snapshot_file`] writes the snapshot to a
//!   temp file and renames it into place (atomic on every platform the
//!   tests run on), then the caller truncates the segments; a crash
//!   between the two steps is benign because recovery skips records at
//!   or below the snapshot's watermark.

pub mod error;
pub mod record;
pub mod recovery;
pub mod segment;
pub mod snapshot_file;

pub use error::{WalError, WalResult};
pub use record::{decode_view_defs, encode_view_defs, Registration, ViewDef, WalRecord};
pub use recovery::{recover, Recovery};
pub use segment::{SegmentWriter, DEFAULT_SEGMENT_BYTES, WAL_MAGIC};
pub use snapshot_file::{read_snapshot_file, write_snapshot_file, SNAPSHOT_FILE};

use std::fmt;
use std::str::FromStr;

/// When WAL appends are flushed to stable storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FsyncPolicy {
    /// Sync after every appended record. Strongest guarantee, one
    /// `fdatasync` per record.
    Always,
    /// Sync once per commit epoch, after the epoch's records are
    /// appended and before any member transaction learns it committed —
    /// the group-commit amortization: one sync covers every transaction
    /// the epoch coalesced. The default.
    #[default]
    Epoch,
    /// Never sync explicitly. Appends still reach the kernel page cache
    /// before a commit is acknowledged, so a SIGKILL of the process
    /// loses nothing; an OS crash or power failure can lose the
    /// unflushed tail (which recovery then discards cleanly via CRC).
    Off,
}

impl FsyncPolicy {
    /// Should each individual record append sync?
    pub fn sync_each_record(self) -> bool {
        matches!(self, FsyncPolicy::Always)
    }

    /// Should the end of an epoch sync (if no per-record sync ran)?
    pub fn sync_each_epoch(self) -> bool {
        matches!(self, FsyncPolicy::Always | FsyncPolicy::Epoch)
    }
}

impl FromStr for FsyncPolicy {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "always" => Ok(FsyncPolicy::Always),
            "epoch" => Ok(FsyncPolicy::Epoch),
            "off" => Ok(FsyncPolicy::Off),
            other => Err(format!(
                "unknown fsync policy '{other}' (expected always|epoch|off)"
            )),
        }
    }
}

impl fmt::Display for FsyncPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            FsyncPolicy::Always => "always",
            FsyncPolicy::Epoch => "epoch",
            FsyncPolicy::Off => "off",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fsync_policy_parses_and_displays() {
        for (text, policy) in [
            ("always", FsyncPolicy::Always),
            ("epoch", FsyncPolicy::Epoch),
            ("off", FsyncPolicy::Off),
        ] {
            assert_eq!(text.parse::<FsyncPolicy>().unwrap(), policy);
            assert_eq!(policy.to_string(), text);
        }
        assert!("sometimes".parse::<FsyncPolicy>().is_err());
        assert_eq!(FsyncPolicy::default(), FsyncPolicy::Epoch);
    }

    #[test]
    fn fsync_policy_sync_points() {
        assert!(FsyncPolicy::Always.sync_each_record());
        assert!(FsyncPolicy::Always.sync_each_epoch());
        assert!(!FsyncPolicy::Epoch.sync_each_record());
        assert!(FsyncPolicy::Epoch.sync_each_epoch());
        assert!(!FsyncPolicy::Off.sync_each_record());
        assert!(!FsyncPolicy::Off.sync_each_epoch());
    }
}
