//! Per-shard WAL segment files: append, rotate, scan, read.
//!
//! Each shard owns a series of numbered segment files under
//! `<data-dir>/wal/`, named `shard-SSSS.NNNNNN.wal`. Appends go to the
//! highest-numbered segment; when it crosses the configured size the
//! writer rotates to the next number. Every segment starts with a
//! versioned `"BWAL"` header; records are CRC-framed
//! (`birds_store::codec::write_record`), so a torn tail is detectable
//! and truncatable.

use crate::error::{WalError, WalResult};
use crate::record::WalRecord;
use crate::FsyncPolicy;
use birds_store::codec::{read_record, write_record, RecordRead, StreamHeader, MAX_RECORD_BYTES};
use std::fs::{File, OpenOptions};
use std::io::{BufReader, Seek, SeekFrom};
use std::path::{Path, PathBuf};

/// Magic tag of a WAL segment stream.
pub const WAL_MAGIC: [u8; 4] = *b"BWAL";

/// Default segment rotation threshold: 8 MiB.
pub const DEFAULT_SEGMENT_BYTES: u64 = 8 << 20;

/// The `wal/` directory under a data directory.
pub fn wal_dir(data_dir: &Path) -> PathBuf {
    data_dir.join("wal")
}

/// Segment file name for `(shard, seg)`.
fn segment_name(shard: usize, seg: u64) -> String {
    format!("shard-{shard:04}.{seg:06}.wal")
}

/// Parse a segment file name back into `(shard, seg)`.
fn parse_segment_name(name: &str) -> Option<(usize, u64)> {
    let rest = name.strip_prefix("shard-")?.strip_suffix(".wal")?;
    let (shard, seg) = rest.split_once('.')?;
    Some((shard.parse().ok()?, seg.parse().ok()?))
}

/// One segment file found on disk.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct SegmentInfo {
    /// Owning shard index.
    pub shard: usize,
    /// Segment number within the shard.
    pub seg: u64,
    /// Full path.
    pub path: PathBuf,
}

/// All segment files under `data_dir`, sorted by `(shard, seg)`.
pub fn scan_segments(data_dir: &Path) -> WalResult<Vec<SegmentInfo>> {
    let dir = wal_dir(data_dir);
    let mut out = Vec::new();
    let entries = match std::fs::read_dir(&dir) {
        Ok(entries) => entries,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(out),
        Err(e) => return Err(WalError::Io(e)),
    };
    for entry in entries {
        let entry = entry?;
        let name = entry.file_name();
        if let Some((shard, seg)) = name.to_str().and_then(parse_segment_name) {
            out.push(SegmentInfo {
                shard,
                seg,
                path: entry.path(),
            });
        }
    }
    out.sort();
    Ok(out)
}

/// What one segment file held.
#[derive(Debug)]
pub struct SegmentContents {
    /// Records with valid CRC, in file order.
    pub records: Vec<WalRecord>,
    /// Byte length of the valid prefix (header + intact records).
    pub valid_len: u64,
    /// `true` when bytes past `valid_len` existed — a torn tail.
    pub torn: bool,
}

/// Read one segment: every intact record plus the length of the valid
/// prefix. A missing or truncated *header* counts as a fully torn file
/// (`valid_len == 0`): the crash happened before the segment was
/// usable. A wrong magic or format version is an error — that is not a
/// torn tail but a foreign file.
pub fn read_segment(path: &Path) -> WalResult<SegmentContents> {
    let file = File::open(path)?;
    let file_len = file.metadata()?.len();
    let mut reader = BufReader::new(file);
    if file_len < StreamHeader::LEN {
        return Ok(SegmentContents {
            records: Vec::new(),
            valid_len: 0,
            torn: file_len > 0,
        });
    }
    StreamHeader::read(&mut reader, WAL_MAGIC)?;
    let mut records = Vec::new();
    let mut valid_len = StreamHeader::LEN;
    loop {
        match read_record(&mut reader)? {
            RecordRead::Payload(payload) => {
                records.push(WalRecord::decode(&payload)?);
                valid_len += 8 + payload.len() as u64;
            }
            RecordRead::Eof => {
                return Ok(SegmentContents {
                    records,
                    valid_len,
                    torn: false,
                });
            }
            RecordRead::Torn => {
                return Ok(SegmentContents {
                    records,
                    valid_len,
                    torn: true,
                });
            }
        }
    }
}

/// Best-effort directory sync: makes freshly created/renamed/removed
/// entries durable on filesystems that need it. Failures are ignored —
/// some platforms cannot sync directories, and the data-file syncs
/// still bound the loss to the fsync policy's contract.
pub fn sync_dir(dir: &Path) {
    if let Ok(handle) = File::open(dir) {
        let _ = handle.sync_all();
    }
}

/// Appender for one shard's segment series.
pub struct SegmentWriter {
    dir: PathBuf,
    shard: usize,
    seg: u64,
    file: File,
    /// Bytes written to the current segment so far.
    bytes: u64,
    segment_bytes: u64,
    /// Set once a write or sync has *failed*: the segment tail may hold
    /// partial garbage, so appending anything further would bury intact-
    /// looking records behind a torn region — records recovery would
    /// then silently discard (or refuse as corrupt). A sealed writer
    /// rejects every append until [`SegmentWriter::reset`] gives it a
    /// brand-new segment series.
    sealed: bool,
}

impl SegmentWriter {
    /// Open the writer for `shard`, continuing at the end of its
    /// highest-numbered existing segment (whose tail the caller — the
    /// recovery path — must already have truncated to its valid
    /// prefix), or starting segment 0. Creates the `wal/` directory as
    /// needed.
    pub fn open(data_dir: &Path, shard: usize, segment_bytes: u64) -> WalResult<SegmentWriter> {
        let dir = wal_dir(data_dir);
        std::fs::create_dir_all(&dir)?;
        let seg = scan_segments(data_dir)?
            .into_iter()
            .filter(|info| info.shard == shard)
            .map(|info| info.seg)
            .max();
        let (seg, path) = match seg {
            Some(seg) => (seg, dir.join(segment_name(shard, seg))),
            None => (0, dir.join(segment_name(shard, 0))),
        };
        let mut file = OpenOptions::new().create(true).append(true).open(&path)?;
        let mut bytes = file.seek(SeekFrom::End(0))?;
        if bytes < StreamHeader::LEN {
            // Fresh (or header-torn-and-truncated) segment: start clean.
            file.set_len(0)?;
            StreamHeader { magic: WAL_MAGIC }.write(&mut file)?;
            file.sync_all()?;
            sync_dir(&dir);
            bytes = StreamHeader::LEN;
        }
        Ok(SegmentWriter {
            dir,
            shard,
            seg,
            file,
            bytes,
            segment_bytes,
            sealed: false,
        })
    }

    /// Append one record, rotating to a fresh segment first when the
    /// current one has crossed the size threshold. Syncs per record only
    /// under [`FsyncPolicy::Always`]; epoch-level syncing is the
    /// caller's [`SegmentWriter::sync`] call.
    ///
    /// A failed write or sync **seals** the writer: the tail may be torn
    /// mid-file, and appending past it would put acknowledged records
    /// where recovery cannot reach them. Every subsequent append fails
    /// fast until a checkpoint [`SegmentWriter::reset`]s the series.
    /// (An oversized record is rejected *before* any byte is written
    /// and does not seal — nothing reached the file.)
    pub fn append(&mut self, record: &WalRecord, fsync: FsyncPolicy) -> WalResult<()> {
        if self.sealed {
            return Err(WalError::Corrupt(format!(
                "shard {} wal writer is sealed after an earlier append/sync \
                 failure; a checkpoint must reset the segment series",
                self.shard
            )));
        }
        let payload = record.encode();
        if payload.len() as u64 > u64::from(MAX_RECORD_BYTES) {
            return Err(WalError::Corrupt(format!(
                "record of {} bytes exceeds the {MAX_RECORD_BYTES}-byte framing cap",
                payload.len()
            )));
        }
        let result = (|| -> WalResult<()> {
            if self.bytes >= self.segment_bytes && self.bytes > StreamHeader::LEN {
                self.rotate()?;
            }
            write_record(&mut self.file, &payload)?;
            self.bytes += 8 + payload.len() as u64;
            if fsync.sync_each_record() {
                self.file.sync_data()?;
            }
            Ok(())
        })();
        if result.is_err() {
            self.sealed = true;
        }
        result
    }

    /// Flush the current segment to stable storage (`fdatasync`). A
    /// failure seals the writer (see [`SegmentWriter::append`]).
    pub fn sync(&mut self) -> WalResult<()> {
        if self.sealed {
            return Err(WalError::Corrupt(format!(
                "shard {} wal writer is sealed after an earlier append/sync failure",
                self.shard
            )));
        }
        if let Err(e) = self.file.sync_data() {
            self.sealed = true;
            return Err(WalError::Io(e));
        }
        Ok(())
    }

    /// Close the current segment (syncing it) and start the next one.
    fn rotate(&mut self) -> WalResult<()> {
        self.file.sync_data()?;
        self.seg += 1;
        let path = self.dir.join(segment_name(self.shard, self.seg));
        let mut file = OpenOptions::new()
            .create_new(true)
            .append(true)
            .open(&path)?;
        StreamHeader { magic: WAL_MAGIC }.write(&mut file)?;
        file.sync_all()?;
        sync_dir(&self.dir);
        self.file = file;
        self.bytes = StreamHeader::LEN;
        Ok(())
    }

    /// Close the current segment and start a fresh one, returning the
    /// paths of every now-closed segment of this shard — the lock-side
    /// half of a lock-free checkpoint: the caller pairs the rotation
    /// with the shard's published snapshot (under the shard lock), then
    /// deletes the returned files only after the new snapshot file has
    /// durably renamed in. Appends racing the checkpoint land in the
    /// fresh segment, which the checkpoint never deletes.
    ///
    /// A current segment with no records is not rotated (no churn), but
    /// older closed segments are still returned. Fails on a sealed
    /// writer — a sealed series may end in a torn record, and rotating
    /// would bury that tear behind a newer segment, turning a legal
    /// crash shape into reported corruption; the checkpoint path
    /// handles sealed writers with [`SegmentWriter::reset`] instead.
    pub fn rotate_for_checkpoint(&mut self) -> WalResult<Vec<PathBuf>> {
        if self.sealed {
            return Err(WalError::Corrupt(format!(
                "shard {} wal writer is sealed; reset the series instead of rotating",
                self.shard
            )));
        }
        if self.bytes > StreamHeader::LEN {
            if let Err(e) = self.rotate() {
                // The tail state is unknown (the pre-rotation sync may
                // have failed): seal, exactly like a failed append.
                self.sealed = true;
                return Err(e);
            }
        }
        let data_dir = self
            .dir
            .parent()
            .map(Path::to_path_buf)
            .unwrap_or_else(|| self.dir.clone());
        Ok(scan_segments(&data_dir)?
            .into_iter()
            .filter(|info| info.shard == self.shard && info.seg < self.seg)
            .map(|info| info.path)
            .collect())
    }

    /// Delete every segment of this shard and start a fresh series —
    /// the truncation half of a snapshot-then-truncate checkpoint on a
    /// **sealed** shard (no appender can race: a sealed writer rejects
    /// every append until this call). Healthy shards rotate instead
    /// ([`SegmentWriter::rotate_for_checkpoint`]), keeping their fresh
    /// tail. Unseals a writer sealed by an earlier failure: the damaged
    /// series is gone and the new segment starts clean.
    pub fn reset(&mut self) -> WalResult<()> {
        let data_dir = self
            .dir
            .parent()
            .map(Path::to_path_buf)
            .unwrap_or_else(|| self.dir.clone());
        for info in scan_segments(&data_dir)? {
            if info.shard == self.shard {
                std::fs::remove_file(&info.path)?;
            }
        }
        let path = self.dir.join(segment_name(self.shard, 0));
        let mut file = OpenOptions::new()
            .create_new(true)
            .append(true)
            .open(&path)?;
        StreamHeader { magic: WAL_MAGIC }.write(&mut file)?;
        file.sync_all()?;
        sync_dir(&self.dir);
        self.file = file;
        self.seg = 0;
        self.bytes = StreamHeader::LEN;
        self.sealed = false;
        Ok(())
    }

    /// Current segment number (diagnostics and rotation tests).
    pub fn current_segment(&self) -> u64 {
        self.seg
    }

    /// Has a write/sync failure sealed this writer? (Diagnostics; the
    /// service surfaces the sealed state as commit errors.)
    pub fn is_sealed(&self) -> bool {
        self.sealed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use birds_store::{tuple, Delta};

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "birds-wal-seg-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn record(seq: u64) -> WalRecord {
        let mut d = Delta::new();
        d.push_insert(tuple![seq as i64]);
        WalRecord::Commit {
            seqs: vec![seq],
            deltas: vec![("v".to_owned(), d)],
        }
    }

    #[test]
    fn append_reopen_append_reads_back_in_order() {
        let dir = temp_dir("reopen");
        {
            let mut w = SegmentWriter::open(&dir, 0, DEFAULT_SEGMENT_BYTES).unwrap();
            w.append(&record(1), FsyncPolicy::Always).unwrap();
            w.append(&record(2), FsyncPolicy::Off).unwrap();
            w.sync().unwrap();
        }
        {
            let mut w = SegmentWriter::open(&dir, 0, DEFAULT_SEGMENT_BYTES).unwrap();
            w.append(&record(3), FsyncPolicy::Epoch).unwrap();
            w.sync().unwrap();
        }
        let segments = scan_segments(&dir).unwrap();
        assert_eq!(segments.len(), 1);
        let contents = read_segment(&segments[0].path).unwrap();
        assert!(!contents.torn);
        let seqs: Vec<u64> = contents.records.iter().map(WalRecord::first_seq).collect();
        assert_eq!(seqs, vec![1, 2, 3]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rotation_splits_the_series_and_scan_orders_it() {
        let dir = temp_dir("rotate");
        let mut w = SegmentWriter::open(&dir, 2, 64).unwrap(); // tiny threshold
        for seq in 1..=6 {
            w.append(&record(seq), FsyncPolicy::Off).unwrap();
        }
        w.sync().unwrap();
        assert!(w.current_segment() >= 1, "rotation happened");
        let segments = scan_segments(&dir).unwrap();
        assert!(segments.len() >= 2);
        assert!(segments.windows(2).all(|p| p[0].seg < p[1].seg));
        let mut seqs = Vec::new();
        for info in &segments {
            assert_eq!(info.shard, 2);
            let contents = read_segment(&info.path).unwrap();
            assert!(!contents.torn);
            seqs.extend(contents.records.iter().map(WalRecord::first_seq));
        }
        assert_eq!(seqs, vec![1, 2, 3, 4, 5, 6]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_detected_and_valid_prefix_preserved() {
        let dir = temp_dir("torn");
        let mut w = SegmentWriter::open(&dir, 0, DEFAULT_SEGMENT_BYTES).unwrap();
        w.append(&record(1), FsyncPolicy::Always).unwrap();
        w.append(&record(2), FsyncPolicy::Always).unwrap();
        drop(w);
        let path = scan_segments(&dir).unwrap()[0].path.clone();
        let original = std::fs::read(&path).unwrap();
        let full = original.len() as u64;
        let intact = read_segment(&path).unwrap();
        assert_eq!(intact.valid_len, full);

        // Locate the end of the first record so cuts land inside the
        // second one.
        let first_record_end = {
            let mut r = &original[StreamHeader::LEN as usize..];
            let before = r.len();
            let RecordRead::Payload(p) = read_record(&mut r).unwrap() else {
                panic!("first record intact");
            };
            assert_eq!(before - r.len(), 8 + p.len());
            StreamHeader::LEN + (before - r.len()) as u64
        };
        // Tear the tail at every byte boundary inside the last record:
        // recovery must always keep exactly the first record.
        for cut in first_record_end + 1..full {
            std::fs::write(&path, &original[..cut as usize]).unwrap();
            let contents = read_segment(&path).unwrap();
            assert!(contents.torn, "cut at {cut}");
            assert_eq!(contents.records.len(), 1, "cut at {cut}");
            assert_eq!(contents.valid_len, first_record_end, "cut at {cut}");
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn header_torn_file_reads_as_empty() {
        let dir = temp_dir("header");
        std::fs::create_dir_all(wal_dir(&dir)).unwrap();
        let path = wal_dir(&dir).join(segment_name(0, 0));
        std::fs::write(&path, b"BW").unwrap(); // crash mid-header
        let contents = read_segment(&path).unwrap();
        assert!(contents.torn);
        assert_eq!(contents.valid_len, 0);
        assert!(contents.records.is_empty());
        // The writer re-initializes it.
        let mut w = SegmentWriter::open(&dir, 0, DEFAULT_SEGMENT_BYTES).unwrap();
        w.append(&record(9), FsyncPolicy::Always).unwrap();
        drop(w);
        let contents = read_segment(&path).unwrap();
        assert!(!contents.torn);
        assert_eq!(contents.records.len(), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checkpoint_rotation_closes_the_series_and_keeps_appending() {
        let dir = temp_dir("ckpt-rotate");
        let mut w = SegmentWriter::open(&dir, 1, DEFAULT_SEGMENT_BYTES).unwrap();
        w.append(&record(1), FsyncPolicy::Always).unwrap();
        w.append(&record(2), FsyncPolicy::Always).unwrap();
        let closed = w.rotate_for_checkpoint().unwrap();
        assert_eq!(closed.len(), 1, "one closed segment");
        assert_eq!(w.current_segment(), 1);
        // The closed segment holds the pre-rotation records, intact.
        let contents = read_segment(&closed[0]).unwrap();
        assert!(!contents.torn);
        assert_eq!(contents.records.len(), 2);
        // Appends continue in the fresh segment; deleting the closed
        // one (the checkpoint's phase 3) leaves a clean series.
        w.append(&record(3), FsyncPolicy::Always).unwrap();
        std::fs::remove_file(&closed[0]).unwrap();
        let segments = scan_segments(&dir).unwrap();
        assert_eq!(segments.len(), 1);
        let contents = read_segment(&segments[0].path).unwrap();
        assert_eq!(contents.records.len(), 1);
        assert_eq!(contents.records[0].first_seq(), 3);
        // Record 3 makes the tail non-empty, so the next checkpoint
        // rotation closes it too.
        let closed = w.rotate_for_checkpoint().unwrap();
        assert_eq!(w.current_segment(), 2);
        assert_eq!(closed.len(), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checkpoint_rotation_skips_empty_tail_but_returns_older_segments() {
        let dir = temp_dir("ckpt-empty");
        let mut w = SegmentWriter::open(&dir, 0, 64).unwrap(); // tiny threshold
        for seq in 1..=6 {
            w.append(&record(seq), FsyncPolicy::Off).unwrap();
        }
        let first = w.rotate_for_checkpoint().unwrap();
        assert!(!first.is_empty());
        let seg_after_first = w.current_segment();
        // Until phase 3 deletes them, closed segments are handed back
        // again — a checkpoint that crashed mid-delete retries cleanly.
        let retry = w.rotate_for_checkpoint().unwrap();
        assert_eq!(retry, first);
        // After deletion, a rotation with an empty tail is a no-op: no
        // new segment, nothing older to hand back.
        for path in &first {
            std::fs::remove_file(path).unwrap();
        }
        let second = w.rotate_for_checkpoint().unwrap();
        assert_eq!(w.current_segment(), seg_after_first);
        assert!(second.is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn sealed_writer_refuses_checkpoint_rotation() {
        let dir = temp_dir("ckpt-sealed");
        let mut w = SegmentWriter::open(&dir, 0, DEFAULT_SEGMENT_BYTES).unwrap();
        w.append(&record(1), FsyncPolicy::Always).unwrap();
        w.sealed = true;
        assert!(matches!(
            w.rotate_for_checkpoint(),
            Err(WalError::Corrupt(_))
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn reset_clears_the_series() {
        let dir = temp_dir("reset");
        let mut w = SegmentWriter::open(&dir, 0, 64).unwrap();
        for seq in 1..=6 {
            w.append(&record(seq), FsyncPolicy::Off).unwrap();
        }
        assert!(scan_segments(&dir).unwrap().len() >= 2);
        w.reset().unwrap();
        let segments = scan_segments(&dir).unwrap();
        assert_eq!(segments.len(), 1);
        assert_eq!(segments[0].seg, 0);
        assert!(read_segment(&segments[0].path).unwrap().records.is_empty());
        // Still appendable after reset.
        w.append(&record(7), FsyncPolicy::Always).unwrap();
        drop(w);
        let contents = read_segment(&segments[0].path).unwrap();
        assert_eq!(contents.records.len(), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn sealed_writer_rejects_appends_until_reset() {
        let dir = temp_dir("sealed");
        let mut w = SegmentWriter::open(&dir, 0, DEFAULT_SEGMENT_BYTES).unwrap();
        w.append(&record(1), FsyncPolicy::Always).unwrap();
        assert!(!w.is_sealed());
        // Simulate the aftermath of a failed write: the tail may be
        // torn, so the writer must refuse to bury further records
        // behind it.
        w.sealed = true;
        assert!(matches!(
            w.append(&record(2), FsyncPolicy::Off),
            Err(WalError::Corrupt(_))
        ));
        assert!(matches!(w.sync(), Err(WalError::Corrupt(_))));
        // A checkpoint reset rebuilds the series and unseals.
        w.reset().unwrap();
        assert!(!w.is_sealed());
        w.append(&record(3), FsyncPolicy::Always).unwrap();
        let segments = scan_segments(&dir).unwrap();
        assert_eq!(segments.len(), 1);
        let contents = read_segment(&segments[0].path).unwrap();
        assert_eq!(contents.records.len(), 1);
        assert_eq!(contents.records[0].first_seq(), 3);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn segment_names_round_trip() {
        assert_eq!(parse_segment_name("shard-0003.000042.wal"), Some((3, 42)));
        assert_eq!(
            parse_segment_name(&segment_name(17, 123456)),
            Some((17, 123456))
        );
        assert_eq!(parse_segment_name("snapshot.bin"), None);
        assert_eq!(parse_segment_name("shard-x.1.wal"), None);
    }
}
