//! WAL errors.

use birds_store::codec::CodecError;
use std::fmt;

/// Result alias for WAL operations.
pub type WalResult<T> = Result<T, WalError>;

/// Errors raised by the durability subsystem.
#[derive(Debug)]
pub enum WalError {
    /// The filesystem failed underneath us.
    Io(std::io::Error),
    /// A stream failed to decode (bad magic, version, or payload).
    Codec(CodecError),
    /// The on-disk state is structurally inconsistent in a way recovery
    /// refuses to paper over (e.g. a torn record *followed by* later
    /// segments of the same shard — a crash can only tear the tail).
    Corrupt(String),
}

impl fmt::Display for WalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WalError::Io(e) => write!(f, "wal io error: {e}"),
            WalError::Codec(e) => write!(f, "wal codec error: {e}"),
            WalError::Corrupt(m) => write!(f, "wal corrupt: {m}"),
        }
    }
}

impl std::error::Error for WalError {}

impl From<std::io::Error> for WalError {
    fn from(e: std::io::Error) -> Self {
        WalError::Io(e)
    }
}

impl From<CodecError> for WalError {
    fn from(e: CodecError) -> Self {
        WalError::Codec(e)
    }
}
