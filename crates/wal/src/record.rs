//! WAL records: one committed epoch each.
//!
//! A record carries the epoch's member commit sequence numbers and the
//! net per-view deltas the epoch applied, in application order. Replay
//! re-derives everything else (source deltas, cascades, constraint
//! effects) by re-running each delta through the engine's deterministic
//! `apply_delta` path — the log stores *intent at the view boundary*,
//! exactly the "commit sequence + net batch deltas" replay log the
//! service's commit structure already produces.

use crate::error::{WalError, WalResult};
use birds_store::codec::{self, Cursor};
use birds_store::Delta;

/// One durable commit epoch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalRecord {
    /// Member transactions' commit sequence numbers, ascending. A
    /// session batch commit has exactly one; a group-commit epoch has
    /// one per coalesced transaction.
    pub seqs: Vec<u64>,
    /// `(view, net delta)` in application order. Order matters: a later
    /// view's delta was derived against the state *after* the earlier
    /// ones (including their cascades), so replay must preserve it.
    pub deltas: Vec<(String, Delta)>,
}

impl WalRecord {
    /// The first (lowest) member seq — the global replay sort key.
    /// Sound because seqs are assigned while the record's shard locks
    /// are held: two records touching any common shard have disjoint,
    /// ordered seq ranges, and records on disjoint shards commute.
    pub fn first_seq(&self) -> u64 {
        self.seqs.first().copied().unwrap_or(0)
    }

    /// The last (highest) member seq.
    pub fn last_seq(&self) -> u64 {
        self.seqs.last().copied().unwrap_or(0)
    }

    /// Encode to the framed-record payload format.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        codec::put_u32(&mut buf, self.seqs.len() as u32);
        for seq in &self.seqs {
            codec::put_u64(&mut buf, *seq);
        }
        codec::put_u32(&mut buf, self.deltas.len() as u32);
        for (view, delta) in &self.deltas {
            codec::put_str(&mut buf, view);
            codec::put_delta(&mut buf, delta);
        }
        buf
    }

    /// Decode from a framed-record payload.
    pub fn decode(payload: &[u8]) -> WalResult<WalRecord> {
        let mut cur = Cursor::new(payload);
        let seq_count = cur.get_u32()? as usize;
        let mut seqs = Vec::with_capacity(seq_count);
        for _ in 0..seq_count {
            seqs.push(cur.get_u64()?);
        }
        let delta_count = cur.get_u32()? as usize;
        let mut deltas = Vec::with_capacity(delta_count);
        for _ in 0..delta_count {
            let view = cur.get_str()?.to_owned();
            let delta = codec::get_delta(&mut cur)?;
            deltas.push((view, delta));
        }
        if !cur.is_exhausted() {
            return Err(WalError::Corrupt(format!(
                "{} trailing bytes after record",
                cur.remaining()
            )));
        }
        Ok(WalRecord { seqs, deltas })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use birds_store::tuple;

    fn sample() -> WalRecord {
        let mut d1 = Delta::new();
        d1.push_insert(tuple![1, "a"]);
        d1.push_delete(tuple![2, "b"]);
        let mut d2 = Delta::new();
        d2.push_insert(tuple![3]);
        WalRecord {
            seqs: vec![4, 5, 9],
            deltas: vec![("v".to_owned(), d1), ("w".to_owned(), d2)],
        }
    }

    #[test]
    fn records_round_trip() {
        let record = sample();
        let decoded = WalRecord::decode(&record.encode()).unwrap();
        assert_eq!(decoded, record);
        assert_eq!(decoded.first_seq(), 4);
        assert_eq!(decoded.last_seq(), 9);
    }

    #[test]
    fn empty_record_round_trips() {
        let record = WalRecord {
            seqs: vec![],
            deltas: vec![],
        };
        assert_eq!(WalRecord::decode(&record.encode()).unwrap(), record);
        assert_eq!(record.first_seq(), 0);
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = sample().encode();
        bytes.push(0);
        assert!(matches!(
            WalRecord::decode(&bytes),
            Err(WalError::Corrupt(_))
        ));
    }

    #[test]
    fn truncated_payloads_are_rejected() {
        let bytes = sample().encode();
        for cut in [1, bytes.len() / 2, bytes.len() - 1] {
            assert!(WalRecord::decode(&bytes[..cut]).is_err(), "cut at {cut}");
        }
    }
}
