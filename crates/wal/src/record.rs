//! WAL records: committed epochs plus topology changes.
//!
//! The log interleaves three record kinds, distinguished by a leading
//! kind byte:
//!
//! * [`WalRecord::Commit`] — one committed epoch: the member
//!   transactions' commit sequence numbers and the net per-view deltas
//!   the epoch applied, in application order. Replay re-derives
//!   everything else (source deltas, cascades, constraint effects) by
//!   re-running each delta through the engine's deterministic
//!   `apply_delta` path — the log stores *intent at the view boundary*.
//! * [`WalRecord::Register`] — a runtime view registration: the
//!   complete, self-contained [`ViewDef`] (schemas + program texts)
//!   tagged with the commit seq the registration consumed. Replay
//!   re-registers the view before applying any later commit through it.
//! * [`WalRecord::Unregister`] — the inverse: drop the named view.
//!
//! Registrations and unregistrations take a commit seq from the same
//! global counter as transactions, assigned while every affected
//! shard's write lock is held — so sorting all shards' records by
//! [`WalRecord::first_seq`] reproduces the exact interleaving of
//! topology changes and commits ([`crate::recover`]).

use crate::error::{WalError, WalResult};
use birds_store::codec::{self, Cursor};
use birds_store::{Attribute, Delta, Schema, ValueSort};

/// A registered view reduced to what a fresh engine needs to
/// re-register it: relation schemas plus the Datalog program *texts*
/// (`Display` round-trips through the parser, so text is the canonical
/// serialization). The WAL logs one per runtime registration; a
/// checkpoint's snapshot file carries the full live set as a manifest
/// (see [`encode_view_defs`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ViewDef {
    /// Schemas of the strategy's source relations, in declaration order.
    pub sources: Vec<Schema>,
    /// Schema of the view relation.
    pub view: Schema,
    /// Putback program source.
    pub putdelta: String,
    /// Expected get the strategy was registered with, if any.
    pub expected_get: Option<String>,
    /// The get program the view was materialized from.
    pub get: String,
    /// `true` when the strategy runs its incrementalized program.
    pub incremental: bool,
}

/// A runtime registration event: the definition plus the commit seq it
/// consumed. Boxed inside [`WalRecord::Register`] to keep the enum
/// small for the common `Commit` case.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Registration {
    /// The registration's position in the global commit order.
    pub seq: u64,
    /// The complete view definition.
    pub def: ViewDef,
}

/// One durable WAL record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalRecord {
    /// One committed epoch.
    Commit {
        /// Member transactions' commit sequence numbers, ascending. A
        /// session batch commit has exactly one; a group-commit epoch
        /// has one per coalesced transaction.
        seqs: Vec<u64>,
        /// `(view, net delta)` in application order. Order matters: a
        /// later view's delta was derived against the state *after* the
        /// earlier ones (including their cascades), so replay must
        /// preserve it.
        deltas: Vec<(String, Delta)>,
    },
    /// A runtime view registration.
    Register(Box<Registration>),
    /// A runtime view deregistration.
    Unregister {
        /// The deregistration's position in the global commit order.
        seq: u64,
        /// Name of the dropped view.
        view: String,
    },
}

const KIND_COMMIT: u8 = 0;
const KIND_REGISTER: u8 = 1;
const KIND_UNREGISTER: u8 = 2;

impl WalRecord {
    /// The first (lowest) member seq — the global replay sort key.
    /// Sound because seqs are assigned while the record's shard locks
    /// are held: two records touching any common shard have disjoint,
    /// ordered seq ranges, and records on disjoint shards commute.
    pub fn first_seq(&self) -> u64 {
        match self {
            WalRecord::Commit { seqs, .. } => seqs.first().copied().unwrap_or(0),
            WalRecord::Register(reg) => reg.seq,
            WalRecord::Unregister { seq, .. } => *seq,
        }
    }

    /// The last (highest) member seq.
    pub fn last_seq(&self) -> u64 {
        match self {
            WalRecord::Commit { seqs, .. } => seqs.last().copied().unwrap_or(0),
            WalRecord::Register(reg) => reg.seq,
            WalRecord::Unregister { seq, .. } => *seq,
        }
    }

    /// Encode to the framed-record payload format.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        match self {
            WalRecord::Commit { seqs, deltas } => {
                codec::put_u8(&mut buf, KIND_COMMIT);
                codec::put_u32(&mut buf, seqs.len() as u32);
                for seq in seqs {
                    codec::put_u64(&mut buf, *seq);
                }
                codec::put_u32(&mut buf, deltas.len() as u32);
                for (view, delta) in deltas {
                    codec::put_str(&mut buf, view);
                    codec::put_delta(&mut buf, delta);
                }
            }
            WalRecord::Register(reg) => {
                codec::put_u8(&mut buf, KIND_REGISTER);
                codec::put_u64(&mut buf, reg.seq);
                put_view_def(&mut buf, &reg.def);
            }
            WalRecord::Unregister { seq, view } => {
                codec::put_u8(&mut buf, KIND_UNREGISTER);
                codec::put_u64(&mut buf, *seq);
                codec::put_str(&mut buf, view);
            }
        }
        buf
    }

    /// Decode from a framed-record payload.
    pub fn decode(payload: &[u8]) -> WalResult<WalRecord> {
        let mut cur = Cursor::new(payload);
        let record = match cur.get_u8()? {
            KIND_COMMIT => {
                let seq_count = cur.get_u32()? as usize;
                let mut seqs = Vec::with_capacity(seq_count);
                for _ in 0..seq_count {
                    seqs.push(cur.get_u64()?);
                }
                let delta_count = cur.get_u32()? as usize;
                let mut deltas = Vec::with_capacity(delta_count);
                for _ in 0..delta_count {
                    let view = cur.get_str()?.to_owned();
                    let delta = codec::get_delta(&mut cur)?;
                    deltas.push((view, delta));
                }
                WalRecord::Commit { seqs, deltas }
            }
            KIND_REGISTER => {
                let seq = cur.get_u64()?;
                let def = get_view_def(&mut cur)?;
                WalRecord::Register(Box::new(Registration { seq, def }))
            }
            KIND_UNREGISTER => {
                let seq = cur.get_u64()?;
                let view = cur.get_str()?.to_owned();
                WalRecord::Unregister { seq, view }
            }
            kind => {
                return Err(WalError::Corrupt(format!("unknown record kind {kind}")));
            }
        };
        if !cur.is_exhausted() {
            return Err(WalError::Corrupt(format!(
                "{} trailing bytes after record",
                cur.remaining()
            )));
        }
        Ok(record)
    }
}

fn sort_tag(sort: ValueSort) -> u8 {
    match sort {
        ValueSort::Int => 0,
        ValueSort::Float => 1,
        ValueSort::Str => 2,
        ValueSort::Bool => 3,
    }
}

fn sort_from_tag(tag: u8) -> WalResult<ValueSort> {
    Ok(match tag {
        0 => ValueSort::Int,
        1 => ValueSort::Float,
        2 => ValueSort::Str,
        3 => ValueSort::Bool,
        _ => return Err(WalError::Corrupt(format!("unknown sort tag {tag}"))),
    })
}

fn put_schema(buf: &mut Vec<u8>, schema: &Schema) {
    codec::put_str(buf, &schema.name);
    codec::put_u32(buf, schema.attributes.len() as u32);
    for attr in &schema.attributes {
        codec::put_str(buf, &attr.name);
        codec::put_u8(buf, sort_tag(attr.sort));
    }
}

fn get_schema(cur: &mut Cursor<'_>) -> WalResult<Schema> {
    let name = cur.get_str()?.to_owned();
    let attr_count = cur.get_u32()? as usize;
    let mut attributes = Vec::with_capacity(attr_count);
    for _ in 0..attr_count {
        let attr_name = cur.get_str()?.to_owned();
        let sort = sort_from_tag(cur.get_u8()?)?;
        attributes.push(Attribute {
            name: attr_name,
            sort,
        });
    }
    Ok(Schema { name, attributes })
}

fn put_view_def(buf: &mut Vec<u8>, def: &ViewDef) {
    codec::put_u32(buf, def.sources.len() as u32);
    for schema in &def.sources {
        put_schema(buf, schema);
    }
    put_schema(buf, &def.view);
    codec::put_str(buf, &def.putdelta);
    match &def.expected_get {
        Some(text) => {
            codec::put_u8(buf, 1);
            codec::put_str(buf, text);
        }
        None => codec::put_u8(buf, 0),
    }
    codec::put_str(buf, &def.get);
    codec::put_u8(buf, def.incremental as u8);
}

fn get_view_def(cur: &mut Cursor<'_>) -> WalResult<ViewDef> {
    let source_count = cur.get_u32()? as usize;
    let mut sources = Vec::with_capacity(source_count);
    for _ in 0..source_count {
        sources.push(get_schema(cur)?);
    }
    let view = get_schema(cur)?;
    let putdelta = cur.get_str()?.to_owned();
    let expected_get = match cur.get_u8()? {
        0 => None,
        1 => Some(cur.get_str()?.to_owned()),
        tag => {
            return Err(WalError::Corrupt(format!(
                "bad expected-get presence tag {tag}"
            )))
        }
    };
    let get = cur.get_str()?.to_owned();
    let incremental = match cur.get_u8()? {
        0 => false,
        1 => true,
        tag => return Err(WalError::Corrupt(format!("bad incremental flag {tag}"))),
    };
    Ok(ViewDef {
        sources,
        view,
        putdelta,
        expected_get,
        get,
        incremental,
    })
}

/// Encode a checkpoint's **registration manifest**: the live view
/// definitions, in dependency order (cascade targets first). Written as
/// the prefix of the snapshot file's body, ahead of the engine's
/// relation-contents stream.
pub fn encode_view_defs(defs: &[ViewDef]) -> Vec<u8> {
    let mut buf = Vec::new();
    codec::put_u32(&mut buf, defs.len() as u32);
    for def in defs {
        put_view_def(&mut buf, def);
    }
    buf
}

/// Decode a registration manifest from the front of a snapshot body.
/// Returns the definitions plus the number of bytes consumed — the
/// remainder of the body is the engine's relation-contents stream.
pub fn decode_view_defs(bytes: &[u8]) -> WalResult<(Vec<ViewDef>, usize)> {
    let mut cur = Cursor::new(bytes);
    let count = cur.get_u32()? as usize;
    let mut defs = Vec::with_capacity(count);
    for _ in 0..count {
        defs.push(get_view_def(&mut cur)?);
    }
    let consumed = bytes.len() - cur.remaining();
    Ok((defs, consumed))
}

#[cfg(test)]
mod tests {
    use super::*;
    use birds_store::tuple;

    fn sample() -> WalRecord {
        let mut d1 = Delta::new();
        d1.push_insert(tuple![1, "a"]);
        d1.push_delete(tuple![2, "b"]);
        let mut d2 = Delta::new();
        d2.push_insert(tuple![3]);
        WalRecord::Commit {
            seqs: vec![4, 5, 9],
            deltas: vec![("v".to_owned(), d1), ("w".to_owned(), d2)],
        }
    }

    fn sample_def() -> ViewDef {
        ViewDef {
            sources: vec![
                Schema::new("r1", vec![("a", ValueSort::Int)]),
                Schema::new("r2", vec![("a", ValueSort::Int), ("b", ValueSort::Str)]),
            ],
            view: Schema::new("v", vec![("a", ValueSort::Int)]),
            putdelta: "-r1(X) :- r1(X), not v(X).".to_owned(),
            expected_get: Some("v(X) :- r1(X).".to_owned()),
            get: "v(X) :- r1(X).".to_owned(),
            incremental: true,
        }
    }

    #[test]
    fn commit_records_round_trip() {
        let record = sample();
        let decoded = WalRecord::decode(&record.encode()).unwrap();
        assert_eq!(decoded, record);
        assert_eq!(decoded.first_seq(), 4);
        assert_eq!(decoded.last_seq(), 9);
    }

    #[test]
    fn register_records_round_trip() {
        let record = WalRecord::Register(Box::new(Registration {
            seq: 17,
            def: sample_def(),
        }));
        let decoded = WalRecord::decode(&record.encode()).unwrap();
        assert_eq!(decoded, record);
        assert_eq!(decoded.first_seq(), 17);
        assert_eq!(decoded.last_seq(), 17);
    }

    #[test]
    fn unregister_records_round_trip() {
        let record = WalRecord::Unregister {
            seq: 23,
            view: "v".to_owned(),
        };
        let decoded = WalRecord::decode(&record.encode()).unwrap();
        assert_eq!(decoded, record);
        assert_eq!(decoded.first_seq(), 23);
    }

    #[test]
    fn empty_record_round_trips() {
        let record = WalRecord::Commit {
            seqs: vec![],
            deltas: vec![],
        };
        assert_eq!(WalRecord::decode(&record.encode()).unwrap(), record);
        assert_eq!(record.first_seq(), 0);
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = sample().encode();
        bytes.push(0);
        assert!(matches!(
            WalRecord::decode(&bytes),
            Err(WalError::Corrupt(_))
        ));
    }

    #[test]
    fn unknown_kinds_are_rejected() {
        assert!(matches!(
            WalRecord::decode(&[9, 0, 0, 0, 0]),
            Err(WalError::Corrupt(_))
        ));
    }

    #[test]
    fn truncated_payloads_are_rejected() {
        for record in [
            sample(),
            WalRecord::Register(Box::new(Registration {
                seq: 1,
                def: sample_def(),
            })),
        ] {
            let bytes = record.encode();
            for cut in [1, bytes.len() / 2, bytes.len() - 1] {
                assert!(WalRecord::decode(&bytes[..cut]).is_err(), "cut at {cut}");
            }
        }
    }

    #[test]
    fn manifests_round_trip_with_a_trailing_stream() {
        let defs = vec![sample_def(), {
            let mut d = sample_def();
            d.view.name = "w".to_owned();
            d.expected_get = None;
            d.incremental = false;
            d
        }];
        let mut bytes = encode_view_defs(&defs);
        let manifest_len = bytes.len();
        bytes.extend_from_slice(b"ENGINE-SNAPSHOT-STREAM");
        let (decoded, consumed) = decode_view_defs(&bytes).unwrap();
        assert_eq!(decoded, defs);
        assert_eq!(consumed, manifest_len);
        assert_eq!(&bytes[consumed..], b"ENGINE-SNAPSHOT-STREAM");
    }
}
