//! The checkpoint snapshot file: `<data-dir>/snapshot.bin`.
//!
//! Layout: `"BSNF"` header (`birds_store::codec::StreamHeader`) · `u64`
//! watermark (the commit seq the snapshot includes everything up to,
//! inclusive) · an opaque body the caller writes (the engine snapshot
//! stream, itself versioned and CRC-framed).
//!
//! The file is written to a temp name and renamed into place, so a
//! crash mid-checkpoint leaves the previous snapshot intact — and
//! because WAL truncation happens only *after* the rename, a crash
//! between the two steps merely leaves records at or below the new
//! watermark lying around, which recovery filters out by seq.

use crate::error::{WalError, WalResult};
use birds_store::codec::StreamHeader;
use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Snapshot file name under the data directory.
pub const SNAPSHOT_FILE: &str = "snapshot.bin";

/// Magic tag of the snapshot *file* wrapper (the body carries its own
/// engine-snapshot magic).
pub const SNAPSHOT_FILE_MAGIC: [u8; 4] = *b"BSNF";

/// Atomically (re)write the snapshot file: temp + fsync + rename +
/// directory sync. `body` writes the engine snapshot stream.
pub fn write_snapshot_file(
    data_dir: &Path,
    watermark: u64,
    body: impl FnOnce(&mut dyn Write) -> std::io::Result<()>,
) -> WalResult<()> {
    std::fs::create_dir_all(data_dir)?;
    let tmp = data_dir.join(format!(".{SNAPSHOT_FILE}.tmp.{}", std::process::id()));
    let result = (|| -> WalResult<()> {
        let mut w = BufWriter::new(File::create(&tmp)?);
        StreamHeader {
            magic: SNAPSHOT_FILE_MAGIC,
        }
        .write(&mut w)?;
        w.write_all(&watermark.to_le_bytes())?;
        body(&mut w)?;
        let file = w
            .into_inner()
            .map_err(|e| WalError::Io(std::io::Error::other(e.to_string())))?;
        file.sync_all()?;
        std::fs::rename(&tmp, data_dir.join(SNAPSHOT_FILE))?;
        crate::segment::sync_dir(data_dir);
        Ok(())
    })();
    if result.is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
    result
}

/// Open the snapshot file, if one exists: `(watermark, body reader)`.
/// The reader is positioned at the start of the engine snapshot stream.
pub fn read_snapshot_file(data_dir: &Path) -> WalResult<Option<(u64, impl Read)>> {
    let path = data_dir.join(SNAPSHOT_FILE);
    let file = match File::open(&path) {
        Ok(file) => file,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(WalError::Io(e)),
    };
    let mut reader = BufReader::new(file);
    StreamHeader::read(&mut reader, SNAPSHOT_FILE_MAGIC)?;
    let mut watermark = [0u8; 8];
    reader.read_exact(&mut watermark)?;
    Ok(Some((u64::from_le_bytes(watermark), reader)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "birds-wal-snap-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn round_trips_watermark_and_body() {
        let dir = temp_dir("rt");
        write_snapshot_file(&dir, 42, |w| w.write_all(b"engine bytes")).unwrap();
        let (watermark, mut body) = read_snapshot_file(&dir).unwrap().unwrap();
        assert_eq!(watermark, 42);
        let mut bytes = Vec::new();
        body.read_to_end(&mut bytes).unwrap();
        assert_eq!(bytes, b"engine bytes");
        // Rewriting replaces.
        write_snapshot_file(&dir, 99, |w| w.write_all(b"newer")).unwrap();
        let (watermark, _) = read_snapshot_file(&dir).unwrap().unwrap();
        assert_eq!(watermark, 99);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_snapshot_is_none() {
        let dir = temp_dir("none");
        assert!(read_snapshot_file(&dir).unwrap().is_none());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn failed_body_leaves_no_droppings_and_keeps_previous() {
        let dir = temp_dir("fail");
        write_snapshot_file(&dir, 7, |w| w.write_all(b"good")).unwrap();
        let result = write_snapshot_file(&dir, 8, |_| {
            Err(std::io::Error::other("engine snapshot failed"))
        });
        assert!(result.is_err());
        let (watermark, _) = read_snapshot_file(&dir).unwrap().unwrap();
        assert_eq!(watermark, 7, "previous snapshot intact");
        let droppings: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp."))
            .collect();
        assert!(droppings.is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
