//! Crash recovery: scan a data directory into a replayable state.
//!
//! Recovery merges the per-shard logs into one globally ordered record
//! stream:
//!
//! 1. read the snapshot file (if any) — its watermark is the commit seq
//!    everything at or below which is already captured;
//! 2. read every shard's segments in order, truncating a torn tail on
//!    the *last* segment of a shard (the only place a crash can tear) —
//!    a torn record followed by later segments or records is refused as
//!    corruption rather than silently skipped;
//! 3. drop records whose first seq is at or below the watermark (the
//!    leftovers of a checkpoint that crashed between snapshot rename
//!    and truncation);
//! 4. sort the survivors by first member seq — commit seqs are assigned
//!    under the shard locks the commit holds, so this ordering agrees
//!    with every shard's application order and *is* the global commit
//!    order.
//!
//! The caller (the service) then restores the snapshot into its engine
//! and replays each record's deltas through the deterministic
//! `apply_delta` path.

use crate::error::{WalError, WalResult};
use crate::record::WalRecord;
use crate::segment::{read_segment, scan_segments};
use crate::snapshot_file::read_snapshot_file;
use std::collections::BTreeMap;
use std::fs::OpenOptions;
use std::io::Read;
use std::path::Path;

/// Everything recovery found in a data directory.
pub struct Recovery {
    /// The snapshot body (an engine snapshot stream), if a snapshot
    /// file existed.
    pub snapshot: Option<Vec<u8>>,
    /// The snapshot's watermark (0 without a snapshot): every commit
    /// seq ≤ watermark is inside the snapshot.
    pub watermark: u64,
    /// Surviving WAL records, sorted by first member seq — replay them
    /// in this order.
    pub records: Vec<WalRecord>,
    /// The highest commit seq anywhere (watermark included): the
    /// recovered service resumes its commit sequence after this.
    pub max_seq: u64,
    /// Shard segment files whose torn tails were truncated.
    pub truncated_tails: usize,
}

/// Scan `data_dir` and produce a [`Recovery`]. Truncates torn tails in
/// place (so a subsequently opened [`crate::SegmentWriter`] appends
/// after the last intact record). A directory with no snapshot and no
/// segments recovers to the empty state.
pub fn recover(data_dir: &Path) -> WalResult<Recovery> {
    let (watermark, snapshot) = match read_snapshot_file(data_dir)? {
        Some((watermark, mut reader)) => {
            let mut body = Vec::new();
            reader.read_to_end(&mut body)?;
            (watermark, Some(body))
        }
        None => (0, None),
    };

    // Group segments per shard, in segment order (scan_segments sorts).
    let mut per_shard: BTreeMap<usize, Vec<crate::segment::SegmentInfo>> = BTreeMap::new();
    for info in scan_segments(data_dir)? {
        per_shard.entry(info.shard).or_default().push(info);
    }

    let mut records: Vec<WalRecord> = Vec::new();
    let mut truncated_tails = 0usize;
    for (shard, segments) in &per_shard {
        let last_index = segments.len() - 1;
        let mut last_seq_seen: Option<u64> = None;
        for (index, info) in segments.iter().enumerate() {
            let contents = read_segment(&info.path)?;
            if contents.torn {
                if index != last_index {
                    return Err(WalError::Corrupt(format!(
                        "shard {shard}: segment {} has a torn record but later \
                         segments exist — a crash can only tear the newest tail",
                        info.seg
                    )));
                }
                let file = OpenOptions::new().write(true).open(&info.path)?;
                file.set_len(contents.valid_len)?;
                file.sync_all()?;
                truncated_tails += 1;
            }
            for record in contents.records {
                // Per-shard logs are append-ordered; refuse a log whose
                // seqs go backwards (impossible from our writer — it
                // would mean tampering or a bug worth failing loudly on).
                if let Some(prev) = last_seq_seen {
                    if record.first_seq() <= prev {
                        return Err(WalError::Corrupt(format!(
                            "shard {shard}: record seq {} not after {} — \
                             per-shard order violated",
                            record.first_seq(),
                            prev
                        )));
                    }
                }
                last_seq_seen = Some(record.last_seq());
                records.push(record);
            }
        }
    }

    // Drop records the snapshot already covers (a checkpoint that
    // crashed after the snapshot rename but before truncation). Seq
    // assignment and snapshotting both happen under the shard locks, so
    // a record is entirely ≤ or entirely > the watermark.
    records.retain(|r| r.first_seq() > watermark);
    records.sort_by_key(WalRecord::first_seq);

    let max_seq = records
        .iter()
        .map(WalRecord::last_seq)
        .max()
        .unwrap_or(0)
        .max(watermark);
    Ok(Recovery {
        snapshot,
        watermark,
        records,
        max_seq,
        truncated_tails,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::segment::{SegmentWriter, DEFAULT_SEGMENT_BYTES};
    use crate::snapshot_file::write_snapshot_file;
    use crate::FsyncPolicy;
    use birds_store::{tuple, Delta};
    use std::path::PathBuf;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "birds-wal-rec-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn record(seqs: &[u64]) -> WalRecord {
        let mut d = Delta::new();
        d.push_insert(tuple![seqs[0] as i64]);
        WalRecord::Commit {
            seqs: seqs.to_vec(),
            deltas: vec![("v".to_owned(), d)],
        }
    }

    #[test]
    fn empty_directory_recovers_to_empty_state() {
        let dir = temp_dir("empty");
        let rec = recover(&dir).unwrap();
        assert!(rec.snapshot.is_none());
        assert_eq!(rec.watermark, 0);
        assert!(rec.records.is_empty());
        assert_eq!(rec.max_seq, 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn records_merge_across_shards_in_global_seq_order() {
        let dir = temp_dir("merge");
        let mut w0 = SegmentWriter::open(&dir, 0, DEFAULT_SEGMENT_BYTES).unwrap();
        let mut w1 = SegmentWriter::open(&dir, 1, DEFAULT_SEGMENT_BYTES).unwrap();
        // Interleaved commit seqs across two shards, epochs of varying size.
        w0.append(&record(&[1]), FsyncPolicy::Off).unwrap();
        w1.append(&record(&[2, 3]), FsyncPolicy::Off).unwrap();
        w0.append(&record(&[4]), FsyncPolicy::Off).unwrap();
        w1.append(&record(&[5]), FsyncPolicy::Off).unwrap();
        w0.sync().unwrap();
        w1.sync().unwrap();
        let rec = recover(&dir).unwrap();
        let firsts: Vec<u64> = rec.records.iter().map(WalRecord::first_seq).collect();
        assert_eq!(firsts, vec![1, 2, 4, 5]);
        assert_eq!(rec.max_seq, 5);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn watermark_filters_checkpointed_records() {
        let dir = temp_dir("watermark");
        let mut w = SegmentWriter::open(&dir, 0, DEFAULT_SEGMENT_BYTES).unwrap();
        for seq in 1..=4 {
            w.append(&record(&[seq]), FsyncPolicy::Off).unwrap();
        }
        w.sync().unwrap();
        // A checkpoint at seq 2 that crashed before truncation.
        write_snapshot_file(&dir, 2, |wr| wr.write_all(b"body")).unwrap();
        let rec = recover(&dir).unwrap();
        assert_eq!(rec.watermark, 2);
        assert_eq!(rec.snapshot.as_deref(), Some(&b"body"[..]));
        let firsts: Vec<u64> = rec.records.iter().map(WalRecord::first_seq).collect();
        assert_eq!(firsts, vec![3, 4], "covered records dropped");
        assert_eq!(rec.max_seq, 4);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_truncated_so_reopen_appends_cleanly() {
        let dir = temp_dir("tail");
        let mut w = SegmentWriter::open(&dir, 0, DEFAULT_SEGMENT_BYTES).unwrap();
        w.append(&record(&[1]), FsyncPolicy::Always).unwrap();
        w.append(&record(&[2]), FsyncPolicy::Always).unwrap();
        drop(w);
        let path = scan_segments(&dir).unwrap()[0].path.clone();
        let full = std::fs::metadata(&path).unwrap().len();
        let f = OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(full - 3).unwrap(); // tear the last record
        drop(f);

        let rec = recover(&dir).unwrap();
        assert_eq!(rec.truncated_tails, 1);
        assert_eq!(rec.records.len(), 1);
        assert_eq!(rec.max_seq, 1);

        // Appending after recovery must yield a clean log.
        let mut w = SegmentWriter::open(&dir, 0, DEFAULT_SEGMENT_BYTES).unwrap();
        w.append(&record(&[2]), FsyncPolicy::Always).unwrap();
        drop(w);
        let rec = recover(&dir).unwrap();
        assert_eq!(rec.truncated_tails, 0);
        let firsts: Vec<u64> = rec.records.iter().map(WalRecord::first_seq).collect();
        assert_eq!(firsts, vec![1, 2]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_record_before_later_segments_is_refused() {
        let dir = temp_dir("midtorn");
        let mut w = SegmentWriter::open(&dir, 0, 64).unwrap(); // force rotation
        for seq in 1..=6 {
            w.append(&record(&[seq]), FsyncPolicy::Off).unwrap();
        }
        w.sync().unwrap();
        drop(w);
        let segments = scan_segments(&dir).unwrap();
        assert!(segments.len() >= 2);
        // Corrupt the FIRST segment's tail byte: not a legal crash shape.
        let path = &segments[0].path;
        let mut bytes = std::fs::read(path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        std::fs::write(path, &bytes).unwrap();
        assert!(matches!(recover(&dir), Err(WalError::Corrupt(_))));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn out_of_order_seqs_within_a_shard_are_refused() {
        let dir = temp_dir("order");
        let mut w = SegmentWriter::open(&dir, 0, DEFAULT_SEGMENT_BYTES).unwrap();
        w.append(&record(&[5]), FsyncPolicy::Off).unwrap();
        w.append(&record(&[3]), FsyncPolicy::Off).unwrap();
        w.sync().unwrap();
        drop(w);
        assert!(matches!(recover(&dir), Err(WalError::Corrupt(_))));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
