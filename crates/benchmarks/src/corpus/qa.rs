//! Table 1 rows 24–32: view update questions collected from Database
//! Administrators Stack Exchange and Stack Overflow.

use super::{CorpusEntry, RelSpec, SourceKind};
use birds_store::ValueSort::{Int, Str};

/// Rows 24–32 in Table 1 order.
pub fn entries() -> Vec<CorpusEntry> {
    vec![
        // ------------------------------------------------------------------
        // #24 ukaz_lok — selection (status > 0) with a domain constraint.
        CorpusEntry {
            id: 24,
            name: "ukaz_lok",
            source: SourceKind::QaSite,
            operators: "S",
            constraint_classes: "C",
            expressible: true,
            lvgn_expected: true,
            sources: &[RelSpec {
                name: "lok",
                cols: &[("lid", Int), ("nazev", Str), ("stav", Int)],
            }],
            view: RelSpec {
                name: "ukaz_lok",
                cols: &[("lid", Int), ("nazev", Str), ("stav", Int)],
            },
            putdelta: "
                false :- ukaz_lok(I, N, S), not S > 0.
                active(I, N, S) :- lok(I, N, S), S > 0.
                -lok(I, N, S) :- active(I, N, S), not ukaz_lok(I, N, S).
                +lok(I, N, S) :- ukaz_lok(I, N, S), not lok(I, N, S).
            ",
            expected_get: "ukaz_lok(I, N, S) :- lok(I, N, S), S > 0.",
        },
        // ------------------------------------------------------------------
        // #25 message — tagged union of inbox and outbox.
        CorpusEntry {
            id: 25,
            name: "message",
            source: SourceKind::QaSite,
            operators: "U",
            constraint_classes: "C",
            expressible: true,
            lvgn_expected: true,
            sources: &[
                RelSpec {
                    name: "inbox",
                    cols: &[("mid", Int), ("body", Str)],
                },
                RelSpec {
                    name: "outbox",
                    cols: &[("mid", Int), ("body", Str)],
                },
            ],
            view: RelSpec {
                name: "message",
                cols: &[("mid", Int), ("body", Str), ("dir", Str)],
            },
            putdelta: "
                false :- message(I, B, D), not D = 'in', not D = 'out'.
                +inbox(I, B) :- message(I, B, 'in'), not inbox(I, B).
                -inbox(I, B) :- inbox(I, B), not message(I, B, 'in').
                +outbox(I, B) :- message(I, B, D), D = 'out', not outbox(I, B).
                -outbox(I, B) :- outbox(I, B), not message(I, B, 'out').
            ",
            expected_get: "
                message(I, B, 'in') :- inbox(I, B).
                message(I, B, 'out') :- outbox(I, B).
            ",
        },
        // ------------------------------------------------------------------
        // #26 outstanding_task — projection + semi-join over a wide tasks
        // relation (the row with the paper's longest validation time);
        // Figure 6(c) view.
        CorpusEntry {
            id: 26,
            name: "outstanding_task",
            source: SourceKind::QaSite,
            operators: "P,SJ",
            constraint_classes: "ID, C",
            expressible: true,
            lvgn_expected: true,
            sources: &[
                RelSpec {
                    name: "tasks",
                    cols: &[
                        ("tid", Int),
                        ("title", Str),
                        ("due", Str),
                        ("owner", Str),
                        ("status", Str),
                    ],
                },
                RelSpec {
                    name: "assignment",
                    cols: &[("tid", Int), ("worker", Str)],
                },
            ],
            view: RelSpec {
                name: "outstanding_task",
                cols: &[("tid", Int), ("title", Str), ("due", Str), ("owner", Str)],
            },
            putdelta: "
                false :- outstanding_task(T, TI, DU, OW), not inassign(T).
                false :- outstanding_task(T, TI, DU, OW), not T > 0.
                inassign(T) :- assignment(T, _).
                opentask(T, TI, DU, OW) :- tasks(T, TI, DU, OW, 'open').
                +tasks(T, TI, DU, OW, S) :- outstanding_task(T, TI, DU, OW),
                                            not opentask(T, TI, DU, OW), S = 'open'.
                -tasks(T, TI, DU, OW, S) :- tasks(T, TI, DU, OW, S), S = 'open',
                                            inassign(T),
                                            not outstanding_task(T, TI, DU, OW).
            ",
            expected_get: "outstanding_task(T, TI, DU, OW) :-
                               tasks(T, TI, DU, OW, 'open'), assignment(T, _).",
        },
        // ------------------------------------------------------------------
        // #27 poi_view — inner join + projection with PK.
        CorpusEntry {
            id: 27,
            name: "poi_view",
            source: SourceKind::QaSite,
            operators: "P,IJ",
            constraint_classes: "PK",
            expressible: true,
            lvgn_expected: false,
            sources: &[
                RelSpec {
                    name: "poi",
                    cols: &[("pid", Int), ("pname", Str), ("cat_id", Int)],
                },
                RelSpec {
                    name: "categories",
                    cols: &[("cat_id", Int), ("cat_name", Str)],
                },
            ],
            view: RelSpec {
                name: "poi_view",
                cols: &[
                    ("pid", Int),
                    ("pname", Str),
                    ("cat_id", Int),
                    ("cat_name", Str),
                ],
            },
            putdelta: "
                false :- categories(C, N1), categories(C, N2), not N1 = N2.
                false :- poi(P, N, C), not incat(C).
                incat(C) :- categories(C, _).
                false :- poi_view(P, N, C, CN), poi_view(P2, N2, C, CN2), not CN = CN2.
                false :- poi_view(P, N, C, CN), categories(C, CN2), not CN = CN2.
                +poi(P, N, C) :- poi_view(P, N, C, CN), not poi(P, N, C).
                +categories(C, CN) :- poi_view(P, N, C, CN), not categories(C, CN).
                -poi(P, N, C) :- poi(P, N, C), categories(C, CN), not poi_view(P, N, C, CN).
            ",
            expected_get: "poi_view(P, N, C, CN) :- poi(P, N, C), categories(C, CN).",
        },
        // ------------------------------------------------------------------
        // #28 phonelist — three-way tagged union (staff / client /
        // supplier phone books).
        CorpusEntry {
            id: 28,
            name: "phonelist",
            source: SourceKind::QaSite,
            operators: "U",
            constraint_classes: "C",
            expressible: true,
            lvgn_expected: true,
            sources: &[
                RelSpec {
                    name: "staff",
                    cols: &[("pname", Str), ("phone", Str)],
                },
                RelSpec {
                    name: "clients",
                    cols: &[("pname", Str), ("phone", Str)],
                },
                RelSpec {
                    name: "suppliers",
                    cols: &[("pname", Str), ("phone", Str)],
                },
            ],
            view: RelSpec {
                name: "phonelist",
                cols: &[("pname", Str), ("phone", Str), ("kind", Str)],
            },
            putdelta: "
                false :- phonelist(N, P, K), not K = 'staff', not K = 'client',
                         not K = 'supplier'.
                +staff(N, P) :- phonelist(N, P, 'staff'), not staff(N, P).
                -staff(N, P) :- staff(N, P), not phonelist(N, P, 'staff').
                +clients(N, P) :- phonelist(N, P, K), K = 'client', not clients(N, P).
                -clients(N, P) :- clients(N, P), not phonelist(N, P, 'client').
                +suppliers(N, P) :- phonelist(N, P, K), K = 'supplier', not suppliers(N, P).
                -suppliers(N, P) :- suppliers(N, P), not phonelist(N, P, 'supplier').
            ",
            expected_get: "
                phonelist(N, P, 'staff') :- staff(N, P).
                phonelist(N, P, 'client') :- clients(N, P).
                phonelist(N, P, 'supplier') :- suppliers(N, P).
            ",
        },
        // ------------------------------------------------------------------
        // #29 products — LEFT JOIN of products with stock (missing stock
        // reported as quantity -1), with PK, FK and domain constraints.
        CorpusEntry {
            id: 29,
            name: "products",
            source: SourceKind::QaSite,
            operators: "LJ",
            constraint_classes: "PK, FK, C",
            expressible: true,
            lvgn_expected: false,
            sources: &[
                RelSpec {
                    name: "product",
                    cols: &[("pid", Int), ("pname", Str)],
                },
                RelSpec {
                    name: "stock",
                    cols: &[("pid", Int), ("qty", Int)],
                },
            ],
            view: RelSpec {
                name: "products",
                cols: &[("pid", Int), ("pname", Str), ("qty", Int)],
            },
            putdelta: "
                false :- product(P, N1), product(P, N2), not N1 = N2.
                false :- stock(P, Q1), stock(P, Q2), not Q1 = Q2.
                false :- stock(P, Q), not inproduct(P).
                inproduct(P) :- product(P, _).
                false :- products(P, N, Q), not Q > -2.
                false :- products(P, N1, Q1), products(P, N2, Q2), not N1 = N2.
                false :- products(P, N1, Q1), products(P, N2, Q2), not Q1 = Q2.
                false :- products(P, N, Q), product(P, N2), not N = N2.
                false :- products(P, N, Q), not Q = -1, stock(P, Q2), not Q = Q2.
                instock(P) :- stock(P, _).
                false :- products(P, N, Q), Q = -1, instock(P).
                +product(P, N) :- products(P, N, Q), not product(P, N).
                inview(P, N) :- products(P, N, _).
                -product(P, N) :- product(P, N), not inview(P, N).
                +stock(P, Q) :- products(P, N, Q), not Q = -1, not stock(P, Q).
            ",
            expected_get: "
                products(P, N, Q) :- product(P, N), stock(P, Q).
                products(P, N, Q) :- product(P, N), not instock2(P), Q = -1.
                instock2(P) :- stock(P, _).
            ",
        },
        // ------------------------------------------------------------------
        // #30 koncerty — inner join (concerts with their venues), PK.
        CorpusEntry {
            id: 30,
            name: "koncerty",
            source: SourceKind::QaSite,
            operators: "IJ",
            constraint_classes: "PK",
            expressible: true,
            lvgn_expected: false,
            sources: &[
                RelSpec {
                    name: "koncert",
                    cols: &[("kid", Int), ("nazev", Str), ("mid", Int)],
                },
                RelSpec {
                    name: "misto",
                    cols: &[("mid", Int), ("mesto", Str)],
                },
            ],
            view: RelSpec {
                name: "koncerty",
                cols: &[("kid", Int), ("nazev", Str), ("mid", Int), ("mesto", Str)],
            },
            putdelta: "
                false :- misto(M, C1), misto(M, C2), not C1 = C2.
                false :- koncert(K, N, M), not inmisto(M).
                inmisto(M) :- misto(M, _).
                false :- koncerty(K, N, M, C), koncerty(K2, N2, M, C2), not C = C2.
                false :- koncerty(K, N, M, C), misto(M, C2), not C = C2.
                +koncert(K, N, M) :- koncerty(K, N, M, C), not koncert(K, N, M).
                +misto(M, C) :- koncerty(K, N, M, C), not misto(M, C).
                -koncert(K, N, M) :- koncert(K, N, M), misto(M, C), not koncerty(K, N, M, C).
            ",
            expected_get: "koncerty(K, N, M, C) :- koncert(K, N, M), misto(M, C).",
        },
        // ------------------------------------------------------------------
        // #31 purchaseview — inner join + projection with PK, FK and a
        // join dependency.
        CorpusEntry {
            id: 31,
            name: "purchaseview",
            source: SourceKind::QaSite,
            operators: "P,IJ",
            constraint_classes: "PK, FK, JD",
            expressible: true,
            lvgn_expected: false,
            sources: &[
                RelSpec {
                    name: "purchases",
                    cols: &[
                        ("pur_id", Int),
                        ("item_id", Int),
                        ("qty", Int),
                        ("note", Str),
                    ],
                },
                RelSpec {
                    name: "item",
                    cols: &[("item_id", Int), ("iname", Str)],
                },
            ],
            view: RelSpec {
                name: "purchaseview",
                cols: &[
                    ("pur_id", Int),
                    ("item_id", Int),
                    ("qty", Int),
                    ("iname", Str),
                ],
            },
            putdelta: "
                false :- item(I, N1), item(I, N2), not N1 = N2.
                false :- purchases(P, I, Q, NO), not initem(I).
                initem(I) :- item(I, _).
                false :- purchaseview(P, I, Q, N), purchaseview(P2, I, Q2, N2), not N = N2.
                false :- purchaseview(P, I, Q, N), item(I, N2), not N = N2.
                +item(I, N) :- purchaseview(P, I, Q, N), not item(I, N).
                inpurchases(P, I, Q) :- purchases(P, I, Q, _).
                +purchases(P, I, Q, NO) :- purchaseview(P, I, Q, N),
                                           not inpurchases(P, I, Q), NO = 'none'.
                -purchases(P, I, Q, NO) :- purchases(P, I, Q, NO), item(I, N),
                                           not purchaseview(P, I, Q, N).
            ",
            expected_get: "purchaseview(P, I, Q, N) :- purchases(P, I, Q, _), item(I, N).",
        },
        // ------------------------------------------------------------------
        // #32 vehicle_view — inner join + projection with PK, FK and a
        // join dependency (the widest Q&A schema).
        CorpusEntry {
            id: 32,
            name: "vehicle_view",
            source: SourceKind::QaSite,
            operators: "P,IJ",
            constraint_classes: "PK, FK, JD",
            expressible: true,
            lvgn_expected: false,
            sources: &[
                RelSpec {
                    name: "vehicles",
                    cols: &[("vid", Int), ("plate", Str), ("vtype", Str), ("oid", Int)],
                },
                RelSpec {
                    name: "owners",
                    cols: &[("oid", Int), ("oname", Str)],
                },
            ],
            view: RelSpec {
                name: "vehicle_view",
                cols: &[("vid", Int), ("plate", Str), ("oid", Int), ("oname", Str)],
            },
            putdelta: "
                false :- owners(O, N1), owners(O, N2), not N1 = N2.
                false :- vehicles(V, P, T, O), not inowners(O).
                inowners(O) :- owners(O, _).
                false :- vehicle_view(V, P, O, N), vehicle_view(V2, P2, O, N2), not N = N2.
                false :- vehicle_view(V, P, O, N), owners(O, N2), not N = N2.
                +owners(O, N) :- vehicle_view(V, P, O, N), not owners(O, N).
                invehicles(V, P, O) :- vehicles(V, P, _, O).
                +vehicles(V, P, T, O) :- vehicle_view(V, P, O, N),
                                         not invehicles(V, P, O), T = 'car'.
                -vehicles(V, P, T, O) :- vehicles(V, P, T, O), owners(O, N),
                                         not vehicle_view(V, P, O, N).
            ",
            expected_get: "vehicle_view(V, P, O, N) :- vehicles(V, P, _, O), owners(O, N).",
        },
    ]
}
